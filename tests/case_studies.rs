//! End-to-end reproduction of the paper's §5 case studies.
//!
//! For every corpus program this asserts the full result the paper
//! reports, plus what the paper could only prove on paper:
//!
//! 1. the secure variant typechecks under P4BID;
//! 2. the insecure variant is rejected with the expected diagnostic class;
//! 3. the unannotated form typechecks under the baseline checker (the
//!    "p4c" column of Table 1 exists);
//! 4. the baseline checker also accepts the *insecure* annotated program —
//!    i.e. the bug is invisible without IFC;
//! 5. the secure variant is empirically non-interfering under its demo
//!    control plane;
//! 6. where the leak is input-dependent, running the insecure variant
//!    produces a concrete leak witness.

use p4bid::corpus::{case_studies, demo_control_plane};
use p4bid::interp::Value;
use p4bid::ni::{check_non_interference, run_pair, NiConfig};
use p4bid::packet::{init_args, set_path};
use p4bid::report::unannotated_source;
use p4bid::{check, CheckOptions};

#[test]
fn secure_variants_typecheck() {
    for cs in case_studies() {
        check(cs.secure, &CheckOptions::ifc())
            .unwrap_or_else(|e| panic!("{} secure rejected: {e:?}", cs.name));
    }
}

#[test]
fn insecure_variants_rejected_with_expected_codes() {
    for cs in case_studies() {
        let diags = check(cs.insecure, &CheckOptions::ifc())
            .err()
            .unwrap_or_else(|| panic!("{} insecure accepted", cs.name));
        for code in cs.expected_codes {
            assert!(
                diags.iter().any(|d| d.code == *code),
                "{}: expected {code:?}, got {diags:?}",
                cs.name
            );
        }
        // Every reported error is a *security* error: the program is
        // otherwise well-typed, exactly as in the paper.
        assert!(
            diags.iter().all(|d| d.code.is_security()),
            "{}: non-security errors reported: {diags:?}",
            cs.name
        );
    }
}

#[test]
fn unannotated_forms_pass_the_baseline() {
    for cs in case_studies() {
        let plain = unannotated_source(&cs);
        check(&plain, &CheckOptions::base())
            .unwrap_or_else(|e| panic!("{} unannotated rejected: {e:?}", cs.name));
    }
}

#[test]
fn baseline_checker_cannot_see_the_bugs() {
    for cs in case_studies() {
        check(cs.insecure, &CheckOptions::base()).unwrap_or_else(|e| {
            panic!("{}: baseline should accept the insecure variant: {e:?}", cs.name)
        });
    }
}

#[test]
fn secure_variants_are_empirically_non_interfering() {
    for cs in case_studies() {
        let typed = check(cs.secure, &CheckOptions::ifc()).expect("typechecks");
        let cp = demo_control_plane(cs.name);
        let out = check_non_interference(
            &typed,
            &cp,
            cs.control,
            &NiConfig::default().with_runs(150).with_seed(0xD15EA5E),
        );
        assert!(out.holds(), "{}: {:?}", cs.name, out);
    }
}

#[test]
fn input_dependent_leaks_have_witnesses() {
    for cs in case_studies() {
        if !cs.leak_observable || cs.name == "D2R" {
            continue; // D2R needs a crafted pair; see below.
        }
        let typed = check(cs.insecure, &CheckOptions::permissive()).expect("permissive");
        let cp = demo_control_plane(cs.name);
        let observe = if cs.name == "Lattice" { Some("B") } else { None };
        let mut cfg = NiConfig::default().with_runs(600).with_seed(7);
        if let Some(l) = observe {
            cfg = cfg.observing(l);
        }
        let out = check_non_interference(&typed, &cp, cs.control, &cfg);
        assert!(out.witness().is_some(), "{}: expected a leak witness, got {out:?}", cs.name);
    }
}

#[test]
fn d2r_leak_witnessed_on_a_crafted_pair() {
    let cs = p4bid::corpus::D2R;
    let leaky = check(cs.insecure, &CheckOptions::permissive()).expect("permissive");
    let cp = demo_control_plane("D2R");

    let mut a = init_args(&leaky, cs.control).expect("control exists");
    let h = &mut a[0];
    assert!(set_path(&leaky, h, "bfs.curr", Value::Int(3)));
    assert!(set_path(&leaky, h, "bfs.next_node", Value::Int(3)));
    assert!(set_path(&leaky, h, "ipv4.dstAddr", Value::Int(3)));
    assert!(set_path(&leaky, h, "bfs.tried_links", Value::Int(0b111)));
    let mut b = a.clone();
    assert!(set_path(&leaky, &mut a[0], "bfs.num_hops", Value::Int(0)));
    assert!(set_path(&leaky, &mut b[0], "bfs.num_hops", Value::Int(200)));

    let (diffs, exited) =
        run_pair(&leaky, &cp, cs.control, leaky.lattice.bottom(), a.clone(), b.clone())
            .expect("runs");
    assert_eq!(exited, (false, false));
    assert!(
        diffs.iter().any(|d| d.path == "hdr.ipv4.priority"),
        "priority must leak the hop count: {diffs:?}"
    );

    // The secure variant on the *same* crafted pair shows no difference.
    let fixed = check(cs.secure, &CheckOptions::ifc()).expect("accepted");
    let (diffs, _) = run_pair(&fixed, &cp, cs.control, fixed.lattice.bottom(), a, b).expect("runs");
    assert!(diffs.is_empty(), "secure D2R must not leak: {diffs:?}");
}

#[test]
fn topology_secure_pipeline_translates_and_forwards() {
    // The Topology leak flows from control-plane data and is invisible to
    // the input-pair harness (see CaseStudy::leak_observable); what we can
    // check end-to-end is that the secure pipeline works and keeps the
    // public ttl independent of the local topology.
    let cs = p4bid::corpus::TOPOLOGY;
    let typed = check(cs.secure, &CheckOptions::ifc()).expect("accepted");
    let cp = demo_control_plane("Topology");

    let mut args = init_args(&typed, cs.control).expect("control exists");
    assert!(set_path(&typed, &mut args[0], "ipv4.dstAddr", Value::Int(0x0A00_0002)));
    assert!(set_path(&typed, &mut args[0], "ipv4.ttl", Value::Int(64)));

    let out = p4bid::interp::run_control(&typed, &cp, cs.control, args).expect("runs");
    let hdr = out.param("hdr").unwrap();
    // The local header got the physical mapping...
    assert_eq!(
        p4bid::packet::get_path(&typed, hdr, "local_hdr.phys_dstAddr"),
        Some(&Value::bit(32, 0xC0A8_0002))
    );
    assert_eq!(
        p4bid::packet::get_path(&typed, hdr, "local_hdr.phys_ttl"),
        Some(&Value::bit(8, 18))
    );
    // ...while the public ttl only saw the ordinary decrement.
    assert_eq!(p4bid::packet::get_path(&typed, hdr, "ipv4.ttl"), Some(&Value::bit(8, 63)));
}

#[test]
fn netchain_roles_drive_the_pipeline() {
    let cs = p4bid::corpus::NETCHAIN;
    let typed = check(cs.secure, &CheckOptions::ifc()).expect("accepted");
    let cp = demo_control_plane("NetChain");

    // Writes: only the tail answers the client.
    for (role, expect_reply, expect_port) in [(0i128, 0u128, 2u128), (1, 0, 3), (2, 1, 9)] {
        let mut args = init_args(&typed, cs.control).expect("control exists");
        assert!(set_path(&typed, &mut args[0], "nc.role", Value::Int(role)));
        assert!(set_path(&typed, &mut args[0], "nc.op", Value::Int(1)));
        assert!(set_path(&typed, &mut args[0], "nc.seq", Value::Int(5)));
        assert!(set_path(&typed, &mut args[0], "nc.key_field", Value::Int(3)));
        assert!(set_path(&typed, &mut args[0], "nc.value_field", Value::Int(0xFEED)));
        let out = p4bid::interp::run_control(&typed, &cp, cs.control, args).expect("runs");
        let hdr = out.param("hdr").unwrap();
        assert_eq!(
            p4bid::packet::get_path(&typed, hdr, "nc.reply"),
            Some(&Value::bit(8, expect_reply)),
            "role {role}"
        );
        assert_eq!(
            p4bid::packet::get_path(&typed, out.param("std_metadata").unwrap(), "egress_spec"),
            Some(&Value::bit(9, expect_port)),
            "role {role}"
        );
    }

    // A read at a non-tail switch is dropped; at the tail it replies.
    let mut args = init_args(&typed, cs.control).expect("control exists");
    assert!(set_path(&typed, &mut args[0], "nc.role", Value::Int(2)));
    assert!(set_path(&typed, &mut args[0], "nc.op", Value::Int(0)));
    assert!(set_path(&typed, &mut args[0], "nc.seq", Value::Int(5)));
    let out = p4bid::interp::run_control(&typed, &cp, cs.control, args).expect("runs");
    assert_eq!(
        p4bid::packet::get_path(&typed, out.param("hdr").unwrap(), "nc.reply"),
        Some(&Value::bit(8, 1))
    );
}

#[test]
fn isolation_pc_is_load_bearing() {
    // Strip the @pc annotations from the *secure* isolation program and
    // check it at pc = bot: it still typechecks (writing up is always
    // fine), but checking Alice's code at pc = B must fail — the ambient
    // pc is what pins each tenant to its own fields.
    let cs = p4bid::corpus::LATTICE;
    let no_pc = cs.secure.replace("@pc(A) ", "").replace("@pc(B) ", "");
    assert!(check(&no_pc, &CheckOptions::ifc()).is_ok());
    let errs = check(&no_pc, &CheckOptions::ifc().with_pc("B")).unwrap_err();
    assert!(
        errs.iter().any(|d| d.code == p4bid::DiagCode::ImplicitFlow
            || d.code == p4bid::DiagCode::CallPcViolation
            || d.code == p4bid::DiagCode::TableApplyPcViolation),
        "Alice's A-writes must be rejected at pc=B: {errs:?}"
    );
}

#[test]
fn permissive_mode_accepts_every_insecure_variant() {
    for cs in case_studies() {
        check(cs.insecure, &CheckOptions::permissive()).unwrap_or_else(|e| {
            panic!("{}: permissive mode must accept the insecure variant: {e:?}", cs.name)
        });
    }
}

#[test]
fn corpus_programs_are_nontrivial() {
    // Guard against the corpus degenerating: each program should be a
    // realistic multi-table pipeline, not a two-liner.
    for cs in case_studies() {
        assert!(
            cs.secure.lines().count() >= 40,
            "{} secure variant is suspiciously small",
            cs.name
        );
        let typed = check(cs.secure, &CheckOptions::ifc()).expect("typechecks");
        assert!(!typed.controls.is_empty());
    }
}
