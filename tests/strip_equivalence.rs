//! Differential property test: security annotations are *ghost state*.
//!
//! P4BID's type system refines Core P4 without changing its dynamics —
//! labels steer the static judgements only (§4: the operational semantics
//! never consults χ). So for any well-typed program, mechanically stripping
//! every annotation (`core::strip`) and re-checking under the baseline
//! checker must yield a program with *identical* interpreter behavior on
//! identical inputs and control-plane state.
//!
//! The property is exercised over the soundness fuzzer's generated
//! programs (biased toward well-typed ones) on proptest-chosen inputs.

use p4bid::interp::{run_control, ControlOutcome, Value};
use p4bid::ni::{random_program, GenConfig};
use p4bid::strip::strip_annotations_source;
use p4bid::syntax::parse;
use p4bid::{check, CheckOptions};
use proptest::prelude::*;

/// Runs the `Fuzz` control of a generated program on four byte inputs.
fn run_fuzz(
    source: &str,
    opts: &CheckOptions,
    cp: &p4bid::interp::ControlPlane,
    inputs: [u8; 4],
) -> Option<ControlOutcome> {
    let typed = check(source, opts).ok()?;
    let args = inputs.iter().map(|&v| Value::bit(8, u128::from(v))).collect();
    run_control(&typed, cp, "Fuzz", args).ok()
}

proptest! {
    /// Stripping annotations never changes what the program computes.
    #[test]
    fn stripping_preserves_interpreter_results(
        seed in 0u64..500,
        raw in (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
    ) {
        let inputs = [raw.0, raw.1, raw.2, raw.3];
        let gp = random_program(seed, &GenConfig::default().with_safe_bias(0.9));
        // The property quantifies over *well-typed* programs.
        if check(&gp.source, &CheckOptions::ifc()).is_err() {
            return Ok(());
        }

        let stripped = strip_annotations_source(&parse(&gp.source).expect("generated programs parse"));
        prop_assert!(!stripped.contains("high"), "labels survived stripping:\n{stripped}");

        let annotated_out = run_fuzz(&gp.source, &CheckOptions::ifc(), &gp.control_plane, inputs);
        let stripped_out = run_fuzz(&stripped, &CheckOptions::base(), &gp.control_plane, inputs);
        prop_assert_eq!(
            &annotated_out,
            &stripped_out,
            "seed {} diverged on {:?}\nannotated:\n{}\nstripped:\n{}",
            seed,
            inputs,
            gp.source,
            stripped
        );
        // The harness only proves something when programs actually ran.
        prop_assert!(annotated_out.is_some(), "well-typed program failed to run");
    }
}

/// The same differential, pinned on the paper's scaling workload: the
/// synthetic programs must base-check and behave identically after
/// stripping (they have tables, actions, and guards, but take a struct
/// parameter, so we compare the checkers' verdicts rather than runs).
#[test]
fn synthetic_programs_strip_to_base_accepted_forms() {
    for n in [1usize, 3, 9] {
        let annotated = p4bid::synth::synth_program(n, true);
        let stripped = strip_annotations_source(&parse(&annotated).expect("synth parses"));
        check(&stripped, &CheckOptions::base())
            .unwrap_or_else(|e| panic!("stripped synth n={n} fails base check: {e:?}"));
        assert!(!stripped.contains("high"), "n={n}:\n{stripped}");
    }
}
