//! Property-based tests (proptest) on cross-crate invariants.

use p4bid::ast::pretty;
use p4bid::lattice::{laws, Lattice};
use p4bid::ni::{random_program, GenConfig};
use p4bid::syntax::parse;
use p4bid::{check, CheckOptions};
use proptest::prelude::*;

proptest! {
    /// Chains of any length are lattices and satisfy every algebraic law.
    #[test]
    fn chain_lattices_satisfy_laws(k in 1usize..24) {
        let lat = Lattice::chain(k);
        prop_assert!(laws::check_laws(&lat).is_empty());
        prop_assert_eq!(lat.len(), k);
    }

    /// Powerset lattices over up to 5 atoms satisfy the laws.
    #[test]
    fn powerset_lattices_satisfy_laws(n in 0usize..6) {
        let atoms: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
        let refs: Vec<&str> = atoms.iter().map(String::as_str).collect();
        let lat = Lattice::powerset(&refs);
        prop_assert!(laws::check_laws(&lat).is_empty());
        prop_assert_eq!(lat.len(), 1 << n);
    }

    /// `from_order` over a random "layered" poset either fails cleanly or
    /// yields a structure satisfying all lattice laws.
    #[test]
    fn from_order_output_is_always_a_lattice(
        widths in proptest::collection::vec(1usize..4, 1..4),
        seed in 0u64..1000,
    ) {
        // Layered construction: bottom, then layers of `widths[i]` nodes,
        // then top, with pseudo-random edges between adjacent layers.
        let mut names = vec!["bot".to_string()];
        let mut layers: Vec<Vec<String>> = vec![vec!["bot".into()]];
        for (i, w) in widths.iter().enumerate() {
            let layer: Vec<String> = (0..*w).map(|j| format!("n{i}_{j}")).collect();
            names.extend(layer.iter().cloned());
            layers.push(layer);
        }
        names.push("top".to_string());
        layers.push(vec!["top".into()]);

        let mut order = Vec::new();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for w in layers.windows(2) {
            for lo in &w[0] {
                for hi in &w[1] {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    if state % 3 != 0 || w[1].len() == 1 || w[0].len() == 1 {
                        order.push((lo.clone(), hi.clone()));
                    }
                }
            }
        }
        if let Ok(lat) = Lattice::from_order(&names, &order) {
            prop_assert!(laws::check_laws(&lat).is_empty());
        }
    }

    /// Pretty-printing is a right inverse of parsing on generated
    /// programs: `pretty ∘ parse` is idempotent.
    #[test]
    fn pretty_parse_roundtrip(seed in 0u64..300) {
        let gp = random_program(seed, &GenConfig::default());
        let p1 = parse(&gp.source).expect("generated programs parse");
        let printed = pretty::program(&p1);
        let p2 = parse(&printed).expect("pretty output parses");
        prop_assert_eq!(printed, pretty::program(&p2));
    }

    /// The checkers are deterministic: same source, same verdict and same
    /// diagnostic sequence.
    #[test]
    fn checking_is_deterministic(seed in 0u64..150) {
        let gp = random_program(seed, &GenConfig::default());
        let a = check(&gp.source, &CheckOptions::ifc());
        let b = check(&gp.source, &CheckOptions::ifc());
        match (a, b) {
            (Ok(_), Ok(_)) => {}
            (Err(da), Err(db)) => {
                let ca: Vec<_> = da.iter().map(|d| (d.code, d.span)).collect();
                let cb: Vec<_> = db.iter().map(|d| (d.code, d.span)).collect();
                prop_assert_eq!(ca, cb);
            }
            (a, b) => prop_assert!(false, "nondeterministic verdict: {:?} vs {:?}",
                                   a.is_ok(), b.is_ok()),
        }
    }

    /// IFC acceptance implies baseline and permissive acceptance: the flow
    /// rules only ever *remove* programs.
    #[test]
    fn ifc_is_a_refinement_of_base(seed in 0u64..200) {
        let gp = random_program(seed, &GenConfig::default());
        if check(&gp.source, &CheckOptions::ifc()).is_ok() {
            prop_assert!(check(&gp.source, &CheckOptions::base()).is_ok());
            prop_assert!(check(&gp.source, &CheckOptions::permissive()).is_ok());
        }
    }

    /// In IFC rejections of generated programs (well-formed modulo labels),
    /// every diagnostic is a security diagnostic.
    #[test]
    fn generated_rejections_are_security_only(seed in 0u64..200) {
        let gp = random_program(seed, &GenConfig::default());
        if let Err(diags) = check(&gp.source, &CheckOptions::ifc()) {
            prop_assert!(diags.iter().all(|d| d.code.is_security()),
                         "non-security diagnostics: {:?}", diags);
        }
    }

    /// The interpreter is deterministic on generated programs: running the
    /// same packet twice gives identical outcomes.
    #[test]
    fn evaluation_is_deterministic(seed in 0u64..100) {
        use p4bid::interp::{run_control, Value};
        let gp = random_program(seed, &GenConfig::default());
        let Ok(typed) = check(&gp.source, &CheckOptions::permissive()) else {
            return Ok(());
        };
        let args = vec![
            Value::bit(8, seed as u128 % 256),
            Value::bit(8, (seed as u128 * 7) % 256),
            Value::bit(8, (seed as u128 * 13) % 256),
            Value::bit(8, (seed as u128 * 31) % 256),
        ];
        let a = run_control(&typed, &gp.control_plane, "Fuzz", args.clone()).unwrap();
        let b = run_control(&typed, &gp.control_plane, "Fuzz", args).unwrap();
        prop_assert_eq!(a, b);
    }
}
