//! Fuzzing the soundness theorem (Theorem 4.3): every random program the
//! IFC checker accepts must behave non-interferently under paired
//! execution. One counterexample here falsifies the reproduction.

use p4bid::ni::{check_non_interference, random_program, GenConfig, NiConfig, NiOutcome};
use p4bid::{check, CheckOptions};

#[test]
fn accepted_random_programs_are_non_interfering() {
    let cfg = GenConfig::default();
    let ni_cfg = NiConfig::default().with_runs(30).with_seed(0xF00D);
    let mut accepted = 0;
    for seed in 0..400 {
        let gp = random_program(seed, &cfg);
        let Ok(typed) = check(&gp.source, &CheckOptions::ifc()) else { continue };
        accepted += 1;
        let out = check_non_interference(&typed, &gp.control_plane, "Fuzz", &ni_cfg);
        if let NiOutcome::Leak(w) = &out {
            panic!("soundness violated at seed {seed}:\n{}\n{w}", gp.source);
        }
        assert!(out.holds(), "seed {seed}: {out:?}");
    }
    assert!(accepted >= 5, "only {accepted}/400 accepted; generator degenerated");
}

#[test]
fn deeper_programs_also_sound() {
    let cfg = GenConfig {
        max_depth: 3,
        stmts_per_block: 6,
        actions: 3,
        table: true,
        entries: 6,
        safe_bias: 0.9,
    };
    let ni_cfg = NiConfig::default().with_runs(25).with_seed(0xBEEF);
    let mut accepted = 0;
    for seed in 1000..1250 {
        let gp = random_program(seed, &cfg);
        let Ok(typed) = check(&gp.source, &CheckOptions::ifc()) else { continue };
        accepted += 1;
        let out = check_non_interference(&typed, &gp.control_plane, "Fuzz", &ni_cfg);
        assert!(out.holds(), "seed {seed}: {out:?}\n{}", gp.source);
    }
    assert!(accepted >= 25, "only {accepted}/250 deep programs accepted");
}

#[test]
fn rejected_programs_frequently_leak_for_real() {
    // Not a soundness property but a sanity check on the whole tool chain:
    // a decent fraction of rejections corresponds to observable leaks, so
    // the checker is not rejecting for spurious reasons.
    let cfg = GenConfig::default().with_safe_bias(0.0);
    let ni_cfg = NiConfig::default().with_runs(40).with_seed(0xCAFE);
    let mut rejected = 0;
    let mut leaky = 0;
    for seed in 0..150 {
        let gp = random_program(seed, &cfg);
        if check(&gp.source, &CheckOptions::ifc()).is_ok() {
            continue;
        }
        rejected += 1;
        let typed = check(&gp.source, &CheckOptions::permissive())
            .expect("generated programs are well-formed modulo labels");
        if let NiOutcome::Leak(_) =
            check_non_interference(&typed, &gp.control_plane, "Fuzz", &ni_cfg)
        {
            leaky += 1;
        }
    }
    assert!(rejected >= 50, "generator should produce many leaky programs");
    assert!(
        leaky * 3 >= rejected,
        "at least a third of rejections should be observably leaky; got {leaky}/{rejected}"
    );
}
