//! Fuzzing the soundness theorem (Theorem 4.3): every random program the
//! IFC checker accepts must behave non-interferently under paired
//! execution. One counterexample here falsifies the reproduction.

use p4bid::ni::{check_non_interference, random_program, GenConfig, NiConfig, NiOutcome};
use p4bid::{check, CheckOptions};

/// Caps a full seed count to the fast deterministic subset requested via
/// `P4BID_FUZZ_SEEDS` (e.g. `P4BID_FUZZ_SEEDS=50 cargo test`). Unset or
/// invalid values run the full sweep. The subset is a prefix of the full
/// seed range, so a failure found under the cap reproduces without it.
fn seeds(full: u64) -> u64 {
    std::env::var("P4BID_FUZZ_SEEDS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&n| n > 0)
        .map_or(full, |n| full.min(n))
}

/// Scales an "at least N of the full run" expectation to the capped seed
/// count. Deliberately no floor: under a tiny cap the threshold drops to
/// 0 and the generator-health assertions become vacuous rather than
/// spuriously failing on a sample too small to be meaningful.
fn scaled(threshold: u64, full: u64) -> u64 {
    threshold * seeds(full) / full
}

#[test]
fn accepted_random_programs_are_non_interfering() {
    let cfg = GenConfig::default();
    let ni_cfg = NiConfig::default().with_runs(30).with_seed(0xF00D);
    let mut accepted = 0;
    for seed in 0..seeds(400) {
        let gp = random_program(seed, &cfg);
        let Ok(typed) = check(&gp.source, &CheckOptions::ifc()) else { continue };
        accepted += 1;
        let out = check_non_interference(&typed, &gp.control_plane, "Fuzz", &ni_cfg);
        if let NiOutcome::Leak(w) = &out {
            panic!("soundness violated at seed {seed}:\n{}\n{w}", gp.source);
        }
        assert!(out.holds(), "seed {seed}: {out:?}");
    }
    assert!(
        accepted >= scaled(5, 400),
        "only {accepted}/{} accepted; generator degenerated",
        seeds(400)
    );
}

#[test]
fn deeper_programs_also_sound() {
    let cfg = GenConfig {
        max_depth: 3,
        stmts_per_block: 6,
        actions: 3,
        table: true,
        entries: 6,
        safe_bias: 0.9,
    };
    let ni_cfg = NiConfig::default().with_runs(25).with_seed(0xBEEF);
    let mut accepted = 0;
    for seed in 1000..1000 + seeds(250) {
        let gp = random_program(seed, &cfg);
        let Ok(typed) = check(&gp.source, &CheckOptions::ifc()) else { continue };
        accepted += 1;
        let out = check_non_interference(&typed, &gp.control_plane, "Fuzz", &ni_cfg);
        assert!(out.holds(), "seed {seed}: {out:?}\n{}", gp.source);
    }
    assert!(accepted >= scaled(25, 250), "only {accepted}/{} deep programs accepted", seeds(250));
}

#[test]
fn rejected_programs_frequently_leak_for_real() {
    // Not a soundness property but a sanity check on the whole tool chain:
    // a decent fraction of rejections corresponds to observable leaks, so
    // the checker is not rejecting for spurious reasons.
    let cfg = GenConfig::default().with_safe_bias(0.0);
    let ni_cfg = NiConfig::default().with_runs(40).with_seed(0xCAFE);
    let mut rejected = 0;
    let mut leaky = 0;
    for seed in 0..seeds(150) {
        let gp = random_program(seed, &cfg);
        if check(&gp.source, &CheckOptions::ifc()).is_ok() {
            continue;
        }
        rejected += 1;
        let typed = check(&gp.source, &CheckOptions::permissive())
            .expect("generated programs are well-formed modulo labels");
        if let NiOutcome::Leak(_) =
            check_non_interference(&typed, &gp.control_plane, "Fuzz", &ni_cfg)
        {
            leaky += 1;
        }
    }
    assert!(rejected >= scaled(50, 150), "generator should produce many leaky programs");
    // The ratio is statistical; only assert it on samples large enough
    // that one unlucky prefix cannot fail it spuriously.
    if rejected >= 30 {
        assert!(
            leaky * 3 >= rejected,
            "at least a third of rejections should be observably leaky; got {leaky}/{rejected}"
        );
    }
}
