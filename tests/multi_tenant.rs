//! The §5.4 generalization: "the same idea can be directly generalized to
//! more parties by adding additional labels at the level of A and B."
//!
//! Three tenants share a switch fabric under the lattice
//! `bot ⊑ {A, B, C} ⊑ top`; each tenant's control is checked at its own
//! `pc` and may only touch its own fields and the shared telemetry.

use p4bid::lattice::{laws, Lattice};
use p4bid::ni::{check_non_interference, NiConfig};
use p4bid::{check, CheckOptions, DiagCode};

const THREE_TENANTS: &str = r#"
lattice {
    bot < A; bot < B; bot < C;
    A < top; B < top; C < top;
}

header tenant_t {
    <bit<32>, A> a_data;
    <bit<32>, B> b_data;
    <bit<32>, C> c_data;
    <bit<32>, top> telem;
    <bit<32>, bot> route;
}

@pc(A) control TenantA(inout tenant_t hdr) {
    action work(<bit<32>, A> v) {
        hdr.a_data = hdr.a_data + v;
        hdr.telem = hdr.telem + 32w1;
    }
    table t {
        key = { hdr.route: exact; }
        actions = { work; NoAction; }
        default_action = NoAction;
    }
    apply { t.apply(); }
}

@pc(B) control TenantB(inout tenant_t hdr) {
    action work(<bit<32>, B> v) {
        hdr.b_data = hdr.b_data ^ v;
    }
    table t {
        key = { hdr.b_data: exact; }
        actions = { work; NoAction; }
        default_action = NoAction;
    }
    apply { t.apply(); }
}

@pc(C) control TenantC(inout tenant_t hdr) {
    apply {
        hdr.c_data = hdr.c_data + hdr.route;
        hdr.telem = hdr.telem + 32w1;
    }
}
"#;

#[test]
fn three_tenant_lattice_is_well_formed() {
    let lat = Lattice::from_order(
        &["bot", "A", "B", "C", "top"],
        &[("bot", "A"), ("bot", "B"), ("bot", "C"), ("A", "top"), ("B", "top"), ("C", "top")],
    )
    .unwrap();
    laws::assert_laws(&lat);
    let a = lat.label("A").unwrap();
    let b = lat.label("B").unwrap();
    let c = lat.label("C").unwrap();
    for (x, y) in [(a, b), (b, c), (a, c)] {
        assert!(!lat.leq(x, y) && !lat.leq(y, x), "tenants are incomparable");
        assert_eq!(lat.join(x, y), lat.top());
        assert_eq!(lat.meet(x, y), lat.bottom());
    }
}

#[test]
fn well_behaved_tenants_typecheck() {
    let typed = check(THREE_TENANTS, &CheckOptions::ifc()).expect("all tenants accepted");
    assert_eq!(typed.controls.len(), 3);
    assert_eq!(typed.lattice.len(), 5);
}

#[test]
fn cross_tenant_writes_rejected() {
    // Tenant A touching C's data.
    let bad = THREE_TENANTS.replace("hdr.a_data = hdr.a_data + v;", "hdr.c_data = hdr.a_data + v;");
    let errs = check(&bad, &CheckOptions::ifc()).unwrap_err();
    assert!(errs.iter().any(|d| d.code == DiagCode::ExplicitFlow), "{errs:?}");
}

#[test]
fn tenant_reading_telemetry_rejected() {
    let bad = THREE_TENANTS
        .replace("hdr.c_data = hdr.c_data + hdr.route;", "hdr.c_data = hdr.c_data + hdr.telem;");
    let errs = check(&bad, &CheckOptions::ifc()).unwrap_err();
    assert!(errs.iter().any(|d| d.code == DiagCode::ExplicitFlow), "{errs:?}");
}

#[test]
fn tenant_writing_routing_data_rejected() {
    let bad = THREE_TENANTS.replace("hdr.c_data = hdr.c_data + hdr.route;", "hdr.route = 32w99;");
    let errs = check(&bad, &CheckOptions::ifc()).unwrap_err();
    assert!(errs.iter().any(|d| d.code == DiagCode::ImplicitFlow), "{errs:?}");
}

#[test]
fn tenants_cannot_observe_each_other() {
    // Run every tenant's (secure) control and verify that each *other*
    // tenant's view is unaffected: B observing A's switch, C observing B's
    // switch, and so on.
    let typed = check(THREE_TENANTS, &CheckOptions::ifc()).expect("accepted");
    let cp = p4bid::interp::ControlPlane::new();
    for (control, observers) in
        [("TenantA", ["B", "C"]), ("TenantB", ["A", "C"]), ("TenantC", ["A", "B"])]
    {
        for observer in observers {
            let out = check_non_interference(
                &typed,
                &cp,
                control,
                &NiConfig::default().with_runs(80).observing(observer),
            );
            assert!(out.holds(), "{control} leaked to observer {observer}: {out:?}");
        }
    }
}

#[test]
fn powerset_policies_also_work() {
    // Richer dataflow policies via a powerset lattice (the paper's "more
    // complex lattices" direction): a field readable by A∪B sits above
    // both tenants' private levels.
    let src = r#"
lattice {
    none < a; none < b;
    a < ab; b < ab;
}

header h_t {
    <bit<8>, a>    only_a;
    <bit<8>, b>    only_b;
    <bit<8>, ab>   shared_ab;
    <bit<8>, none> public;
}

control C(inout h_t hdr) {
    apply {
        hdr.shared_ab = hdr.only_a + hdr.only_b; // join(a, b) = ab
        hdr.only_a = hdr.only_a + hdr.public;    // public flows anywhere
    }
}
"#;
    check(src, &CheckOptions::ifc()).expect("joins land in the shared level");

    // But the shared level must not flow back down to a single tenant.
    let bad = src.replace("hdr.only_a = hdr.only_a + hdr.public;", "hdr.only_a = hdr.shared_ab;");
    let errs = check(&bad, &CheckOptions::ifc()).unwrap_err();
    assert!(errs.iter().any(|d| d.code == DiagCode::ExplicitFlow), "{errs:?}");
}
