//! Smoke test: every example in `examples/` must build and run to
//! completion. Examples are discovered from the directory listing, so a
//! newly added example is covered automatically and cannot silently rot.

use std::path::Path;
use std::process::Command;

#[test]
fn every_example_builds_and_runs() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let examples_dir = manifest_dir.join("examples");
    let mut names: Vec<String> = std::fs::read_dir(&examples_dir)
        .expect("examples/ directory exists")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .map(|p| p.file_stem().expect("file stem").to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert!(!names.is_empty(), "no examples found in {}", examples_dir.display());
    assert!(names.iter().any(|n| n == "quickstart"), "quickstart example present: {names:?}");

    // Sequential on purpose: parallel `cargo run` invocations would just
    // contend on the build lock.
    for name in &names {
        let out = Command::new(env!("CARGO"))
            .args(["run", "--quiet", "--example", name])
            .current_dir(manifest_dir)
            .output()
            .unwrap_or_else(|e| panic!("spawning cargo for example `{name}`: {e}"));
        assert!(
            out.status.success(),
            "example `{name}` failed with {:?}:\n--- stdout\n{}\n--- stderr\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
    }
}
