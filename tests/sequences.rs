//! Sequence (recirculation) non-interference on the corpus — the §7
//! future-work setting exercised on the paper's own case studies.

use p4bid::corpus::demo_control_plane;
use p4bid::ni::{check_sequence_non_interference, SequenceConfig};
use p4bid::{check, CheckOptions};

#[test]
fn secure_case_studies_hold_over_packet_sequences() {
    for cs in p4bid::corpus::case_studies() {
        let typed = check(cs.secure, &CheckOptions::ifc()).expect("typechecks");
        let cp = demo_control_plane(cs.name);
        let cfg = SequenceConfig::default().with_rounds(3).with_trials(40);
        let out = check_sequence_non_interference(&typed, &cp, cs.control, &cfg);
        assert!(out.holds(), "{}: {out:?}", cs.name);
    }
}

#[test]
fn secure_case_studies_hold_with_persistent_secrets() {
    for cs in p4bid::corpus::case_studies() {
        let typed = check(cs.secure, &CheckOptions::ifc()).expect("typechecks");
        let cp = demo_control_plane(cs.name);
        let cfg =
            SequenceConfig::default().with_rounds(4).with_trials(25).with_refresh_secrets(false);
        let out = check_sequence_non_interference(&typed, &cp, cs.control, &cfg);
        assert!(out.holds(), "{}: {out:?}", cs.name);
    }
}

#[test]
fn leaky_cache_also_leaks_over_sequences() {
    let cs = p4bid::corpus::CACHE;
    let typed = check(cs.insecure, &CheckOptions::permissive()).expect("permissive");
    let cp = demo_control_plane("Cache");
    let out = check_sequence_non_interference(
        &typed,
        &cp,
        cs.control,
        &SequenceConfig::default().with_trials(100),
    );
    assert!(out.witness().is_some(), "{out:?}");
}

#[test]
fn isolation_holds_per_tenant_over_sequences() {
    let cs = p4bid::corpus::LATTICE;
    let typed = check(cs.secure, &CheckOptions::ifc()).expect("typechecks");
    let cp = demo_control_plane("Lattice");
    for (control, observer) in [("Alice_Ingress", "B"), ("Bob_Ingress", "A")] {
        let out = check_sequence_non_interference(
            &typed,
            &cp,
            control,
            &SequenceConfig::default().with_trials(30).with_rounds(3).observing(observer),
        );
        assert!(out.holds(), "{control} leaked to {observer} over a sequence: {out:?}");
    }
}
