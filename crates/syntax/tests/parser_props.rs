//! Property-based tests for the lexer and parser: totality (no panics on
//! arbitrary input), span sanity, and number-literal round trips.

use p4bid_ast::span::Span;
use p4bid_syntax::lexer::{lex, TokenKind};
use p4bid_syntax::parse;
use proptest::prelude::*;

proptest! {
    /// The lexer never panics and either errors cleanly or terminates
    /// with EOF; token spans are in-bounds and non-decreasing.
    #[test]
    fn lexer_is_total(input in ".{0,200}") {
        if let Ok(tokens) = lex(&input) {
            prop_assert!(matches!(tokens.last().map(|t| &t.kind), Some(TokenKind::Eof)));
            let mut prev = 0u32;
            for t in &tokens {
                prop_assert!(t.span.start <= t.span.end);
                prop_assert!((t.span.end as usize) <= input.len());
                prop_assert!(t.span.start >= prev, "tokens in order");
                prev = t.span.start;
            }
        }
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_is_total(input in ".{0,200}") {
        let _ = parse(&input);
    }

    /// The parser never panics on token-soup built from valid fragments —
    /// more likely to get deep into the grammar than raw bytes.
    #[test]
    fn parser_is_total_on_fragment_soup(
        pieces in proptest::collection::vec(0usize..20, 0..40)
    ) {
        const FRAGMENTS: [&str; 20] = [
            "control", "C", "(", ")", "{", "}", "inout", "bit<8>", "x", ";",
            "apply", "=", "if", "else", "8w3", "table", "key", "actions",
            "<bit<8>, high>", "exit",
        ];
        let soup: String = pieces
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(" ");
        let _ = parse(&soup);
    }

    /// Decimal literals round-trip through the lexer.
    #[test]
    fn decimal_literals_roundtrip(v in any::<u128>()) {
        let tokens = lex(&v.to_string()).unwrap();
        prop_assert_eq!(&tokens[0].kind, &TokenKind::Int { value: v, width: None });
    }

    /// Width-annotated literals are masked to the width.
    #[test]
    fn width_literals_masked(w in 1u16..=128, v in any::<u128>()) {
        let text = format!("{w}w{v}");
        let tokens = lex(&text).unwrap();
        let expected = if w == 128 { v } else { v & ((1u128 << w) - 1) };
        prop_assert_eq!(&tokens[0].kind, &TokenKind::Int { value: expected, width: Some(w) });
    }

    /// Hex and decimal agree.
    #[test]
    fn hex_equals_decimal(v in any::<u64>()) {
        let dec = lex(&format!("{v}")).unwrap();
        let hex = lex(&format!("{v:#x}")).unwrap();
        prop_assert_eq!(&dec[0].kind, &hex[0].kind);
    }

    /// Error spans point inside the input.
    #[test]
    fn error_spans_in_bounds(input in "[ -~]{1,80}") {
        if let Err(e) = parse(&input) {
            let span: Span = e.span();
            prop_assert!((span.start as usize) <= input.len());
            prop_assert!((span.end as usize) <= input.len() + 1);
        }
    }
}
