//! Recursive-descent parser for the security-annotated Core P4 fragment.
//!
//! The accepted grammar is the paper's Figure 1 dressed in P4₁₆ concrete
//! syntax (as used in Listings 1–7), plus:
//!
//! * security annotations `<T, label>` on any type position;
//! * an optional `lattice { a < b; … }` declaration;
//! * an optional `@pc(label)` attribute on `control` declarations (§5.4);
//! * `t.apply()` sugar for table application (desugared to a call of the
//!   table value, as in Core P4).

use crate::lexer::{lex, Token, TokenKind};
use crate::ParseError;
use p4bid_ast::span::{Span, Spanned};
use p4bid_ast::surface::*;

/// Parses a whole program.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered, with a source
/// span.
///
/// # Examples
///
/// ```
/// let src = r#"
///     header h_t { <bit<8>, high> secret; bit<8> public; }
///     control C(inout h_t h) {
///         action a() { h.public = 8w1; }
///         apply { a(); }
///     }
/// "#;
/// let prog = p4bid_syntax::parse(src).unwrap();
/// assert_eq!(prog.controls().count(), 1);
/// ```
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source)?;
    parse_tokens(source, &tokens)
}

/// Parses an already-lexed token stream against its source text (the
/// tokens must have been produced by [`lex`] on exactly `source`, which
/// identifier tokens slice their names out of by span).
///
/// This is the reuse entry point for callers that check the same text many
/// times — e.g. the standard prelude, whose `Copy` token slice is lexed
/// once per process and shared across every checker session and worker.
///
/// # Errors
///
/// Returns a [`ParseError`] on syntax errors.
pub fn parse_tokens(source: &str, tokens: &[Token]) -> Result<Program, ParseError> {
    let mut p = Parser { tokens, pos: 0, source, depth: 0 };
    p.program()
}

/// Parses exactly one leading `lattice { … }` declaration from the front
/// of an already-lexed token stream, without parsing the rest of the
/// program. The incremental checker uses this to resolve the active
/// lattice before deciding how much of the program it must re-parse; the
/// tokens must have been produced by [`lex`] on exactly `source`.
///
/// # Errors
///
/// Returns a [`ParseError`] when the stream does not begin with a
/// well-formed lattice declaration — the same error a full parse of the
/// program would report, since the declaration is the first item.
pub fn parse_lattice_decl(source: &str, tokens: &[Token]) -> Result<LatticeDecl, ParseError> {
    let mut p = Parser { tokens, pos: 0, source, depth: 0 };
    p.lattice_decl()
}

/// Maximum nesting depth of statements and expressions. The parser is
/// recursive-descent, so without a cap a pathological input like ten
/// thousand `(`s or `if(c)`s overflows the thread stack — an abort no
/// `catch_unwind` isolation can contain. Real P4 programs nest a handful
/// of levels; 200 is far above anything legitimate and far below what
/// would threaten the default 8 MiB stack.
const MAX_DEPTH: u32 = 200;

struct Parser<'s> {
    /// The (possibly borrowed, pre-lexed) token stream.
    tokens: &'s [Token],
    pos: usize,
    /// The source text; identifier tokens carry no payload, their names
    /// are sliced out of here by span.
    source: &'s str,
    /// Current statement/expression nesting depth, guarded against
    /// [`MAX_DEPTH`] in [`Parser::stmt`] and [`Parser::unary`] (every
    /// recursion path passes through one of the two).
    depth: u32,
}

impl Parser<'_> {
    // ------------------------------------------------------------------
    // Token plumbing
    // ------------------------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, ahead: usize) -> &TokenKind {
        let ix = (self.pos + ahead).min(self.tokens.len() - 1);
        &self.tokens[ix].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos];
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    /// The source text under the current token (meaningful for `Ident`).
    fn cur_text(&self) -> &str {
        let sp = self.span();
        &self.source[sp.start as usize..sp.end as usize]
    }

    /// Renders the current token for an error message, quoting identifier
    /// text from the source.
    fn describe_current(&self) -> String {
        match self.peek() {
            TokenKind::Ident => format!("`{}`", self.cur_text()),
            other => other.describe(),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident) && self.cur_text() == kw
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Span, ParseError> {
        if self.at(kind) {
            Ok(self.bump().span)
        } else {
            Err(self.unexpected(&kind.describe()))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<Span, ParseError> {
        if self.at_kw(kw) {
            Ok(self.bump().span)
        } else {
            Err(self.unexpected(&format!("`{kw}`")))
        }
    }

    fn ident(&mut self) -> Result<Spanned<String>, ParseError> {
        match self.peek() {
            TokenKind::Ident => {
                let text = self.cur_text().to_string();
                let span = self.bump().span;
                Ok(Spanned::new(text, span))
            }
            _ => Err(self.unexpected("an identifier")),
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        ParseError::new(
            format!("expected {expected}, found {}", self.describe_current()),
            self.span(),
        )
    }

    /// Enters one nesting level; the matching `self.depth -= 1` lives in
    /// the two wrapper methods ([`Parser::stmt`], [`Parser::unary`]). On
    /// an `Err` the whole parse is abandoned, so the counter need not
    /// unwind precisely there.
    fn enter(&mut self) -> Result<(), ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(ParseError::new(
                format!("nesting too deep (more than {MAX_DEPTH} levels)"),
                self.span(),
            ));
        }
        self.depth += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Items
    // ------------------------------------------------------------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut items = Vec::new();
        while !self.at(&TokenKind::Eof) {
            items.push(self.item()?);
        }
        Ok(Program { items })
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        if self.at_kw("lattice") {
            return Ok(Item::Lattice(self.lattice_decl()?));
        }
        if self.at_kw("typedef") {
            return Ok(Item::Type(self.typedef_decl()?));
        }
        if self.at_kw("header") {
            return Ok(Item::Type(self.header_or_struct(true)?));
        }
        if self.at_kw("struct") {
            return Ok(Item::Type(self.header_or_struct(false)?));
        }
        if self.at_kw("match_kind") {
            return Ok(Item::Type(self.match_kind_decl()?));
        }
        if self.at_kw("function") {
            return Ok(Item::Function(self.function_decl()?));
        }
        if self.at_kw("action") {
            return Ok(Item::Action(self.action_decl()?));
        }
        if self.at_kw("control") || self.at(&TokenKind::At) {
            return Ok(Item::Control(self.control_decl()?));
        }
        Err(self.unexpected(
            "a declaration (`lattice`, `typedef`, `header`, `struct`, `match_kind`, \
             `function`, `action`, or `control`)",
        ))
    }

    fn lattice_decl(&mut self) -> Result<LatticeDecl, ParseError> {
        let start = self.expect_kw("lattice")?;
        self.expect(&TokenKind::LBrace)?;
        let mut order = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            let lo = self.ident()?;
            self.expect(&TokenKind::Lt)?;
            let hi = self.ident()?;
            self.expect(&TokenKind::Semi)?;
            order.push((lo, hi));
        }
        let end = self.expect(&TokenKind::RBrace)?;
        Ok(LatticeDecl { order, span: start.to(end) })
    }

    fn typedef_decl(&mut self) -> Result<TypeDecl, ParseError> {
        self.expect_kw("typedef")?;
        let ty = self.ann_type()?;
        let name = self.ident()?;
        self.expect(&TokenKind::Semi)?;
        Ok(TypeDecl::Typedef { ty, name })
    }

    fn header_or_struct(&mut self, is_header: bool) -> Result<TypeDecl, ParseError> {
        self.bump(); // `header` / `struct`
        let name = self.ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            let ty = self.ann_type()?;
            let fname = self.ident()?;
            self.expect(&TokenKind::Semi)?;
            fields.push((fname, ty));
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(if is_header {
            TypeDecl::Header { name, fields }
        } else {
            TypeDecl::Struct { name, fields }
        })
    }

    fn match_kind_decl(&mut self) -> Result<TypeDecl, ParseError> {
        self.expect_kw("match_kind")?;
        self.expect(&TokenKind::LBrace)?;
        let mut kinds = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            kinds.push(self.ident()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RBrace)?;
        self.eat(&TokenKind::Semi);
        Ok(TypeDecl::MatchKind { kinds })
    }

    fn control_decl(&mut self) -> Result<ControlDecl, ParseError> {
        let mut pc = None;
        let start = self.span();
        if self.eat(&TokenKind::At) {
            self.expect_kw("pc")?;
            self.expect(&TokenKind::LParen)?;
            pc = Some(self.ident()?);
            self.expect(&TokenKind::RParen)?;
        }
        self.expect_kw("control")?;
        let name = self.ident()?;
        let params = self.params()?;
        self.expect(&TokenKind::LBrace)?;
        let mut decls = Vec::new();
        while !self.at_kw("apply") {
            if self.at(&TokenKind::RBrace) || self.at(&TokenKind::Eof) {
                return Err(self.unexpected("`apply { … }` before the end of the control"));
            }
            decls.push(self.ctrl_decl()?);
        }
        self.expect_kw("apply")?;
        let apply = self.block_stmts()?;
        let end = self.expect(&TokenKind::RBrace)?;
        Ok(ControlDecl { name, params, decls, apply, pc, span: start.to(end) })
    }

    fn ctrl_decl(&mut self) -> Result<CtrlDecl, ParseError> {
        if self.at_kw("action") {
            return Ok(CtrlDecl::Action(self.action_decl()?));
        }
        if self.at_kw("function") {
            return Ok(CtrlDecl::Function(self.function_decl()?));
        }
        if self.at_kw("table") {
            return Ok(CtrlDecl::Table(self.table_decl()?));
        }
        Ok(CtrlDecl::Var(self.var_decl()?))
    }

    fn action_decl(&mut self) -> Result<ActionDecl, ParseError> {
        let start = self.expect_kw("action")?;
        let name = self.ident()?;
        let params = self.params()?;
        let body = self.braced_stmts()?;
        Ok(ActionDecl { name, params, body, span: start.to(self.prev_span()) })
    }

    fn function_decl(&mut self) -> Result<FunctionDecl, ParseError> {
        let start = self.expect_kw("function")?;
        let ret = self.ann_type()?;
        let name = self.ident()?;
        let params = self.params()?;
        let body = self.braced_stmts()?;
        Ok(FunctionDecl { name, ret, params, body, span: start.to(self.prev_span()) })
    }

    fn table_decl(&mut self) -> Result<TableDecl, ParseError> {
        let start = self.expect_kw("table")?;
        let name = self.ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut keys = Vec::new();
        let mut actions = Vec::new();
        let mut default_action = None;
        while !self.at(&TokenKind::RBrace) {
            if self.eat_kw("key") {
                self.expect(&TokenKind::Assign)?;
                self.expect(&TokenKind::LBrace)?;
                while !self.at(&TokenKind::RBrace) {
                    let expr = self.expr()?;
                    self.expect(&TokenKind::Colon)?;
                    let match_kind = self.ident()?;
                    self.expect(&TokenKind::Semi)?;
                    keys.push(KeyEntry { expr, match_kind });
                }
                self.expect(&TokenKind::RBrace)?;
            } else if self.eat_kw("actions") {
                self.expect(&TokenKind::Assign)?;
                self.expect(&TokenKind::LBrace)?;
                while !self.at(&TokenKind::RBrace) {
                    let aname = self.ident()?;
                    let mut args = Vec::new();
                    let astart = aname.span;
                    if self.eat(&TokenKind::LParen) {
                        while !self.at(&TokenKind::RParen) {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen)?;
                    }
                    self.expect(&TokenKind::Semi)?;
                    actions.push(ActionRef {
                        name: aname,
                        args,
                        span: astart.to(self.prev_span()),
                    });
                }
                self.expect(&TokenKind::RBrace)?;
            } else if self.eat_kw("default_action") {
                self.expect(&TokenKind::Assign)?;
                let dname = self.ident()?;
                if self.eat(&TokenKind::LParen) {
                    self.expect(&TokenKind::RParen)?;
                }
                self.expect(&TokenKind::Semi)?;
                default_action = Some(dname);
            } else {
                return Err(self.unexpected("`key`, `actions`, or `default_action`"));
            }
        }
        let end = self.expect(&TokenKind::RBrace)?;
        Ok(TableDecl { name, keys, actions, default_action, span: start.to(end) })
    }

    fn params(&mut self) -> Result<Vec<Param>, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        while !self.at(&TokenKind::RParen) {
            let direction = if self.eat_kw("in") {
                Some(Direction::In)
            } else if self.eat_kw("inout") {
                Some(Direction::InOut)
            } else {
                None
            };
            let ty = self.ann_type()?;
            let name = self.ident()?;
            params.push(Param { direction, name, ty });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(params)
    }

    // ------------------------------------------------------------------
    // Types
    // ------------------------------------------------------------------

    /// `ann_type := ('<' type ',' label '>' | type) ('[' INT ']')*`
    fn ann_type(&mut self) -> Result<AnnType, ParseError> {
        let start = self.span();
        let mut ann = if self.at(&TokenKind::Lt) {
            self.bump();
            let ty = self.type_expr()?;
            self.expect(&TokenKind::Comma)?;
            let label = self.ident()?;
            let end = self.expect(&TokenKind::Gt)?;
            AnnType { ty, label: Some(label), span: start.to(end) }
        } else {
            let ty = self.type_expr()?;
            AnnType { ty, label: None, span: start.to(self.prev_span()) }
        };
        // Stack suffixes wrap the (possibly annotated) element type.
        while self.at(&TokenKind::LBracket) {
            self.bump();
            let size = match *self.peek() {
                TokenKind::Int { value, width: None } => {
                    self.bump();
                    u32::try_from(value).ok().filter(|&n| n >= 1).ok_or_else(|| {
                        ParseError::new(
                            "stack size must be between 1 and 2^32-1".into(),
                            self.prev_span(),
                        )
                    })?
                }
                _ => return Err(self.unexpected("a stack size literal")),
            };
            let end = self.expect(&TokenKind::RBracket)?;
            let span = start.to(end);
            ann = AnnType { ty: TypeExpr::Stack(Box::new(ann), size), label: None, span };
        }
        Ok(ann)
    }

    fn type_expr(&mut self) -> Result<TypeExpr, ParseError> {
        if self.eat_kw("bool") {
            return Ok(TypeExpr::Bool);
        }
        if self.eat_kw("int") {
            return Ok(TypeExpr::Int);
        }
        if self.eat_kw("void") {
            return Ok(TypeExpr::Void);
        }
        if self.at_kw("bit") {
            self.bump();
            self.expect(&TokenKind::Lt)?;
            let width = match *self.peek() {
                TokenKind::Int { value, width: None } => {
                    self.bump();
                    u16::try_from(value).ok().filter(|&w| (1..=128).contains(&w)).ok_or_else(
                        || {
                            ParseError::new(
                                format!("bit width {value} out of range 1..=128"),
                                self.prev_span(),
                            )
                        },
                    )?
                }
                _ => return Err(self.unexpected("a bit width")),
            };
            self.expect(&TokenKind::Gt)?;
            return Ok(TypeExpr::Bit(width));
        }
        let name = self.ident()?;
        Ok(TypeExpr::Named(name.node))
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn braced_stmts(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        let stmts = self.stmts_until_rbrace()?;
        self.expect(&TokenKind::RBrace)?;
        Ok(stmts)
    }

    /// Like [`Self::braced_stmts`] but used for `apply { … }` where the
    /// closing brace of the control follows.
    fn block_stmts(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.braced_stmts()
    }

    fn stmts_until_rbrace(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                return Err(self.unexpected("`}`"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        self.enter()?;
        let r = self.stmt_inner();
        self.depth -= 1;
        r
    }

    fn stmt_inner(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span();
        if self.at(&TokenKind::LBrace) {
            let stmts = self.braced_stmts()?;
            return Ok(Stmt::new(StmtKind::Block(stmts), start.to(self.prev_span())));
        }
        if self.eat_kw("if") {
            self.expect(&TokenKind::LParen)?;
            let cond = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            let then = Box::new(self.stmt()?);
            let els = if self.eat_kw("else") { Some(Box::new(self.stmt()?)) } else { None };
            return Ok(Stmt::new(StmtKind::If(cond, then, els), start.to(self.prev_span())));
        }
        if self.eat_kw("exit") {
            let end = self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::new(StmtKind::Exit, start.to(end)));
        }
        if self.eat_kw("return") {
            let value = if self.at(&TokenKind::Semi) { None } else { Some(self.expr()?) };
            let end = self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::new(StmtKind::Return(value), start.to(end)));
        }
        if self.starts_var_decl() {
            let decl = self.var_decl()?;
            let span = decl.span;
            return Ok(Stmt::new(StmtKind::VarDecl(decl), span));
        }
        // Expression statement: call or assignment.
        let lhs = self.expr()?;
        if self.eat(&TokenKind::Assign) {
            let rhs = self.expr()?;
            let end = self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::new(StmtKind::Assign(lhs, rhs), start.to(end)));
        }
        let end = self.expect(&TokenKind::Semi)?;
        match &lhs.kind {
            ExprKind::Call(..) => Ok(Stmt::new(StmtKind::Call(lhs), start.to(end))),
            _ => Err(ParseError::new(
                "expected a call or an assignment statement".to_string(),
                lhs.span,
            )),
        }
    }

    /// A statement starts a variable declaration if it begins with a type:
    /// `<` (annotation), a builtin type keyword, or `IDENT IDENT`.
    fn starts_var_decl(&self) -> bool {
        match self.peek() {
            TokenKind::Lt => true,
            TokenKind::Ident => {
                matches!(self.cur_text(), "bool" | "int" | "bit" | "void")
                    || matches!(self.peek_at(1), TokenKind::Ident)
            }
            _ => false,
        }
    }

    fn var_decl(&mut self) -> Result<VarDecl, ParseError> {
        let start = self.span();
        let ty = self.ann_type()?;
        let name = self.ident()?;
        let init = if self.eat(&TokenKind::Assign) { Some(self.expr()?) } else { None };
        let end = self.expect(&TokenKind::Semi)?;
        Ok(VarDecl { ty, name, init, span: start.to(end) })
    }

    // ------------------------------------------------------------------
    // Expressions (Pratt)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.expr_bp(0)
    }

    fn expr_bp(&mut self, min_bp: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some((op, lbp, rbp)) = self.peek_binop() {
            if lbp < min_bp {
                break;
            }
            self.bump();
            let rhs = self.expr_bp(rbp)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    /// Binding powers; higher binds tighter. Returns `(op, left_bp, right_bp)`.
    fn peek_binop(&self) -> Option<(BinOp, u8, u8)> {
        let (op, bp) = match self.peek() {
            TokenKind::OrOr => (BinOp::Or, 1),
            TokenKind::AndAnd => (BinOp::And, 2),
            TokenKind::EqEq => (BinOp::Eq, 3),
            TokenKind::NotEq => (BinOp::Ne, 3),
            TokenKind::Lt => (BinOp::Lt, 4),
            TokenKind::Le => (BinOp::Le, 4),
            TokenKind::Gt => (BinOp::Gt, 4),
            TokenKind::Ge => (BinOp::Ge, 4),
            TokenKind::Pipe => (BinOp::BitOr, 5),
            TokenKind::Caret => (BinOp::BitXor, 6),
            TokenKind::Amp => (BinOp::BitAnd, 7),
            TokenKind::Shl => (BinOp::Shl, 8),
            TokenKind::Shr => (BinOp::Shr, 8),
            TokenKind::Plus => (BinOp::Add, 9),
            TokenKind::Minus => (BinOp::Sub, 9),
            TokenKind::Star => (BinOp::Mul, 10),
            _ => return None,
        };
        Some((op, bp, bp + 1))
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let r = self.unary_inner();
        self.depth -= 1;
        r
    }

    fn unary_inner(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        let op = match self.peek() {
            TokenKind::Bang => Some(UnOp::Not),
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Tilde => Some(UnOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let inner = self.unary()?;
            let span = start.to(inner.span);
            return Ok(Expr::new(ExprKind::Unary(op, Box::new(inner)), span));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.bump();
                    let field = self.ident()?;
                    let span = e.span.to(field.span);
                    e = Expr::new(ExprKind::Field(Box::new(e), field), span);
                }
                TokenKind::LBracket => {
                    self.bump();
                    let ix = self.expr()?;
                    let end = self.expect(&TokenKind::RBracket)?;
                    let span = e.span.to(end);
                    e = Expr::new(ExprKind::Index(Box::new(e), Box::new(ix)), span);
                }
                TokenKind::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    while !self.at(&TokenKind::RParen) {
                        args.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    let end = self.expect(&TokenKind::RParen)?;
                    let span = e.span.to(end);
                    // Desugar `t.apply()` to a direct application of the
                    // table value, as in Core P4's `t()`.
                    e = match e.kind {
                        ExprKind::Field(recv, f) if f.node == "apply" && args.is_empty() => {
                            Expr::new(ExprKind::Call(recv, vec![]), span)
                        }
                        _ => Expr::new(ExprKind::Call(Box::new(e), args), span),
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        match *self.peek() {
            TokenKind::Int { value, width } => {
                self.bump();
                Ok(Expr::new(ExprKind::Int { value, width }, start))
            }
            TokenKind::Ident => {
                let e = match self.cur_text() {
                    "true" => ExprKind::Bool(true),
                    "false" => ExprKind::Bool(false),
                    name => ExprKind::Var(name.to_string()),
                };
                self.bump();
                Ok(Expr::new(e, start))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBrace => {
                // Record literal `{ f = e, … }`.
                self.bump();
                let mut fields = Vec::new();
                while !self.at(&TokenKind::RBrace) {
                    let name = self.ident()?;
                    self.expect(&TokenKind::Assign)?;
                    let value = self.expr()?;
                    fields.push((name, value));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                let end = self.expect(&TokenKind::RBrace)?;
                Ok(Expr::new(ExprKind::Record(fields), start.to(end)))
            }
            _ => Err(self.unexpected("an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4bid_ast::pretty;

    fn parse_ok(src: &str) -> Program {
        match parse(src) {
            Ok(p) => p,
            Err(e) => panic!("parse error: {e} in\n{src}"),
        }
    }

    #[test]
    fn parses_listing1_style_program() {
        let src = r#"
            header local_hdr_t {
                <bit<32>, high> phys_dstAddr;
                <bit<8>, high> phys_ttl;
                <bit<48>, high> next_hop_MAC_addr;
            }
            header ipv4_t {
                <bit<8>, low> ttl;
                bit<8> protocol;
                bit<32> srcAddr;
                bit<32> dstAddr;
            }
            struct headers {
                ipv4_t ipv4;
                local_hdr_t local_hdr;
            }
            control Obfuscate_Ingress(inout headers hdr) {
                action update_to_phys(<bit<32>, high> phys_dstAddr, <bit<8>, high> phys_ttl) {
                    hdr.local_hdr.phys_dstAddr = phys_dstAddr;
                    hdr.local_hdr.phys_ttl = phys_ttl;
                }
                table virtual2phys_topology {
                    key = { hdr.ipv4.dstAddr: exact; }
                    actions = { update_to_phys; }
                }
                apply {
                    virtual2phys_topology.apply();
                }
            }
        "#;
        let p = parse_ok(src);
        assert_eq!(p.type_decls().count(), 3);
        let c = p.controls().next().unwrap();
        assert_eq!(c.name.node, "Obfuscate_Ingress");
        assert_eq!(c.decls.len(), 2);
        assert_eq!(c.apply.len(), 1);
        // Table application desugars to a call of the table variable.
        match &c.apply[0].kind {
            StmtKind::Call(e) => match &e.kind {
                ExprKind::Call(f, args) => {
                    assert!(args.is_empty());
                    assert!(matches!(&f.kind, ExprKind::Var(n) if n == "virtual2phys_topology"));
                }
                other => panic!("expected call, got {other:?}"),
            },
            other => panic!("expected call stmt, got {other:?}"),
        }
    }

    #[test]
    fn parses_pc_annotation_and_lattice() {
        let src = r#"
            lattice { bot < A; bot < B; A < top; B < top; }
            header h_t { <bit<8>, A> alice; <bit<8>, B> bob; }
            @pc(A) control Alice(inout h_t h) {
                action set_a() { h.alice = 8w1; }
                apply { set_a(); }
            }
        "#;
        let p = parse_ok(src);
        let lat = p.lattice_decl().unwrap();
        assert_eq!(lat.element_names(), vec!["bot", "A", "B", "top"]);
        let c = p.controls().next().unwrap();
        assert_eq!(c.pc.as_ref().unwrap().node, "A");
    }

    #[test]
    fn parses_expressions_with_precedence() {
        let src = r#"
            control C(inout bool g) {
                bit<8> x = 1 + 2 * 3;
                bool b = 1 + 2 == 3 && true || false;
                bit<8> y = (1 + 2) * 3;
                bit<8> z = ~x & x << 2 | x >> 1;
                apply { }
            }
        "#;
        let p = parse_ok(src);
        let c = p.controls().next().unwrap();
        let CtrlDecl::Var(v) = &c.decls[0] else { panic!() };
        // 1 + (2 * 3)
        assert_eq!(pretty::expr_to_string(v.init.as_ref().unwrap()), "1 + (2 * 3)");
        let CtrlDecl::Var(v1) = &c.decls[1] else { panic!() };
        assert_eq!(
            pretty::expr_to_string(v1.init.as_ref().unwrap()),
            "(((1 + 2) == 3) && true) || false",
        );
        let CtrlDecl::Var(v2) = &c.decls[2] else { panic!() };
        assert_eq!(pretty::expr_to_string(v2.init.as_ref().unwrap()), "(1 + 2) * 3");
    }

    #[test]
    fn parses_stacks_and_indexing() {
        let src = r#"
            header b_t { bit<8> v; }
            struct hs { b_t[4] stack; }
            control C(inout hs h) {
                <bit<8>, high>[4] arr;
                apply {
                    h.stack[0].v = h.stack[1].v;
                    arr[2] = 8w7;
                }
            }
        "#;
        let p = parse_ok(src);
        let c = p.controls().next().unwrap();
        let CtrlDecl::Var(v) = &c.decls[0] else { panic!() };
        match &v.ty.ty {
            TypeExpr::Stack(elem, 4) => {
                assert_eq!(elem.label.as_ref().unwrap().node, "high");
            }
            other => panic!("expected stack, got {other:?}"),
        }
    }

    #[test]
    fn parses_functions_and_returns() {
        let src = r#"
            function <bit<32>, low> popcnt(in bit<32> x) {
                bit<32> v = x;
                v = (v & 0x55555555) + ((v >> 1) & 0x55555555);
                return v;
            }
            control C(inout bit<32> y) {
                apply { y = popcnt(y); }
            }
        "#;
        let p = parse_ok(src);
        assert!(matches!(p.items[0], Item::Function(_)));
    }

    #[test]
    fn parses_table_with_default_action_and_bound_args() {
        let src = r#"
            control C(inout bit<32> x) {
                <bit<32>, high> failures = x;
                action forwarding(in <bit<32>, high> f) { }
                action NoActionLocal() { }
                table forward {
                    key = { x: exact; }
                    actions = { forwarding(failures); NoActionLocal; }
                    default_action = NoActionLocal;
                }
                apply { forward.apply(); }
            }
        "#;
        let p = parse_ok(src);
        let c = p.controls().next().unwrap();
        let CtrlDecl::Table(t) = &c.decls[3] else { panic!("decls: {:?}", c.decls.len()) };
        assert_eq!(t.actions.len(), 2);
        assert_eq!(t.actions[0].args.len(), 1);
        assert_eq!(t.default_action.as_ref().unwrap().node, "NoActionLocal");
    }

    #[test]
    fn record_literals() {
        let src = r#"
            control C(inout bit<8> x) {
                apply { x = { a = 1, b = 2 }.a; }
            }
        "#;
        let p = parse_ok(src);
        let c = p.controls().next().unwrap();
        match &c.apply[0].kind {
            StmtKind::Assign(_, rhs) => {
                assert!(matches!(&rhs.kind, ExprKind::Field(inner, f)
                    if f.node == "a" && matches!(inner.kind, ExprKind::Record(_))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_on_missing_apply() {
        let err = parse("control C(inout bit<8> x) { }").unwrap_err();
        assert!(err.to_string().contains("apply"), "{err}");
    }

    #[test]
    fn error_on_bare_expression_statement() {
        let err = parse("control C(inout bit<8> x) { apply { x; } }").unwrap_err();
        assert!(err.to_string().contains("call or an assignment"), "{err}");
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // Expressions: thousands of parens would previously recurse once
        // per paren and blow the stack — an abort no worker isolation can
        // catch. Now it is an ordinary parse error.
        let deep_expr = format!(
            "control C(inout bit<8> x) {{ apply {{ x = {}x{}; }} }}",
            "(".repeat(10_000),
            ")".repeat(10_000),
        );
        let err = parse(&deep_expr).unwrap_err();
        assert!(err.to_string().contains("nesting too deep"), "{err}");

        // Statements: the same for a tower of `if`s.
        let deep_stmt = format!(
            "control C(inout bool g) {{ apply {{ {} g = true; }} }}",
            "if (g)".repeat(10_000),
        );
        let err = parse(&deep_stmt).unwrap_err();
        assert!(err.to_string().contains("nesting too deep"), "{err}");

        // Unary operator chains recurse through `unary` as well.
        let deep_unary =
            format!("control C(inout bit<8> x) {{ apply {{ x = {}x; }} }}", "~".repeat(10_000),);
        let err = parse(&deep_unary).unwrap_err();
        assert!(err.to_string().contains("nesting too deep"), "{err}");

        // Reasonable nesting stays well inside the cap.
        let fine = format!(
            "control C(inout bit<8> x) {{ apply {{ x = {}x{}; }} }}",
            "(".repeat(50),
            ")".repeat(50),
        );
        parse_ok(&fine);
    }

    #[test]
    fn error_reports_unexpected_token() {
        let err = parse("header H { bit<8> }").unwrap_err();
        assert!(err.to_string().contains("identifier"), "{err}");
    }

    #[test]
    fn if_else_chains() {
        let src = r#"
            control C(inout bit<8> x) {
                apply {
                    if (x == 0) { x = 1; }
                    else if (x == 1) { x = 2; }
                    else { exit; }
                    return;
                }
            }
        "#;
        let p = parse_ok(src);
        let c = p.controls().next().unwrap();
        assert_eq!(c.apply.len(), 2);
        let StmtKind::If(_, _, Some(els)) = &c.apply[0].kind else { panic!() };
        assert!(matches!(els.kind, StmtKind::If(..)));
    }

    #[test]
    fn pretty_parse_roundtrip() {
        let src = r#"
            header h_t { <bit<8>, high> s; bit<8> p; }
            control C(inout h_t h) {
                bit<8> tmp = 8w3;
                action a(in <bit<8>, high> v) { h.s = v; }
                table t {
                    key = { h.p: exact; }
                    actions = { a(tmp); }
                }
                apply {
                    if (h.p == 8w0) { t.apply(); } else { h.p = h.p + 8w1; }
                }
            }
        "#;
        let p1 = parse_ok(src);
        let printed = pretty::program(&p1);
        let p2 = parse_ok(&printed);
        let printed2 = pretty::program(&p2);
        assert_eq!(printed, printed2, "pretty ∘ parse should be idempotent");
    }
}
