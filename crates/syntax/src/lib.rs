//! Lexer and parser for the security-annotated Core P4 fragment of P4BID.
//!
//! P4BID programs are written in P4₁₆ concrete syntax with security
//! annotations `<T, label>` on types, exactly as in the paper's listings:
//!
//! ```text
//! header ipv4_t   { <bit<8>, low>  ttl; … }
//! header local_t  { <bit<8>, high> phys_ttl; … }
//! control Ingress(inout headers hdr) {
//!     action update(<bit<8>, high> t) { hdr.local.phys_ttl = t; }
//!     table topo { key = { hdr.ipv4.dst: exact; } actions = { update; } }
//!     apply { topo.apply(); }
//! }
//! ```
//!
//! The entry point is [`parse`]; see [`parser`] for the accepted grammar and
//! [`lexer`] for token-level details.
//!
//! # Examples
//!
//! ```
//! let prog = p4bid_syntax::parse(
//!     "control C(inout bit<8> x) { apply { x = x + 8w1; } }",
//! ).unwrap();
//! assert_eq!(prog.controls().count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use p4bid_ast::span::Span;
use std::error::Error;
use std::fmt;

pub mod lexer;
pub mod parser;
pub mod slice;

pub use lexer::{lex, Token, TokenKind};
pub use parser::{parse, parse_lattice_decl, parse_tokens};
pub use slice::{first_changed_item, item_chains, item_segments, ItemSeg};

/// A lexical or syntactic error with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    span: Span,
}

impl ParseError {
    /// Builds a parse error.
    #[must_use]
    pub fn new(message: String, span: Span) -> Self {
        ParseError { message, span }
    }

    /// The error message, without location information.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The source span the error points at.
    #[must_use]
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_accessors() {
        let e = ParseError::new("boom".into(), Span::new(3, 5));
        assert_eq!(e.message(), "boom");
        assert_eq!(e.span(), Span::new(3, 5));
        assert_eq!(e.to_string(), "boom");
    }
}
