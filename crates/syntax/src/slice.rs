//! Token-level slicing of a program into top-level item segments, and the
//! content chain-hash the incremental checker keys prefix snapshots by.
//!
//! A P4BID program is a sequence of top-level items. At the token level an
//! item ends at the first `;` at bracket depth 0 (`typedef`) or at the `}`
//! that closes the outermost brace group (`lattice`, `header`, `struct`,
//! `match_kind`, `function`, `action`, `control` — including a preceding
//! `@pc(…)` attribute, which opens no group of its own). This boundary rule
//! is exactly the grammar's: whenever a token stream parses as a
//! [`Program`](p4bid_ast::surface::Program), the segments produced here
//! coincide one-for-one with the parsed items (the conformance tests pin
//! this down). On input that does *not* parse, segmentation still
//! terminates and is deterministic — trailing tokens that never reach a
//! boundary are simply not emitted as a segment.
//!
//! Each segment carries a *chain hash*: the FNV-1a hash of every source
//! byte from the start of the program through the segment's last token —
//! gaps (whitespace, comments) included. Chain equality therefore implies
//! (modulo a 64-bit collision, which callers close by re-verifying the
//! prefix bytes) that two programs are *byte-identical* up to and including
//! that item, so token spans, parse results, and checker state for the
//! shared prefix are interchangeable between them.

use crate::lexer::{Token, TokenKind};
use p4bid_ast::fnv;

/// One top-level item segment of a token stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItemSeg {
    /// Index one past the item's last token in the lexed token slice
    /// (i.e. the index of the next item's first token, or of `Eof`).
    pub token_end: u32,
    /// Byte offset one past the item's last token in the source text.
    pub byte_end: u32,
    /// FNV-1a hash of `source[..byte_end]` — the whole program prefix
    /// through this item, gaps included.
    pub chain: u64,
}

/// Splits a lexed token stream into top-level item segments with
/// cumulative prefix chain-hashes. `tokens` must have been produced by
/// [`lex`](crate::lex) on exactly `source`.
#[must_use]
pub fn item_segments(source: &str, tokens: &[Token]) -> Vec<ItemSeg> {
    let bytes = source.as_bytes();
    let mut segs = Vec::new();
    let mut depth: u32 = 0;
    let mut chain = fnv::OFFSET;
    let mut prev_end: usize = 0;
    for (ix, tok) in tokens.iter().enumerate() {
        let boundary = match tok.kind {
            TokenKind::Eof => break,
            TokenKind::LBrace | TokenKind::LParen | TokenKind::LBracket => {
                depth += 1;
                false
            }
            TokenKind::RBrace => {
                let closes = depth <= 1;
                depth = depth.saturating_sub(1);
                closes
            }
            TokenKind::RParen | TokenKind::RBracket => {
                depth = depth.saturating_sub(1);
                false
            }
            TokenKind::Semi => depth == 0,
            _ => false,
        };
        if boundary {
            let byte_end = tok.span.end as usize;
            chain = fnv::bytes(chain, &bytes[prev_end..byte_end]);
            prev_end = byte_end;
            segs.push(ItemSeg { token_end: (ix + 1) as u32, byte_end: byte_end as u32, chain });
        }
    }
    segs
}

/// The per-item chain hashes of a source text, or an empty vector when the
/// text does not lex. This is the fingerprint watch mode keeps per file to
/// attribute a change to the first item it touches.
#[must_use]
pub fn item_chains(source: &str) -> Vec<u64> {
    match crate::lex(source) {
        Ok(tokens) => item_segments(source, &tokens).iter().map(|s| s.chain).collect(),
        Err(_) => Vec::new(),
    }
}

/// The index of the first item whose chain hash differs between two chain
/// vectors (an appended or removed tail counts as a change at the first
/// index past the shorter vector). `None` when the vectors are identical
/// or either side has no item-level fingerprint (empty).
#[must_use]
pub fn first_changed_item(old: &[u64], new: &[u64]) -> Option<usize> {
    if old.is_empty() || new.is_empty() {
        return None;
    }
    if let Some(ix) = old.iter().zip(new.iter()).position(|(a, b)| a != b) {
        return Some(ix);
    }
    (old.len() != new.len()).then(|| old.len().min(new.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;
    use p4bid_ast::surface::Item;

    fn segs(src: &str) -> Vec<ItemSeg> {
        item_segments(src, &lex(src).unwrap())
    }

    /// Segment boundaries must coincide with parsed item boundaries on any
    /// program that parses.
    fn assert_aligned(src: &str) {
        let program = crate::parse(src).expect("test program parses");
        let segs = segs(src);
        assert_eq!(segs.len(), program.items.len(), "segment/item count on {src:?}");
        // Where the AST records an item-level span, its end must be the
        // segment's byte end.
        for (seg, item) in segs.iter().zip(program.items.iter()) {
            let end = match item {
                Item::Lattice(l) => Some(l.span.end),
                Item::Function(f) => Some(f.span.end),
                Item::Action(a) => Some(a.span.end),
                Item::Control(c) => Some(c.span.end),
                Item::Type(_) => None,
            };
            if let Some(end) = end {
                assert_eq!(seg.byte_end, end, "span alignment on {src:?}");
            }
        }
    }

    #[test]
    fn segments_align_with_parsed_items() {
        assert_aligned("control C(inout bit<8> x) { apply { x = x + 8w1; } }");
        assert_aligned(
            "lattice { bot < A; bot < B; A < top; B < top; }\n\
             typedef <bit<8>, A> key_t;\n\
             header h_t { key_t f; bit<8> g; }\n\
             struct s_t { h_t h; }\n\
             match_kind { range }\n\
             function bit<8> id(in bit<8> x) { return x; }\n\
             action set(inout bit<8> y) { y = 8w3; }\n\
             @pc(A) control C(inout s_t s) {\n\
                 table t { key = { s.h.f: exact; } actions = { set; } }\n\
                 apply { if (s.h.g == 8w0) { t.apply(); } }\n\
             }",
        );
    }

    #[test]
    fn chains_are_prefix_sensitive() {
        let a = segs("typedef bit<8> a_t;\ncontrol C(inout a_t x) { apply { } }");
        let b = segs("typedef bit<8> a_t;\ncontrol D(inout a_t x) { apply { } }");
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(a[0].chain, b[0].chain, "shared prefix, same chain");
        assert_ne!(a[1].chain, b[1].chain, "divergent suffix, different chain");
    }

    #[test]
    fn chains_include_gaps() {
        // Same token content, different trivia between items: the second
        // chain must differ, because spans downstream of the gap shift.
        let a = segs("typedef bit<8> a_t;\ncontrol C(inout a_t x) { apply { } }");
        let b = segs("typedef bit<8> a_t;\n\ncontrol C(inout a_t x) { apply { } }");
        assert_eq!(a[0].chain, b[0].chain);
        assert_ne!(a[1].chain, b[1].chain);
    }

    #[test]
    fn trailing_garbage_is_not_a_segment() {
        let src = "typedef bit<8> a_t;\ncontrol C(inout";
        let s = segs(src);
        assert_eq!(s.len(), 1, "only the complete typedef is a segment");
        assert_eq!(s[0].byte_end, 19);
    }

    #[test]
    fn stray_closers_terminate() {
        // Unbalanced input must not loop or underflow.
        assert_eq!(segs("} } ;").len(), 3);
    }

    #[test]
    fn first_changed_item_attribution() {
        let base = item_chains("typedef bit<8> a_t;\ncontrol C(inout a_t x) { apply { } }");
        assert_eq!(base.len(), 2);
        let edited =
            item_chains("typedef bit<8> a_t;\ncontrol C(inout a_t x) { apply { x = 8w1; } }");
        assert_eq!(first_changed_item(&base, &edited), Some(1));
        let retyped = item_chains("typedef bit<4> a_t;\ncontrol C(inout a_t x) { apply { } }");
        assert_eq!(first_changed_item(&base, &retyped), Some(0));
        assert_eq!(first_changed_item(&base, &base), None);
        let grown = item_chains(
            "typedef bit<8> a_t;\ncontrol C(inout a_t x) { apply { } }\naction a() { }",
        );
        assert_eq!(first_changed_item(&base, &grown), Some(2));
        assert_eq!(first_changed_item(&[], &base), None);
    }
}
