//! Lexer for the security-annotated Core P4 surface syntax.
//!
//! Tokenizes the concrete syntax of the paper's listings: P4-style
//! declarations, `<T, label>` security annotations, width-annotated integer
//! literals (`8w255`, `32w0xFF`), hexadecimal literals, and both `//` and
//! `/* */` comments.
//!
//! Tokens are `Copy`: identifier tokens carry no text of their own — the
//! parser slices the name out of the source via the token's span — so
//! lexing a program performs no per-token heap allocation.

use crate::ParseError;
use p4bid_ast::span::Span;
use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are resolved by the parser so that
    /// context-sensitive words like `key` stay usable as identifiers; the
    /// text is the source slice under the token's span).
    Ident,
    /// Integer literal with optional width (`8w255` ⇒ width 8).
    Int {
        /// Literal value, masked to the width if one is given.
        value: u128,
        /// Optional `bit<w>` width prefix.
        width: Option<u16>,
    },
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `~`
    Tilde,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `@`
    At,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short printable name used in "expected X, found Y" errors.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident => "an identifier".into(),
            TokenKind::Int { value, width: None } => format!("`{value}`"),
            TokenKind::Int { value, width: Some(w) } => format!("`{w}w{value}`"),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::NotEq => "`!=`".into(),
            TokenKind::Assign => "`=`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Amp => "`&`".into(),
            TokenKind::Pipe => "`|`".into(),
            TokenKind::Caret => "`^`".into(),
            TokenKind::Shl => "`<<`".into(),
            TokenKind::Shr => "`>>`".into(),
            TokenKind::AndAnd => "`&&`".into(),
            TokenKind::OrOr => "`||`".into(),
            TokenKind::Bang => "`!`".into(),
            TokenKind::Tilde => "`~`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::At => "`@`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// A token with its source span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed.
    pub span: Span,
}

/// Tokenizes `source`, appending an [`TokenKind::Eof`] sentinel.
///
/// # Errors
///
/// Returns a [`ParseError`] on unterminated block comments, malformed
/// numeric literals, or unexpected characters.
pub fn lex(source: &str) -> Result<Vec<Token>, ParseError> {
    Lexer { src: source.as_bytes(), pos: 0 }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Lexer<'_> {
    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        // P4 source averages well above three bytes per token; one
        // pre-sized allocation covers the whole stream.
        let mut tokens = Vec::with_capacity(self.src.len() / 3 + 8);
        loop {
            self.skip_trivia()?;
            let start = self.pos as u32;
            let Some(&c) = self.src.get(self.pos) else {
                tokens.push(Token { kind: TokenKind::Eof, span: Span::new(start, start) });
                return Ok(tokens);
            };
            let kind = match c {
                b'(' => self.one(TokenKind::LParen),
                b')' => self.one(TokenKind::RParen),
                b'{' => self.one(TokenKind::LBrace),
                b'}' => self.one(TokenKind::RBrace),
                b'[' => self.one(TokenKind::LBracket),
                b']' => self.one(TokenKind::RBracket),
                b',' => self.one(TokenKind::Comma),
                b';' => self.one(TokenKind::Semi),
                b':' => self.one(TokenKind::Colon),
                b'.' => self.one(TokenKind::Dot),
                b'@' => self.one(TokenKind::At),
                b'+' => self.one(TokenKind::Plus),
                b'-' => self.one(TokenKind::Minus),
                b'*' => self.one(TokenKind::Star),
                b'^' => self.one(TokenKind::Caret),
                b'~' => self.one(TokenKind::Tilde),
                b'&' => self.one_or_two(b'&', TokenKind::Amp, TokenKind::AndAnd),
                b'|' => self.one_or_two(b'|', TokenKind::Pipe, TokenKind::OrOr),
                b'=' => self.one_or_two(b'=', TokenKind::Assign, TokenKind::EqEq),
                b'!' => self.one_or_two(b'=', TokenKind::Bang, TokenKind::NotEq),
                b'<' => match self.peek(1) {
                    Some(b'=') => self.two(TokenKind::Le),
                    Some(b'<') => self.two(TokenKind::Shl),
                    _ => self.one(TokenKind::Lt),
                },
                b'>' => match self.peek(1) {
                    Some(b'=') => self.two(TokenKind::Ge),
                    Some(b'>') => self.two(TokenKind::Shr),
                    _ => self.one(TokenKind::Gt),
                },
                b'0'..=b'9' => self.number()?,
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                other => {
                    return Err(ParseError::new(
                        format!("unexpected character `{}`", other as char),
                        Span::new(start, start + 1),
                    ));
                }
            };
            tokens.push(Token { kind, span: Span::new(start, self.pos as u32) });
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn one(&mut self, kind: TokenKind) -> TokenKind {
        self.pos += 1;
        kind
    }

    fn two(&mut self, kind: TokenKind) -> TokenKind {
        self.pos += 2;
        kind
    }

    fn one_or_two(&mut self, second: u8, one: TokenKind, two: TokenKind) -> TokenKind {
        if self.peek(1) == Some(second) {
            self.two(two)
        } else {
            self.one(one)
        }
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match (self.peek(0), self.peek(1)) {
                (Some(c), _) if c.is_ascii_whitespace() => self.pos += 1,
                (Some(b'/'), Some(b'/')) => {
                    while let Some(c) = self.peek(0) {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                (Some(b'/'), Some(b'*')) => {
                    let start = self.pos as u32;
                    self.pos += 2;
                    loop {
                        match (self.peek(0), self.peek(1)) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(ParseError::new(
                                    "unterminated block comment".to_string(),
                                    Span::new(start, self.pos as u32),
                                ));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident(&mut self) -> TokenKind {
        while let Some(c) = self.peek(0) {
            if c == b'_' || c.is_ascii_alphanumeric() {
                self.pos += 1;
            } else {
                break;
            }
        }
        TokenKind::Ident
    }

    /// Lexes `123`, `0x1F`, `8w255`, `8w0xFF`.
    fn number(&mut self) -> Result<TokenKind, ParseError> {
        let start = self.pos;
        let first = self.read_uint()?;
        // A width prefix: digits 'w' digits.
        if self.peek(0) == Some(b'w') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1; // consume 'w'
            let value = self.read_uint()?;
            let width = u16::try_from(first).ok().filter(|&w| (1..=128).contains(&w));
            let Some(width) = width else {
                return Err(ParseError::new(
                    format!("bit width {first} out of range 1..=128"),
                    Span::new(start as u32, self.pos as u32),
                ));
            };
            let masked = if width == 128 { value } else { value & ((1u128 << width) - 1) };
            return Ok(TokenKind::Int { value: masked, width: Some(width) });
        }
        Ok(TokenKind::Int { value: first, width: None })
    }

    fn read_uint(&mut self) -> Result<u128, ParseError> {
        let start = self.pos;
        let radix = if self.peek(0) == Some(b'0') && matches!(self.peek(1), Some(b'x') | Some(b'X'))
        {
            self.pos += 2;
            16
        } else {
            10
        };
        let digits_start = self.pos;
        while let Some(c) = self.peek(0) {
            let ok = match radix {
                16 => c.is_ascii_hexdigit() || c == b'_',
                _ => c.is_ascii_digit() || c == b'_',
            };
            if ok {
                self.pos += 1;
            } else {
                break;
            }
        }
        let digits = &self.src[digits_start..self.pos];
        let mut value: u128 = 0;
        let mut any = false;
        for &c in digits {
            if c == b'_' {
                continue;
            }
            any = true;
            let d = u128::from((c as char).to_digit(radix).expect("digit by construction"));
            match value.checked_mul(u128::from(radix)).and_then(|v| v.checked_add(d)) {
                Some(v) => value = v,
                None => {
                    let text: String =
                        digits.iter().map(|&c| c as char).filter(|&c| c != '_').collect();
                    return Err(ParseError::new(
                        format!("integer literal `{text}` does not fit in 128 bits"),
                        Span::new(start as u32, self.pos as u32),
                    ));
                }
            }
        }
        if !any {
            return Err(ParseError::new(
                "malformed numeric literal".to_string(),
                Span::new(start as u32, self.pos as u32),
            ));
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_punctuation() {
        let ks = kinds("control C(inout headers h) { }");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::LParen,
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::RParen,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int { value: 42, width: None });
        assert_eq!(kinds("0xFF")[0], TokenKind::Int { value: 255, width: None });
        assert_eq!(kinds("8w255")[0], TokenKind::Int { value: 255, width: Some(8) });
        assert_eq!(kinds("8w0x1F")[0], TokenKind::Int { value: 31, width: Some(8) });
        assert_eq!(kinds("1_000")[0], TokenKind::Int { value: 1000, width: None });
    }

    #[test]
    fn width_masks_value() {
        assert_eq!(kinds("4w255")[0], TokenKind::Int { value: 15, width: Some(4) });
        assert_eq!(kinds("128w1")[0], TokenKind::Int { value: 1, width: Some(128) });
    }

    #[test]
    fn width_out_of_range() {
        assert!(lex("129w0").is_err());
        assert!(lex("0w0").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a << 2 >> 3 <= >= == != && || ! ~"),
            vec![
                TokenKind::Ident,
                TokenKind::Shl,
                TokenKind::Int { value: 2, width: None },
                TokenKind::Shr,
                TokenKind::Int { value: 3, width: None },
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Bang,
                TokenKind::Tilde,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn annotation_brackets() {
        // `<bit<8>, high>` lexes as Lt Ident Lt Int Gt Comma Ident Gt.
        let ks = kinds("<bit<8>, high>");
        assert_eq!(
            ks,
            vec![
                TokenKind::Lt,
                TokenKind::Ident,
                TokenKind::Lt,
                TokenKind::Int { value: 8, width: None },
                TokenKind::Gt,
                TokenKind::Comma,
                TokenKind::Ident,
                TokenKind::Gt,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments() {
        let ks = kinds("a // line comment\n b /* block\ncomment */ c");
        assert_eq!(ks, vec![TokenKind::Ident, TokenKind::Ident, TokenKind::Ident, TokenKind::Eof,]);
    }

    #[test]
    fn unterminated_block_comment() {
        let err = lex("/* oops").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn unexpected_character() {
        let err = lex("a $ b").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn spans_are_correct() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
        assert_eq!(toks[2].span, Span::new(5, 5)); // EOF
    }

    #[test]
    fn huge_literal_rejected() {
        assert!(lex("340282366920938463463374607431768211456").is_err()); // 2^128
    }
}
