//! Finite security lattices for the P4BID information-flow type system.
//!
//! P4BID (Grewal, D'Antoni, Hsu — PLDI 2022) types every P4 value with a
//! *security label* drawn from a lattice `(L, ⊑)` with distinguished bottom
//! (`⊥`, public/trusted) and top (`⊤`, secret/untrusted) elements. The type
//! system is parametric in the lattice: the paper's prototype ships the
//! two-point lattice `{low ⊑ high}` and the four-point diamond lattice
//! `{⊥ ⊑ A, B ⊑ ⊤}` of Figure 8b used for network isolation.
//!
//! This crate provides:
//!
//! * [`Lattice`] — an arbitrary finite lattice built from named elements and
//!   a covering/order relation, with precomputed `⊑`, `⊔` (join) and `⊓`
//!   (meet) tables so that queries are O(1);
//! * [`Label`] — a cheap copyable handle into a lattice;
//! * constructors for the lattices used in the paper and in the ablation
//!   benchmarks: [`Lattice::two_point`], [`Lattice::diamond`],
//!   [`Lattice::chain`], [`Lattice::powerset`], and the general
//!   [`Lattice::from_order`];
//! * [`laws`] — executable lattice laws used by the property-test suite.
//!
//! # Examples
//!
//! ```
//! use p4bid_lattice::Lattice;
//!
//! let lat = Lattice::diamond();
//! let a = lat.label("A").unwrap();
//! let b = lat.label("B").unwrap();
//! assert!(!lat.leq(a, b));
//! assert_eq!(lat.join(a, b), lat.top());
//! assert_eq!(lat.meet(a, b), lat.bottom());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

pub mod laws;

/// A security label: a handle into a specific [`Lattice`].
///
/// Labels are plain indices and only meaningful relative to the lattice that
/// produced them. Mixing labels across lattices is a logic error; the
/// lattice operations do bounds checking and will panic on foreign labels
/// whose index is out of range.
///
/// # Examples
///
/// ```
/// use p4bid_lattice::Lattice;
/// let lat = Lattice::two_point();
/// let low = lat.bottom();
/// let high = lat.top();
/// assert!(lat.leq(low, high));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(u32);

impl Label {
    /// The raw index of this label inside its lattice.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a label from a raw index. Intended for serialization round
    /// trips; prefer [`Lattice::label`].
    #[must_use]
    pub fn from_index(ix: usize) -> Self {
        Label(ix as u32)
    }
}

/// Errors produced while constructing a [`Lattice`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatticeError {
    /// The element list was empty.
    Empty,
    /// Two elements share the same name.
    DuplicateName(String),
    /// An order pair referenced a name that is not an element.
    UnknownName(String),
    /// The order relation is not antisymmetric: two distinct elements are
    /// mutually related.
    NotAntisymmetric(String, String),
    /// A pair of elements has no least upper bound.
    NoJoin(String, String),
    /// A pair of elements has no greatest lower bound.
    NoMeet(String, String),
    /// Too many elements (the implementation caps lattices at `u32::MAX`
    /// elements; practical lattices are tiny).
    TooLarge(usize),
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::Empty => write!(f, "lattice has no elements"),
            LatticeError::DuplicateName(n) => write!(f, "duplicate lattice element `{n}`"),
            LatticeError::UnknownName(n) => {
                write!(f, "order constraint mentions unknown element `{n}`")
            }
            LatticeError::NotAntisymmetric(a, b) => {
                write!(f, "order is not antisymmetric: `{a}` and `{b}` are mutually related")
            }
            LatticeError::NoJoin(a, b) => {
                write!(f, "elements `{a}` and `{b}` have no least upper bound")
            }
            LatticeError::NoMeet(a, b) => {
                write!(f, "elements `{a}` and `{b}` have no greatest lower bound")
            }
            LatticeError::TooLarge(n) => write!(f, "lattice with {n} elements is too large"),
        }
    }
}

impl Error for LatticeError {}

/// A finite security lattice with named elements.
///
/// Construction validates that the supplied order really is a lattice
/// (a partial order in which every pair of elements has a least upper bound
/// and a greatest lower bound, hence unique `⊥` and `⊤`). All queries are
/// table lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lattice {
    names: Vec<String>,
    /// `leq[a * n + b]` ⇔ `a ⊑ b`.
    leq: Vec<bool>,
    /// `join[a * n + b]` = `a ⊔ b`.
    join: Vec<Label>,
    /// `meet[a * n + b]` = `a ⊓ b`.
    meet: Vec<Label>,
    bottom: Label,
    top: Label,
}

impl Lattice {
    /// Builds a lattice from element names and order constraints
    /// `lo ⊑ hi`. The constraints may be any subset of the intended order
    /// (e.g. just the covering relation); the constructor takes the
    /// reflexive-transitive closure.
    ///
    /// # Errors
    ///
    /// Returns a [`LatticeError`] if names are empty or duplicated, a
    /// constraint names an unknown element, the closure is not
    /// antisymmetric, or some pair of elements lacks a join or meet.
    ///
    /// # Examples
    ///
    /// ```
    /// use p4bid_lattice::Lattice;
    /// let lat = Lattice::from_order(
    ///     &["bot", "A", "B", "top"],
    ///     &[("bot", "A"), ("bot", "B"), ("A", "top"), ("B", "top")],
    /// ).unwrap();
    /// assert_eq!(lat.name(lat.top()), "top");
    /// ```
    pub fn from_order<S1: AsRef<str>, S2: AsRef<str>>(
        names: &[S1],
        order: &[(S2, S2)],
    ) -> Result<Self, LatticeError> {
        if names.is_empty() {
            return Err(LatticeError::Empty);
        }
        if names.len() > u32::MAX as usize {
            return Err(LatticeError::TooLarge(names.len()));
        }
        let n = names.len();
        let names: Vec<String> = names.iter().map(|s| s.as_ref().to_owned()).collect();
        for (i, a) in names.iter().enumerate() {
            if names[..i].contains(a) {
                return Err(LatticeError::DuplicateName(a.clone()));
            }
        }
        let index_of = |name: &str| -> Result<usize, LatticeError> {
            names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| LatticeError::UnknownName(name.to_owned()))
        };

        // Reflexive closure.
        let mut leq = vec![false; n * n];
        for i in 0..n {
            leq[i * n + i] = true;
        }
        for (lo, hi) in order {
            let lo = index_of(lo.as_ref())?;
            let hi = index_of(hi.as_ref())?;
            leq[lo * n + hi] = true;
        }
        // Transitive closure (Floyd–Warshall on the boolean matrix).
        for k in 0..n {
            for i in 0..n {
                if leq[i * n + k] {
                    for j in 0..n {
                        if leq[k * n + j] {
                            leq[i * n + j] = true;
                        }
                    }
                }
            }
        }
        // Antisymmetry.
        for i in 0..n {
            for j in (i + 1)..n {
                if leq[i * n + j] && leq[j * n + i] {
                    return Err(LatticeError::NotAntisymmetric(names[i].clone(), names[j].clone()));
                }
            }
        }
        // Joins and meets: for each pair, the set of upper (lower) bounds
        // must contain a unique least (greatest) element.
        let mut join = vec![Label(0); n * n];
        let mut meet = vec![Label(0); n * n];
        for a in 0..n {
            for b in 0..n {
                let ubs: Vec<usize> =
                    (0..n).filter(|&u| leq[a * n + u] && leq[b * n + u]).collect();
                let least = ubs.iter().copied().find(|&u| ubs.iter().all(|&v| leq[u * n + v]));
                match least {
                    Some(u) => join[a * n + b] = Label(u as u32),
                    None => return Err(LatticeError::NoJoin(names[a].clone(), names[b].clone())),
                }
                let lbs: Vec<usize> =
                    (0..n).filter(|&l| leq[l * n + a] && leq[l * n + b]).collect();
                let greatest = lbs.iter().copied().find(|&l| lbs.iter().all(|&m| leq[m * n + l]));
                match greatest {
                    Some(l) => meet[a * n + b] = Label(l as u32),
                    None => return Err(LatticeError::NoMeet(names[a].clone(), names[b].clone())),
                }
            }
        }
        // Bottom is below everything; top above everything. Existence
        // follows from joins/meets over the whole (finite, non-empty) set.
        let mut bottom = Label(0);
        let mut top = Label(0);
        for i in 1..n {
            bottom = meet[bottom.index() * n + i];
            top = join[top.index() * n + i];
        }
        Ok(Lattice { names, leq, join, meet, bottom, top })
    }

    /// The paper's default two-point lattice `{low ⊑ high}`.
    ///
    /// `low` is `⊥` (public / trusted) and `high` is `⊤`
    /// (secret / untrusted).
    #[must_use]
    pub fn two_point() -> Self {
        Self::from_order(&["low", "high"], &[("low", "high")])
            .expect("two-point lattice is well-formed")
    }

    /// The four-point diamond lattice of Figure 8b:
    /// `bot ⊑ A ⊑ top`, `bot ⊑ B ⊑ top`, with `A` and `B` incomparable.
    ///
    /// Used in the paper's network-isolation case study (§5.4): Alice's
    /// fields are labeled `A`, Bob's `B`, shared routing data `bot`, and
    /// telemetry `top`.
    #[must_use]
    pub fn diamond() -> Self {
        Self::from_order(
            &["bot", "A", "B", "top"],
            &[("bot", "A"), ("bot", "B"), ("A", "top"), ("B", "top")],
        )
        .expect("diamond lattice is well-formed")
    }

    /// A total order `l0 ⊑ l1 ⊑ … ⊑ l{k-1}` with `k ≥ 1` levels.
    ///
    /// Used by the lattice-size ablation benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn chain(k: usize) -> Self {
        assert!(k >= 1, "a chain needs at least one level");
        let names: Vec<String> = (0..k).map(|i| format!("l{i}")).collect();
        let order: Vec<(String, String)> =
            (1..k).map(|i| (format!("l{}", i - 1), format!("l{i}"))).collect();
        Self::from_order(&names, &order).expect("chains are well-formed lattices")
    }

    /// The powerset lattice over a set of atoms, ordered by inclusion.
    ///
    /// Element names are `{}`, `{a}`, `{a,b}`, … in subset-mask order. The
    /// generalization the paper sketches for per-tenant isolation ("adding
    /// additional labels at the level of A and B") embeds into powersets.
    ///
    /// # Panics
    ///
    /// Panics if there are more than 16 atoms (2^16 elements) to keep table
    /// sizes sane.
    #[must_use]
    pub fn powerset(atoms: &[&str]) -> Self {
        assert!(atoms.len() <= 16, "powerset lattices are capped at 16 atoms");
        let n = 1usize << atoms.len();
        let name_of = |mask: usize| {
            let mut parts = Vec::new();
            for (i, a) in atoms.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    parts.push(*a);
                }
            }
            format!("{{{}}}", parts.join(","))
        };
        let names: Vec<String> = (0..n).map(name_of).collect();
        let mut order = Vec::new();
        for m in 0..n {
            for i in 0..atoms.len() {
                if m & (1 << i) == 0 {
                    order.push((name_of(m), name_of(m | (1 << i))));
                }
            }
        }
        Self::from_order(&names, &order).expect("powersets are well-formed lattices")
    }

    /// The product lattice `self × other`, ordered pointwise:
    /// `(a₁, b₁) ⊑ (a₂, b₂)` iff `a₁ ⊑ a₂` and `b₁ ⊑ b₂`.
    ///
    /// Element names are `left*right`. Products are the standard way to
    /// track several properties at once — e.g. confidentiality × integrity,
    /// so a field can be `secret*untrusted` while another is
    /// `public*trusted` (the §5.3 integrity reading combined with the
    /// default confidentiality reading).
    ///
    /// # Examples
    ///
    /// ```
    /// use p4bid_lattice::Lattice;
    /// let conf = Lattice::from_order(&["public", "secret"], &[("public", "secret")]).unwrap();
    /// let integ = Lattice::from_order(&["trusted", "untrusted"], &[("trusted", "untrusted")]).unwrap();
    /// let both = conf.product(&integ);
    /// assert_eq!(both.len(), 4);
    /// assert_eq!(both.name(both.bottom()), "public*trusted");
    /// assert_eq!(both.name(both.top()), "secret*untrusted");
    /// let pu = both.label("public*untrusted").unwrap();
    /// let st = both.label("secret*trusted").unwrap();
    /// assert!(!both.leq(pu, st) && !both.leq(st, pu));
    /// ```
    #[must_use]
    pub fn product(&self, other: &Lattice) -> Lattice {
        let mut names = Vec::with_capacity(self.len() * other.len());
        for a in self.labels() {
            for b in other.labels() {
                names.push(format!("{}*{}", self.name(a), other.name(b)));
            }
        }
        let mut order = Vec::new();
        for a1 in self.labels() {
            for b1 in other.labels() {
                for a2 in self.labels() {
                    for b2 in other.labels() {
                        if (a1, b1) != (a2, b2) && self.leq(a1, a2) && other.leq(b1, b2) {
                            order.push((
                                format!("{}*{}", self.name(a1), other.name(b1)),
                                format!("{}*{}", self.name(a2), other.name(b2)),
                            ));
                        }
                    }
                }
            }
        }
        Lattice::from_order(&names, &order).expect("the product of two lattices is a lattice")
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the lattice is empty. Always `false` for a constructed
    /// lattice; provided for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Looks up a label by element name.
    #[must_use]
    pub fn label(&self, name: &str) -> Option<Label> {
        self.names.iter().position(|n| n == name).map(|i| Label(i as u32))
    }

    /// The name of a label.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range for this lattice.
    #[must_use]
    pub fn name(&self, l: Label) -> &str {
        &self.names[l.index()]
    }

    /// All labels, in declaration order.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        (0..self.names.len()).map(|i| Label(i as u32))
    }

    /// All element names, in declaration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// The partial order `a ⊑ b`.
    #[must_use]
    pub fn leq(&self, a: Label, b: Label) -> bool {
        self.leq[a.index() * self.len() + b.index()]
    }

    /// Least upper bound `a ⊔ b`.
    #[must_use]
    pub fn join(&self, a: Label, b: Label) -> Label {
        self.join[a.index() * self.len() + b.index()]
    }

    /// Greatest lower bound `a ⊓ b`.
    #[must_use]
    pub fn meet(&self, a: Label, b: Label) -> Label {
        self.meet[a.index() * self.len() + b.index()]
    }

    /// Join of an arbitrary collection of labels (`⊥` if empty).
    pub fn join_all<I: IntoIterator<Item = Label>>(&self, labels: I) -> Label {
        labels.into_iter().fold(self.bottom, |acc, l| self.join(acc, l))
    }

    /// Meet of an arbitrary collection of labels (`⊤` if empty).
    pub fn meet_all<I: IntoIterator<Item = Label>>(&self, labels: I) -> Label {
        labels.into_iter().fold(self.top, |acc, l| self.meet(acc, l))
    }

    /// The least element `⊥` (public / trusted data).
    #[must_use]
    pub fn bottom(&self) -> Label {
        self.bottom
    }

    /// The greatest element `⊤` (secret / untrusted data).
    #[must_use]
    pub fn top(&self) -> Label {
        self.top
    }

    /// Whether `l` is the bottom element.
    #[must_use]
    pub fn is_bottom(&self, l: Label) -> bool {
        l == self.bottom
    }

    /// Whether `l` is the top element.
    #[must_use]
    pub fn is_top(&self, l: Label) -> bool {
        l == self.top
    }
}

impl fmt::Display for Lattice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lattice {{ ")?;
        let mut first = true;
        for a in self.labels() {
            for b in self.labels() {
                if a != b && self.leq(a, b) {
                    // Only print covering edges to keep the output readable.
                    let covered =
                        self.labels().any(|c| c != a && c != b && self.leq(a, c) && self.leq(c, b));
                    if !covered {
                        if !first {
                            write!(f, "; ")?;
                        }
                        first = false;
                        write!(f, "{} < {}", self.name(a), self.name(b))?;
                    }
                }
            }
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_point_shape() {
        let lat = Lattice::two_point();
        assert_eq!(lat.len(), 2);
        let low = lat.label("low").unwrap();
        let high = lat.label("high").unwrap();
        assert_eq!(lat.bottom(), low);
        assert_eq!(lat.top(), high);
        assert!(lat.leq(low, high));
        assert!(!lat.leq(high, low));
        assert_eq!(lat.join(low, high), high);
        assert_eq!(lat.meet(low, high), low);
    }

    #[test]
    fn diamond_shape() {
        let lat = Lattice::diamond();
        let a = lat.label("A").unwrap();
        let b = lat.label("B").unwrap();
        assert!(!lat.leq(a, b));
        assert!(!lat.leq(b, a));
        assert_eq!(lat.join(a, b), lat.top());
        assert_eq!(lat.meet(a, b), lat.bottom());
        assert!(lat.leq(lat.bottom(), a));
        assert!(lat.leq(b, lat.top()));
    }

    #[test]
    fn chain_is_total() {
        let lat = Lattice::chain(5);
        assert_eq!(lat.len(), 5);
        let l0 = lat.label("l0").unwrap();
        let l4 = lat.label("l4").unwrap();
        assert_eq!(lat.bottom(), l0);
        assert_eq!(lat.top(), l4);
        for a in lat.labels() {
            for b in lat.labels() {
                assert!(lat.leq(a, b) || lat.leq(b, a), "chains are total orders");
            }
        }
    }

    #[test]
    fn chain_of_one_is_trivial() {
        let lat = Lattice::chain(1);
        assert_eq!(lat.bottom(), lat.top());
        assert!(lat.leq(lat.bottom(), lat.top()));
    }

    #[test]
    fn powerset_of_two() {
        let lat = Lattice::powerset(&["a", "b"]);
        assert_eq!(lat.len(), 4);
        let ab = lat.label("{a,b}").unwrap();
        let a = lat.label("{a}").unwrap();
        let b = lat.label("{b}").unwrap();
        assert_eq!(lat.top(), ab);
        assert_eq!(lat.join(a, b), ab);
        assert_eq!(lat.meet(a, b), lat.bottom());
        assert_eq!(lat.name(lat.bottom()), "{}");
    }

    #[test]
    fn transitive_closure_is_taken() {
        // Only covering edges given; closure must infer bot ⊑ top.
        let lat =
            Lattice::from_order(&["bot", "mid", "top"], &[("bot", "mid"), ("mid", "top")]).unwrap();
        assert!(lat.leq(lat.label("bot").unwrap(), lat.label("top").unwrap()));
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Lattice::from_order(&["x", "x"], &[("x", "x")]).unwrap_err();
        assert_eq!(err, LatticeError::DuplicateName("x".into()));
    }

    #[test]
    fn rejects_unknown_names() {
        let err = Lattice::from_order(&["x"], &[("x", "y")]).unwrap_err();
        assert_eq!(err, LatticeError::UnknownName("y".into()));
    }

    #[test]
    fn rejects_cycles() {
        let err = Lattice::from_order(&["a", "b"], &[("a", "b"), ("b", "a")]).unwrap_err();
        assert!(matches!(err, LatticeError::NotAntisymmetric(_, _)));
    }

    #[test]
    fn rejects_non_lattices() {
        // Two incomparable maximal elements: {a, b} with no top. a ⊔ b
        // does not exist.
        let err =
            Lattice::from_order(&["bot", "a", "b"], &[("bot", "a"), ("bot", "b")]).unwrap_err();
        assert!(matches!(err, LatticeError::NoJoin(_, _)));
    }

    #[test]
    fn rejects_empty() {
        let err = Lattice::from_order::<&str, &str>(&[], &[]).unwrap_err();
        assert_eq!(err, LatticeError::Empty);
    }

    #[test]
    fn join_meet_all() {
        let lat = Lattice::diamond();
        let a = lat.label("A").unwrap();
        let b = lat.label("B").unwrap();
        assert_eq!(lat.join_all([a, b]), lat.top());
        assert_eq!(lat.meet_all([a, b]), lat.bottom());
        assert_eq!(lat.join_all([]), lat.bottom());
        assert_eq!(lat.meet_all([]), lat.top());
    }

    #[test]
    fn product_is_a_lattice_with_pointwise_order() {
        let conf = Lattice::two_point();
        let integ =
            Lattice::from_order(&["trusted", "untrusted"], &[("trusted", "untrusted")]).unwrap();
        let both = conf.product(&integ);
        crate::laws::assert_laws(&both);
        assert_eq!(both.len(), 4);
        let lt = both.label("low*trusted").unwrap();
        let lu = both.label("low*untrusted").unwrap();
        let ht = both.label("high*trusted").unwrap();
        let hu = both.label("high*untrusted").unwrap();
        assert_eq!(both.bottom(), lt);
        assert_eq!(both.top(), hu);
        assert!(both.leq(lt, lu) && both.leq(lt, ht));
        assert!(!both.leq(lu, ht) && !both.leq(ht, lu));
        assert_eq!(both.join(lu, ht), hu);
        assert_eq!(both.meet(lu, ht), lt);
    }

    #[test]
    fn product_with_diamond() {
        let d = Lattice::diamond();
        let c = Lattice::chain(3);
        let p = d.product(&c);
        assert_eq!(p.len(), 12);
        crate::laws::assert_laws(&p);
    }

    #[test]
    fn display_prints_covering_edges() {
        let lat = Lattice::two_point();
        assert_eq!(lat.to_string(), "lattice { low < high }");
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let err = LatticeError::NoJoin("A".into(), "B".into());
        let msg = err.to_string();
        assert!(msg.contains("A") && msg.contains("B"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }
}
