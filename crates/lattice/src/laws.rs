//! Executable lattice laws.
//!
//! The soundness of the whole IFC system rests on `(L, ⊑)` being a lattice;
//! these checkers are used by the unit- and property-test suites to validate
//! every lattice constructor against the algebraic laws.

use crate::{Label, Lattice};

/// A violated lattice law, for diagnostics in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LawViolation {
    /// Name of the law that failed (e.g. `"join-commutative"`).
    pub law: &'static str,
    /// Human-readable description of the counterexample.
    pub detail: String,
}

impl std::fmt::Display for LawViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lattice law `{}` violated: {}", self.law, self.detail)
    }
}

fn violation(law: &'static str, lat: &Lattice, labels: &[Label]) -> LawViolation {
    let names: Vec<&str> = labels.iter().map(|&l| lat.name(l)).collect();
    LawViolation { law, detail: format!("at {}", names.join(", ")) }
}

/// Checks every algebraic lattice law on every element combination.
///
/// Returns all violations found (empty for a correct lattice). Runs in
/// O(n³) over the lattice size; fine for the small lattices IFC uses.
///
/// Laws checked: reflexivity, antisymmetry and transitivity of `⊑`;
/// commutativity, associativity, idempotence of `⊔`/`⊓`; the absorption
/// laws; consistency of `⊑` with `⊔`/`⊓`; `⊥`/`⊤` being the unit of
/// `⊔`/`⊓`; and that `a ⊔ b` (`a ⊓ b`) really is the *least* upper
/// (*greatest* lower) bound.
#[must_use]
pub fn check_laws(lat: &Lattice) -> Vec<LawViolation> {
    let mut out = Vec::new();
    let all: Vec<Label> = lat.labels().collect();

    for &a in &all {
        if !lat.leq(a, a) {
            out.push(violation("leq-reflexive", lat, &[a]));
        }
        if lat.join(a, a) != a {
            out.push(violation("join-idempotent", lat, &[a]));
        }
        if lat.meet(a, a) != a {
            out.push(violation("meet-idempotent", lat, &[a]));
        }
        if !lat.leq(lat.bottom(), a) {
            out.push(violation("bottom-least", lat, &[a]));
        }
        if !lat.leq(a, lat.top()) {
            out.push(violation("top-greatest", lat, &[a]));
        }
        if lat.join(lat.bottom(), a) != a {
            out.push(violation("join-unit", lat, &[a]));
        }
        if lat.meet(lat.top(), a) != a {
            out.push(violation("meet-unit", lat, &[a]));
        }
    }

    for &a in &all {
        for &b in &all {
            if lat.leq(a, b) && lat.leq(b, a) && a != b {
                out.push(violation("leq-antisymmetric", lat, &[a, b]));
            }
            if lat.join(a, b) != lat.join(b, a) {
                out.push(violation("join-commutative", lat, &[a, b]));
            }
            if lat.meet(a, b) != lat.meet(b, a) {
                out.push(violation("meet-commutative", lat, &[a, b]));
            }
            // Absorption.
            if lat.join(a, lat.meet(a, b)) != a {
                out.push(violation("absorption-join", lat, &[a, b]));
            }
            if lat.meet(a, lat.join(a, b)) != a {
                out.push(violation("absorption-meet", lat, &[a, b]));
            }
            // Order/join/meet consistency: a ⊑ b ⇔ a ⊔ b = b ⇔ a ⊓ b = a.
            if lat.leq(a, b) != (lat.join(a, b) == b) {
                out.push(violation("leq-join-consistent", lat, &[a, b]));
            }
            if lat.leq(a, b) != (lat.meet(a, b) == a) {
                out.push(violation("leq-meet-consistent", lat, &[a, b]));
            }
            // Bound properties.
            let j = lat.join(a, b);
            if !(lat.leq(a, j) && lat.leq(b, j)) {
                out.push(violation("join-upper-bound", lat, &[a, b]));
            }
            let m = lat.meet(a, b);
            if !(lat.leq(m, a) && lat.leq(m, b)) {
                out.push(violation("meet-lower-bound", lat, &[a, b]));
            }
        }
    }

    for &a in &all {
        for &b in &all {
            for &c in &all {
                if lat.leq(a, b) && lat.leq(b, c) && !lat.leq(a, c) {
                    out.push(violation("leq-transitive", lat, &[a, b, c]));
                }
                if lat.join(lat.join(a, b), c) != lat.join(a, lat.join(b, c)) {
                    out.push(violation("join-associative", lat, &[a, b, c]));
                }
                if lat.meet(lat.meet(a, b), c) != lat.meet(a, lat.meet(b, c)) {
                    out.push(violation("meet-associative", lat, &[a, b, c]));
                }
                // Leastness of the join: any upper bound c of {a, b}
                // dominates a ⊔ b (and dually for the meet).
                if lat.leq(a, c) && lat.leq(b, c) && !lat.leq(lat.join(a, b), c) {
                    out.push(violation("join-least", lat, &[a, b, c]));
                }
                if lat.leq(c, a) && lat.leq(c, b) && !lat.leq(c, lat.meet(a, b)) {
                    out.push(violation("meet-greatest", lat, &[a, b, c]));
                }
            }
        }
    }
    out
}

/// Asserts that a lattice satisfies all laws; panics with the violations
/// otherwise. Convenience for tests.
///
/// # Panics
///
/// Panics if [`check_laws`] finds any violation.
pub fn assert_laws(lat: &Lattice) {
    let violations = check_laws(lat);
    assert!(violations.is_empty(), "lattice law violations: {violations:?}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_lattices_satisfy_laws() {
        assert_laws(&Lattice::two_point());
        assert_laws(&Lattice::diamond());
        for k in 1..=8 {
            assert_laws(&Lattice::chain(k));
        }
        assert_laws(&Lattice::powerset(&[]));
        assert_laws(&Lattice::powerset(&["a"]));
        assert_laws(&Lattice::powerset(&["a", "b", "c"]));
    }

    #[test]
    fn custom_lattice_satisfies_laws() {
        // A "cube" lattice: powerset of 3 atoms built via from_order with
        // hand-written covering edges exercised through the generic path.
        let lat = Lattice::from_order(
            &["0", "a", "b", "c", "ab", "ac", "bc", "abc"],
            &[
                ("0", "a"),
                ("0", "b"),
                ("0", "c"),
                ("a", "ab"),
                ("a", "ac"),
                ("b", "ab"),
                ("b", "bc"),
                ("c", "ac"),
                ("c", "bc"),
                ("ab", "abc"),
                ("ac", "abc"),
                ("bc", "abc"),
            ],
        )
        .unwrap();
        assert_laws(&lat);
        assert_eq!(lat.name(lat.bottom()), "0");
        assert_eq!(lat.name(lat.top()), "abc");
    }

    #[test]
    fn law_violation_display() {
        let v = LawViolation { law: "join-commutative", detail: "at A, B".into() };
        assert!(v.to_string().contains("join-commutative"));
    }
}
