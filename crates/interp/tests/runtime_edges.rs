//! Runtime edge cases: fuel, ternary matching, records at runtime,
//! typedef-ed storage, and signal plumbing.

use p4bid_interp::{run_control, ControlPlane, EvalError, Interp, KeyPattern, TableEntry, Value};
use p4bid_typeck::{check_source, CheckOptions, TypedProgram};

fn typed(src: &str) -> TypedProgram {
    check_source(src, &CheckOptions::ifc()).expect("typechecks")
}

fn b(w: u16, v: u128) -> Value {
    Value::bit(w, v)
}

#[test]
fn fuel_exhaustion_is_an_error_not_a_hang() {
    let t = typed(
        r#"control C(inout bit<8> x) {
            apply { x = x + 8w1; x = x + 8w1; x = x + 8w1; }
        }"#,
    );
    let err = Interp::new(&t, &ControlPlane::new())
        .with_fuel(3)
        .run_control("C", vec![b(8, 0)])
        .unwrap_err();
    assert_eq!(err, EvalError::FuelExhausted);
    // With enough fuel the same program runs.
    let out = Interp::new(&t, &ControlPlane::new())
        .with_fuel(1000)
        .run_control("C", vec![b(8, 0)])
        .unwrap();
    assert_eq!(out.param("x"), Some(&b(8, 3)));
}

#[test]
fn ternary_matching_in_a_pipeline() {
    let t = typed(
        r#"control Acl(inout bit<32> addr, inout bit<8> verdict) {
            action allow() { verdict = 8w1; }
            action deny() { verdict = 8w0; }
            table acl {
                key = { addr: ternary; }
                actions = { allow; deny; }
                default_action = deny;
            }
            apply { acl.apply(); }
        }"#,
    );
    let mut cp = ControlPlane::new();
    // Allow 10.x.x.x with the odd last bit, priority over a broad deny.
    cp.add_entry(
        "acl",
        TableEntry::new(
            vec![KeyPattern::Ternary { value: b(32, (10 << 24) | 1), mask: b(32, 0xFF00_0001) }],
            "allow",
            vec![],
        )
        .with_priority(10),
    );
    cp.add_entry("acl", TableEntry::new(vec![KeyPattern::Any], "deny", vec![]).with_priority(1));
    let out = run_control(&t, &cp, "Acl", vec![b(32, (10 << 24) | 0x0012_3401), b(8, 9)]);
    assert_eq!(out.unwrap().param("verdict"), Some(&b(8, 1)));
    let out = run_control(&t, &cp, "Acl", vec![b(32, (10 << 24) | 0x0012_3400), b(8, 9)]);
    assert_eq!(out.unwrap().param("verdict"), Some(&b(8, 0)));
    let out = run_control(&t, &cp, "Acl", vec![b(32, 11 << 24), b(8, 9)]);
    assert_eq!(out.unwrap().param("verdict"), Some(&b(8, 0)));
}

#[test]
fn record_literals_evaluate_and_project() {
    let t = typed(
        r#"control C(inout bit<8> x) {
            apply {
                x = { lo = x, hi = x * 8w2 }.hi;
            }
        }"#,
    );
    let out = run_control(&t, &ControlPlane::new(), "C", vec![b(8, 21)]).unwrap();
    assert_eq!(out.param("x"), Some(&b(8, 42)));
}

#[test]
fn typedefed_storage_behaves_like_base() {
    let t = typed(
        r#"typedef bit<16> port_t;
        control C(inout port_t p) {
            port_t next = p + 1;
            apply { p = next; }
        }"#,
    );
    let out = run_control(&t, &ControlPlane::new(), "C", vec![b(16, 80)]).unwrap();
    assert_eq!(out.param("p"), Some(&b(16, 81)));
}

#[test]
fn return_value_coerced_to_declared_width() {
    let t = typed(
        r#"function bit<8> low_byte(in bit<8> x) {
            return x + 300;
        }
        control C(inout bit<8> y) { apply { y = low_byte(y); } }"#,
    );
    let out = run_control(&t, &ControlPlane::new(), "C", vec![b(8, 1)]).unwrap();
    assert_eq!(out.param("y"), Some(&b(8, 45)), "301 mod 256");
}

#[test]
fn bool_fields_round_trip() {
    let t = typed(
        r#"header f_t { bool flag; bit<8> v; }
        control C(inout f_t h) {
            apply {
                if (h.flag) { h.v = 8w1; } else { h.v = 8w2; }
                h.flag = !h.flag;
            }
        }"#,
    );
    let hdr = Value::Header {
        valid: true,
        fields: vec![(t.intern("flag"), Value::Bool(true)), (t.intern("v"), b(8, 0))],
    };
    let out = run_control(&t, &ControlPlane::new(), "C", vec![hdr]).unwrap();
    let h = out.param("h").unwrap();
    assert_eq!(h.field(t.sym("v").unwrap()), Some(&b(8, 1)));
    assert_eq!(h.field(t.sym("flag").unwrap()), Some(&Value::Bool(false)));
}

#[test]
fn nested_table_applications_thread_state() {
    // Table A's action flips the key that table B matches on.
    let t = typed(
        r#"control C(inout bit<8> k, inout bit<8> out) {
            action first() { k = k + 8w1; }
            action second(bit<8> v) { out = v; }
            table ta { key = { k: exact; } actions = { first; NoAction; } }
            table tb { key = { k: exact; } actions = { second; NoAction; } }
            apply { ta.apply(); tb.apply(); }
        }"#,
    );
    let mut cp = ControlPlane::new();
    cp.add_entry("ta", TableEntry::new(vec![KeyPattern::Exact(b(8, 1))], "first", vec![]));
    cp.add_entry(
        "tb",
        TableEntry::new(vec![KeyPattern::Exact(b(8, 2))], "second", vec![b(8, 0xAA)]),
    );
    let out = run_control(&t, &cp, "C", vec![b(8, 1), b(8, 0)]).unwrap();
    assert_eq!(out.param("k"), Some(&b(8, 2)), "ta bumped the key");
    assert_eq!(out.param("out"), Some(&b(8, 0xAA)), "tb matched the bumped key");
}

#[test]
fn exit_from_table_action_stops_the_pipeline() {
    let t = typed(
        r#"control C(inout bit<8> k, inout bit<8> out) {
            action stop() { exit; }
            table t1 { key = { k: exact; } actions = { stop; NoAction; }
                       default_action = NoAction; }
            apply { t1.apply(); out = 8w99; }
        }"#,
    );
    let mut cp = ControlPlane::new();
    cp.add_entry("t1", TableEntry::new(vec![KeyPattern::Exact(b(8, 1))], "stop", vec![]));
    let hit = run_control(&t, &cp, "C", vec![b(8, 1), b(8, 0)]).unwrap();
    assert!(hit.exited);
    assert_eq!(hit.param("out"), Some(&b(8, 0)), "pipeline aborted");
    let miss = run_control(&t, &cp, "C", vec![b(8, 2), b(8, 0)]).unwrap();
    assert!(!miss.exited);
    assert_eq!(miss.param("out"), Some(&b(8, 99)));
}

#[test]
fn stacks_of_headers() {
    let t = typed(
        r#"header seg_t { bit<8> label_field; }
        struct hs { seg_t[3] segs; }
        control C(inout hs h, inout bit<8> x) {
            apply {
                h.segs[0].label_field = 8w5;
                h.segs[2].label_field = h.segs[0].label_field + 8w1;
                x = h.segs[2].label_field;
            }
        }"#,
    );
    let seg =
        |v: u128| Value::Header { valid: true, fields: vec![(t.intern("label_field"), b(8, v))] };
    let h = Value::Record(vec![(t.intern("segs"), Value::Stack(vec![seg(0), seg(0), seg(0)]))]);
    let out = run_control(&t, &ControlPlane::new(), "C", vec![h, b(8, 0)]).unwrap();
    assert_eq!(out.param("x"), Some(&b(8, 6)));
}

#[test]
fn shift_semantics_match_the_checker_widths() {
    let t = typed(
        r#"control C(inout bit<8> x, inout bit<32> y) {
            apply {
                x = x << 2;
                y = y >> 4;
                x = x >> 200;
            }
        }"#,
    );
    let out = run_control(&t, &ControlPlane::new(), "C", vec![b(8, 0b11), b(32, 0xF0)]).unwrap();
    assert_eq!(out.param("x"), Some(&b(8, 0)), "over-shift zeroes");
    assert_eq!(out.param("y"), Some(&b(32, 0xF)));
}

#[test]
fn same_value_different_widths_do_not_unify() {
    // bit<8> 5 and bit<16> 5 are different runtime values.
    assert_ne!(b(8, 5), b(16, 5));
    // But coercion adapts shape deliberately.
    assert_eq!(Value::Int(5).coerce_to_shape(&b(16, 0)), b(16, 5));
}
