//! End-to-end evaluator tests: whole programs parsed, typechecked, and run
//! against configured control planes.

use p4bid_interp::{run_control, ControlPlane, EvalError, KeyPattern, TableEntry, Value};
use p4bid_typeck::{check_source, CheckOptions, TypedProgram};

fn typed(src: &str) -> TypedProgram {
    match check_source(src, &CheckOptions::ifc()) {
        Ok(t) => t,
        Err(e) => panic!("typecheck failed: {e:?}\n{src}"),
    }
}

fn b(width: u16, v: u128) -> Value {
    Value::bit(width, v)
}

#[test]
fn arithmetic_and_locals() {
    let t = typed(
        r#"control C(inout bit<16> x) {
            apply {
                bit<16> a = x * 2;
                bit<16> c = a + 5;
                x = c - 1;
            }
        }"#,
    );
    let out = run_control(&t, &ControlPlane::new(), "C", vec![b(16, 10)]).unwrap();
    assert_eq!(out.param("x"), Some(&b(16, 24)));
    assert!(!out.exited);
}

#[test]
fn conditionals_and_blocks() {
    let t = typed(
        r#"control C(inout bit<8> x, inout bit<8> y) {
            apply {
                if (x < y) { x = y; } else { y = x; }
                { bit<8> t = 8w1; x = x + t; }
            }
        }"#,
    );
    let out = run_control(&t, &ControlPlane::new(), "C", vec![b(8, 3), b(8, 9)]).unwrap();
    assert_eq!(out.param("x"), Some(&b(8, 10)));
    assert_eq!(out.param("y"), Some(&b(8, 9)));
}

#[test]
fn block_scoping_restores_bindings() {
    let t = typed(
        r#"control C(inout bit<8> x) {
            bit<8> v = 8w1;
            apply {
                { bit<8> v = 8w100; x = v; }
                x = x + v;
            }
        }"#,
    );
    let out = run_control(&t, &ControlPlane::new(), "C", vec![b(8, 0)]).unwrap();
    assert_eq!(out.param("x"), Some(&b(8, 101)));
}

#[test]
fn function_call_with_return() {
    let t = typed(
        r#"function bit<8> double(in bit<8> v) { return v * 2; }
        control C(inout bit<8> x) {
            apply { x = double(double(x)); }
        }"#,
    );
    let out = run_control(&t, &ControlPlane::new(), "C", vec![b(8, 3)]).unwrap();
    assert_eq!(out.param("x"), Some(&b(8, 12)));
}

#[test]
fn inout_copy_in_copy_out() {
    let t = typed(
        r#"header h_t { bit<8> v; }
        struct hs { h_t h; }
        control C(inout hs s) {
            action bump(inout bit<8> target) { target = target + 8w1; }
            apply { bump(s.h.v); bump(s.h.v); }
        }"#,
    );
    let hdr = Value::Header { valid: true, fields: vec![(t.intern("v"), b(8, 5))] };
    let s = Value::Record(vec![(t.intern("h"), hdr)]);
    let out = run_control(&t, &ControlPlane::new(), "C", vec![s]).unwrap();
    let v = out.param("s").unwrap().field(t.sym("h").unwrap()).unwrap().field(t.sym("v").unwrap());
    assert_eq!(v, Some(&b(8, 7)));
}

#[test]
fn in_params_do_not_write_back() {
    let t = typed(
        r#"control C(inout bit<8> x, inout bit<8> y) {
            action observe(in bit<8> v) { y = v + 8w1; }
            apply { observe(x); }
        }"#,
    );
    let out = run_control(&t, &ControlPlane::new(), "C", vec![b(8, 9), b(8, 0)]).unwrap();
    assert_eq!(out.param("x"), Some(&b(8, 9)), "in-arg unchanged");
    assert_eq!(out.param("y"), Some(&b(8, 10)));
}

#[test]
fn closures_capture_declaration_env() {
    // The action reads `v` from its declaration environment even though the
    // apply block later shadows nothing — Core P4 closures capture ε.
    let t = typed(
        r#"control C(inout bit<8> x) {
            bit<8> v = 8w40;
            action addv() { x = x + v; }
            apply { addv(); }
        }"#,
    );
    let out = run_control(&t, &ControlPlane::new(), "C", vec![b(8, 2)]).unwrap();
    assert_eq!(out.param("x"), Some(&b(8, 42)));
}

#[test]
fn exit_aborts_control_and_still_copies_out() {
    let t = typed(
        r#"control C(inout bit<8> x) {
            action boom(inout bit<8> v) { v = 8w7; exit; }
            apply {
                boom(x);
                x = 8w99; // unreachable
            }
        }"#,
    );
    let out = run_control(&t, &ControlPlane::new(), "C", vec![b(8, 0)]).unwrap();
    assert!(out.exited);
    assert_eq!(out.param("x"), Some(&b(8, 7)), "copy-out happens despite exit");
}

#[test]
fn exit_in_expression_position_propagates() {
    let t = typed(
        r#"function bit<8> f(in bit<8> v) {
            if (v == 8w0) { exit; }
            return v;
        }
        control C(inout bit<8> x, inout bit<8> y) {
            apply { y = f(x); y = y + 8w1; }
        }"#,
    );
    let out = run_control(&t, &ControlPlane::new(), "C", vec![b(8, 0), b(8, 50)]).unwrap();
    assert!(out.exited);
    assert_eq!(out.param("y"), Some(&b(8, 50)), "assignment aborted by exit");
    let out = run_control(&t, &ControlPlane::new(), "C", vec![b(8, 3), b(8, 50)]).unwrap();
    assert!(!out.exited);
    assert_eq!(out.param("y"), Some(&b(8, 4)));
}

#[test]
fn stacks_index_read_write() {
    let t = typed(
        r#"control C(inout bit<8> x) {
            bit<8>[4] arr;
            apply {
                arr[0] = 8w10;
                arr[1] = arr[0] + 8w1;
                x = arr[1];
            }
        }"#,
    );
    let out = run_control(&t, &ControlPlane::new(), "C", vec![b(8, 0)]).unwrap();
    assert_eq!(out.param("x"), Some(&b(8, 11)));
}

#[test]
fn out_of_bounds_read_is_deterministic_havoc() {
    let t = typed(
        r#"control C(inout bit<8> x, inout bit<8> ix) {
            bit<8>[2] arr;
            apply {
                arr[0] = 8w77;
                x = arr[ix];
            }
        }"#,
    );
    // In-bounds.
    let out = run_control(&t, &ControlPlane::new(), "C", vec![b(8, 0), b(8, 0)]).unwrap();
    assert_eq!(out.param("x"), Some(&b(8, 77)));
    // Out of bounds: havoc = zero, and the same on every run.
    for _ in 0..3 {
        let out = run_control(&t, &ControlPlane::new(), "C", vec![b(8, 1), b(8, 200)]).unwrap();
        assert_eq!(out.param("x"), Some(&b(8, 0)));
    }
}

#[test]
fn out_of_bounds_write_is_noop() {
    let t = typed(
        r#"control C(inout bit<8> x, inout bit<8> ix) {
            bit<8>[2] arr;
            apply {
                arr[ix] = 8w9;
                x = arr[0] + arr[1];
            }
        }"#,
    );
    let out = run_control(&t, &ControlPlane::new(), "C", vec![b(8, 0), b(8, 5)]).unwrap();
    assert_eq!(out.param("x"), Some(&b(8, 0)), "oob write dropped");
}

const FORWARD: &str = r#"
    header ipv4_t { bit<32> dstAddr; bit<8> ttl; }
    struct headers { ipv4_t ipv4; }
    control Fwd(inout headers hdr, inout standard_metadata_t meta) {
        action ipv4_forward(bit<9> port) {
            meta.egress_spec = port;
            hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
        }
        action drop() { mark_to_drop(meta); }
        table ipv4_lpm {
            key = { hdr.ipv4.dstAddr: lpm; }
            actions = { ipv4_forward; drop; }
            default_action = drop;
        }
        apply { ipv4_lpm.apply(); }
    }
"#;

fn packet(t: &TypedProgram, dst: u128, ttl: u128) -> Vec<Value> {
    let s = |n: &str| t.intern(n);
    let ipv4 = Value::Header {
        valid: true,
        fields: vec![(s("dstAddr"), b(32, dst)), (s("ttl"), b(8, ttl))],
    };
    let hdr = Value::Record(vec![(s("ipv4"), ipv4)]);
    let meta = Value::Record(vec![
        (s("ingress_port"), b(9, 0)),
        (s("egress_spec"), b(9, 0)),
        (s("egress_port"), b(9, 0)),
        (s("instance_type"), b(32, 0)),
        (s("packet_length"), b(32, 64)),
        (s("priority"), b(3, 0)),
    ]);
    vec![hdr, meta]
}

#[test]
fn lpm_table_forwarding_pipeline() {
    let t = typed(FORWARD);
    let mut cp = ControlPlane::new();
    // 10.0.0.0/8 → port 1; 10.1.0.0/16 → port 2.
    cp.add_entry(
        "ipv4_lpm",
        TableEntry::new(
            vec![KeyPattern::Lpm { value: b(32, 10 << 24), prefix_len: 8 }],
            "ipv4_forward",
            vec![b(9, 1)],
        ),
    );
    cp.add_entry(
        "ipv4_lpm",
        TableEntry::new(
            vec![KeyPattern::Lpm { value: b(32, (10 << 24) | (1 << 16)), prefix_len: 16 }],
            "ipv4_forward",
            vec![b(9, 2)],
        ),
    );

    let spec_of = |out: &p4bid_interp::ControlOutcome| {
        out.param("meta").unwrap().field(t.sym("egress_spec").unwrap()).unwrap().clone()
    };

    // Longest prefix wins.
    let out = run_control(&t, &cp, "Fwd", packet(&t, ((10 << 24) | (1 << 16)) + 5, 64)).unwrap();
    assert_eq!(spec_of(&out), b(9, 2));
    let ttl = out
        .param("hdr")
        .unwrap()
        .field(t.sym("ipv4").unwrap())
        .unwrap()
        .field(t.sym("ttl").unwrap())
        .unwrap();
    assert_eq!(ttl, &b(8, 63), "forwarding decrements the ttl");

    // /8-only match.
    let out = run_control(&t, &cp, "Fwd", packet(&t, (10 << 24) + 7, 64)).unwrap();
    assert_eq!(spec_of(&out), b(9, 1));

    // Miss → declared default (drop → egress_spec = 511).
    let out = run_control(&t, &cp, "Fwd", packet(&t, 192 << 24, 64)).unwrap();
    assert_eq!(spec_of(&out), b(9, 511));
}

#[test]
fn table_with_bound_dataplane_args() {
    // Listing 3 style: the table binds an expression to the action's
    // directional parameter at declaration time.
    let t = typed(
        r#"control C(inout bit<32> key, inout bit<32> out) {
            bit<32> bound = 32w1000;
            action take(in bit<32> v) { out = v; }
            table tb {
                key = { key: exact; }
                actions = { take(bound + 32w1); }
            }
            apply { tb.apply(); }
        }"#,
    );
    let mut cp = ControlPlane::new();
    cp.add_entry("tb", TableEntry::new(vec![KeyPattern::Exact(b(32, 5))], "take", vec![]));
    let out = run_control(&t, &cp, "C", vec![b(32, 5), b(32, 0)]).unwrap();
    assert_eq!(out.param("out"), Some(&b(32, 1001)));
    // Miss with no declared default: no-op.
    let out = run_control(&t, &cp, "C", vec![b(32, 6), b(32, 0)]).unwrap();
    assert_eq!(out.param("out"), Some(&b(32, 0)));
}

#[test]
fn control_plane_default_action_override() {
    let t = typed(
        r#"control C(inout bit<8> k, inout bit<8> out) {
            action set(bit<8> v) { out = v; }
            table tb {
                key = { k: exact; }
                actions = { set; NoAction; }
                default_action = NoAction;
            }
            apply { tb.apply(); }
        }"#,
    );
    let mut cp = ControlPlane::new();
    cp.set_default_action("tb", "set", vec![b(8, 42)]);
    let out = run_control(&t, &cp, "C", vec![b(8, 1), b(8, 0)]).unwrap();
    assert_eq!(out.param("out"), Some(&b(8, 42)));
}

#[test]
fn declared_default_action_with_control_params_gets_zeros() {
    let t = typed(
        r#"control C(inout bit<8> k, inout bit<8> out) {
            action set(bit<8> v) { out = v + 8w1; }
            table tb {
                key = { k: exact; }
                actions = { set; }
                default_action = set;
            }
            apply { tb.apply(); }
        }"#,
    );
    let out = run_control(&t, &ControlPlane::new(), "C", vec![b(8, 1), b(8, 9)]).unwrap();
    assert_eq!(out.param("out"), Some(&b(8, 1)), "zero-init control-plane arg");
}

#[test]
fn bad_entry_action_is_reported() {
    let t = typed(
        r#"control C(inout bit<8> k) {
            action a() { }
            table tb { key = { k: exact; } actions = { a; } }
            apply { tb.apply(); }
        }"#,
    );
    let mut cp = ControlPlane::new();
    cp.add_entry("tb", TableEntry::new(vec![KeyPattern::Any], "ghost", vec![]));
    let err = run_control(&t, &cp, "C", vec![b(8, 0)]).unwrap_err();
    assert!(matches!(err, EvalError::UnknownEntryAction { .. }), "{err}");
}

#[test]
fn bad_entry_arity_is_reported() {
    let t = typed(
        r#"control C(inout bit<8> k, inout bit<8> out) {
            action set(bit<8> v) { out = v; }
            table tb { key = { k: exact; } actions = { set; } }
            apply { tb.apply(); }
        }"#,
    );
    let mut cp = ControlPlane::new();
    cp.add_entry("tb", TableEntry::new(vec![KeyPattern::Any], "set", vec![]));
    let err = run_control(&t, &cp, "C", vec![b(8, 0), b(8, 0)]).unwrap_err();
    assert!(matches!(err, EvalError::EntryArgMismatch { .. }), "{err}");
}

#[test]
fn unknown_control_is_reported() {
    let t = typed("control C(inout bit<8> x) { apply { } }");
    let err = run_control(&t, &ControlPlane::new(), "Ghost", vec![b(8, 0)]).unwrap_err();
    assert!(matches!(err, EvalError::UnknownControl(_)));
}

#[test]
fn wrong_arg_count_is_reported() {
    let t = typed("control C(inout bit<8> x) { apply { } }");
    let err = run_control(&t, &ControlPlane::new(), "C", vec![]).unwrap_err();
    assert_eq!(err, EvalError::ArgCount { expected: 1, got: 0 });
}

#[test]
fn prelude_num_bits_set_is_popcount() {
    let t = typed(
        r#"control C(inout bit<32> x) {
            apply { x = num_bits_set(x); }
        }"#,
    );
    for (input, expected) in [
        (0u128, 0u128),
        (1, 1),
        (0b1011, 3),
        (0xFFFF_FFFF, 32),
        (0x8000_0001, 2),
        (0xDEAD_BEEF, 24),
    ] {
        let out = run_control(&t, &ControlPlane::new(), "C", vec![b(32, input)]).unwrap();
        assert_eq!(out.param("x"), Some(&b(32, expected)), "popcount({input:#x})");
    }
}

#[test]
fn determinism_same_inputs_same_outputs() {
    let t = typed(FORWARD);
    let mut cp = ControlPlane::new();
    cp.add_entry(
        "ipv4_lpm",
        TableEntry::new(
            vec![KeyPattern::Lpm { value: b(32, 10 << 24), prefix_len: 8 }],
            "ipv4_forward",
            vec![b(9, 3)],
        ),
    );
    let a = run_control(&t, &cp, "Fwd", packet(&t, (10 << 24) + 1, 7)).unwrap();
    let bb = run_control(&t, &cp, "Fwd", packet(&t, (10 << 24) + 1, 7)).unwrap();
    assert_eq!(a, bb);
}

#[test]
fn multiple_controls_run_independently() {
    let t = typed(
        r#"control A(inout bit<8> x) { apply { x = x + 8w1; } }
        control B(inout bit<8> x) { apply { x = x * 8w2; } }"#,
    );
    let a = run_control(&t, &ControlPlane::new(), "A", vec![b(8, 10)]).unwrap();
    let bb = run_control(&t, &ControlPlane::new(), "B", vec![b(8, 10)]).unwrap();
    assert_eq!(a.param("x"), Some(&b(8, 11)));
    assert_eq!(bb.param("x"), Some(&b(8, 20)));
}

#[test]
fn int_literals_adapt_to_bit_targets() {
    let t = typed(
        r#"control C(inout bit<8> x) {
            apply { x = 300; }
        }"#,
    );
    let out = run_control(&t, &ControlPlane::new(), "C", vec![b(8, 0)]).unwrap();
    assert_eq!(out.param("x"), Some(&b(8, 44)), "300 mod 256");
}
