//! Property-based tests on the runtime value algebra: the evaluation
//! oracle `E(⊕, …)` must be total, deterministic, width-preserving, and
//! algebraically sane on the shapes the typing oracle admits — the
//! assumptions Appendix I's Equation (8) makes about `E`.

use p4bid_ast::surface::{BinOp, UnOp};
use p4bid_interp::value::{eval_binop, eval_unop, mask};
use p4bid_interp::Value;
use proptest::prelude::*;

fn arb_width() -> impl Strategy<Value = u16> {
    prop_oneof![Just(1u16), Just(8), Just(9), Just(16), Just(32), Just(48), Just(64), Just(128)]
}

fn arb_bit_pair() -> impl Strategy<Value = (u16, u128, u128)> {
    (arb_width(), any::<u128>(), any::<u128>())
}

const ARITH: [BinOp; 6] =
    [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::BitAnd, BinOp::BitOr, BinOp::BitXor];

proptest! {
    /// Every arithmetic/bitwise result is masked to the operand width.
    #[test]
    fn results_stay_masked((w, a, b) in arb_bit_pair(), op_ix in 0usize..6) {
        let op = ARITH[op_ix];
        let r = eval_binop(op, Value::bit(w, a), Value::bit(w, b)).unwrap();
        let Value::Bit { width, value } = r else { panic!("non-bit result {r}") };
        prop_assert_eq!(width, w);
        prop_assert_eq!(value, mask(w, value), "unmasked payload");
    }

    /// The oracle is a function: equal inputs, equal outputs.
    #[test]
    fn oracle_is_deterministic((w, a, b) in arb_bit_pair(), op_ix in 0usize..6) {
        let op = ARITH[op_ix];
        let r1 = eval_binop(op, Value::bit(w, a), Value::bit(w, b)).unwrap();
        let r2 = eval_binop(op, Value::bit(w, a), Value::bit(w, b)).unwrap();
        prop_assert_eq!(r1, r2);
    }

    /// Add/Mul/And/Or/Xor are commutative on bit-vectors.
    #[test]
    fn commutative_ops((w, a, b) in arb_bit_pair(), op_ix in 0usize..5) {
        let op = [BinOp::Add, BinOp::Mul, BinOp::BitAnd, BinOp::BitOr, BinOp::BitXor][op_ix];
        let ab = eval_binop(op, Value::bit(w, a), Value::bit(w, b)).unwrap();
        let ba = eval_binop(op, Value::bit(w, b), Value::bit(w, a)).unwrap();
        prop_assert_eq!(ab, ba);
    }

    /// Subtraction inverts addition (wrapping).
    #[test]
    fn sub_inverts_add((w, a, b) in arb_bit_pair()) {
        let sum = eval_binop(BinOp::Add, Value::bit(w, a), Value::bit(w, b)).unwrap();
        let back = eval_binop(BinOp::Sub, sum, Value::bit(w, b)).unwrap();
        prop_assert_eq!(back, Value::bit(w, a));
    }

    /// Double negation and double complement are identities.
    #[test]
    fn involutions(w in arb_width(), a in any::<u128>()) {
        let v = Value::bit(w, a);
        let neg2 = eval_unop(UnOp::Neg, eval_unop(UnOp::Neg, v.clone()).unwrap()).unwrap();
        prop_assert_eq!(&neg2, &v);
        let not2 = eval_unop(UnOp::BitNot, eval_unop(UnOp::BitNot, v.clone()).unwrap()).unwrap();
        prop_assert_eq!(&not2, &v);
    }

    /// `x ^ x = 0`, `x & x = x`, `x | x = x`.
    #[test]
    fn idempotents_and_annihilators(w in arb_width(), a in any::<u128>()) {
        let v = Value::bit(w, a);
        prop_assert_eq!(
            eval_binop(BinOp::BitXor, v.clone(), v.clone()).unwrap(),
            Value::bit(w, 0)
        );
        prop_assert_eq!(eval_binop(BinOp::BitAnd, v.clone(), v.clone()).unwrap(), v.clone());
        prop_assert_eq!(eval_binop(BinOp::BitOr, v.clone(), v.clone()).unwrap(), v);
    }

    /// Comparisons agree with the unsigned order on the masked payloads.
    #[test]
    fn comparisons_match_unsigned_order((w, a, b) in arb_bit_pair()) {
        let (ma, mb) = (mask(w, a), mask(w, b));
        let lt = eval_binop(BinOp::Lt, Value::bit(w, a), Value::bit(w, b)).unwrap();
        prop_assert_eq!(lt, Value::Bool(ma < mb));
        let ge = eval_binop(BinOp::Ge, Value::bit(w, a), Value::bit(w, b)).unwrap();
        prop_assert_eq!(ge, Value::Bool(ma >= mb));
        let eq = eval_binop(BinOp::Eq, Value::bit(w, a), Value::bit(w, b)).unwrap();
        prop_assert_eq!(eq, Value::Bool(ma == mb));
    }

    /// Shifting by the width or more gives zero; shifting in two steps
    /// equals shifting once by the sum (within range).
    #[test]
    fn shift_laws(w in arb_width(), a in any::<u128>(), s1 in 0u32..16, s2 in 0u32..16) {
        let v = Value::bit(w, a);
        let over = eval_binop(BinOp::Shl, v.clone(), Value::Int(i128::from(w))).unwrap();
        prop_assert_eq!(over, Value::bit(w, 0));
        let two_step = eval_binop(
            BinOp::Shr,
            eval_binop(BinOp::Shr, v.clone(), Value::Int(i128::from(s1))).unwrap(),
            Value::Int(i128::from(s2)),
        )
        .unwrap();
        let one_step =
            eval_binop(BinOp::Shr, v, Value::Int(i128::from(s1 + s2))).unwrap();
        prop_assert_eq!(two_step, one_step);
    }

    /// Int operands adapt to the bit side without changing the result
    /// versus pre-coercing.
    #[test]
    fn int_coercion_is_transparent(w in arb_width(), a in any::<u128>(), b in 0i128..1000) {
        for op in ARITH {
            let mixed = eval_binop(op, Value::bit(w, a), Value::Int(b)).unwrap();
            let coerced =
                eval_binop(op, Value::bit(w, a), Value::bit(w, b as u128)).unwrap();
            prop_assert_eq!(mixed, coerced);
        }
    }

    /// `coerce_to_shape` round-trips small values through `int`.
    #[test]
    fn coercion_roundtrip(w in arb_width(), a in 0u128..128) {
        let bit = Value::bit(w, a);
        let as_int = bit.clone().coerce_to_shape(&Value::Int(0));
        let back = as_int.coerce_to_shape(&bit);
        prop_assert_eq!(back, bit);
    }
}
