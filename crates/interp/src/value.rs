//! Runtime values for the Core P4 interpreter.
//!
//! Values mirror the resolved types of [`p4bid_ast::sectype`]: booleans,
//! arbitrary-precision integers, fixed-width bit-vectors (stored masked),
//! records, always-valid headers, stacks, and the two closure forms
//! (functions/actions and tables). Value equality is structural, which is
//! exactly what the non-interference definitions compare.
//!
//! Record and header fields are keyed by interned [`Symbol`]s (the same
//! interner the typechecker used), so field reads and writes on the
//! evaluation hot path are integer comparisons instead of string compares.
//! Rendering a value with human-readable field names is a diagnostics
//! boundary: use [`Value::display_with`].

use p4bid_ast::intern::{Interner, Symbol};
use p4bid_ast::pool::TyPool;
use p4bid_ast::sectype::{SecTy, Ty};
use p4bid_ast::surface::{BinOp, Expr, UnOp};
use std::fmt;
use std::rc::Rc;

use crate::store::Env;

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// An arbitrary-precision integer (bounded to `i128` here; the case
    /// studies stay far below that).
    Int(i128),
    /// An unsigned bit-vector; `value` is always masked to `width` bits.
    Bit {
        /// Width in bits, 1..=128.
        width: u16,
        /// The masked payload.
        value: u128,
    },
    /// The unit value.
    Unit,
    /// A record (struct) value, fields keyed by interned symbol.
    Record(Vec<(Symbol, Value)>),
    /// A header value. The fragment of the paper only manipulates valid
    /// headers (§4.2/App. I), so `valid` starts `true` and stays `true`.
    Header {
        /// Validity bit.
        valid: bool,
        /// Field values, keyed by interned symbol.
        fields: Vec<(Symbol, Value)>,
    },
    /// A header stack.
    Stack(Vec<Value>),
    /// A match-kind constant (interned kind name).
    MatchKind(Symbol),
    /// A function or action closure.
    Closure(Rc<Closure>),
    /// A table closure.
    Table(Rc<TableValue>),
}

/// A function/action closure: the captured environment, the resolved
/// parameter signature, and the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Closure {
    /// Name, for diagnostics and control-plane action lookup.
    pub name: String,
    /// Environment captured at declaration (Core P4 closures).
    pub env: Env,
    /// Resolved parameters (direction + type + control-plane flag).
    pub params: Vec<p4bid_ast::sectype::FnParam>,
    /// Resolved return type.
    pub ret: SecTy,
    /// Body statements (shared with the AST).
    pub body: Rc<Vec<p4bid_ast::surface::Stmt>>,
    /// Whether this is an action.
    pub is_action: bool,
}

/// A table closure: captured environment, key expressions with their match
/// kinds, and the candidate actions with their bound argument expressions.
///
/// Action names are interned: the per-packet "which action did the control
/// plane pick" comparison is a symbol compare, with the single
/// string-to-symbol probe at the control-plane boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableValue {
    /// Table name (the control-plane configuration key; the control plane
    /// is a user-facing, string-keyed boundary).
    pub name: String,
    /// Environment captured at declaration.
    pub env: Env,
    /// `(key expression, match kind)` pairs.
    pub keys: Vec<(Expr, Symbol)>,
    /// Candidate actions: `(name, bound data-plane argument expressions)`.
    pub actions: Vec<(Symbol, Vec<Expr>)>,
    /// Default action name (must be one of `actions`); `NoAction`-like
    /// no-op when `None` and no control-plane default is configured.
    pub default_action: Option<Symbol>,
}

impl Value {
    /// Builds a masked bit-vector.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=128`.
    #[must_use]
    pub fn bit(width: u16, value: u128) -> Self {
        assert!((1..=128).contains(&width), "bit width out of range");
        Value::Bit { width, value: mask(width, value) }
    }

    /// The zero/default value of a resolved type (`init_Δ τ`): `false`,
    /// `0`, zeroed fields, and stacks of zeroed elements. Headers start
    /// valid (the paper's fragment only considers valid headers).
    #[must_use]
    pub fn init(pool: &TyPool, ty: SecTy) -> Self {
        match pool.kind(ty.ty) {
            Ty::Bool => Value::Bool(false),
            Ty::Int => Value::Int(0),
            Ty::Bit(w) => Value::bit(*w, 0),
            Ty::Unit => Value::Unit,
            Ty::Record(fields) => {
                Value::Record(fields.iter().map(|&(n, t)| (n, Value::init(pool, t))).collect())
            }
            Ty::Header(fields) => Value::Header {
                valid: true,
                fields: fields.iter().map(|&(n, t)| (n, Value::init(pool, t))).collect(),
            },
            Ty::Stack(elem, n) => {
                let elem = *elem;
                Value::Stack((0..*n).map(|_| Value::init(pool, elem)).collect())
            }
            // A match-kind *value* carries its kind symbol; a zero value of
            // the type is unreachable on typechecked programs (match kinds
            // never type variables). Symbol 0 is the `TyCtx` interner's
            // reserved empty-string sentinel.
            Ty::MatchKind => Value::MatchKind(Symbol::from_raw(0)),
            // Closure types have no default; these cases are unreachable on
            // typechecked programs (locations of closure type are always
            // initialized by their declaration).
            Ty::Table(_) | Ty::Function(_) => Value::Unit,
        }
    }

    /// Reads a record/header field by interned name.
    #[must_use]
    pub fn field(&self, name: Symbol) -> Option<&Value> {
        match self {
            Value::Record(fs) | Value::Header { fields: fs, .. } => {
                fs.iter().find(|(n, _)| *n == name).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Mutable access to a record/header field.
    pub fn field_mut(&mut self, name: Symbol) -> Option<&mut Value> {
        match self {
            Value::Record(fs) | Value::Header { fields: fs, .. } => {
                fs.iter_mut().find(|(n, _)| *n == name).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Coerces `self` to the shape of `shape`: the only real conversion is
    /// P4's implicit `int` → `bit<n>` (masking) and `bit<n>` → `int`;
    /// everything else must already match and is returned unchanged.
    #[must_use]
    pub fn coerce_to_shape(self, shape: &Value) -> Value {
        match (&self, shape) {
            (Value::Int(i), Value::Bit { width, .. }) => Value::bit(*width, *i as u128),
            (Value::Bit { value, .. }, Value::Int(_)) => Value::Int(*value as i128),
            _ => self,
        }
    }

    /// Coerces `self` to fit a resolved type (used at copy-in and
    /// variable initialization).
    #[must_use]
    pub fn coerce_to_type(self, pool: &TyPool, ty: SecTy) -> Value {
        match (&self, pool.kind(ty.ty)) {
            (Value::Int(i), Ty::Bit(w)) => Value::bit(*w, *i as u128),
            (Value::Bit { value, .. }, Ty::Int) => Value::Int(*value as i128),
            _ => self,
        }
    }

    /// The numeric payload, for match-key comparison: bit-vectors as
    /// unsigned, ints sign-extended.
    #[must_use]
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Value::Bit { value, .. } => Some(*value),
            Value::Int(i) => Some(*i as u128),
            Value::Bool(b) => Some(u128::from(*b)),
            _ => None,
        }
    }

    /// Renders the value with field names resolved through `syms`
    /// (diagnostics boundary; the plain [`Display`](fmt::Display) impl
    /// prints raw symbols).
    #[must_use]
    pub fn display_with(&self, syms: &Interner) -> String {
        let mut out = String::new();
        render(self, Some(syms), &mut out);
        out
    }
}

/// The single value renderer behind both [`Display`](fmt::Display)
/// (`syms: None`, raw symbols) and [`Value::display_with`] (resolved
/// field/kind names).
fn render(v: &Value, syms: Option<&Interner>, out: &mut String) {
    use std::fmt::Write as _;
    let name = |sym: Symbol, out: &mut String| match syms {
        Some(syms) => out.push_str(syms.resolve(sym)),
        None => {
            let _ = write!(out, "{sym}");
        }
    };
    match v {
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Bit { width, value } => {
            let _ = write!(out, "{width}w{value}");
        }
        Value::Unit => out.push_str("()"),
        Value::Record(fields) => {
            out.push('{');
            for (i, (n, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                name(*n, out);
                out.push_str(" = ");
                render(v, syms, out);
            }
            out.push('}');
        }
        Value::Header { valid, fields } => {
            let _ = write!(out, "header({})", if *valid { "valid" } else { "invalid" });
            out.push('{');
            for (i, (n, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                name(*n, out);
                out.push_str(" = ");
                render(v, syms, out);
            }
            out.push('}');
        }
        Value::Stack(vs) => {
            out.push('[');
            for (i, v) in vs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render(v, syms, out);
            }
            out.push(']');
        }
        Value::MatchKind(k) => {
            out.push_str("match_kind(");
            name(*k, out);
            out.push(')');
        }
        Value::Closure(c) => {
            let _ = write!(out, "<closure {}>", c.name);
        }
        Value::Table(t) => {
            let _ = write!(out, "<table {}>", t.name);
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        render(self, None, &mut out);
        f.write_str(&out)
    }
}

/// Masks `value` to `width` bits.
#[must_use]
pub fn mask(width: u16, value: u128) -> u128 {
    if width >= 128 {
        value
    } else {
        value & ((1u128 << width) - 1)
    }
}

/// Errors from the value-level operator evaluator. On typechecked programs
/// these indicate interpreter bugs or control-plane misconfiguration, never
/// user errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpError(pub String);

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for OpError {}

/// The evaluation oracle `E(⊕, v₁, v₂)` for binary operations. Deterministic
/// and total on the operand shapes the typing oracle admits (the key
/// property the non-interference proof assumes in Appendix I, Eq. 8).
///
/// # Errors
///
/// Returns [`OpError`] on shape mismatches the typechecker would have
/// rejected.
pub fn eval_binop(op: BinOp, lhs: Value, rhs: Value) -> Result<Value, OpError> {
    use BinOp::*;
    // Normalize int-vs-bit operand pairs to a common shape.
    let (lhs, rhs) = match (&lhs, &rhs) {
        (Value::Int(_), Value::Bit { .. }) => {
            let l = lhs.coerce_to_shape(&rhs);
            (l, rhs)
        }
        (Value::Bit { .. }, Value::Int(_)) if !matches!(op, Shl | Shr) => {
            let r = rhs.coerce_to_shape(&lhs);
            (lhs, r)
        }
        _ => (lhs, rhs),
    };
    match (op, &lhs, &rhs) {
        (Add, Value::Bit { width, value: a }, Value::Bit { value: b, .. }) => {
            Ok(Value::bit(*width, a.wrapping_add(*b)))
        }
        (Sub, Value::Bit { width, value: a }, Value::Bit { value: b, .. }) => {
            Ok(Value::bit(*width, a.wrapping_sub(*b)))
        }
        (Mul, Value::Bit { width, value: a }, Value::Bit { value: b, .. }) => {
            Ok(Value::bit(*width, a.wrapping_mul(*b)))
        }
        (BitAnd, Value::Bit { width, value: a }, Value::Bit { value: b, .. }) => {
            Ok(Value::bit(*width, a & b))
        }
        (BitOr, Value::Bit { width, value: a }, Value::Bit { value: b, .. }) => {
            Ok(Value::bit(*width, a | b))
        }
        (BitXor, Value::Bit { width, value: a }, Value::Bit { value: b, .. }) => {
            Ok(Value::bit(*width, a ^ b))
        }
        (Add, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
        (Sub, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_sub(*b))),
        (Mul, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_mul(*b))),
        (BitAnd, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a & b)),
        (BitOr, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a | b)),
        (BitXor, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a ^ b)),
        (Shl, Value::Bit { width, value: a }, rhs) => {
            let sh = shift_amount(rhs)?;
            Ok(if sh >= u32::from(*width) {
                Value::bit(*width, 0)
            } else {
                Value::bit(*width, a << sh)
            })
        }
        (Shr, Value::Bit { width, value: a }, rhs) => {
            let sh = shift_amount(rhs)?;
            Ok(if sh >= u32::from(*width) {
                Value::bit(*width, 0)
            } else {
                Value::bit(*width, a >> sh)
            })
        }
        (Shl, Value::Int(a), rhs) => {
            let sh = shift_amount(rhs)?.min(127);
            Ok(Value::Int(a.wrapping_shl(sh)))
        }
        (Shr, Value::Int(a), rhs) => {
            let sh = shift_amount(rhs)?.min(127);
            Ok(Value::Int(a.wrapping_shr(sh)))
        }
        (Eq, a, b) => Ok(Value::Bool(a == b)),
        (Ne, a, b) => Ok(Value::Bool(a != b)),
        (Lt, a, b) => compare(a, b).map(|o| Value::Bool(o == std::cmp::Ordering::Less)),
        (Le, a, b) => compare(a, b).map(|o| Value::Bool(o != std::cmp::Ordering::Greater)),
        (Gt, a, b) => compare(a, b).map(|o| Value::Bool(o == std::cmp::Ordering::Greater)),
        (Ge, a, b) => compare(a, b).map(|o| Value::Bool(o != std::cmp::Ordering::Less)),
        (And, Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(*a && *b)),
        (Or, Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(*a || *b)),
        (op, a, b) => Err(OpError(format!("cannot evaluate `{a} {op} {b}`"))),
    }
}

/// The evaluation oracle for unary operations.
///
/// # Errors
///
/// Returns [`OpError`] on shapes the typechecker would have rejected.
pub fn eval_unop(op: UnOp, operand: Value) -> Result<Value, OpError> {
    match (op, &operand) {
        (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
        (UnOp::Neg, Value::Bit { width, value }) => Ok(Value::bit(*width, value.wrapping_neg())),
        (UnOp::Neg, Value::Int(i)) => Ok(Value::Int(i.wrapping_neg())),
        (UnOp::BitNot, Value::Bit { width, value }) => Ok(Value::bit(*width, !value)),
        (op, v) => Err(OpError(format!("cannot evaluate `{op}{v}`"))),
    }
}

fn shift_amount(v: &Value) -> Result<u32, OpError> {
    match v {
        Value::Bit { value, .. } => Ok(u32::try_from(*value).unwrap_or(u32::MAX)),
        Value::Int(i) if *i >= 0 => Ok(u32::try_from(*i).unwrap_or(u32::MAX)),
        other => Err(OpError(format!("invalid shift amount `{other}`"))),
    }
}

fn compare(a: &Value, b: &Value) -> Result<std::cmp::Ordering, OpError> {
    match (a, b) {
        (Value::Bit { value: x, .. }, Value::Bit { value: y, .. }) => Ok(x.cmp(y)),
        (Value::Int(x), Value::Int(y)) => Ok(x.cmp(y)),
        _ => Err(OpError(format!("cannot compare `{a}` and `{b}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4bid_ast::intern::Interner;
    use p4bid_ast::sectype::FieldList;
    use p4bid_lattice::Lattice;

    #[test]
    fn bit_construction_masks() {
        assert_eq!(Value::bit(4, 255), Value::Bit { width: 4, value: 15 });
        assert_eq!(Value::bit(128, 7), Value::Bit { width: 128, value: 7 });
    }

    #[test]
    fn init_values() {
        let lat = Lattice::two_point();
        let mut pool = TyPool::new();
        let bit8 = pool.bit(8);
        let bit9 = pool.bit(9);
        assert_eq!(
            Value::init(&pool, SecTy::bottom(p4bid_ast::TyId::BOOL, &lat)),
            Value::Bool(false)
        );
        assert_eq!(Value::init(&pool, SecTy::bottom(bit9, &lat)), Value::bit(9, 0));
        let stack = pool.stack(SecTy::bottom(bit8, &lat), 3);
        assert_eq!(
            Value::init(&pool, SecTy::bottom(stack, &lat)),
            Value::Stack(vec![Value::bit(8, 0); 3])
        );
    }

    #[test]
    fn header_init_is_valid_and_zeroed() {
        let lat = Lattice::two_point();
        let mut syms = Interner::new();
        let mut pool = TyPool::new();
        let ttl = syms.intern("ttl");
        let bit8 = pool.bit(8);
        let hdr = pool.header(FieldList::new(vec![(ttl, SecTy::bottom(bit8, &lat))]));
        let v = Value::init(&pool, SecTy::bottom(hdr, &lat));
        let Value::Header { valid, fields } = &v else { panic!() };
        assert!(*valid);
        assert_eq!(fields[0], (ttl, Value::bit(8, 0)));
    }

    #[test]
    fn wrapping_bit_arithmetic() {
        let a = Value::bit(8, 250);
        let b = Value::bit(8, 10);
        assert_eq!(eval_binop(BinOp::Add, a.clone(), b.clone()).unwrap(), Value::bit(8, 4));
        assert_eq!(eval_binop(BinOp::Sub, b.clone(), a.clone()).unwrap(), Value::bit(8, 16));
        assert_eq!(eval_binop(BinOp::Mul, a, b).unwrap(), Value::bit(8, 196)); // 2500 % 256
    }

    #[test]
    fn int_coerces_to_bit_operand() {
        let x = Value::bit(8, 7);
        assert_eq!(eval_binop(BinOp::Add, x.clone(), Value::Int(1)).unwrap(), Value::bit(8, 8));
        assert_eq!(eval_binop(BinOp::Eq, Value::Int(7), x).unwrap(), Value::Bool(true));
    }

    #[test]
    fn shifts() {
        let x = Value::bit(8, 0b1010_1010);
        assert_eq!(
            eval_binop(BinOp::Shr, x.clone(), Value::Int(1)).unwrap(),
            Value::bit(8, 0b0101_0101)
        );
        assert_eq!(
            eval_binop(BinOp::Shl, x.clone(), Value::Int(1)).unwrap(),
            Value::bit(8, 0b0101_0100)
        );
        // Over-shifting yields zero, deterministically.
        assert_eq!(eval_binop(BinOp::Shr, x, Value::Int(64)).unwrap(), Value::bit(8, 0));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(
            eval_binop(BinOp::Lt, Value::bit(8, 3), Value::bit(8, 5)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_binop(BinOp::Ge, Value::Int(-1), Value::Int(-1)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_binop(BinOp::And, Value::Bool(true), Value::Bool(false)).unwrap(),
            Value::Bool(false)
        );
        assert!(eval_binop(BinOp::Lt, Value::Bool(true), Value::Bool(false)).is_err());
    }

    #[test]
    fn unary_ops() {
        assert_eq!(eval_unop(UnOp::Not, Value::Bool(false)).unwrap(), Value::Bool(true));
        assert_eq!(eval_unop(UnOp::Neg, Value::bit(8, 1)).unwrap(), Value::bit(8, 255));
        assert_eq!(eval_unop(UnOp::BitNot, Value::bit(4, 0b0101)).unwrap(), Value::bit(4, 0b1010));
        assert_eq!(eval_unop(UnOp::Neg, Value::Int(5)).unwrap(), Value::Int(-5));
        assert!(eval_unop(UnOp::BitNot, Value::Int(5)).is_err());
    }

    #[test]
    fn field_access() {
        let mut syms = Interner::new();
        let a = syms.intern("a");
        let b = syms.intern("b");
        let mut v = Value::Record(vec![(a, Value::Int(1))]);
        assert_eq!(v.field(a), Some(&Value::Int(1)));
        assert_eq!(v.field(b), None);
        *v.field_mut(a).unwrap() = Value::Int(2);
        assert_eq!(v.field(a), Some(&Value::Int(2)));
    }

    #[test]
    fn display_with_resolves_names() {
        let mut syms = Interner::new();
        let a = syms.intern("a");
        let v = Value::Record(vec![(a, Value::bit(8, 7))]);
        assert_eq!(v.display_with(&syms), "{a = 8w7}");
    }

    #[test]
    fn coercions() {
        let shape = Value::bit(8, 0);
        assert_eq!(Value::Int(300).coerce_to_shape(&shape), Value::bit(8, 44));
        assert_eq!(Value::bit(8, 9).coerce_to_shape(&Value::Int(0)), Value::Int(9));
        // No-op on matching shapes.
        assert_eq!(Value::Bool(true).coerce_to_shape(&Value::Bool(false)), Value::Bool(true));
    }

    #[test]
    fn determinism_of_oracle() {
        // E(⊕, x, y) is a function: same inputs, same outputs.
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::BitXor, BinOp::Lt] {
            let a = Value::bit(16, 0xABCD);
            let b = Value::bit(16, 0x1234);
            assert_eq!(
                eval_binop(op, a.clone(), b.clone()).unwrap(),
                eval_binop(op, a.clone(), b.clone()).unwrap()
            );
        }
    }
}
