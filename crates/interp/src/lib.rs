//! Big-step operational semantics for the Core P4 fragment of P4BID
//! (§3.2 and Appendices F–H of the paper).
//!
//! The paper's non-interference theorem is a statement about the petr4
//! evaluation judgements; this crate implements those judgements so the
//! theorem can be *tested*: run a typechecked program twice on
//! low-equivalent inputs and compare the observable outputs (see the
//! `p4bid-ni` crate).
//!
//! * [`Value`] — runtime values (masked bit-vectors, records, valid
//!   headers, stacks, closures, tables) with the deterministic evaluation
//!   oracle for operators;
//! * [`Store`]/[`Env`] — the memory store μ and environment ε;
//! * [`ControlPlane`] — installed table entries (`C`), with `exact`,
//!   `lpm`, and `ternary` matching;
//! * [`run_control`] — evaluates one control block on a packet
//!   (copy-in/copy-out of the control parameters, signals, table
//!   application).
//!
//! # Examples
//!
//! ```
//! use p4bid_typeck::{check_source, CheckOptions};
//! use p4bid_interp::{run_control, ControlPlane, ControlOutcome, Value};
//!
//! let typed = check_source(r#"
//!     control Swap(inout bit<8> a, inout bit<8> b) {
//!         apply { bit<8> t = a; a = b; b = t; }
//!     }
//! "#, &CheckOptions::ifc()).unwrap();
//! let out = run_control(
//!     &typed,
//!     &ControlPlane::new(),
//!     "Swap",
//!     vec![Value::bit(8, 1), Value::bit(8, 2)],
//! ).unwrap();
//! assert_eq!(out.param("a"), Some(&Value::bit(8, 2)));
//! assert_eq!(out.param("b"), Some(&Value::bit(8, 1)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control_plane;
pub mod eval;
pub mod store;
pub mod value;

pub use control_plane::{ControlPlane, KeyPattern, TableConfig, TableEntry};
pub use eval::{run_control, ControlOutcome, EvalError, Interp, Signal, DEFAULT_FUEL};
pub use store::{Env, Loc, Store};
pub use value::{Closure, TableValue, Value};
