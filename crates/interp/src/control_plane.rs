//! The control plane `C` of the Core P4 semantics (Figure 2):
//! per-table match entries installed by the controller.
//!
//! `C : Loc × Val × PartialActionRef → ActionRef` in the paper; here a
//! table is identified by name and an entry carries the key patterns, the
//! action to run, and the control-plane-supplied (directionless) arguments.
//! As in the paper's non-interference setup, the same control plane is used
//! for both runs and entries are assumed well-typed at the declared
//! security types.

use crate::value::Value;

/// A key-matching pattern, one per table key column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyPattern {
    /// `exact`: the key must equal the value (after `int`/`bit` shape
    /// normalization).
    Exact(Value),
    /// `lpm`: the top `prefix_len` bits of the key must equal those of
    /// `value`. `prefix_len == 0` matches everything.
    Lpm {
        /// Prefix value.
        value: Value,
        /// Number of significant leading bits.
        prefix_len: u16,
    },
    /// `ternary`: `key & mask == value & mask`.
    Ternary {
        /// Comparison value.
        value: Value,
        /// Care-bit mask.
        mask: Value,
    },
    /// Wildcard: matches any key.
    Any,
}

impl KeyPattern {
    /// Whether `key` matches this pattern.
    #[must_use]
    pub fn matches(&self, key: &Value) -> bool {
        match self {
            KeyPattern::Exact(v) => {
                key.clone().coerce_to_shape(v) == *v || v.clone().coerce_to_shape(key) == *key
            }
            KeyPattern::Lpm { value, prefix_len } => {
                let (Some(k), Some(v)) = (key.as_u128(), value.as_u128()) else {
                    return false;
                };
                let width = match key {
                    Value::Bit { width, .. } => u32::from(*width),
                    _ => 128,
                };
                let plen = u32::from(*prefix_len).min(width);
                if plen == 0 {
                    return true;
                }
                let shift = width - plen;
                (k >> shift) == (v >> shift)
            }
            KeyPattern::Ternary { value, mask } => {
                let (Some(k), Some(v), Some(m)) = (key.as_u128(), value.as_u128(), mask.as_u128())
                else {
                    return false;
                };
                (k & m) == (v & m)
            }
            KeyPattern::Any => true,
        }
    }

    /// The prefix length used to rank `lpm` matches; non-lpm patterns rank
    /// neutrally.
    #[must_use]
    fn lpm_len(&self) -> u32 {
        match self {
            KeyPattern::Lpm { prefix_len, .. } => u32::from(*prefix_len),
            _ => 0,
        }
    }
}

/// One installed table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableEntry {
    /// One pattern per key column.
    pub patterns: Vec<KeyPattern>,
    /// Name of the action to invoke (must be in the table's action list).
    pub action: String,
    /// Control-plane arguments for the action's directionless parameters.
    pub args: Vec<Value>,
    /// Higher priorities win; ties break by longest lpm prefix, then
    /// installation order.
    pub priority: i32,
}

impl TableEntry {
    /// A priority-0 entry.
    #[must_use]
    pub fn new(patterns: Vec<KeyPattern>, action: impl Into<String>, args: Vec<Value>) -> Self {
        TableEntry { patterns, action: action.into(), args, priority: 0 }
    }

    /// Sets the priority, builder-style.
    #[must_use]
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }
}

/// Configuration of a single table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableConfig {
    /// Installed entries, in installation order.
    pub entries: Vec<TableEntry>,
    /// Optional default action override `(name, control-plane args)` used
    /// on a lookup miss; falls back to the table's declared
    /// `default_action`.
    pub default_action: Option<(String, Vec<Value>)>,
}

/// The control plane: table name → configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ControlPlane {
    tables: std::collections::HashMap<String, TableConfig>,
}

impl ControlPlane {
    /// An empty control plane (every lookup misses; default actions run).
    #[must_use]
    pub fn new() -> Self {
        ControlPlane::default()
    }

    /// Installs an entry into a table, creating the table config on first
    /// use.
    pub fn add_entry(&mut self, table: &str, entry: TableEntry) -> &mut Self {
        self.tables.entry(table.to_string()).or_default().entries.push(entry);
        self
    }

    /// Overrides a table's default action.
    pub fn set_default_action(
        &mut self,
        table: &str,
        action: impl Into<String>,
        args: Vec<Value>,
    ) -> &mut Self {
        self.tables.entry(table.to_string()).or_default().default_action =
            Some((action.into(), args));
        self
    }

    /// The configuration for a table, if any entries/defaults were
    /// installed.
    #[must_use]
    pub fn table(&self, name: &str) -> Option<&TableConfig> {
        self.tables.get(name)
    }

    /// Performs the `⇓match` judgement: given the evaluated key values,
    /// returns the matched `(action, control-plane args)`, or the
    /// configured/declared default on a miss (`None` if the table has no
    /// default at all — the caller then runs nothing, like `NoAction`).
    #[must_use]
    pub fn lookup(&self, table: &str, keys: &[Value]) -> Option<(String, Vec<Value>)> {
        let config = self.tables.get(table);
        if let Some(config) = config {
            let mut best: Option<(usize, &TableEntry)> = None;
            for (ix, entry) in config.entries.iter().enumerate() {
                if entry.patterns.len() != keys.len() {
                    continue;
                }
                if !entry.patterns.iter().zip(keys).all(|(p, k)| p.matches(k)) {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bix, b)) => {
                        let cand = (entry.priority, total_lpm(entry), std::cmp::Reverse(ix));
                        let cur = (b.priority, total_lpm(b), std::cmp::Reverse(bix));
                        cand > cur
                    }
                };
                if better {
                    best = Some((ix, entry));
                }
            }
            if let Some((_, e)) = best {
                return Some((e.action.clone(), e.args.clone()));
            }
            if let Some((name, args)) = &config.default_action {
                return Some((name.clone(), args.clone()));
            }
        }
        None
    }
}

fn total_lpm(e: &TableEntry) -> u32 {
    e.patterns.iter().map(KeyPattern::lpm_len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b32(v: u128) -> Value {
        Value::bit(32, v)
    }

    #[test]
    fn exact_matching() {
        let p = KeyPattern::Exact(b32(10));
        assert!(p.matches(&b32(10)));
        assert!(!p.matches(&b32(11)));
        // Shape-normalized: an int key matches a bit pattern.
        assert!(p.matches(&Value::Int(10)));
    }

    #[test]
    fn lpm_matching() {
        // 10.0.0.0/8 — top 8 bits = 10.
        let p = KeyPattern::Lpm { value: b32(10 << 24), prefix_len: 8 };
        assert!(p.matches(&b32((10 << 24) | 12345)));
        assert!(!p.matches(&b32(11 << 24)));
        let p0 = KeyPattern::Lpm { value: b32(0), prefix_len: 0 };
        assert!(p0.matches(&b32(0xFFFF_FFFF)));
    }

    #[test]
    fn ternary_matching() {
        let p = KeyPattern::Ternary { value: b32(0b1010), mask: b32(0b1110) };
        assert!(p.matches(&b32(0b1011)));
        assert!(!p.matches(&b32(0b0011)));
    }

    #[test]
    fn wildcard() {
        assert!(KeyPattern::Any.matches(&Value::Bool(true)));
    }

    #[test]
    fn lookup_longest_prefix_wins() {
        let mut cp = ControlPlane::new();
        cp.add_entry(
            "t",
            TableEntry::new(
                vec![KeyPattern::Lpm { value: b32(10 << 24), prefix_len: 8 }],
                "short",
                vec![],
            ),
        );
        cp.add_entry(
            "t",
            TableEntry::new(
                vec![KeyPattern::Lpm { value: b32((10 << 24) | (1 << 16)), prefix_len: 16 }],
                "long",
                vec![],
            ),
        );
        let (action, _) = cp.lookup("t", &[b32((10 << 24) | (1 << 16) | 7)]).unwrap();
        assert_eq!(action, "long");
        let (action, _) = cp.lookup("t", &[b32((10 << 24) | (9 << 16))]).unwrap();
        assert_eq!(action, "short");
    }

    #[test]
    fn lookup_priority_wins_over_order() {
        let mut cp = ControlPlane::new();
        cp.add_entry("t", TableEntry::new(vec![KeyPattern::Any], "first", vec![]));
        cp.add_entry(
            "t",
            TableEntry::new(vec![KeyPattern::Any], "second", vec![]).with_priority(5),
        );
        assert_eq!(cp.lookup("t", &[b32(0)]).unwrap().0, "second");
    }

    #[test]
    fn first_installed_wins_ties() {
        let mut cp = ControlPlane::new();
        cp.add_entry("t", TableEntry::new(vec![KeyPattern::Any], "a", vec![]));
        cp.add_entry("t", TableEntry::new(vec![KeyPattern::Any], "b", vec![]));
        assert_eq!(cp.lookup("t", &[b32(0)]).unwrap().0, "a");
    }

    #[test]
    fn miss_falls_back_to_default() {
        let mut cp = ControlPlane::new();
        cp.add_entry("t", TableEntry::new(vec![KeyPattern::Exact(b32(1))], "hit", vec![b32(99)]));
        cp.set_default_action("t", "miss", vec![]);
        assert_eq!(cp.lookup("t", &[b32(1)]).unwrap().0, "hit");
        assert_eq!(cp.lookup("t", &[b32(2)]).unwrap().0, "miss");
        // Unknown table: nothing at all.
        assert_eq!(cp.lookup("ghost", &[b32(2)]), None);
    }

    #[test]
    fn arity_mismatched_entries_are_skipped() {
        let mut cp = ControlPlane::new();
        cp.add_entry("t", TableEntry::new(vec![KeyPattern::Any, KeyPattern::Any], "two", vec![]));
        assert_eq!(cp.lookup("t", &[b32(0)]), None);
    }
}
