//! The memory store μ and environment ε of the Core P4 semantics (§3.2).
//!
//! μ maps locations to values; ε maps interned variable names
//! ([`Symbol`]s) to locations. Closures capture ε by value, exactly like
//! the `clos(ε, …)` and `table_l(ε, …)` values of the petr4 semantics —
//! and because ε is a flat vector of `Copy` pairs, that capture is a
//! memcpy instead of a `String`-keyed hash-map clone.

use crate::value::Value;
use p4bid_ast::intern::Symbol;

/// A store location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc(usize);

impl Loc {
    /// The raw index (for debugging and the NI harness's store typing Ξ).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// The memory store μ: an append-only arena of values. Locations are never
/// freed (the semantics only ever extends `dom(μ)` — see clause 8 of
/// Definition 4.2).
#[derive(Debug, Clone, Default)]
pub struct Store {
    cells: Vec<Value>,
}

impl Store {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Store::default()
    }

    /// Allocates a fresh location holding `value`.
    pub fn alloc(&mut self, value: Value) -> Loc {
        self.cells.push(value);
        Loc(self.cells.len() - 1)
    }

    /// Reads a location.
    ///
    /// # Panics
    ///
    /// Panics on a dangling location (interpreter bug: locations are never
    /// freed).
    #[must_use]
    pub fn read(&self, loc: Loc) -> &Value {
        &self.cells[loc.0]
    }

    /// Overwrites a location.
    ///
    /// # Panics
    ///
    /// Panics on a dangling location.
    pub fn write(&mut self, loc: Loc, value: Value) {
        self.cells[loc.0] = value;
    }

    /// Number of allocated locations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether nothing is allocated yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// The environment ε: interned variable names to locations.
///
/// Backed by a flat vector of `Copy` pairs: environments are small
/// (parameters + locals in scope), so a symbol-compare scan beats hashing,
/// and the per-closure / per-block clone the semantics requires is a
/// memcpy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Env {
    bindings: Vec<(Symbol, Loc)>,
}

impl Env {
    /// An empty environment.
    #[must_use]
    pub fn new() -> Self {
        Env::default()
    }

    /// Binds (or rebinds) a name.
    pub fn bind(&mut self, name: Symbol, loc: Loc) {
        if let Some(slot) = self.bindings.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = loc;
        } else {
            self.bindings.push((name, loc));
        }
    }

    /// Looks a name up.
    #[must_use]
    pub fn lookup(&self, name: Symbol) -> Option<Loc> {
        self.bindings.iter().find(|(n, _)| *n == name).map(|&(_, l)| l)
    }

    /// Iterates over the bindings (binding order, rebinds in place).
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, Loc)> + '_ {
        self.bindings.iter().copied()
    }

    /// Number of bindings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether there are no bindings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write() {
        let mut store = Store::new();
        let a = store.alloc(Value::Int(1));
        let b = store.alloc(Value::Bool(true));
        assert_ne!(a, b);
        assert_eq!(store.read(a), &Value::Int(1));
        store.write(a, Value::Int(42));
        assert_eq!(store.read(a), &Value::Int(42));
        assert_eq!(store.read(b), &Value::Bool(true));
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());
    }

    #[test]
    fn env_binding_and_shadowing() {
        let mut syms = p4bid_ast::intern::Interner::new();
        let x = syms.intern("x");
        let y = syms.intern("y");
        let mut store = Store::new();
        let l1 = store.alloc(Value::Int(1));
        let l2 = store.alloc(Value::Int(2));
        let mut env = Env::new();
        env.bind(x, l1);
        assert_eq!(env.lookup(x), Some(l1));
        // Closures capture the env by value: later rebinding does not
        // affect the captured copy.
        let captured = env.clone();
        env.bind(x, l2);
        assert_eq!(env.lookup(x), Some(l2));
        assert_eq!(captured.lookup(x), Some(l1));
        assert_eq!(env.lookup(y), None);
        assert_eq!(env.len(), 1);
    }
}
