//! The memory store μ and environment ε of the Core P4 semantics (§3.2).
//!
//! μ maps locations to values; ε maps variable names to locations. Closures
//! capture ε by value (cheap clone), exactly like the `clos(ε, …)` and
//! `table_l(ε, …)` values of the petr4 semantics.

use crate::value::Value;
use std::collections::HashMap;

/// A store location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc(usize);

impl Loc {
    /// The raw index (for debugging and the NI harness's store typing Ξ).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// The memory store μ: an append-only arena of values. Locations are never
/// freed (the semantics only ever extends `dom(μ)` — see clause 8 of
/// Definition 4.2).
#[derive(Debug, Clone, Default)]
pub struct Store {
    cells: Vec<Value>,
}

impl Store {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Store::default()
    }

    /// Allocates a fresh location holding `value`.
    pub fn alloc(&mut self, value: Value) -> Loc {
        self.cells.push(value);
        Loc(self.cells.len() - 1)
    }

    /// Reads a location.
    ///
    /// # Panics
    ///
    /// Panics on a dangling location (interpreter bug: locations are never
    /// freed).
    #[must_use]
    pub fn read(&self, loc: Loc) -> &Value {
        &self.cells[loc.0]
    }

    /// Overwrites a location.
    ///
    /// # Panics
    ///
    /// Panics on a dangling location.
    pub fn write(&mut self, loc: Loc, value: Value) {
        self.cells[loc.0] = value;
    }

    /// Number of allocated locations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether nothing is allocated yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// The environment ε: variable names to locations. Cloning is cheap enough
/// for the paper-scale programs we interpret; closures clone it at
/// declaration time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Env {
    map: HashMap<String, Loc>,
}

impl Env {
    /// An empty environment.
    #[must_use]
    pub fn new() -> Self {
        Env::default()
    }

    /// Binds (or shadows) a name.
    pub fn bind(&mut self, name: &str, loc: Loc) {
        self.map.insert(name.to_string(), loc);
    }

    /// Looks a name up.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<Loc> {
        self.map.get(name).copied()
    }

    /// Iterates over the bindings (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (&str, Loc)> {
        self.map.iter().map(|(n, l)| (n.as_str(), *l))
    }

    /// Number of bindings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether there are no bindings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write() {
        let mut store = Store::new();
        let a = store.alloc(Value::Int(1));
        let b = store.alloc(Value::Bool(true));
        assert_ne!(a, b);
        assert_eq!(store.read(a), &Value::Int(1));
        store.write(a, Value::Int(42));
        assert_eq!(store.read(a), &Value::Int(42));
        assert_eq!(store.read(b), &Value::Bool(true));
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());
    }

    #[test]
    fn env_binding_and_shadowing() {
        let mut store = Store::new();
        let l1 = store.alloc(Value::Int(1));
        let l2 = store.alloc(Value::Int(2));
        let mut env = Env::new();
        env.bind("x", l1);
        assert_eq!(env.lookup("x"), Some(l1));
        // Closures capture the env by value: later rebinding does not
        // affect the captured copy.
        let captured = env.clone();
        env.bind("x", l2);
        assert_eq!(env.lookup("x"), Some(l2));
        assert_eq!(captured.lookup("x"), Some(l1));
        assert_eq!(env.lookup("y"), None);
        assert_eq!(env.len(), 1);
    }
}
