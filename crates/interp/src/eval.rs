//! The big-step evaluator for the Core P4 fragment (§3.2 and Appendices
//! F–H of the paper).
//!
//! Implements the judgements
//!
//! ```text
//! ⟨C, Δ, μ, ε, exp⟩  ⇓ ⟨μ', val⟩
//! ⟨C, Δ, μ, ε, stmt⟩ ⇓ ⟨μ', ε', sig⟩
//! ⟨C, Δ, μ, ε, decl⟩ ⇓ ⟨Δ', μ', ε', sig⟩
//! ```
//!
//! including l-value evaluation/writing (Appendix F/G), the
//! copy-in/copy-out calling convention (Appendix H), table matching
//! against the control plane, and the three control-flow signals
//! `cont` / `return val` / `exit`.
//!
//! Names are resolved against the typed program's shared interner: the
//! per-occurrence cost of a variable or field access is one interner probe
//! (a hash of the string) followed by symbol-indexed lookups; values,
//! environments, and l-value paths are all keyed by [`Symbol`]. String
//! comparison survives only at the control-plane boundary (table/action
//! names arriving from the controller) and in diagnostics.
//!
//! Out-of-bounds stack reads produce the deterministic `havoc(τ)` (a
//! zeroed value of the element shape) and out-of-bounds writes are no-ops,
//! matching the `Eval 1 error` rules in Appendix I case 8 and keeping the
//! evaluator total.

use crate::control_plane::ControlPlane;
use crate::store::{Env, Loc, Store};
use crate::value::{eval_binop, eval_unop, Closure, TableValue, Value};
use p4bid_ast::intern::Symbol;
use p4bid_ast::sectype::{FnParam, SecTy};
use p4bid_ast::surface::*;
use p4bid_typeck::TypedProgram;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// Default execution fuel. Core P4 has no recursion or loops, so on
/// typechecked programs this is pure defense in depth.
pub const DEFAULT_FUEL: u64 = 10_000_000;

/// Evaluation errors. On typechecked programs only control-plane
/// misconfigurations and fuel exhaustion are reachable; the `Internal`
/// variants would indicate interpreter bugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The requested control block does not exist.
    UnknownControl(String),
    /// `run_control` was given the wrong number of arguments.
    ArgCount {
        /// Parameters the control declares.
        expected: usize,
        /// Arguments supplied.
        got: usize,
    },
    /// A control-plane entry names an action the table does not list.
    UnknownEntryAction {
        /// Table name.
        table: String,
        /// Offending action name.
        action: String,
    },
    /// A control-plane entry's arguments do not fit the action's
    /// control-plane parameters.
    EntryArgMismatch {
        /// Table name.
        table: String,
        /// Action name.
        action: String,
        /// What went wrong.
        detail: String,
    },
    /// The evaluator ran out of fuel.
    FuelExhausted,
    /// An internal invariant failed (a bug: typechecked programs should
    /// never reach this).
    Internal(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownControl(n) => write!(f, "unknown control `{n}`"),
            EvalError::ArgCount { expected, got } => {
                write!(f, "control takes {expected} argument(s), {got} supplied")
            }
            EvalError::UnknownEntryAction { table, action } => {
                write!(f, "control-plane entry for `{table}` names unknown action `{action}`")
            }
            EvalError::EntryArgMismatch { table, action, detail } => {
                write!(f, "control-plane arguments for `{action}` in table `{table}`: {detail}")
            }
            EvalError::FuelExhausted => write!(f, "evaluation fuel exhausted"),
            EvalError::Internal(m) => write!(f, "internal interpreter error: {m}"),
        }
    }
}

impl Error for EvalError {}

/// Control-flow signals (`sig`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Signal {
    /// Fall through to the next statement.
    Cont,
    /// Return from the enclosing function with a value (`Unit` for bare
    /// `return;`).
    Return(Value),
    /// Abort the whole control block.
    Exit,
}

/// Result of running a control on a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlOutcome {
    /// Final values of all control parameters, in declaration order
    /// (`inout` parameters reflect the writes; `in` parameters are
    /// returned as passed).
    pub params: Vec<(String, Value)>,
    /// Whether the control terminated via `exit`.
    pub exited: bool,
}

impl ControlOutcome {
    /// Looks up a final parameter value by name.
    #[must_use]
    pub fn param(&self, name: &str) -> Option<&Value> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

/// Runs a control block of a typechecked program on the given parameter
/// values, under the given control plane.
///
/// # Errors
///
/// See [`EvalError`]. On typechecked programs only control-plane
/// misconfiguration (bad action names/arguments in entries) is reachable.
///
/// # Examples
///
/// ```
/// use p4bid_typeck::{check_source, CheckOptions};
/// use p4bid_interp::{run_control, ControlPlane, Value};
///
/// let typed = check_source(
///     "control Inc(inout bit<8> x) { apply { x = x + 8w1; } }",
///     &CheckOptions::ifc(),
/// ).unwrap();
/// let out = run_control(&typed, &ControlPlane::new(), "Inc", vec![Value::bit(8, 41)])
///     .unwrap();
/// assert_eq!(out.param("x"), Some(&Value::bit(8, 42)));
/// ```
pub fn run_control(
    typed: &TypedProgram,
    cp: &ControlPlane,
    control: &str,
    args: Vec<Value>,
) -> Result<ControlOutcome, EvalError> {
    Interp::new(typed, cp).run_control(control, args)
}

/// An l-value: a base location plus a path of field/index steps
/// (Appendix F: `lval ::= x | lval.f | lval[n]`, with
/// `lval_base(lval) ∈ dom(ε)`).
#[derive(Debug, Clone, PartialEq, Eq)]
struct LValueRef {
    base: Loc,
    path: Vec<PathSeg>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PathSeg {
    Field(Symbol),
    Index(usize),
}

/// Control-flow interrupts threaded through expression evaluation: an
/// `exit` raised inside a callee aborts the whole control block.
#[derive(Debug)]
enum Interrupt {
    Exit,
    Fail(EvalError),
}

impl From<EvalError> for Interrupt {
    fn from(e: EvalError) -> Self {
        Interrupt::Fail(e)
    }
}

type EResult<T> = Result<T, Interrupt>;

/// An argument prepared for copy-in.
enum PreArg {
    /// Already-evaluated value (`in` and control-plane positions).
    Val(Value),
    /// L-value plus its current value (`inout` positions; the l-value is
    /// written back at copy-out).
    Lv(LValueRef, Value),
}

/// The interpreter state: the store μ plus the ambient `C` and Δ.
///
/// The shared [`TyCtx`](p4bid_ast::pool::TyCtx) of the typed program is
/// borrowed per leaf operation and never across an evaluation step, so
/// interleaving interpretation with further checking on the owning session
/// is safe.
pub struct Interp<'a> {
    typed: &'a TypedProgram,
    cp: &'a ControlPlane,
    store: Store,
    fuel: u64,
}

impl<'a> Interp<'a> {
    /// Creates an interpreter with [`DEFAULT_FUEL`].
    #[must_use]
    pub fn new(typed: &'a TypedProgram, cp: &'a ControlPlane) -> Self {
        Interp { typed, cp, store: Store::new(), fuel: DEFAULT_FUEL }
    }

    /// Replaces the fuel budget.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    fn burn(&mut self) -> Result<(), EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::FuelExhausted);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn internal<T>(&self, msg: impl Into<String>) -> EResult<T> {
        Err(Interrupt::Fail(EvalError::Internal(msg.into())))
    }

    /// Probes the shared interner: the symbol of `name`, if the checker
    /// ever saw it (a name it never saw cannot be bound).
    fn sym(&self, name: &str) -> Option<Symbol> {
        self.typed.sym(name)
    }

    /// Interns `name` (declaration sites; idempotent).
    fn intern(&self, name: &str) -> Symbol {
        self.typed.intern(name)
    }

    /// Resolves a symbol to its name (diagnostics boundary).
    fn sym_name(&self, sym: Symbol) -> String {
        self.typed.sym_name(sym)
    }

    /// `init_Δ τ` through the shared pool.
    fn init_value(&self, ty: SecTy) -> Value {
        Value::init(&self.typed.ctx.borrow().types, ty)
    }

    /// Coerces a value to a resolved type through the shared pool.
    fn coerce(&self, v: Value, ty: SecTy) -> Value {
        v.coerce_to_type(&self.typed.ctx.borrow().types, ty)
    }

    /// Resolves a surface annotation through Δ. Infallible on typechecked
    /// programs.
    fn resolve(&self, ann: &AnnType) -> Result<SecTy, EvalError> {
        let mut ctx = self.typed.ctx.borrow_mut();
        self.typed
            .defs
            .resolve(ann, &self.typed.lattice, &mut ctx.types)
            .map_err(|d| EvalError::Internal(format!("type resolution at runtime: {d}")))
    }

    fn resolve_fn_params(
        &self,
        params: &[Param],
        is_action: bool,
    ) -> Result<Vec<FnParam>, EvalError> {
        params
            .iter()
            .map(|p| {
                Ok(FnParam {
                    name: self.intern(&p.name.node),
                    direction: p.direction.unwrap_or(Direction::In),
                    ty: self.resolve(&p.ty)?,
                    control_plane: is_action && p.direction.is_none(),
                })
            })
            .collect()
    }

    /// Runs a control block; see [`run_control`].
    pub fn run_control(
        &mut self,
        control: &str,
        args: Vec<Value>,
    ) -> Result<ControlOutcome, EvalError> {
        let decl = self
            .typed
            .program
            .controls()
            .find(|c| c.name.node == control)
            .ok_or_else(|| EvalError::UnknownControl(control.to_string()))?;
        let typed_ctrl = self
            .typed
            .control(control)
            .ok_or_else(|| EvalError::UnknownControl(control.to_string()))?;
        if args.len() != typed_ctrl.params.len() {
            return Err(EvalError::ArgCount { expected: typed_ctrl.params.len(), got: args.len() });
        }

        // Global scope: prelude and top-level functions/actions.
        let mut env = Env::new();
        for item in self.typed.program.items() {
            match item {
                Item::Function(f) => self.declare_function(&mut env, f)?,
                Item::Action(a) => self.declare_action(&mut env, a)?,
                _ => {}
            }
        }

        // Copy the packet into the parameter locations.
        let mut param_locs = Vec::with_capacity(args.len());
        for (param, arg) in typed_ctrl.params.iter().zip(args) {
            let v = self.coerce(arg, param.ty);
            let loc = self.store.alloc(v);
            env.bind(param.sym, loc);
            param_locs.push((param.name.clone(), loc));
        }

        // Control-body declarations, in order.
        for d in &decl.decls {
            match d {
                CtrlDecl::Var(v) => self.declare_var(&mut env, v)?,
                CtrlDecl::Action(a) => self.declare_action(&mut env, a)?,
                CtrlDecl::Function(f) => self.declare_function(&mut env, f)?,
                CtrlDecl::Table(t) => self.declare_table(&mut env, t)?,
            }
        }

        // The apply block.
        let mut exited = false;
        let mut apply_env = env.clone();
        for s in &decl.apply {
            match self.eval_stmt(&mut apply_env, s) {
                Ok(Signal::Cont) => {}
                Ok(Signal::Exit) => {
                    exited = true;
                    break;
                }
                Ok(Signal::Return(_)) => {
                    return Err(EvalError::Internal(
                        "`return` escaped to the control level".into(),
                    ));
                }
                Err(Interrupt::Exit) => {
                    exited = true;
                    break;
                }
                Err(Interrupt::Fail(e)) => return Err(e),
            }
        }

        let params = param_locs
            .into_iter()
            .map(|(name, loc)| (name, self.store.read(loc).clone()))
            .collect();
        Ok(ControlOutcome { params, exited })
    }

    // ------------------------------------------------------------------
    // Declarations
    // ------------------------------------------------------------------

    fn declare_var(&mut self, env: &mut Env, v: &VarDecl) -> Result<(), EvalError> {
        let ty = self.resolve(&v.ty)?;
        let value = match &v.init {
            None => self.init_value(ty),
            Some(init) => {
                let val = match self.eval_expr(env, init) {
                    Ok(v) => v,
                    Err(Interrupt::Fail(e)) => return Err(e),
                    Err(Interrupt::Exit) => {
                        return Err(EvalError::Internal(
                            "`exit` during variable initialization".into(),
                        ));
                    }
                };
                self.coerce(val, ty)
            }
        };
        let loc = self.store.alloc(value);
        env.bind(self.intern(&v.name.node), loc);
        Ok(())
    }

    fn declare_action(&mut self, env: &mut Env, a: &ActionDecl) -> Result<(), EvalError> {
        let params = self.resolve_fn_params(&a.params, true)?;
        let clos = Closure {
            name: a.name.node.clone(),
            env: env.clone(),
            params,
            ret: SecTy::unit(&self.typed.lattice),
            body: Rc::new(a.body.clone()),
            is_action: true,
        };
        let loc = self.store.alloc(Value::Closure(Rc::new(clos)));
        env.bind(self.intern(&a.name.node), loc);
        Ok(())
    }

    fn declare_function(&mut self, env: &mut Env, f: &FunctionDecl) -> Result<(), EvalError> {
        let params = self.resolve_fn_params(&f.params, false)?;
        let ret = self.resolve(&f.ret)?;
        let clos = Closure {
            name: f.name.node.clone(),
            env: env.clone(),
            params,
            ret,
            body: Rc::new(f.body.clone()),
            is_action: false,
        };
        let loc = self.store.alloc(Value::Closure(Rc::new(clos)));
        env.bind(self.intern(&f.name.node), loc);
        Ok(())
    }

    fn declare_table(&mut self, env: &mut Env, t: &TableDecl) -> Result<(), EvalError> {
        let tv = TableValue {
            name: t.name.node.clone(),
            env: env.clone(),
            keys: t
                .keys
                .iter()
                .map(|k| (k.expr.clone(), self.intern(&k.match_kind.node)))
                .collect(),
            actions: t
                .actions
                .iter()
                .map(|a| (self.intern(&a.name.node), a.args.clone()))
                .collect(),
            default_action: t.default_action.as_ref().map(|d| self.intern(&d.node)),
        };
        let loc = self.store.alloc(Value::Table(Rc::new(tv)));
        env.bind(self.intern(&t.name.node), loc);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn eval_stmt(&mut self, env: &mut Env, s: &Stmt) -> EResult<Signal> {
        self.burn()?;
        match &s.kind {
            StmtKind::VarDecl(v) => {
                self.declare_var(env, v)?;
                Ok(Signal::Cont)
            }
            StmtKind::Block(stmts) => {
                // Lexical scoping: declarations inside the block do not
                // escape (ε is restored, only μ persists).
                let mut inner = env.clone();
                for st in stmts {
                    match self.eval_stmt(&mut inner, st)? {
                        Signal::Cont => {}
                        sig => return Ok(sig),
                    }
                }
                Ok(Signal::Cont)
            }
            StmtKind::If(cond, then_branch, else_branch) => {
                let c = self.eval_expr(env, cond)?;
                let taken = match c {
                    Value::Bool(b) => b,
                    other => return self.internal(format!("non-bool guard `{other}`")),
                };
                let mut inner = env.clone();
                if taken {
                    self.eval_stmt(&mut inner, then_branch)
                } else if let Some(els) = else_branch {
                    self.eval_stmt(&mut inner, els)
                } else {
                    Ok(Signal::Cont)
                }
            }
            StmtKind::Assign(lhs, rhs) => {
                let lv = self.eval_lvalue(env, lhs)?;
                let v = self.eval_expr(env, rhs)?;
                self.write_lvalue(&lv, v);
                Ok(Signal::Cont)
            }
            StmtKind::Exit => Ok(Signal::Exit),
            StmtKind::Return(value) => {
                let v = match value {
                    None => Value::Unit,
                    Some(e) => self.eval_expr(env, e)?,
                };
                Ok(Signal::Return(v))
            }
            StmtKind::Call(e) => {
                let ExprKind::Call(callee, args) = &e.kind else {
                    return self.internal("malformed call statement");
                };
                let cv = self.eval_expr(env, callee)?;
                match cv {
                    Value::Table(tv) => {
                        self.apply_table(&tv)?;
                        Ok(Signal::Cont)
                    }
                    Value::Closure(clos) => {
                        self.call_closure(&clos, env, args, &[])?;
                        Ok(Signal::Cont)
                    }
                    other => self.internal(format!("`{other}` is not callable")),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn eval_expr(&mut self, env: &Env, e: &Expr) -> EResult<Value> {
        self.burn()?;
        match &e.kind {
            ExprKind::Bool(b) => Ok(Value::Bool(*b)),
            ExprKind::Int { value, width } => Ok(match width {
                Some(w) => Value::bit(*w, *value),
                None => Value::Int(*value as i128),
            }),
            ExprKind::Var(name) => match self.sym(name).and_then(|s| env.lookup(s)) {
                Some(loc) => Ok(self.store.read(loc).clone()),
                None => self.internal(format!("unbound variable `{name}`")),
            },
            ExprKind::Field(recv, field) => {
                let r = self.eval_expr(env, recv)?;
                match self.sym(&field.node).and_then(|s| r.field(s).cloned()) {
                    Some(v) => Ok(v),
                    None => self.internal(format!("missing field `{}`", field.node)),
                }
            }
            ExprKind::Index(recv, index) => {
                let r = self.eval_expr(env, recv)?;
                let i = self.eval_expr(env, index)?;
                let Value::Stack(elems) = &r else {
                    return self.internal("indexing a non-stack value");
                };
                let ix = i.as_u128().unwrap_or(u128::MAX);
                match elems.get(usize::try_from(ix).unwrap_or(usize::MAX)) {
                    Some(v) => Ok(v.clone()),
                    // havoc(τ): deterministic zero of the element shape.
                    None => match elems.first() {
                        Some(proto) => Ok(zeroed(proto)),
                        None => self.internal("indexing an empty stack"),
                    },
                }
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let l = self.eval_expr(env, lhs)?;
                let r = self.eval_expr(env, rhs)?;
                eval_binop(*op, l, r)
                    .map_err(|e| Interrupt::Fail(EvalError::Internal(e.to_string())))
            }
            ExprKind::Unary(op, inner) => {
                let v = self.eval_expr(env, inner)?;
                eval_unop(*op, v).map_err(|e| Interrupt::Fail(EvalError::Internal(e.to_string())))
            }
            ExprKind::Record(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (name, value) in fields {
                    let sym = self.intern(&name.node);
                    out.push((sym, self.eval_expr(env, value)?));
                }
                Ok(Value::Record(out))
            }
            ExprKind::Call(callee, args) => {
                let cv = self.eval_expr(env, callee)?;
                match cv {
                    Value::Closure(clos) => self.call_closure(&clos, env, args, &[]),
                    other => self.internal(format!("`{other}` is not callable")),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // L-values (Appendices F and G)
    // ------------------------------------------------------------------

    fn eval_lvalue(&mut self, env: &Env, e: &Expr) -> EResult<LValueRef> {
        match &e.kind {
            ExprKind::Var(name) => match self.sym(name).and_then(|s| env.lookup(s)) {
                Some(loc) => Ok(LValueRef { base: loc, path: Vec::new() }),
                None => self.internal(format!("unbound l-value `{name}`")),
            },
            ExprKind::Field(recv, field) => {
                let mut lv = self.eval_lvalue(env, recv)?;
                let Some(sym) = self.sym(&field.node) else {
                    return self.internal(format!("missing field `{}`", field.node));
                };
                lv.path.push(PathSeg::Field(sym));
                Ok(lv)
            }
            ExprKind::Index(recv, index) => {
                let mut lv = self.eval_lvalue(env, recv)?;
                // The index expression is evaluated eagerly (it may have
                // side effects through calls).
                let i = self.eval_expr(env, index)?;
                let ix = usize::try_from(i.as_u128().unwrap_or(u128::MAX)).unwrap_or(usize::MAX);
                lv.path.push(PathSeg::Index(ix));
                Ok(lv)
            }
            _ => self.internal("expression is not an l-value"),
        }
    }

    /// Reads through an l-value path; out-of-bounds indices read as the
    /// deterministic havoc value.
    fn read_lvalue(&self, lv: &LValueRef) -> Value {
        let mut cur = self.store.read(lv.base).clone();
        for seg in &lv.path {
            cur = match seg {
                PathSeg::Field(f) => match cur.field(*f) {
                    Some(v) => v.clone(),
                    None => return Value::Unit,
                },
                PathSeg::Index(ix) => match &cur {
                    Value::Stack(elems) => match elems.get(*ix) {
                        Some(v) => v.clone(),
                        None => match elems.first() {
                            Some(proto) => zeroed(proto),
                            None => Value::Unit,
                        },
                    },
                    _ => return Value::Unit,
                },
            };
        }
        cur
    }

    /// Writes through an l-value path (`⇓write`, Appendix G): reads the
    /// base value, updates the nested slot, and writes the base back.
    /// Out-of-bounds indices make the whole write a no-op.
    fn write_lvalue(&mut self, lv: &LValueRef, value: Value) {
        let mut base = self.store.read(lv.base).clone();
        if write_path(&mut base, &lv.path, value) {
            self.store.write(lv.base, base);
        }
    }

    // ------------------------------------------------------------------
    // Calls (Appendix H: copy-in / copy-out)
    // ------------------------------------------------------------------

    /// Calls a closure. `args` are the data-plane argument expressions
    /// (evaluated in `caller_env`); `extra_values` are pre-evaluated
    /// values for the remaining parameters (the control-plane arguments a
    /// table match supplies).
    fn call_closure(
        &mut self,
        clos: &Closure,
        caller_env: &Env,
        args: &[Expr],
        extra_values: &[Value],
    ) -> EResult<Value> {
        self.burn()?;
        let supplied = args.len() + extra_values.len();
        if supplied != clos.params.len() {
            return self.internal(format!(
                "call of `{}` with {supplied} argument(s), expected {}",
                clos.name,
                clos.params.len()
            ));
        }

        // Copy-in: evaluate arguments left to right.
        let mut preargs = Vec::with_capacity(clos.params.len());
        for (param, arg) in clos.params.iter().zip(args) {
            match param.direction {
                Direction::In => {
                    let v = self.eval_expr(caller_env, arg)?;
                    preargs.push(PreArg::Val(v));
                }
                Direction::InOut => {
                    let lv = self.eval_lvalue(caller_env, arg)?;
                    let v = self.read_lvalue(&lv);
                    preargs.push(PreArg::Lv(lv, v));
                }
            }
        }
        for v in extra_values {
            preargs.push(PreArg::Val(v.clone()));
        }

        // Bind parameters to fresh locations in the closure environment.
        let mut callee_env = clos.env.clone();
        let mut copy_outs: Vec<(LValueRef, Loc)> = Vec::new();
        for (param, prearg) in clos.params.iter().zip(preargs) {
            let (value, lv) = match prearg {
                PreArg::Val(v) => (v, None),
                PreArg::Lv(lv, v) => (v, Some(lv)),
            };
            let coerced = self.coerce(value, param.ty);
            let loc = self.store.alloc(coerced);
            callee_env.bind(param.name, loc);
            if let Some(lv) = lv {
                copy_outs.push((lv, loc));
            }
        }

        // Run the body.
        let mut signal = Signal::Cont;
        for s in clos.body.iter() {
            match self.eval_stmt(&mut callee_env, s) {
                Ok(Signal::Cont) => {}
                Ok(sig) => {
                    signal = sig;
                    break;
                }
                Err(Interrupt::Exit) => {
                    signal = Signal::Exit;
                    break;
                }
                Err(fail) => return Err(fail),
            }
        }

        // Copy-out happens regardless of how the body finished (P4 spec
        // §6.8; exits still flush inout parameters).
        for (lv, loc) in copy_outs {
            let v = self.store.read(loc).clone();
            self.write_lvalue(&lv, v);
        }

        match signal {
            Signal::Return(v) => Ok(self.coerce(v, clos.ret)),
            Signal::Cont => Ok(Value::Unit),
            Signal::Exit => Err(Interrupt::Exit),
        }
    }

    // ------------------------------------------------------------------
    // Table application
    // ------------------------------------------------------------------

    fn apply_table(&mut self, tv: &TableValue) -> EResult<()> {
        // Evaluate the keys in the table's captured environment.
        let key_env = tv.env.clone();
        let mut keys = Vec::with_capacity(tv.keys.len());
        for (expr, _kind) in &tv.keys {
            keys.push(self.eval_expr(&key_env, expr)?);
        }

        // Ask the control plane; fall back to the declared default. The
        // controller speaks strings — one interner probe converts its
        // answer to a symbol, and everything after is symbol compares.
        let matched = self.cp.lookup(&tv.name, &keys);
        let (action_sym, cp_args, from_controller) = match matched {
            Some((name, args)) => {
                let Some(sym) = self.sym(&name) else {
                    // A name the checker never interned cannot be one of
                    // the table's declared actions.
                    return Err(Interrupt::Fail(EvalError::UnknownEntryAction {
                        table: tv.name.clone(),
                        action: name,
                    }));
                };
                (sym, args, true)
            }
            None => match tv.default_action {
                Some(sym) => (sym, Vec::new(), false),
                None => return Ok(()), // no entry, no default: no-op
            },
        };

        // The invoked action must be one the table declared.
        let Some((_, bound_args)) = tv.actions.iter().find(|(n, _)| *n == action_sym) else {
            return Err(Interrupt::Fail(EvalError::UnknownEntryAction {
                table: tv.name.clone(),
                action: self.sym_name(action_sym),
            }));
        };

        let clos = match tv.env.lookup(action_sym) {
            Some(loc) => match self.store.read(loc) {
                Value::Closure(c) => Rc::clone(c),
                other => {
                    let msg = format!(
                        "table action `{}` is `{other}`, not a closure",
                        self.sym_name(action_sym)
                    );
                    return self.internal(msg);
                }
            },
            None => {
                let msg = format!("table action `{}` not in scope", self.sym_name(action_sym));
                return self.internal(msg);
            }
        };

        // Control-plane arguments fill the directionless parameter suffix;
        // validate and coerce them (the paper assumes the controller
        // installs well-typed arguments — we enforce it).
        let ctrl_params: Vec<&FnParam> = clos.params.iter().filter(|p| p.control_plane).collect();
        let cp_args = if from_controller || !cp_args.is_empty() {
            if cp_args.len() != ctrl_params.len() {
                return Err(Interrupt::Fail(EvalError::EntryArgMismatch {
                    table: tv.name.clone(),
                    action: self.sym_name(action_sym),
                    detail: format!(
                        "expected {} control-plane argument(s), got {}",
                        ctrl_params.len(),
                        cp_args.len()
                    ),
                }));
            }
            let mut coerced = Vec::with_capacity(cp_args.len());
            for (param, value) in ctrl_params.iter().zip(cp_args) {
                let v = self.coerce(value, param.ty);
                let fits = {
                    let ctx = self.typed.ctx.borrow();
                    value_fits_kind(&v, ctx.types.kind(param.ty.ty))
                };
                if !fits {
                    return Err(Interrupt::Fail(EvalError::EntryArgMismatch {
                        table: tv.name.clone(),
                        action: self.sym_name(action_sym),
                        detail: format!(
                            "argument `{}` does not fit parameter `{}`",
                            v.display_with(&self.typed.ctx.borrow().syms),
                            self.sym_name(param.name)
                        ),
                    }));
                }
                coerced.push(v);
            }
            coerced
        } else {
            // Declared default action run with zero-initialized
            // control-plane arguments.
            ctrl_params.iter().map(|p| self.init_value(p.ty)).collect()
        };

        let table_env = tv.env.clone();
        self.call_closure(&clos, &table_env, bound_args, &cp_args)?;
        Ok(())
    }
}

/// Whether a runtime value's variant matches a structural type's — the
/// control-plane argument shape check, without constructing a zero value.
/// Mirrors the `Value::init` variant mapping (closure types zero to
/// `Unit`).
fn value_fits_kind(v: &Value, kind: &p4bid_ast::sectype::Ty) -> bool {
    use p4bid_ast::sectype::Ty;
    matches!(
        (kind, v),
        (Ty::Bool, Value::Bool(_))
            | (Ty::Int, Value::Int(_))
            | (Ty::Bit(_), Value::Bit { .. })
            | (Ty::Unit, Value::Unit)
            | (Ty::Record(_), Value::Record(_))
            | (Ty::Header(_), Value::Header { .. })
            | (Ty::Stack(..), Value::Stack(_))
            | (Ty::MatchKind, Value::MatchKind(_))
            | (Ty::Table(_) | Ty::Function(_), Value::Unit)
    )
}

/// Deterministic `havoc(τ)`: the same shape with all scalars zeroed.
fn zeroed(proto: &Value) -> Value {
    match proto {
        Value::Bool(_) => Value::Bool(false),
        Value::Int(_) => Value::Int(0),
        Value::Bit { width, .. } => Value::bit(*width, 0),
        Value::Unit => Value::Unit,
        Value::Record(fs) => Value::Record(fs.iter().map(|(n, v)| (*n, zeroed(v))).collect()),
        Value::Header { fields, .. } => Value::Header {
            valid: true,
            fields: fields.iter().map(|(n, v)| (*n, zeroed(v))).collect(),
        },
        Value::Stack(vs) => Value::Stack(vs.iter().map(zeroed).collect()),
        Value::MatchKind(k) => Value::MatchKind(*k),
        Value::Closure(_) | Value::Table(_) => proto.clone(),
    }
}

/// Writes `value` into the slot addressed by `path` inside `slot`.
/// Returns `false` (no-op) when an index is out of bounds.
fn write_path(slot: &mut Value, path: &[PathSeg], value: Value) -> bool {
    match path.split_first() {
        None => {
            let coerced = value.coerce_to_shape(slot);
            *slot = coerced;
            true
        }
        Some((PathSeg::Field(f), rest)) => match slot.field_mut(*f) {
            Some(inner) => write_path(inner, rest, value),
            None => false,
        },
        Some((PathSeg::Index(ix), rest)) => match slot {
            Value::Stack(elems) => match elems.get_mut(*ix) {
                Some(inner) => write_path(inner, rest, value),
                None => false, // OOB write: no-op
            },
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4bid_ast::intern::Interner;

    #[test]
    fn zeroed_preserves_shape() {
        let mut syms = Interner::new();
        let a = syms.intern("a");
        let b = syms.intern("b");
        let v = Value::Record(vec![(a, Value::bit(8, 99)), (b, Value::Bool(true))]);
        assert_eq!(zeroed(&v), Value::Record(vec![(a, Value::bit(8, 0)), (b, Value::Bool(false))]));
    }

    #[test]
    fn write_path_oob_is_noop() {
        let mut v = Value::Stack(vec![Value::bit(8, 1), Value::bit(8, 2)]);
        assert!(!write_path(&mut v, &[PathSeg::Index(5)], Value::bit(8, 9)));
        assert_eq!(v, Value::Stack(vec![Value::bit(8, 1), Value::bit(8, 2)]));
        assert!(write_path(&mut v, &[PathSeg::Index(1)], Value::bit(8, 9)));
        assert_eq!(v, Value::Stack(vec![Value::bit(8, 1), Value::bit(8, 9)]));
    }

    #[test]
    fn write_path_coerces_at_leaf() {
        let mut v = Value::bit(8, 0);
        assert!(write_path(&mut v, &[], Value::Int(300)));
        assert_eq!(v, Value::bit(8, 44));
    }
}
