//! Golden-diagnostics conformance harness.
//!
//! Every reject-corpus file has an `.expected` sidecar recording the exact
//! diagnostics the checker must produce, one per line:
//!
//! ```text
//! E-CODE @ line:col message text | flow: `src` (label) --op--> `sink` (label)
//! ```
//!
//! (`0:0` marks spans that fall outside the file, e.g. prelude or dummy
//! spans; the ` | flow:` segment appears only on diagnostics carrying a
//! lineage path and must match exactly — it pins the explain output.) The
//! test diffs the checker's actual output against the sidecar: codes,
//! positions, and flow chains must match exactly and the recorded message
//! must be a substring of the actual message, so messages may gain detail
//! without churning every sidecar.
//!
//! Regenerate the sidecars after an intentional diagnostics change with:
//!
//! ```console
//! $ P4BID_BLESS=1 cargo test -p p4bid_typeck --test golden
//! ```

mod common;

use common::{options_for, parse_directives, testdata};
use p4bid_ast::span::span_line_col;
use p4bid_typeck::{check_source, Diagnostic};
use std::fs;
use std::path::{Path, PathBuf};

fn expected_path(p4: &Path) -> PathBuf {
    p4.with_extension("expected")
}

/// Renders one diagnostic as a golden line.
fn golden_line(d: &Diagnostic, source: &str) -> String {
    let (line, col) = span_line_col(source, d.span).map_or((0, 0), |lc| (lc.line, lc.col));
    let mut out = format!("{} @ {line}:{col} {}", d.code.ident(), d.message);
    if let Some(chain) = d.lineage_chain() {
        out.push_str(" | flow: ");
        out.push_str(&chain);
    }
    out
}

/// One parsed golden line: code, position, message substring, flow chain.
fn parse_golden_line(line: &str, path: &Path) -> (String, String, String, String) {
    let (line, flow) = line.split_once(" | flow: ").unwrap_or((line, ""));
    let (code, rest) = line
        .split_once(" @ ")
        .unwrap_or_else(|| panic!("{}: malformed golden line `{line}`", path.display()));
    let (pos, message) = rest.split_once(' ').unwrap_or((rest, ""));
    (code.to_string(), pos.to_string(), message.to_string(), flow.to_string())
}

#[test]
fn reject_corpus_matches_golden_diagnostics() {
    let bless = std::env::var("P4BID_BLESS").is_ok_and(|v| !v.is_empty() && v != "0");
    let mut failures = Vec::new();

    for path in testdata("reject") {
        let source = fs::read_to_string(&path).expect("readable file");
        let d = parse_directives(&source);
        let errs = check_source(&source, &options_for(&d))
            .err()
            .unwrap_or_else(|| panic!("{} unexpectedly accepted", path.display()));
        let actual: Vec<String> = errs.iter().map(|e| golden_line(e, &source)).collect();

        let sidecar = expected_path(&path);
        if bless {
            let mut contents = actual.join("\n");
            contents.push('\n');
            fs::write(&sidecar, contents).expect("write golden sidecar");
            continue;
        }

        let Ok(expected) = fs::read_to_string(&sidecar) else {
            failures.push(format!(
                "{}: missing golden sidecar {} (run with P4BID_BLESS=1 to create it)",
                path.display(),
                sidecar.display()
            ));
            continue;
        };
        let expected: Vec<&str> = expected.lines().filter(|l| !l.trim().is_empty()).collect();

        if expected.len() != actual.len() {
            failures.push(format!(
                "{}: {} diagnostic(s) recorded but {} produced\n  recorded: {expected:#?}\n  actual:   {actual:#?}",
                path.display(),
                expected.len(),
                actual.len()
            ));
            continue;
        }
        for (exp, act) in expected.iter().zip(&actual) {
            let (ecode, epos, emsg, eflow) = parse_golden_line(exp, &path);
            let (acode, apos, amsg, aflow) = parse_golden_line(act, &path);
            if ecode != acode || epos != apos || !amsg.contains(&emsg) || eflow != aflow {
                failures.push(format!(
                    "{}: golden mismatch\n  recorded: {exp}\n  actual:   {act}",
                    path.display()
                ));
            }
        }
    }

    assert!(
        failures.is_empty(),
        "{} golden failure(s):\n{}\n(if the change is intentional, re-bless with \
         P4BID_BLESS=1 cargo test -p p4bid_typeck --test golden)",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn every_sidecar_has_a_program() {
    // Orphaned .expected files are stale corpus state: fail loudly.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata").join("reject");
    for entry in fs::read_dir(&dir).expect("readable reject dir") {
        let p = entry.expect("dir entry").path();
        if p.extension().is_some_and(|e| e == "expected") {
            let p4 = p.with_extension("p4");
            assert!(p4.exists(), "orphaned golden sidecar {}", p.display());
        }
    }
}

#[test]
fn golden_lines_are_well_formed() {
    for path in testdata("reject") {
        let sidecar = expected_path(&path);
        let Ok(contents) = fs::read_to_string(&sidecar) else { continue };
        for line in contents.lines().filter(|l| !l.trim().is_empty()) {
            let (code, pos, _msg, flow) = parse_golden_line(line, &sidecar);
            assert!(code.starts_with("E-"), "{}: bad code in `{line}`", sidecar.display());
            let (l, c) = pos.split_once(':').expect("line:col position");
            l.parse::<u32>().expect("numeric line");
            c.parse::<u32>().expect("numeric column");
            if !flow.is_empty() {
                assert!(flow.contains("-->"), "{}: bad flow chain `{flow}`", sidecar.display());
            }
        }
    }
}
