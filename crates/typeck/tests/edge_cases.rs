//! Edge-case and regression tests for the checker: corner constructs of
//! the fragment, error recovery, and behaviors the main rule suite does
//! not pin down.

use p4bid_typeck::{check_source, CheckOptions, DiagCode, Diagnostic};

fn ifc(src: &str) -> Result<(), Vec<Diagnostic>> {
    check_source(src, &CheckOptions::ifc()).map(|_| ())
}

fn assert_code(src: &str, code: DiagCode) {
    let errs = ifc(src).expect_err("program should be rejected");
    assert!(errs.iter().any(|d| d.code == code), "expected {code:?}, got {errs:?}");
}

// ---------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------

#[test]
fn keyless_table_is_legal() {
    // A table with no keys always takes the default/configured action.
    assert!(ifc(r#"control C(inout bit<8> x) {
            action bump() { x = x + 8w1; }
            table t { actions = { bump; NoAction; } default_action = bump; }
            apply { t.apply(); }
        }"#)
    .is_ok());
}

#[test]
fn table_with_many_keys_joins_labels() {
    // key join = high because of the second key; action writes low.
    assert_code(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            action set() { l = 8w1; }
            table t {
                key = { l: exact; h: exact; }
                actions = { set; }
            }
            apply { t.apply(); }
        }"#,
        DiagCode::TableKeyFlow,
    );
}

#[test]
fn bool_keys_are_allowed() {
    assert!(ifc(r#"control C(inout bool flag, inout bit<8> x) {
            action set() { x = 8w1; }
            table t { key = { flag: exact; } actions = { set; NoAction; } }
            apply { t.apply(); }
        }"#)
    .is_ok());
}

#[test]
fn compound_keys_rejected() {
    assert_code(
        r#"header h_t { bit<8> v; }
        control C(inout h_t h, inout bit<8> x) {
            action set() { x = 8w1; }
            table t { key = { h: exact; } actions = { set; } }
            apply { t.apply(); }
        }"#,
        DiagCode::TypeMismatch,
    );
}

#[test]
fn table_names_shadowing_rejected_in_same_scope() {
    assert_code(
        r#"control C(inout bit<8> x) {
            action a() { }
            table t { key = { x: exact; } actions = { a; } }
            table t { key = { x: exact; } actions = { a; } }
            apply { }
        }"#,
        DiagCode::DuplicateDef,
    );
}

#[test]
fn inout_args_bound_in_tables_are_checked() {
    // Binding an inout arg at table declaration: needs writable lvalue
    // with exact label.
    assert!(ifc(r#"control C(inout <bit<8>, low> l, inout <bit<8>, low> k) {
            action bump(inout <bit<8>, low> target) { target = target + 8w1; }
            table t {
                key = { k: exact; }
                actions = { bump(l); }
            }
            apply { t.apply(); }
        }"#)
    .is_ok());
    assert_code(
        r#"control C(inout <bit<8>, high> h, inout <bit<8>, low> k) {
            action bump(inout <bit<8>, low> target) { target = target + 8w1; }
            table t {
                key = { k: exact; }
                actions = { bump(h); }
            }
            apply { t.apply(); }
        }"#,
        DiagCode::InoutLabelMismatch,
    );
}

// ---------------------------------------------------------------------
// Types and declarations
// ---------------------------------------------------------------------

#[test]
fn typedef_chains_unfold() {
    assert!(ifc(r#"typedef bit<32> addr_t;
        typedef addr_t ip_t;
        control C(inout ip_t a, inout addr_t b) {
            apply { a = b; }
        }"#)
    .is_ok());
}

#[test]
fn typedef_with_label_raises_base() {
    assert_code(
        r#"typedef <bit<32>, high> secret_t;
        control C(inout secret_t s, inout <bit<32>, low> l) {
            apply { l = s; }
        }"#,
        DiagCode::ExplicitFlow,
    );
}

#[test]
fn record_types_are_structural() {
    // Two distinct struct names with identical shapes are interchangeable
    // (Core P4 record typing is structural).
    assert!(ifc(r#"struct a_t { bit<8> x; }
        struct b_t { bit<8> x; }
        control C(inout a_t a, inout b_t b) {
            apply { a = b; }
        }"#)
    .is_ok());
    // Different field labels are a different type.
    assert_code(
        r#"struct a_t { <bit<8>, low> x; }
        struct b_t { <bit<8>, high> x; }
        control C(inout a_t a, inout b_t b) {
            apply { a = b; }
        }"#,
        DiagCode::TypeMismatch,
    );
}

#[test]
fn whole_struct_assignment_requires_bottom_pc() {
    // Compound types carry the ⊥ outer label (Fig. 4), so whole-struct
    // writes need pc ⊑ ⊥.
    assert_code(
        r#"struct s_t { <bit<8>, high> x; }
        control C(inout s_t a, inout s_t b, inout <bool, high> g) {
            apply { if (g) { a = b; } }
        }"#,
        DiagCode::ImplicitFlow,
    );
}

#[test]
fn match_kind_declarations_extend_the_set() {
    assert!(ifc(r#"match_kind { range }
        control C(inout bit<8> x) {
            action a() { }
            table t { key = { x: range; } actions = { a; } }
            apply { t.apply(); }
        }"#)
    .is_ok());
}

#[test]
fn user_lattice_requires_wellformedness() {
    let errs = ifc(r#"lattice { a < b; b < a; }
        control C(inout bit<8> x) { apply { } }"#)
    .unwrap_err();
    assert_eq!(errs[0].code, DiagCode::Malformed);
    assert!(errs[0].message.contains("antisymmetric"), "{errs:?}");
}

#[test]
fn user_lattice_without_meet_rejected() {
    // Two maximal elements: join(a, b) missing.
    let errs = ifc(r#"lattice { bot < a; bot < b; }
        control C(inout bit<8> x) { apply { } }"#)
    .unwrap_err();
    assert_eq!(errs[0].code, DiagCode::Malformed);
}

#[test]
fn unknown_pc_annotation_rejected() {
    assert_code(r#"@pc(wizard) control C(inout bit<8> x) { apply { } }"#, DiagCode::UnknownLabel);
}

#[test]
fn unknown_ambient_pc_rejected() {
    let errs = check_source(
        "control C(inout bit<8> x) { apply { } }",
        &CheckOptions::ifc().with_pc("wizard"),
    )
    .unwrap_err();
    assert_eq!(errs[0].code, DiagCode::UnknownLabel);
}

#[test]
fn zero_size_stack_rejected_by_parser() {
    let errs = ifc("control C(inout bit<8> x) { bit<8>[0] arr; apply { } }").unwrap_err();
    assert_eq!(errs[0].code, DiagCode::Malformed);
    assert!(errs[0].message.contains("stack size"), "{errs:?}");
}

// ---------------------------------------------------------------------
// Functions
// ---------------------------------------------------------------------

#[test]
fn void_function_with_bare_return() {
    assert!(ifc(r#"function void f(inout bit<8> x) {
            x = x + 8w1;
            return;
        }
        control C(inout bit<8> y) { apply { f(y); } }"#)
    .is_ok());
}

#[test]
fn void_function_returning_value_rejected() {
    assert_code(
        r#"function void f(in bit<8> x) { return x; }
        control C(inout bit<8> y) { apply { f(y); } }"#,
        DiagCode::BadReturn,
    );
}

#[test]
fn value_function_bare_return_rejected() {
    assert_code(
        r#"function bit<8> f(in bit<8> x) { return; }
        control C(inout bit<8> y) { apply { y = f(y); } }"#,
        DiagCode::BadReturn,
    );
}

#[test]
fn return_label_subtyping_upward_only() {
    assert!(ifc(r#"function <bit<8>, high> up(in <bit<8>, low> x) { return x; }
        control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            apply { h = up(l); }
        }"#)
    .is_ok());
    assert_code(
        r#"function <bit<8>, low> down(in <bit<8>, high> x) { return x; }
        control C(inout <bit<8>, high> h, inout <bit<8>, low> l) {
            apply { l = down(h); }
        }"#,
        DiagCode::ExplicitFlow,
    );
}

#[test]
fn exit_inside_function_pins_pc_fn_to_bottom() {
    assert_code(
        r#"control C(inout <bit<8>, high> h) {
            action a() { exit; }
            apply { if (h == 8w1) { a(); } }
        }"#,
        DiagCode::CallPcViolation,
    );
}

#[test]
fn actions_may_call_functions_and_inherit_bounds() {
    // mark_to_drop writes the ⊥-labeled metadata ⇒ its pc_fn is ⊥ ⇒ an
    // action calling it has pc_fn ⊥ ⇒ unusable under a high guard.
    assert_code(
        r#"control C(inout standard_metadata_t meta, inout <bit<8>, high> h) {
            action drop() { mark_to_drop(meta); }
            apply { if (h == 8w1) { drop(); } }
        }"#,
        DiagCode::CallPcViolation,
    );
}

#[test]
fn recursion_is_impossible_by_scoping() {
    // A function cannot see itself (Core P4 closures capture the env at
    // declaration, which excludes the name being declared).
    assert_code(
        r#"function bit<8> f(in bit<8> x) { return f(x); }
        control C(inout bit<8> y) { apply { y = f(y); } }"#,
        DiagCode::UnknownVar,
    );
}

#[test]
fn mutual_recursion_is_impossible() {
    assert_code(
        r#"function bit<8> f(in bit<8> x) { return g(x); }
        function bit<8> g(in bit<8> x) { return f(x); }
        control C(inout bit<8> y) { apply { y = f(y); } }"#,
        DiagCode::UnknownVar,
    );
}

// ---------------------------------------------------------------------
// Statements and expressions
// ---------------------------------------------------------------------

#[test]
fn control_in_params_are_read_only() {
    assert_code("control C(in bit<8> x) { apply { x = 8w1; } }", DiagCode::NotAssignable);
}

#[test]
fn assigning_to_literal_rejected() {
    assert_code("control C(inout bit<8> x) { apply { 8w1 = x; } }", DiagCode::NotAssignable);
}

#[test]
fn assigning_to_call_result_rejected() {
    assert_code(
        r#"function bit<8> f(in bit<8> x) { return x; }
        control C(inout bit<8> y) { apply { f(y) = 8w1; } }"#,
        DiagCode::NotAssignable,
    );
}

#[test]
fn record_literals_check_fieldwise() {
    assert!(ifc(r#"struct pair_t { bit<8> a; bit<8> b; }
        control C(inout pair_t p) {
            apply { p = { a = 8w1, b = 8w2 }; }
        }"#)
    .is_ok());
    assert_code(
        r#"struct pair_t { bit<8> a; bit<8> b; }
        control C(inout pair_t p) {
            apply { p = { a = 8w1 }; }
        }"#,
        DiagCode::TypeMismatch,
    );
}

#[test]
fn duplicate_record_literal_fields_rejected() {
    assert_code(
        r#"struct one_t { bit<8> a; }
        control C(inout one_t p) {
            apply { p = { a = 8w1, a = 8w2 }; }
        }"#,
        DiagCode::DuplicateDef,
    );
}

#[test]
fn indexing_non_stacks_rejected() {
    assert_code("control C(inout bit<8> x) { apply { x = x[0]; } }", DiagCode::TypeMismatch);
}

#[test]
fn non_numeric_index_rejected() {
    assert_code(
        r#"control C(inout bool b, inout bit<8> x) {
            bit<8>[2] arr;
            apply { x = arr[b]; }
        }"#,
        DiagCode::TypeMismatch,
    );
}

#[test]
fn guard_label_flows_into_nested_calls() {
    // A table applied inside a conditional inside an action body: every
    // layer must respect the guard label.
    assert_code(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            action set_low() { l = 8w1; }
            table t { key = { l: exact; } actions = { set_low; } }
            action outer() {
                if (h == 8w1) { t.apply(); }
            }
            apply { outer(); }
        }"#,
        DiagCode::TableApplyPcViolation,
    );
}

#[test]
fn logical_operators_require_bools() {
    assert_code(
        "control C(inout bit<8> x) { apply { if (x && x) { } } }",
        DiagCode::InvalidOperands,
    );
}

#[test]
fn width_mismatched_comparison_rejected() {
    assert_code(
        r#"control C(inout bit<8> x, inout bit<16> y) {
            apply { if (x == y) { } }
        }"#,
        DiagCode::InvalidOperands,
    );
}

#[test]
fn error_recovery_reports_independent_errors() {
    // Unknown variable in one statement must not suppress the flow error
    // in the next.
    let errs = ifc(r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            apply {
                l = ghost;
                l = h;
            }
        }"#)
    .unwrap_err();
    assert!(errs.iter().any(|d| d.code == DiagCode::UnknownVar), "{errs:?}");
    assert!(errs.iter().any(|d| d.code == DiagCode::ExplicitFlow), "{errs:?}");
}

#[test]
fn permissive_mode_still_rejects_type_errors() {
    // Permissive turns off *flow* checks, not type checks.
    let errs = check_source(
        "control C(inout bit<8> x) { apply { x = ghost; } }",
        &CheckOptions::permissive(),
    )
    .unwrap_err();
    assert!(errs.iter().any(|d| d.code == DiagCode::UnknownVar));
}

#[test]
fn base_mode_rejects_type_errors_too() {
    let errs = check_source(
        "control C(inout bit<8> x, inout bit<16> y) { apply { x = y; } }",
        &CheckOptions::base(),
    )
    .unwrap_err();
    assert!(errs.iter().any(|d| d.code == DiagCode::TypeMismatch));
}

// ---------------------------------------------------------------------
// Wide records: sorted field layout (regression for the >8-field
// binary-search lookup in the pooled FieldList)
// ---------------------------------------------------------------------

#[test]
fn wide_header_fields_resolve_through_the_sorted_layout() {
    // 24 fields — over the sorted-layout threshold. Every field must be
    // findable (reads, writes, and flow checks), and the pooled type must
    // actually carry the sorted index.
    let mut src = String::from("header wide_t {\n");
    for i in 0..24 {
        src.push_str(&format!("    bit<8> f{i:02};\n"));
    }
    src.push_str("}\ncontrol C(inout wide_t w) {\n    apply {\n");
    // Touch every field, in an order unrelated to declaration order.
    for i in (0..24).rev() {
        src.push_str(&format!("        w.f{i:02} = w.f{:02} + 8w1;\n", (i + 7) % 24));
    }
    src.push_str("    }\n}\n");
    let typed = check_source(&src, &CheckOptions::ifc()).expect("wide header typechecks");

    let ctrl = &typed.controls[0];
    let param_ty = ctrl.params[0].ty;
    let ctx = typed.ctx.borrow();
    let fields = ctx.types.fields(param_ty.ty).expect("header has fields");
    assert_eq!(fields.len(), 24);
    assert!(fields.has_sorted_layout(), "wide field lists must build the sorted index");
    // Narrow types stay linear.
    let narrow = check_source(
        "header n_t { bit<8> a; bit<8> b; } control C(inout n_t n) { apply { } }",
        &CheckOptions::ifc(),
    )
    .unwrap();
    let nctx = narrow.ctx.borrow();
    let nty = narrow.controls[0].params[0].ty;
    assert!(!nctx.types.fields(nty.ty).unwrap().has_sorted_layout());
}

#[test]
fn wide_header_unknown_field_still_reported() {
    let mut src = String::from("header wide_t {\n");
    for i in 0..12 {
        src.push_str(&format!("    bit<8> f{i:02};\n"));
    }
    src.push_str("}\ncontrol C(inout wide_t w) { apply { w.f99 = 8w1; } }\n");
    assert_code(&src, DiagCode::UnknownField);
}
