//! Property-based totality tests for the full checking pipeline: a
//! [`CheckerSession::check`] call must never panic, whatever the input —
//! arbitrary bytes, token soup, or near-miss programs — and must answer
//! the same input the same way every time. The batch/serve workers wrap
//! each check in `catch_unwind` as a last line of defense, but that
//! containment turns a panic into a rejected program; these properties
//! keep the panics from existing in the first place.

use p4bid_typeck::{CheckOptions, CheckerSession};
use proptest::prelude::*;

/// Fragments that steer the soup deep into the checker: declarations,
/// security annotations, tables, declassify, and the operators the
/// type rules branch on.
const FRAGMENTS: [&str; 24] = [
    "control",
    "C",
    "(",
    ")",
    "{",
    "}",
    "inout",
    "bit<8>",
    "x",
    ";",
    "apply",
    "=",
    "if",
    "else",
    "8w3",
    "table",
    "key",
    "actions",
    "<bit<8>, high>",
    "exit",
    "declassify",
    "+",
    "~",
    "low",
];

proptest! {
    /// The whole pipeline — oversized guard, parse, resolve, typecheck —
    /// is total on arbitrary input, under every mode.
    #[test]
    fn session_check_is_total(input in ".{0,200}") {
        for opts in [CheckOptions::ifc(), CheckOptions::base(), CheckOptions::permissive()] {
            let mut session = CheckerSession::new(opts);
            let _ = session.check(&input);
        }
    }

    /// Token-soup from valid fragments gets much deeper into the type
    /// rules than raw bytes; the session must survive it, and one session
    /// must survive a whole stream of such programs (state from a failed
    /// check must not poison the next one).
    #[test]
    fn session_survives_fragment_soup_streams(
        programs in proptest::collection::vec(
            proptest::collection::vec(0usize..24, 0..40),
            1..4,
        )
    ) {
        let mut session = CheckerSession::new(CheckOptions::ifc());
        for pieces in &programs {
            let soup: String =
                pieces.iter().map(|&i| FRAGMENTS[i]).collect::<Vec<_>>().join(" ");
            let _ = session.check(&soup);
        }
    }

    /// Checking is deterministic: the same source answers identically on
    /// a fresh session and on a reused one, diagnostics included — the
    /// property the batch report's byte-identical contract rests on.
    #[test]
    fn session_check_is_deterministic(
        pieces in proptest::collection::vec(0usize..24, 0..40)
    ) {
        let soup: String = pieces.iter().map(|&i| FRAGMENTS[i]).collect::<Vec<_>>().join(" ");
        let mut fresh_a = CheckerSession::new(CheckOptions::ifc());
        let mut fresh_b = CheckerSession::new(CheckOptions::ifc());
        let a = fresh_a.check(&soup).map(|_| ()).map_err(|d| format!("{d:?}"));
        let b = fresh_b.check(&soup).map(|_| ()).map_err(|d| format!("{d:?}"));
        prop_assert_eq!(&a, &b, "fresh sessions agree");
        let again = fresh_a.check(&soup).map(|_| ()).map_err(|d| format!("{d:?}"));
        prop_assert_eq!(&a, &again, "a reused session agrees with itself");
    }

    /// Prefix-snapshot resume is invisible: a warm session that already
    /// checked a related program (seeding the snapshot tree) answers a
    /// second program exactly like a cold session with the cache disabled
    /// — verdicts, diagnostics, and typed output all byte-identical. The
    /// generator builds both programs from a shared pool of valid items so
    /// common prefixes (and thus snapshot hits) are frequent.
    #[test]
    fn prefix_resume_matches_cold_check(
        base in proptest::collection::vec(0usize..8, 1..7),
        tail in proptest::collection::vec(0usize..8, 0..4),
        split in 0usize..7,
    ) {
        const ITEMS: [&str; 8] = [
            "lattice { lo < hi; }",
            "control A(inout <bit<8>, high> h) { apply { h = h + 8w1; } }",
            "control B(inout bit<8> x) { apply { x = x + 8w2; } }",
            "control Leak(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }",
            "action inc(inout bit<8> v) { v = v + 8w1; }",
            "bit<8> twice(bit<8> v) { return v + v; }",
            "header ph_t { <bit<8>, high> f; }",
            "control G(inout <bit<8>, low> l) { apply { if (l == 8w0) { l = 8w1; } } }",
        ];
        let render = |ixs: &[usize]| {
            ixs.iter().map(|&i| ITEMS[i]).collect::<Vec<_>>().join("\n")
        };
        let first = render(&base);
        let second = render(
            &base[..split.min(base.len())]
                .iter()
                .copied()
                .chain(tail.iter().copied())
                .collect::<Vec<_>>(),
        );
        // Interner/pool ids differ between a warm and a cold session (the
        // warm one allocated ids for the first program too), so compare a
        // rendered projection — names, labels, display-form types, and
        // full diagnostics — rather than raw `Debug` output.
        let project = |out: &Result<p4bid_typeck::TypedProgram, Vec<p4bid_typeck::Diagnostic>>| {
            match out {
                Err(diags) => format!("err: {diags:?}"),
                Ok(t) => {
                    let ctx = t.ctx.borrow();
                    let controls: Vec<String> = t
                        .controls
                        .iter()
                        .map(|c| {
                            let params: Vec<String> = c
                                .params
                                .iter()
                                .map(|p| {
                                    format!(
                                        "{:?} {} {}",
                                        p.direction,
                                        p4bid_ast::sectype::display_secty(
                                            &ctx.types, &ctx.syms, &t.lattice, p.ty,
                                        ),
                                        p.name,
                                    )
                                })
                                .collect();
                            format!(
                                "{}({}) pc={} fns={:?} tables={:?}",
                                c.name,
                                params.join(", "),
                                t.lattice.name(c.pc),
                                c.functions.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
                                c.tables
                                    .iter()
                                    .map(|(n, l)| format!("{n}:{}", t.lattice.name(*l)))
                                    .collect::<Vec<_>>(),
                            )
                        })
                        .collect();
                    format!("ok: {controls:?}")
                }
            }
        };
        let mut warm = CheckerSession::new(CheckOptions::ifc());
        let _ = warm.check(&first);
        let warm_out = project(&warm.check(&second));
        let mut cold = CheckerSession::new(CheckOptions::ifc()).with_prefix_cache_cap(0);
        let cold_out = project(&cold.check(&second));
        prop_assert_eq!(warm_out, cold_out, "snapshot resume must be semantically invisible");
    }

    /// The resource guards stay total too: a byte cap and an (unexpired)
    /// deadline never panic, and the cap rejects exactly the inputs
    /// longer than it.
    #[test]
    fn guarded_sessions_are_total(input in ".{0,200}", cap in 1u64..64) {
        let opts = CheckOptions::ifc().with_max_source_bytes(cap).with_check_timeout_ms(10_000);
        let mut session = CheckerSession::new(opts);
        let result = session.check(&input);
        if input.len() as u64 > cap {
            let diags = result.expect_err("over the cap");
            prop_assert_eq!(diags.len(), 1);
            prop_assert_eq!(diags[0].code, p4bid_typeck::DiagCode::Oversized);
        }
    }
}
