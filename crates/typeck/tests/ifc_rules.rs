//! Rule-by-rule tests for the IFC type system (Figures 5–7 of the paper).
//!
//! Each test exercises one judgement: an accepting program and the minimal
//! mutation that violates the rule, asserting on the diagnostic class.

use p4bid_lattice::Lattice;
use p4bid_typeck::{check_source, CheckOptions, DiagCode, Diagnostic};

fn ifc(src: &str) -> Result<(), Vec<Diagnostic>> {
    check_source(src, &CheckOptions::ifc()).map(|_| ())
}

fn ifc_at(src: &str, pc: &str) -> Result<(), Vec<Diagnostic>> {
    check_source(src, &CheckOptions::ifc().with_pc(pc)).map(|_| ())
}

fn base(src: &str) -> Result<(), Vec<Diagnostic>> {
    check_source(src, &CheckOptions::base()).map(|_| ())
}

fn assert_rejects(src: &str, code: DiagCode) {
    match ifc(src) {
        Ok(()) => panic!("expected {code:?}, but the program was accepted:\n{src}"),
        Err(diags) => {
            assert!(diags.iter().any(|d| d.code == code), "expected {code:?}, got {diags:?}\n{src}")
        }
    }
}

fn assert_accepts(src: &str) {
    if let Err(diags) = ifc(src) {
        panic!("expected acceptance, got {diags:?}\n{src}");
    }
}

// ---------------------------------------------------------------------
// T-Assign: explicit flows
// ---------------------------------------------------------------------

#[test]
fn assign_high_to_low_rejected() {
    assert_rejects(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            apply { l = h; }
        }"#,
        DiagCode::ExplicitFlow,
    );
}

#[test]
fn assign_low_to_high_accepted() {
    assert_accepts(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            apply { h = l; }
        }"#,
    );
}

#[test]
fn assign_join_of_labels() {
    // low ⊔ high = high may flow into high but not low.
    assert_accepts(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            apply { h = h + l; }
        }"#,
    );
    assert_rejects(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            apply { l = h + l; }
        }"#,
        DiagCode::ExplicitFlow,
    );
}

#[test]
fn base_mode_ignores_explicit_flows() {
    base(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            apply { l = h; }
        }"#,
    )
    .expect("the baseline checker does not know about labels");
}

// ---------------------------------------------------------------------
// T-Cond: implicit flows through guards
// ---------------------------------------------------------------------

#[test]
fn branch_on_high_writing_low_rejected() {
    assert_rejects(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            apply { if (h == 8w0) { l = 8w1; } }
        }"#,
        DiagCode::ImplicitFlow,
    );
}

#[test]
fn branch_on_high_writing_high_accepted() {
    assert_accepts(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            apply { if (h == 8w0) { h = 8w1; } else { h = 8w2; } }
        }"#,
    );
}

#[test]
fn nested_guards_join() {
    // Inner write is under low ⊔ high = high context.
    assert_rejects(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            apply { if (l == 8w0) { if (h == 8w0) { l = 8w1; } } }
        }"#,
        DiagCode::ImplicitFlow,
    );
}

#[test]
fn exit_under_high_guard_rejected() {
    // T-Exit types at ⊥ only: the signal would leak the guard.
    assert_rejects(
        r#"control C(inout <bit<8>, high> h) {
            apply { if (h == 8w0) { exit; } }
        }"#,
        DiagCode::ImplicitFlow,
    );
}

#[test]
fn exit_at_bottom_accepted() {
    assert_accepts(
        r#"control C(inout <bit<8>, low> l) {
            apply { if (l == 8w0) { exit; } }
        }"#,
    );
}

#[test]
fn return_under_high_guard_rejected() {
    assert_rejects(
        r#"control C(inout <bit<8>, high> h) {
            action a(in <bit<8>, high> v) {
                if (v == 8w0) { return; }
            }
            apply { a(h); }
        }"#,
        DiagCode::ImplicitFlow,
    );
}

// ---------------------------------------------------------------------
// T-Call / T-FuncDecl: pc_fn inference and call contexts
// ---------------------------------------------------------------------

#[test]
fn call_low_writer_under_high_guard_rejected() {
    // set_low writes a low location ⇒ pc_fn = low; calling it under a
    // high guard is the paper's §4.1 example.
    assert_rejects(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            action set_low() { l = 8w1; }
            apply { if (h == 8w1) { set_low(); } }
        }"#,
        DiagCode::CallPcViolation,
    );
}

#[test]
fn call_high_writer_under_high_guard_accepted() {
    // set_high writes only high ⇒ pc_fn = high ⊒ guard.
    assert_accepts(
        r#"control C(inout <bit<8>, high> h) {
            action set_high() { h = 8w1; }
            apply { if (h == 8w0) { set_high(); } }
        }"#,
    );
}

#[test]
fn pc_fn_is_meet_of_write_bounds() {
    // Writes both low and high ⇒ pc_fn = low; high guard rejected.
    assert_rejects(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            action both() { h = 8w1; l = 8w1; }
            apply { if (h == 8w0) { both(); } }
        }"#,
        DiagCode::CallPcViolation,
    );
}

#[test]
fn pure_function_callable_anywhere() {
    // No writes ⇒ pc_fn = ⊤.
    assert_accepts(
        r#"control C(inout <bit<8>, high> h) {
            action nop() { }
            apply { if (h == 8w0) { nop(); } }
        }"#,
    );
}

#[test]
fn callee_write_bounds_propagate_to_caller() {
    // outer calls inner; inner writes low ⇒ pc_fn(outer) ⊑ low, so
    // calling outer under a high guard must be rejected.
    assert_rejects(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            action inner() { l = 8w1; }
            action outer() { inner(); }
            apply { if (h == 8w0) { outer(); } }
        }"#,
        DiagCode::CallPcViolation,
    );
}

#[test]
fn guard_inside_function_body_checked() {
    // Inside the body, a high guard around a low write is an implicit
    // flow regardless of pc_fn.
    assert_rejects(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            action a() { if (h == 8w0) { l = 8w1; } }
            apply { a(); }
        }"#,
        DiagCode::ImplicitFlow,
    );
}

// ---------------------------------------------------------------------
// Argument passing: T-SubType-In and the inout restriction
// ---------------------------------------------------------------------

#[test]
fn in_argument_label_raising_allowed() {
    assert_accepts(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            action a(in <bit<8>, high> v) { h = v; }
            apply { a(l); }
        }"#,
    );
}

#[test]
fn in_argument_label_lowering_rejected() {
    assert_rejects(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            action a(in <bit<8>, low> v) { l = v; }
            apply { a(h); }
        }"#,
        DiagCode::ExplicitFlow,
    );
}

#[test]
fn inout_argument_exact_label_required() {
    // The §4.2 `write_to_high(l)` example: passing a low variable to an
    // inout high parameter would launder a write.
    assert_rejects(
        r#"control C(inout <bool, low> l) {
            action write_to_high(inout <bool, high> h) { h = true; }
            apply { write_to_high(l); }
        }"#,
        DiagCode::InoutLabelMismatch,
    );
}

#[test]
fn inout_argument_matching_label_accepted() {
    assert_accepts(
        r#"control C(inout <bool, high> g) {
            action write_to_high(inout <bool, high> h) { h = true; }
            apply { write_to_high(g); }
        }"#,
    );
}

#[test]
fn inout_argument_must_be_lvalue() {
    let errs = ifc(r#"control C(inout <bit<8>, low> l) {
            action a(inout <bit<8>, low> v) { v = 8w1; }
            apply { a(l + 8w1); }
        }"#)
    .unwrap_err();
    assert!(errs.iter().any(|d| d.code == DiagCode::NotAssignable), "{errs:?}");
}

#[test]
fn in_parameter_is_read_only_in_body() {
    let errs = ifc(r#"control C(inout <bit<8>, low> l) {
            action a(in <bit<8>, low> v) { v = 8w1; }
            apply { a(l); }
        }"#)
    .unwrap_err();
    assert!(errs.iter().any(|d| d.code == DiagCode::NotAssignable), "{errs:?}");
}

// ---------------------------------------------------------------------
// T-Index
// ---------------------------------------------------------------------

#[test]
fn high_index_into_low_stack_rejected() {
    assert_rejects(
        r#"control C(inout <bit<8>, high> h) {
            <bit<8>, low>[4] arr;
            apply { h = arr[h]; }
        }"#,
        DiagCode::IndexLeak,
    );
}

#[test]
fn low_index_into_high_stack_accepted() {
    assert_accepts(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            <bit<8>, high>[4] arr;
            apply { h = arr[l]; }
        }"#,
    );
}

#[test]
fn writing_through_high_index_requires_high_elements() {
    // arr[h] = … writes a high element: fine if pc ⊑ high.
    assert_accepts(
        r#"control C(inout <bit<8>, high> h) {
            <bit<8>, high>[4] arr;
            apply { arr[h] = h; }
        }"#,
    );
}

// ---------------------------------------------------------------------
// T-TblDecl / T-TblCall
// ---------------------------------------------------------------------

#[test]
fn high_key_with_low_writing_action_rejected() {
    // The §5.2 cache pattern: secret query key, actions write the public
    // hit flag.
    assert_rejects(
        r#"control C(inout <bit<8>, high> query, inout <bool, low> hit) {
            action cache_hit() { hit = true; }
            table fetch {
                key = { query: exact; }
                actions = { cache_hit; }
            }
            apply { fetch.apply(); }
        }"#,
        DiagCode::TableKeyFlow,
    );
}

#[test]
fn low_key_with_low_writing_action_accepted() {
    assert_accepts(
        r#"control C(inout <bit<8>, low> addr, inout <bool, low> hit) {
            action cache_hit() { hit = true; }
            table fetch {
                key = { addr: exact; }
                actions = { cache_hit; }
            }
            apply { fetch.apply(); }
        }"#,
    );
}

#[test]
fn high_key_with_high_writing_action_accepted() {
    assert_accepts(
        r#"control C(inout <bit<8>, high> query, inout <bit<8>, high> out) {
            action set(<bit<8>, high> v) { out = v; }
            table fetch {
                key = { query: exact; }
                actions = { set; }
            }
            apply { fetch.apply(); }
        }"#,
    );
}

#[test]
fn table_apply_under_high_guard_rejected_when_pc_tbl_low() {
    assert_rejects(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            action set_low() { l = 8w1; }
            table t {
                key = { l: exact; }
                actions = { set_low; }
            }
            apply { if (h == 8w0) { t.apply(); } }
        }"#,
        DiagCode::TableApplyPcViolation,
    );
}

#[test]
fn bound_table_arguments_are_checked() {
    // Listing 3 style: binding a high expression to a high in-param — ok.
    assert_accepts(
        r#"control C(inout <bit<32>, high> failures, inout <bit<8>, low> k,
                     inout <bit<32>, high> out) {
            action forwarding(in <bit<32>, high> f) { out = f; }
            table forward {
                key = { k: exact; }
                actions = { forwarding(failures); }
            }
            apply { forward.apply(); }
        }"#,
    );
    // Binding a high expression to a *low* in-param is an explicit flow.
    assert_rejects(
        r#"control C(inout <bit<32>, high> failures, inout <bit<8>, low> k,
                     inout <bit<32>, low> out) {
            action forwarding(in <bit<32>, low> f) { out = f; }
            table forward {
                key = { k: exact; }
                actions = { forwarding(failures); }
            }
            apply { forward.apply(); }
        }"#,
        DiagCode::ExplicitFlow,
    );
}

#[test]
fn table_with_unknown_action_rejected() {
    assert_rejects(
        r#"control C(inout <bit<8>, low> k) {
            table t {
                key = { k: exact; }
                actions = { ghost; }
            }
            apply { t.apply(); }
        }"#,
        DiagCode::UnknownAction,
    );
}

#[test]
fn table_with_unknown_match_kind_rejected() {
    assert_rejects(
        r#"control C(inout <bit<8>, low> k) {
            action a() { }
            table t {
                key = { k: fuzzy; }
                actions = { a; }
            }
            apply { t.apply(); }
        }"#,
        DiagCode::UnknownMatchKind,
    );
}

#[test]
fn functions_cannot_appear_in_tables() {
    assert_rejects(
        r#"control C(inout <bit<8>, low> k) {
            function void f() { return; }
            table t {
                key = { k: exact; }
                actions = { f; }
            }
            apply { t.apply(); }
        }"#,
        DiagCode::UnknownAction,
    );
}

#[test]
fn default_action_must_be_listed() {
    assert_rejects(
        r#"control C(inout <bit<8>, low> k) {
            action a() { }
            action b() { }
            table t {
                key = { k: exact; }
                actions = { a; }
                default_action = b;
            }
            apply { t.apply(); }
        }"#,
        DiagCode::UnknownAction,
    );
}

#[test]
fn control_plane_params_are_not_bound_at_declaration() {
    // `cache_hit(<bit<32>, low> value)` — directionless parameter is
    // control-plane supplied, so the table lists the action bare.
    assert_accepts(
        r#"control C(inout <bit<8>, low> q, inout <bit<32>, low> value_out) {
            action cache_hit(<bit<32>, low> value) { value_out = value; }
            table fetch {
                key = { q: exact; }
                actions = { cache_hit; }
            }
            apply { fetch.apply(); }
        }"#,
    );
}

// ---------------------------------------------------------------------
// The diamond lattice and @pc (§5.4, Figure 8)
// ---------------------------------------------------------------------

const DIAMOND_HEADERS: &str = r#"
    lattice { bot < A; bot < B; A < top; B < top; }
    header data_t {
        <bit<32>, A> alice_data;
        <bit<32>, B> bob_data;
        <bit<32>, top> telem;
        <bit<32>, bot> eth_dst;
    }
"#;

#[test]
fn alice_writing_own_field_accepted_at_pc_a() {
    assert_accepts(&format!(
        r#"{DIAMOND_HEADERS}
        @pc(A) control Alice(inout data_t hdr) {{
            action set_by_alice(<bit<32>, A> value) {{ hdr.alice_data = value; }}
            table update {{
                key = {{ hdr.alice_data: exact; }}
                actions = {{ set_by_alice; }}
            }}
            apply {{ update.apply(); }}
        }}"#
    ));
}

#[test]
fn alice_writing_bobs_field_rejected() {
    // Listing 6 line 12: Alice must not write Bob's field.
    assert_rejects(
        &format!(
            r#"{DIAMOND_HEADERS}
        @pc(A) control Alice(inout data_t hdr) {{
            action set_by_alice(<bit<32>, A> value) {{ hdr.bob_data = value; }}
            apply {{ }}
        }}"#
        ),
        DiagCode::ExplicitFlow,
    );
}

#[test]
fn alice_reading_telemetry_key_rejected() {
    // Listing 6 line 16: telemetry (⊤) used as a table key for an action
    // writing at A.
    assert_rejects(
        &format!(
            r#"{DIAMOND_HEADERS}
        @pc(A) control Alice(inout data_t hdr) {{
            action set_by_alice(<bit<32>, A> value) {{ hdr.alice_data = value; }}
            table update {{
                key = {{ hdr.telem: exact; }}
                actions = {{ set_by_alice; }}
            }}
            apply {{ update.apply(); }}
        }}"#
        ),
        DiagCode::TableKeyFlow,
    );
}

#[test]
fn bob_incrementing_telemetry_accepted_at_pc_b() {
    // Listing 6's Bob_Ingress: telemetry += 1 keyed on the ⊥ eth field.
    assert_accepts(&format!(
        r#"{DIAMOND_HEADERS}
        @pc(B) control Bob(inout data_t hdr) {{
            action set_by_bob() {{ hdr.telem = hdr.telem + 32w1; }}
            table update {{
                key = {{ hdr.eth_dst: exact; }}
                actions = {{ set_by_bob; NoAction; }}
            }}
            apply {{ update.apply(); }}
        }}"#
    ));
}

#[test]
fn alice_writing_bottom_field_rejected_at_pc_a() {
    // pc = A forbids writes to ⊥-labeled routing data (§5.4: "Alice can
    // only write to fields labeled A or ⊤").
    assert_rejects(
        &format!(
            r#"{DIAMOND_HEADERS}
        @pc(A) control Alice(inout data_t hdr) {{
            apply {{ hdr.eth_dst = 32w1; }}
        }}"#
        ),
        DiagCode::ImplicitFlow,
    );
}

#[test]
fn ambient_pc_option_behaves_like_annotation() {
    let src = r#"
        lattice { bot < A; bot < B; A < top; B < top; }
        control Alice(inout <bit<32>, B> bob) {
            apply { bob = 32w1; }
        }
    "#;
    // At pc = A, writing a B field is an implicit-flow violation.
    let errs = ifc_at(src, "A").unwrap_err();
    assert!(errs.iter().any(|d| d.code == DiagCode::ImplicitFlow), "{errs:?}");
    // At the default ⊥ it is fine.
    assert!(ifc(src).is_ok());
}

#[test]
fn lattice_override_option() {
    let src = r#"
        control C(inout <bit<8>, A> a, inout <bit<8>, B> b) {
            apply { a = b; }
        }
    "#;
    // A and B are incomparable in the diamond: explicit flow.
    let errs =
        check_source(src, &CheckOptions::ifc().with_lattice(Lattice::diamond())).unwrap_err();
    assert!(errs.iter().any(|d| d.code == DiagCode::ExplicitFlow), "{errs:?}");
}

// ---------------------------------------------------------------------
// Variable declarations
// ---------------------------------------------------------------------

#[test]
fn var_init_flow_checked() {
    assert_rejects(
        r#"control C(inout <bit<8>, high> h) {
            apply { <bit<8>, low> l = h; }
        }"#,
        DiagCode::ExplicitFlow,
    );
    assert_accepts(
        r#"control C(inout <bit<8>, low> l) {
            apply { <bit<8>, high> h = l; }
        }"#,
    );
}

#[test]
fn typedefs_unfold_with_labels() {
    assert_rejects(
        r#"typedef bit<32> ip_t;
        control C(inout <ip_t, low> l, inout <ip_t, high> h) {
            apply { l = h; }
        }"#,
        DiagCode::ExplicitFlow,
    );
}

#[test]
fn compound_annotation_pushes_to_fields() {
    // Annotating a whole header with A labels its fields (Listing 6's
    // `<alice_t, A> alice_data`).
    assert_rejects(
        r#"lattice { bot < A; bot < B; A < top; B < top; }
        header payload_t { bit<32> v; }
        struct wrap { <payload_t, A> alice; <payload_t, B> bob; }
        control C(inout wrap w) {
            apply { w.bob.v = w.alice.v; }
        }"#,
        DiagCode::ExplicitFlow,
    );
}

// ---------------------------------------------------------------------
// Plain type errors (base judgements, both modes)
// ---------------------------------------------------------------------

#[test]
fn unknown_variable() {
    assert_rejects("control C(inout bit<8> x) { apply { x = ghost; } }", DiagCode::UnknownVar);
}

#[test]
fn unknown_field() {
    assert_rejects(
        r#"header h_t { bit<8> a; }
        control C(inout h_t h) { apply { h.b = 8w1; } }"#,
        DiagCode::UnknownField,
    );
}

#[test]
fn width_mismatch() {
    assert_rejects(
        "control C(inout bit<8> x, inout bit<16> y) { apply { x = y; } }",
        DiagCode::TypeMismatch,
    );
}

#[test]
fn int_literals_coerce_to_bits() {
    assert_accepts("control C(inout bit<8> x) { apply { x = 255; x = x + 1; } }");
}

#[test]
fn arity_mismatch() {
    assert_rejects(
        r#"control C(inout bit<8> x) {
            action a(in bit<8> v) { }
            apply { a(x, x); }
        }"#,
        DiagCode::ArityMismatch,
    );
}

#[test]
fn calling_a_variable_rejected() {
    assert_rejects("control C(inout bit<8> x) { apply { x(); } }", DiagCode::NotCallable);
}

#[test]
fn table_apply_in_expression_rejected() {
    assert_rejects(
        r#"control C(inout bit<8> x) {
            action a() { }
            table t { key = { x: exact; } actions = { a; } }
            apply { x = t(); }
        }"#,
        DiagCode::NotCallable,
    );
}

#[test]
fn missing_return_detected() {
    assert_rejects(
        r#"function bit<8> f(in bit<8> x) {
            if (x == 8w0) { return 8w1; }
        }
        control C(inout bit<8> y) { apply { y = f(y); } }"#,
        DiagCode::MissingReturn,
    );
}

#[test]
fn return_on_all_paths_accepted() {
    assert_accepts(
        r#"function bit<8> f(in bit<8> x) {
            if (x == 8w0) { return 8w1; } else { return 8w2; }
        }
        control C(inout bit<8> y) { apply { y = f(y); } }"#,
    );
}

#[test]
fn duplicate_declaration_rejected() {
    assert_rejects(
        r#"control C(inout bit<8> x) {
            bit<8> v = 8w0;
            bit<8> v = 8w1;
            apply { }
        }"#,
        DiagCode::DuplicateDef,
    );
}

#[test]
fn shadowing_in_nested_scope_allowed() {
    assert_accepts(
        r#"control C(inout bit<8> x) {
            bit<8> v = 8w0;
            apply { { bit<8> v = 8w1; x = v; } x = v; }
        }"#,
    );
}

#[test]
fn if_guard_must_be_bool() {
    assert_rejects(
        "control C(inout bit<8> x) { apply { if (x) { x = 8w1; } } }",
        DiagCode::TypeMismatch,
    );
}

#[test]
fn header_fields_must_be_base_types() {
    assert_rejects(
        r#"header inner_t { bit<8> v; }
        header outer_t { inner_t nested; }
        control C(inout outer_t o) { apply { } }"#,
        DiagCode::TypeMismatch,
    );
}

#[test]
fn structs_may_nest_headers() {
    assert_accepts(
        r#"header inner_t { bit<8> v; }
        struct outer_t { inner_t nested; }
        control C(inout outer_t o) { apply { o.nested.v = 8w1; } }"#,
    );
}

#[test]
fn unknown_label_reported() {
    assert_rejects("control C(inout <bit<8>, secret> x) { apply { } }", DiagCode::UnknownLabel);
}

#[test]
fn base_mode_ignores_unknown_labels() {
    base("control C(inout <bit<8>, secret> x) { apply { } }")
        .expect("annotations are stripped in base mode");
}

#[test]
fn prelude_helpers_available() {
    assert_accepts(
        r#"control C(inout standard_metadata_t meta, inout bit<32> x) {
            apply {
                x = num_bits_set(x);
                mark_to_drop(meta);
                NoAction();
            }
        }"#,
    );
}

#[test]
fn diagnostics_carry_spans() {
    let src = "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }";
    let errs = ifc(src).unwrap_err();
    let d = &errs[0];
    let snippet = &src[d.span.start as usize..d.span.end as usize];
    assert!(snippet.contains("l = h"), "span points at the leak: {snippet:?}");
}

#[test]
fn multiple_errors_reported_together() {
    let errs = ifc(r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            apply {
                l = h;
                if (h == 8w0) { l = 8w1; }
            }
        }"#)
    .unwrap_err();
    assert!(errs.len() >= 2, "both leaks reported: {errs:?}");
}

// ---------------------------------------------------------------------
// pc-floor: `@pc(...)` may not dip below the ambient context
// ---------------------------------------------------------------------

#[test]
fn pc_floor_rejects_understated_annotations() {
    let src = "@pc(low) control C(inout <bit<8>, low> y) { apply { y = y + 8w1; } }";
    // Without the floor, the annotation overrides the ambient pc (a
    // standalone check trusts it).
    check_source(src, &CheckOptions::ifc().with_pc("high")).expect("annotation wins by default");
    // With the floor (the topology driver's seeding mode), an understated
    // annotation is a security error.
    let floored = CheckOptions::ifc().with_pc("high").with_pc_floor(true);
    let errs = check_source(src, &floored).unwrap_err();
    assert!(errs.iter().any(|d| d.code == DiagCode::PcBelowAmbient), "{errs:?}");
    assert!(DiagCode::PcBelowAmbient.is_security());
    // Annotations at or above the ambient context stay legal.
    let at = "@pc(high) control C(inout <bit<8>, high> y) { apply { y = y + 8w1; } }";
    check_source(at, &floored).expect("annotation at the floor is fine");
    // And the floor is inert at ambient bottom: every label qualifies.
    let bottom = CheckOptions::ifc().with_pc_floor(true);
    check_source(src, &bottom).expect("floor at bottom never fires");
}
