//! White-box tests of the `pc_fn` / `pc_tbl` inference (T-FuncDecl and
//! T-TblDecl): the inferred bounds exposed through
//! [`p4bid_typeck::TypedControl`] must be exactly the principal (largest
//! admissible) choices described in DESIGN.md §4.

use p4bid_lattice::Lattice;
use p4bid_typeck::{check_source, CheckOptions, TypedProgram};

fn typed(src: &str) -> TypedProgram {
    check_source(src, &CheckOptions::ifc()).expect("typechecks")
}

fn typed_with(src: &str, lattice: Lattice) -> TypedProgram {
    check_source(src, &CheckOptions::ifc().with_lattice(lattice)).expect("typechecks")
}

#[test]
fn pc_fn_is_the_written_level() {
    let t = typed(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            action writes_low() { l = 8w1; }
            action writes_high() { h = 8w1; }
            action writes_both() { l = 8w1; h = 8w2; }
            action writes_nothing() { }
            apply { writes_low(); writes_high(); writes_both(); writes_nothing(); }
        }"#,
    );
    let c = t.control("C").unwrap();
    let lat = &t.lattice;
    assert_eq!(c.function("writes_low").unwrap().pc_fn, lat.bottom());
    assert_eq!(c.function("writes_high").unwrap().pc_fn, lat.top());
    assert_eq!(c.function("writes_both").unwrap().pc_fn, lat.bottom(), "meet of bounds");
    assert_eq!(c.function("writes_nothing").unwrap().pc_fn, lat.top(), "no constraints");
}

#[test]
fn return_and_exit_pin_pc_fn_to_bottom() {
    let t = typed(
        r#"control C(inout <bit<8>, high> h) {
            function <bit<8>, high> f(in <bit<8>, high> x) { return x; }
            action quits() { exit; }
            apply { h = f(h); }
        }"#,
    );
    let c = t.control("C").unwrap();
    assert_eq!(c.function("f").unwrap().pc_fn, t.lattice.bottom());
    assert_eq!(c.function("quits").unwrap().pc_fn, t.lattice.bottom());
}

#[test]
fn pc_fn_propagates_through_calls() {
    let t = typed(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            action inner_low() { l = 8w1; }
            action inner_high() { h = 8w1; }
            action calls_low() { inner_low(); }
            action calls_high() { inner_high(); }
            apply { calls_low(); calls_high(); }
        }"#,
    );
    let c = t.control("C").unwrap();
    assert_eq!(c.function("calls_low").unwrap().pc_fn, t.lattice.bottom());
    assert_eq!(c.function("calls_high").unwrap().pc_fn, t.lattice.top());
}

#[test]
fn pc_fn_in_the_diamond_is_the_meet() {
    let lat = Lattice::diamond();
    let t = typed_with(
        r#"control C(inout <bit<8>, A> a, inout <bit<8>, B> b, inout <bit<8>, top> t) {
            action writes_a() { a = 8w1; }
            action writes_a_and_b() { a = 8w1; b = 8w1; }
            action writes_top() { t = 8w1; }
            apply { writes_a(); writes_a_and_b(); writes_top(); }
        }"#,
        lat.clone(),
    );
    let c = t.control("C").unwrap();
    assert_eq!(c.function("writes_a").unwrap().pc_fn, lat.label("A").unwrap());
    assert_eq!(
        c.function("writes_a_and_b").unwrap().pc_fn,
        lat.bottom(),
        "A ⊓ B = ⊥ in the diamond"
    );
    assert_eq!(c.function("writes_top").unwrap().pc_fn, lat.top());
}

#[test]
fn pc_tbl_is_the_meet_of_action_bounds() {
    let t = typed(
        r#"control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
            action wl() { l = 8w1; }
            action wh() { h = 8w1; }
            table only_high { key = { l: exact; } actions = { wh; } }
            table mixed { key = { l: exact; } actions = { wl; wh; } }
            apply { only_high.apply(); mixed.apply(); }
        }"#,
    );
    let c = t.control("C").unwrap();
    assert_eq!(c.table_pc("only_high").unwrap(), t.lattice.top());
    assert_eq!(c.table_pc("mixed").unwrap(), t.lattice.bottom());
    assert!(c.table_pc("nope").is_none());
}

#[test]
fn empty_action_table_has_top_pc_tbl() {
    let t = typed(
        r#"control C(inout bit<8> x) {
            action nop() { }
            table t { key = { x: exact; } actions = { nop; } }
            apply { t.apply(); }
        }"#,
    );
    let c = t.control("C").unwrap();
    assert_eq!(c.table_pc("t").unwrap(), t.lattice.top());
}

#[test]
fn globals_are_visible_in_every_control_signature_list() {
    let t = typed(
        r#"function void noop(inout bit<8> x) { x = x; }
        control A(inout bit<8> x) { apply { noop(x); } }
        control B(inout bit<8> x) {
            action local_b() { x = 8w1; }
            apply { local_b(); }
        }"#,
    );
    let a = t.control("A").unwrap();
    let b = t.control("B").unwrap();
    assert!(a.function("noop").is_some());
    assert!(b.function("noop").is_some());
    // Control-local declarations do not leak across controls.
    assert!(a.function("local_b").is_none());
    assert!(b.function("local_b").is_some());
}

#[test]
fn prelude_signatures_are_inferred() {
    let t = typed("control C(inout bit<8> x) { apply { } }");
    let c = t.control("C").unwrap();
    // num_bits_set returns ⇒ pc_fn = ⊥; it is a function, not an action.
    let nbs = c.function("num_bits_set").unwrap();
    assert!(!nbs.is_action);
    assert_eq!(nbs.pc_fn, t.lattice.bottom());
    // NoAction writes nothing ⇒ pc_fn = ⊤; it is an action.
    let na = c.function("NoAction").unwrap();
    assert!(na.is_action);
    assert_eq!(na.pc_fn, t.lattice.top());
    // mark_to_drop writes ⊥-labeled metadata ⇒ pc_fn = ⊥.
    assert_eq!(c.function("mark_to_drop").unwrap().pc_fn, t.lattice.bottom());
}

#[test]
fn control_plane_params_are_flagged() {
    let t = typed(
        r#"control C(inout bit<8> x) {
            action a(in bit<8> data, bit<8> cp) { x = data + cp; }
            apply { }
        }"#,
    );
    let c = t.control("C").unwrap();
    let a = c.function("a").unwrap();
    let params: Vec<(String, bool)> =
        a.params.iter().map(|p| (t.sym_name(p.name), p.control_plane)).collect();
    assert_eq!(params, [("data".to_string(), false), ("cp".to_string(), true)]);
    assert_eq!(a.data_params().count(), 1);
    assert_eq!(a.control_params().count(), 1);
}
