//! Shared support for the conformance and golden-diagnostics suites:
//! testdata discovery and the `// expect:` / `// pc:` / `// mode:` /
//! `// declassify:` directive comments carried by the corpus files.

#![allow(dead_code)] // each test binary uses a subset

use p4bid_typeck::{CheckOptions, Mode};
use std::fs;
use std::path::{Path, PathBuf};

/// Directives parsed from a corpus file's leading comments.
pub struct Directives {
    /// Required diagnostic idents (reject files only).
    pub expect: Vec<String>,
    /// Ambient pc for the check.
    pub pc: Option<String>,
    /// Checker mode (defaults to IFC).
    pub mode: Mode,
    /// Whether `declassify(e)` is permitted (`// declassify: allow`).
    pub declassify: bool,
}

/// Parses the `//`-comment directives of a corpus file.
pub fn parse_directives(source: &str) -> Directives {
    let mut d = Directives { expect: Vec::new(), pc: None, mode: Mode::Ifc, declassify: false };
    for line in source.lines() {
        let Some(comment) = line.trim().strip_prefix("//") else { continue };
        let comment = comment.trim();
        if let Some(codes) = comment.strip_prefix("expect:") {
            d.expect.extend(codes.split_whitespace().map(str::to_string));
        } else if let Some(pc) = comment.strip_prefix("pc:") {
            d.pc = Some(pc.trim().to_string());
        } else if let Some(mode) = comment.strip_prefix("mode:") {
            if mode.trim() == "base" {
                d.mode = Mode::Base;
            }
        } else if let Some(declassify) = comment.strip_prefix("declassify:") {
            d.declassify = declassify.trim() == "allow";
        }
    }
    d
}

/// The `.p4` files under `testdata/<sub>`, sorted for determinism.
pub fn testdata(sub: &str) -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata").join(sub);
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "p4"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .p4 files in {}", dir.display());
    files
}

/// Check options honoring a file's directives.
pub fn options_for(d: &Directives) -> CheckOptions {
    let mut opts = CheckOptions { mode: d.mode, ..Default::default() };
    if let Some(pc) = &d.pc {
        opts = opts.with_pc(pc.clone());
    }
    if d.declassify {
        opts = opts.with_declassify(true);
    }
    opts
}
