//! Conformance suite: every `.p4` file under `testdata/accept` must
//! typecheck and every file under `testdata/reject` must be rejected with
//! the diagnostic class named in its `// expect: E-…` directive.
//!
//! Directives (leading comment lines):
//!
//! * `// expect: E-CODE [E-CODE…]` — required diagnostic idents (reject
//!   files only);
//! * `// pc: LABEL` — ambient pc for the check;
//! * `// mode: base` — run the baseline checker instead of IFC.

mod common;

use common::{options_for, parse_directives, testdata};
use p4bid_typeck::{check_source, CheckOptions};
use std::fs;

#[test]
fn accept_corpus_typechecks() {
    for path in testdata("accept") {
        let source = fs::read_to_string(&path).expect("readable file");
        let d = parse_directives(&source);
        assert!(
            d.expect.is_empty(),
            "{}: accept files must not carry expect directives",
            path.display()
        );
        if let Err(errs) = check_source(&source, &options_for(&d)) {
            panic!("{} rejected: {errs:?}", path.display());
        }
    }
}

#[test]
fn reject_corpus_fails_with_expected_codes() {
    for path in testdata("reject") {
        let source = fs::read_to_string(&path).expect("readable file");
        let d = parse_directives(&source);
        assert!(
            !d.expect.is_empty(),
            "{}: reject files need an `// expect:` directive",
            path.display()
        );
        let errs = check_source(&source, &options_for(&d))
            .err()
            .unwrap_or_else(|| panic!("{} unexpectedly accepted", path.display()));
        let idents: Vec<&str> = errs.iter().map(|e| e.code.ident()).collect();
        for code in &d.expect {
            assert!(
                idents.contains(&code.as_str()),
                "{}: expected {code}, got {idents:?}",
                path.display()
            );
        }
    }
}

#[test]
fn reject_corpus_is_clean_apart_from_the_seeded_bug() {
    // Reject files must be *well-typed* programs with pure security bugs:
    // in permissive mode they all pass (so the interpreter could run
    // them), with the sole exception of plain type errors marked
    // E-TYPE-MISMATCH and friends.
    for path in testdata("reject") {
        let source = fs::read_to_string(&path).expect("readable file");
        let d = parse_directives(&source);
        let security_only = d
            .expect
            .iter()
            .all(|c| !matches!(c.as_str(), "E-TYPE-MISMATCH" | "E-MALFORMED" | "E-UNKNOWN-VAR"));
        if !security_only {
            continue;
        }
        let mut opts = CheckOptions::permissive();
        if let Some(pc) = &d.pc {
            opts = opts.with_pc(pc.clone());
        }
        if let Err(errs) = check_source(&source, &opts) {
            panic!("{} has non-security errors: {errs:?}", path.display());
        }
    }
}
