//! Conformance suite: every `.p4` file under `testdata/accept` must
//! typecheck and every file under `testdata/reject` must be rejected with
//! the diagnostic class named in its `// expect: E-…` directive.
//!
//! Directives (leading comment lines):
//!
//! * `// expect: E-CODE [E-CODE…]` — required diagnostic idents (reject
//!   files only);
//! * `// pc: LABEL` — ambient pc for the check;
//! * `// mode: base` — run the baseline checker instead of IFC.

use p4bid_typeck::{check_source, CheckOptions, Mode};
use std::fs;
use std::path::{Path, PathBuf};

struct Directives {
    expect: Vec<String>,
    pc: Option<String>,
    mode: Mode,
}

fn parse_directives(source: &str) -> Directives {
    let mut d = Directives { expect: Vec::new(), pc: None, mode: Mode::Ifc };
    for line in source.lines() {
        let Some(comment) = line.trim().strip_prefix("//") else { continue };
        let comment = comment.trim();
        if let Some(codes) = comment.strip_prefix("expect:") {
            d.expect.extend(codes.split_whitespace().map(str::to_string));
        } else if let Some(pc) = comment.strip_prefix("pc:") {
            d.pc = Some(pc.trim().to_string());
        } else if let Some(mode) = comment.strip_prefix("mode:") {
            if mode.trim() == "base" {
                d.mode = Mode::Base;
            }
        }
    }
    d
}

fn testdata(sub: &str) -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata").join(sub);
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "p4"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .p4 files in {}", dir.display());
    files
}

fn options_for(d: &Directives) -> CheckOptions {
    let mut opts = CheckOptions { mode: d.mode, ..Default::default() };
    if let Some(pc) = &d.pc {
        opts = opts.with_pc(pc.clone());
    }
    opts
}

#[test]
fn accept_corpus_typechecks() {
    for path in testdata("accept") {
        let source = fs::read_to_string(&path).expect("readable file");
        let d = parse_directives(&source);
        assert!(
            d.expect.is_empty(),
            "{}: accept files must not carry expect directives",
            path.display()
        );
        if let Err(errs) = check_source(&source, &options_for(&d)) {
            panic!("{} rejected: {errs:?}", path.display());
        }
    }
}

#[test]
fn reject_corpus_fails_with_expected_codes() {
    for path in testdata("reject") {
        let source = fs::read_to_string(&path).expect("readable file");
        let d = parse_directives(&source);
        assert!(
            !d.expect.is_empty(),
            "{}: reject files need an `// expect:` directive",
            path.display()
        );
        let errs = check_source(&source, &options_for(&d))
            .err()
            .unwrap_or_else(|| panic!("{} unexpectedly accepted", path.display()));
        let idents: Vec<&str> = errs.iter().map(|e| e.code.ident()).collect();
        for code in &d.expect {
            assert!(
                idents.contains(&code.as_str()),
                "{}: expected {code}, got {idents:?}",
                path.display()
            );
        }
    }
}

#[test]
fn reject_corpus_is_clean_apart_from_the_seeded_bug() {
    // Reject files must be *well-typed* programs with pure security bugs:
    // in permissive mode they all pass (so the interpreter could run
    // them), with the sole exception of plain type errors marked
    // E-TYPE-MISMATCH and friends.
    for path in testdata("reject") {
        let source = fs::read_to_string(&path).expect("readable file");
        let d = parse_directives(&source);
        let security_only = d
            .expect
            .iter()
            .all(|c| !matches!(c.as_str(), "E-TYPE-MISMATCH" | "E-MALFORMED" | "E-UNKNOWN-VAR"));
        if !security_only {
            continue;
        }
        let mut opts = CheckOptions::permissive();
        if let Some(pc) = &d.pc {
            opts = opts.with_pc(pc.clone());
        }
        if let Err(errs) = check_source(&source, &opts) {
            panic!("{} has non-security errors: {errs:?}", path.display());
        }
    }
}
