//! Flow-lineage "explain" diagnostics: every security rejection carries
//! the source→sink path the checker walked, rendered as a chain, and
//! accepted programs keep their full lineage graph for auditing.

use p4bid_typeck::{check_source, CheckOptions, DiagCode, FlowOp};

const LEAK: &str = "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) \
                    { apply { l = h; } }";

#[test]
fn explicit_flows_explain_the_offending_edge() {
    let errs = check_source(LEAK, &CheckOptions::ifc()).unwrap_err();
    let d = &errs[0];
    assert_eq!(d.code, DiagCode::ExplicitFlow);
    assert_eq!(d.lineage.len(), 1);
    let edge = &d.lineage[0];
    assert_eq!(edge.op, FlowOp::Assign);
    assert_eq!(edge.source.what, "h");
    assert_eq!(edge.sink.what, "l");
    let chain = d.lineage_chain().unwrap();
    assert_eq!(chain, "`h` (high) --assign--> `l` (low)");
    assert!(d.to_string().contains("flow: `h` (high) --assign--> `l` (low)"), "{d}");
}

#[test]
fn multi_hop_chains_name_every_intermediate() {
    let src = "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {\n\
               \x20   apply {\n\
               \x20       <bit<8>, high> x = h;\n\
               \x20       <bit<8>, high> y = x;\n\
               \x20       l = y;\n\
               \x20   }\n\
               }\n";
    let errs = check_source(src, &CheckOptions::ifc()).unwrap_err();
    let chain = errs[0].lineage_chain().unwrap();
    assert_eq!(chain, "`h` (high) --init--> `x` (high) --init--> `y` (high) --assign--> `l` (low)");
}

#[test]
fn implicit_flows_blame_the_guard() {
    let src = "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {\n\
               \x20   apply {\n\
               \x20       if (h == 8w0) {\n\
               \x20           l = 8w1;\n\
               \x20       }\n\
               \x20   }\n\
               }\n";
    let errs = check_source(src, &CheckOptions::ifc()).unwrap_err();
    assert_eq!(errs[0].code, DiagCode::ImplicitFlow);
    let chain = errs[0].lineage_chain().unwrap();
    assert_eq!(chain, "`h == 8w0` (high) --guard-pc--> `l` (low)");
}

#[test]
fn declassify_is_forbidden_by_default_and_granted_by_options() {
    let src = "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) \
               { apply { l = declassify(h); } }";
    let errs = check_source(src, &CheckOptions::ifc()).unwrap_err();
    assert_eq!(errs[0].code, DiagCode::DeclassifyForbidden);
    assert_eq!(errs[0].lineage[0].op, FlowOp::Declassify);

    let typed = check_source(src, &CheckOptions::ifc().with_declassify(true)).unwrap();
    // The grant keeps the audit trail: the declassification edge is in
    // the program's lineage graph even though nothing was rejected.
    assert!(typed.lineage.edges().iter().any(|e| e.op == FlowOp::Declassify));
}

#[test]
fn user_definitions_shadow_the_declassify_builtin() {
    // A user function named `declassify` is an ordinary call, with
    // ordinary label propagation — so the leak is an explicit flow, not
    // a declassification.
    let src = "function bit<8> declassify(in bit<8> x) { return x; }\n\
               control C(inout <bit<8>, low> l, inout <bit<8>, high> h) \
               { apply { l = declassify(h); } }";
    let errs = check_source(src, &CheckOptions::ifc()).unwrap_err();
    assert_eq!(errs[0].code, DiagCode::ExplicitFlow);
}

#[test]
fn lineage_off_leaves_diagnostics_bare() {
    let errs = check_source(LEAK, &CheckOptions::ifc().with_lineage(false)).unwrap_err();
    assert_eq!(errs[0].code, DiagCode::ExplicitFlow);
    assert!(errs[0].lineage.is_empty());
    assert!(errs[0].lineage_chain().is_none());
    assert!(!errs[0].to_string().contains("\n  flow:"));
}

#[test]
fn accepted_programs_keep_their_lineage_graph() {
    let src = "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) \
               { apply { h = l; } }";
    let typed = check_source(src, &CheckOptions::ifc()).unwrap();
    let low = typed.lattice.label("low").unwrap();
    let high = typed.lattice.label("high").unwrap();
    let edges = typed.lineage.edges();
    assert!(
        edges.iter().any(|e| e.op == FlowOp::Assign && e.src_label == low && e.sink_label == high),
        "{edges:?}"
    );
    // Base mode never records: there are no labels to explain.
    let base = check_source(src, &CheckOptions::base()).unwrap();
    assert!(base.lineage.edges().is_empty());
}
