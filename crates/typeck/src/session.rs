//! Reusable checker sessions for throughput-oriented workloads, and the
//! shared frozen core that lets a fleet of sessions skip warm-up entirely.
//!
//! [`check_source`](crate::check_source) is convenient but pays fixed costs
//! on every call: the standard prelude is re-checked, a fresh interner is
//! grown from nothing, and the lattice label table is rebuilt. A
//! [`CheckerSession`] pays those costs once and then checks any number of
//! programs against the shared state — the shape the `p4bid batch` driver
//! and any long-running checking service want.
//!
//! A session is deliberately *not* `Sync`: parallel drivers give each
//! worker thread its own session, which keeps every structure lock-free.
//! What *is* shared across threads is a [`SharedSessionCore`]: an
//! immutable, `Send + Sync` snapshot of a fully warmed session — frozen
//! interner/pool segments, the parsed prelude, and the per-lattice
//! checked-prelude states — produced by [`CheckerSession::freeze`] and
//! turned back into per-worker sessions by [`SharedSessionCore::session`]
//! at the cost of a few table clones (no prelude re-lex, re-parse, or
//! re-check; the regression suite counts those builds). Results are
//! identical to the one-shot entry points and to cold sessions (the
//! conformance and determinism suites assert this).
//!
//! # Examples
//!
//! ```
//! use p4bid_typeck::{CheckerSession, CheckOptions, DiagCode, SharedSessionCore};
//!
//! // One warmed, frozen core…
//! let core = SharedSessionCore::new(CheckOptions::ifc());
//! // …many cheap per-worker sessions.
//! let mut session = core.session();
//! for _ in 0..3 {
//!     let ok = session.check("control C(inout bit<8> x) { apply { x = x + 8w1; } }");
//!     assert!(ok.is_ok());
//!     let leak = session.check(
//!         "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }",
//!     );
//!     assert!(leak.unwrap_err().iter().any(|d| d.code == DiagCode::ExplicitFlow));
//! }
//! ```

use crate::checker::{
    check_items, check_items_run, control_within_tiers, lattice_from_decl, resolve_default_pc,
    resolve_lattice, CheckOptions, CheckerState, ProgramView, ResumeSeed, TypedProgram,
};
use crate::diag::{DiagCode, Diagnostic};
use crate::prefix::{PrefixCache, PrefixEntry};
use crate::{prelude_arc, PRELUDE_CHECKS};
use p4bid_ast::pool::{CtxOverlay, FrozenTyCtx, SharedTyCtx, TyCtx};
use p4bid_ast::surface::Program;
use p4bid_lattice::Lattice;
use p4bid_syntax::{ItemSeg, Token, TokenKind};
use std::rc::Rc;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Default bound on the shared prefix-snapshot cache (entries, across all
/// sessions of one core). Overridden by `--prefix-cache-cap`; `0`
/// disables prefix snapshotting entirely.
pub const DEFAULT_PREFIX_CACHE_CAP: usize = 1024;

/// Locks a mutex, riding through poisoning: the protected caches are
/// always structurally valid (a poisoned run simply never inserted), and
/// panic-isolated drivers keep other workers running after a crash.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// State shared by every session of one core (and carried across
/// refreezes, whose id-stability keeps the contents valid): the prefix
/// snapshot cache and the publish-once table of checked-prelude states
/// for program-supplied lattices.
#[derive(Debug)]
struct CoreShared {
    /// Prefix cache bound (`0` disables; fixed at construction).
    prefix_cap: usize,
    prefix: Mutex<PrefixCache>,
    /// Checked-prelude states for lattices first seen after the freeze,
    /// published once by whichever worker builds them first (only
    /// frozen-pure states are publishable; the rest stay session-local
    /// until a refreeze promotes their ids).
    lattice_states: Mutex<Vec<(Lattice, Arc<CheckerState>)>>,
}

impl CoreShared {
    fn new(cap: usize) -> Self {
        CoreShared {
            prefix_cap: cap,
            prefix: Mutex::new(PrefixCache::new(cap)),
            lattice_states: Mutex::new(Vec::new()),
        }
    }
}

/// A reusable checking session: prelude, interner, and per-lattice checked
/// prelude state are built once and shared across [`check`] calls.
///
/// The session is pinned to one [`CheckOptions`] (mode, lattice override,
/// ambient pc); programs may still bring their own `lattice { … }`
/// declarations — the session caches one checked-prelude snapshot per
/// distinct lattice it encounters.
///
/// Sessions come in two flavors: *cold* ([`CheckerSession::new`]), which
/// type-checks the prelude itself on first use, and *shared-core*
/// ([`SharedSessionCore::session`]), which clones pre-checked state off an
/// immutable frozen segment and layers a private overlay on top for
/// program-local symbols and types.
///
/// [`check`]: CheckerSession::check
#[derive(Debug)]
pub struct CheckerSession {
    opts: CheckOptions,
    /// The shared interner + hash-consing type pool. Grown across checks
    /// (append-only); every [`TypedProgram`] this session produces holds a
    /// reference to it, so prelude types are pooled exactly once and keyed
    /// by `TyId` in the per-lattice snapshots. For shared-core sessions
    /// this is an overlay over the core's frozen segment.
    ctx: SharedTyCtx,
    /// A one-shot deadline for the *next* check (see
    /// [`set_deadline`](CheckerSession::set_deadline)); consumed by that
    /// check. When absent, each check derives its own deadline from
    /// `opts.check_timeout_ms`.
    deadline: Option<std::time::Instant>,
    /// The prelude, parsed once per process and shared by handle.
    prelude: Arc<Program>,
    /// Checked-prelude snapshots, keyed by the lattice they were checked
    /// under and shared by handle (snapshots are immutable once built, so
    /// cloning a session off a core is a handful of `Arc` bumps). Real
    /// workloads use one lattice (or a handful), so a linear scan over
    /// `Lattice` equality is fine.
    states: Vec<(Lattice, Arc<CheckerState>)>,
    /// How many leading `states` entries came from the shared core; the
    /// rest were built by this session and are harvestable
    /// ([`into_harvest`](CheckerSession::into_harvest)).
    core_states: usize,
    /// The cross-session shared caches (private to this session when
    /// cold; shared with every sibling on the shared-core path).
    shared: Arc<CoreShared>,
    /// Prefix-snapshot counters (per session, summed by
    /// [`SessionStats::absorb`]).
    prefix_hits: u64,
    prefix_misses: u64,
    prefix_inserts: u64,
    prefix_items_saved: u64,
    /// Publish-once lattice-state counters.
    lattice_state_hits: u64,
    lattice_states_published: u64,
}

impl CheckerSession {
    /// Builds a cold (root-tier) session.
    #[must_use]
    pub fn new(opts: CheckOptions) -> Self {
        CheckerSession {
            opts,
            ctx: TyCtx::shared(),
            prelude: prelude_arc(),
            states: Vec::new(),
            deadline: None,
            core_states: 0,
            shared: Arc::new(CoreShared::new(DEFAULT_PREFIX_CACHE_CAP)),
            prefix_hits: 0,
            prefix_misses: 0,
            prefix_inserts: 0,
            prefix_items_saved: 0,
            lattice_state_hits: 0,
            lattice_states_published: 0,
        }
    }

    /// Replaces the session's prefix-snapshot cache with a fresh one of
    /// the given bound (`0` disables prefix snapshotting), builder-style.
    /// Call before any checking: the cache starts empty.
    #[must_use]
    pub fn with_prefix_cache_cap(mut self, cap: usize) -> Self {
        self.shared = Arc::new(CoreShared::new(cap));
        self
    }

    /// The options this session checks under.
    #[must_use]
    pub fn options(&self) -> &CheckOptions {
        &self.opts
    }

    /// Arms an explicit wall-clock deadline for the *next* check (it is
    /// consumed by that check). Drivers that do per-program work *before*
    /// calling [`check`](CheckerSession::check) — e.g. the batch workers,
    /// which may sleep under fault injection — use this so the budget
    /// covers the whole program, not just the checking half. When no
    /// explicit deadline is armed, each check derives one from
    /// `opts.check_timeout_ms` on entry.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// The default lattice of this session's options: the override if one
    /// is set, else the two-point lattice (a program without a `lattice`
    /// declaration resolves to exactly this).
    fn default_lattice(&self) -> Lattice {
        self.opts.lattice.clone().unwrap_or_else(Lattice::two_point)
    }

    /// Builds the checked-prelude snapshot for the session's default
    /// lattice if it does not exist yet. [`freeze`](CheckerSession::freeze)
    /// calls this so every worker cloned off the core starts warm; exposed
    /// so benchmarks can isolate session-build cost.
    ///
    /// Warming can legitimately fail on user input — e.g. an ambient
    /// `--pc` label that is not in the lattice. The error is *not*
    /// surfaced here: every [`check`](CheckerSession::check) re-resolves
    /// the same state and reports the diagnostic per program, exactly as a
    /// cold session would.
    pub fn warm(&mut self) {
        let lattice = self.default_lattice();
        let _ = self.prelude_state(&lattice);
    }

    /// Freezes this session into an immutable, `Send + Sync`
    /// [`SharedSessionCore`] that any number of worker threads can clone
    /// cheap sessions off. The default-lattice prelude snapshot is built
    /// first (if missing), so cloned sessions start fully warm.
    ///
    /// # Panics
    ///
    /// Panics if the session's context is still referenced by live
    /// [`TypedProgram`]s (freeze requires sole ownership), or if the
    /// session itself came from a shared core (tiers do not stack).
    #[must_use]
    pub fn freeze(mut self) -> SharedSessionCore {
        self.warm();
        let ctx = Rc::try_unwrap(self.ctx)
            .expect(
                "freeze requires sole ownership of the session context; drop TypedPrograms first",
            )
            .into_inner();
        SharedSessionCore {
            opts: self.opts,
            ctx: Arc::new(ctx.freeze()),
            prelude: self.prelude,
            states: self.states,
            // Carried over: root-tier ids become frozen ids verbatim, so
            // any prefix snapshots this session took stay valid.
            shared: self.shared,
        }
    }

    /// Consumes the session, harvesting its overlay interner/pool tables
    /// and locally built checked-prelude states for
    /// [`SharedSessionCore::refreeze`]. Returns `None` when the context
    /// is still referenced by live [`TypedProgram`]s or the session is
    /// root-tier (nothing to merge back).
    #[must_use]
    pub fn into_harvest(self) -> Option<SessionHarvest> {
        let core_states = self.core_states;
        let states = self.states;
        let ctx = Rc::try_unwrap(self.ctx).ok()?.into_inner();
        let overlay = ctx.into_overlay()?;
        let new_states = states
            .into_iter()
            .skip(core_states)
            .map(|(l, s)| (l, CheckerState::clone(&s)))
            .collect();
        Some(SessionHarvest { overlay, new_states })
    }

    /// Tier sizes and frozen-segment hit counters of this session's
    /// interner and pool.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        let ctx = self.ctx.borrow();
        let (frozen_syms, overlay_syms) = ctx.syms.tier_sizes();
        let (sym_frozen_hits, sym_intern_calls) = ctx.syms.frozen_hit_stats();
        let (frozen_types, overlay_types) = ctx.types.tier_sizes();
        let (ty_frozen_hits, ty_intern_calls) = ctx.types.frozen_hit_stats();
        SessionStats {
            frozen_syms,
            overlay_syms,
            frozen_types,
            overlay_types,
            sym_frozen_hits,
            sym_intern_calls,
            ty_frozen_hits,
            ty_intern_calls,
            push_cache_hits: ctx.types.push_cache_hits(),
            prefix_hits: self.prefix_hits,
            prefix_misses: self.prefix_misses,
            prefix_inserts: self.prefix_inserts,
            prefix_items_saved: self.prefix_items_saved,
            lattice_state_hits: self.lattice_state_hits,
            lattice_states_published: self.lattice_states_published,
        }
    }

    /// Parses and checks one program, with the prelude available — the
    /// session-reuse equivalent of [`check_source`](crate::check_source).
    ///
    /// # Errors
    ///
    /// Returns parser errors (as a single [`DiagCode::Malformed`]
    /// diagnostic), a single [`DiagCode::Oversized`] diagnostic when the
    /// source exceeds `opts.max_source_bytes`, or the full list of
    /// type/flow errors.
    pub fn check(&mut self, source: &str) -> Result<TypedProgram, Vec<Diagnostic>> {
        if let Some(d) = crate::oversized_diag(source, &self.opts) {
            self.deadline = None;
            return Err(vec![d]);
        }
        let malformed = |e: &p4bid_syntax::ParseError| {
            vec![Diagnostic::new(DiagCode::Malformed, e.message().to_string(), e.span())]
        };
        if self.shared.prefix_cap == 0 {
            // Prefix snapshotting off: the classic lex+parse+check path.
            let user = match p4bid_syntax::parse(source) {
                Ok(user) => user,
                Err(e) => {
                    // An armed deadline is per-check: don't leak it into
                    // the next program when this one dies in the parser.
                    self.deadline = None;
                    return Err(malformed(&e));
                }
            };
            return self.check_cold(user, source, &[]);
        }
        let tokens = match p4bid_syntax::lex(source) {
            Ok(t) => t,
            Err(e) => {
                self.deadline = None;
                return Err(malformed(&e));
            }
        };
        let segs = p4bid_syntax::item_segments(source, &tokens);
        if let Some(result) = self.try_resume(source, &tokens, &segs) {
            return result;
        }
        self.prefix_misses += 1;
        let user = match p4bid_syntax::parse_tokens(source, &tokens) {
            Ok(user) => user,
            Err(e) => {
                self.deadline = None;
                return Err(malformed(&e));
            }
        };
        self.check_cold(user, source, &segs)
    }

    /// Checks an already-parsed user program against the session prelude.
    /// (No prefix snapshots are taken or used on this path: the chain
    /// hash is derived from source bytes, which a pre-parsed program no
    /// longer has.)
    ///
    /// # Errors
    ///
    /// Returns the full list of type/flow errors.
    pub fn check_parsed(&mut self, user: Program) -> Result<TypedProgram, Vec<Diagnostic>> {
        self.check_cold(user, "", &[])
    }

    /// The cold check path: full run over all user items, collecting
    /// per-item prefix snapshots when the splitter's segmentation aligns
    /// with the parse (one segment per item) and the cache is enabled.
    fn check_cold(
        &mut self,
        user: Program,
        source: &str,
        segs: &[ItemSeg],
    ) -> Result<TypedProgram, Vec<Diagnostic>> {
        let deadline = self.deadline.take().or_else(|| self.opts.deadline_from_now());
        let lattice = resolve_lattice(&user, &self.opts)?;
        let default_pc = resolve_default_pc(&lattice, &self.opts)?;
        let state = CheckerState::clone(&*self.prelude_state(&lattice)?);
        let collect = !segs.is_empty() && segs.len() == user.items.len();

        let out = {
            let mut ctx = self.ctx.borrow_mut();
            check_items_run(
                &user.items,
                &lattice,
                &self.opts,
                default_pc,
                &mut ctx,
                state,
                deadline,
                None,
                collect,
            )?
        };

        // The interpreter needs the prelude definitions in the program
        // body, exactly as `check_source` includes them; the view shares
        // them (and the user items) instead of deep-copying.
        let (items, controls) = if collect {
            let items = Arc::new(user.items);
            let controls = Arc::new(out.controls);
            let seed = Arc::new(out.seed_edges.unwrap_or_default());
            self.insert_checkpoints(
                source,
                segs,
                &lattice,
                &items,
                &controls,
                &seed,
                out.checkpoints,
            );
            (items, (*controls).clone())
        } else {
            (Arc::new(user.items), out.controls)
        };
        let items_len = items.len();
        Ok(TypedProgram {
            lattice,
            defs: out.state.defs,
            controls,
            program: ProgramView::new(Arc::clone(&self.prelude), items, items_len, Vec::new()),
            ctx: Rc::clone(&self.ctx),
            lineage: out.lineage,
        })
    }

    /// Tries to serve a check from the deepest matching prefix snapshot,
    /// re-checking only the suffix. `None` falls through to the cold
    /// path (no snapshot, or the lattice could not be pre-resolved
    /// conservatively).
    fn try_resume(
        &mut self,
        source: &str,
        tokens: &[Token],
        segs: &[ItemSeg],
    ) -> Option<Result<TypedProgram, Vec<Diagnostic>>> {
        if segs.is_empty() {
            return None;
        }
        let lattice = self.quick_lattice(source, tokens, segs)?;
        let entry = {
            let mut cache = lock(&self.shared.prefix);
            (0..segs.len()).rev().find_map(|d| {
                cache.probe(
                    segs[d].chain,
                    &lattice,
                    &source[..segs[d].byte_end as usize],
                    (d + 1) as u32,
                )
            })
        }?;
        self.prefix_hits += 1;
        self.prefix_items_saved += u64::from(entry.items);
        Some(self.resume_with(source, tokens, segs, lattice, entry))
    }

    /// Completes a snapshot hit: parses and checks only the suffix past
    /// the snapshot's item boundary, seeding the run with the snapshot's
    /// state, controls, and rendered flow log so verdicts, diagnostics,
    /// and lineage come out byte-identical to a cold check.
    fn resume_with(
        &mut self,
        source: &str,
        tokens: &[Token],
        segs: &[ItemSeg],
        lattice: Lattice,
        entry: PrefixEntry,
    ) -> Result<TypedProgram, Vec<Diagnostic>> {
        let seg = &segs[entry.items as usize - 1];
        // Item boundaries are statement boundaries of a known-parseable
        // prefix, and the parser carries no cross-item state, so parsing
        // the suffix tokens reproduces the tail of a full parse exactly
        // (spans are absolute into the same `source`).
        let suffix = match p4bid_syntax::parse_tokens(source, &tokens[seg.token_end as usize..]) {
            Ok(p) => p,
            Err(e) => {
                self.deadline = None;
                return Err(vec![Diagnostic::new(
                    DiagCode::Malformed,
                    e.message().to_string(),
                    e.span(),
                )]);
            }
        };
        let deadline = self.deadline.take().or_else(|| self.opts.deadline_from_now());
        let default_pc = resolve_default_pc(&lattice, &self.opts)?;
        let resume = ResumeSeed {
            seed: Arc::clone(&entry.seed),
            edges_len: entry.edges_len,
            controls: Arc::clone(&entry.controls),
            controls_len: entry.controls_len,
        };
        let out = {
            let mut ctx = self.ctx.borrow_mut();
            check_items_run(
                &suffix.items,
                &lattice,
                &self.opts,
                default_pc,
                &mut ctx,
                entry.state,
                deadline,
                Some(resume),
                false,
            )?
        };
        // O(suffix) assembly: the prefix AST is the snapshot's `Arc`,
        // never deep-copied — the point of resuming.
        Ok(TypedProgram {
            lattice,
            defs: out.state.defs,
            controls: out.controls,
            program: ProgramView::new(
                Arc::clone(&self.prelude),
                Arc::clone(&entry.items_ast),
                entry.items as usize,
                suffix.items,
            ),
            ctx: Rc::clone(&self.ctx),
            lineage: out.lineage,
        })
    }

    /// Conservatively resolves the lattice a submission will check under
    /// *without parsing it* — the prefix-cache key needs it up front.
    /// Mirrors [`resolve_lattice`]: the options override wins; otherwise
    /// a `lattice { … }` declaration can only be a top-level item, so the
    /// first token of the first segment decides. Any situation the quick
    /// scan cannot settle byte-for-byte (a declaration past the first
    /// item, a malformed declaration) returns `None` and the cold path
    /// decides.
    fn quick_lattice(&self, source: &str, tokens: &[Token], segs: &[ItemSeg]) -> Option<Lattice> {
        if let Some(l) = &self.opts.lattice {
            return Some(l.clone());
        }
        let word_at = |tok_ix: usize| -> &str {
            let t = &tokens[tok_ix];
            if matches!(t.kind, TokenKind::Ident) {
                &source[t.span.start as usize..t.span.end as usize]
            } else {
                ""
            }
        };
        for i in 1..segs.len() {
            if word_at(segs[i - 1].token_end as usize) == "lattice" {
                return None;
            }
        }
        if word_at(0) == "lattice" {
            let decl = p4bid_syntax::parse_lattice_decl(source, tokens).ok()?;
            lattice_from_decl(&decl).ok()
        } else {
            Some(Lattice::two_point())
        }
    }

    /// The tier boundaries a snapshot's handles must lie below to be
    /// valid beyond this session: the frozen segment sizes on the
    /// shared-core path, unbounded for a root-tier session (whose cache
    /// is private, and whose ids survive [`freeze`](CheckerSession::freeze)
    /// verbatim).
    fn tier_limits(&self) -> (usize, usize) {
        let ctx = self.ctx.borrow();
        let (frozen_syms, _) = ctx.syms.tier_sizes();
        let (frozen_types, _) = ctx.types.tier_sizes();
        if frozen_syms == 0 {
            (usize::MAX, usize::MAX)
        } else {
            (frozen_syms, frozen_types)
        }
    }

    /// Records the checkpoints of a clean, aligned cold run into the
    /// shared prefix cache. Only tier-pure checkpoints are inserted
    /// (state append-only ⟹ purity is prefix-monotone, so the scan stops
    /// at the first impure one); failed and timed-out runs never reach
    /// here, which is what keeps panics and transient verdicts from
    /// poisoning the snapshot tree.
    #[allow(clippy::too_many_arguments)]
    fn insert_checkpoints(
        &mut self,
        source: &str,
        segs: &[ItemSeg],
        lattice: &Lattice,
        items: &Arc<Vec<p4bid_ast::surface::Item>>,
        controls: &Arc<Vec<crate::TypedControl>>,
        seed: &Arc<crate::prefix::SeedEdges>,
        checkpoints: Vec<crate::checker::RunCheckpoint>,
    ) {
        if checkpoints.is_empty() {
            return;
        }
        let (max_sym, max_ty) = self.tier_limits();
        let mut cache = lock(&self.shared.prefix);
        for cp in checkpoints {
            if !cp.state.within_tiers(max_sym, max_ty)
                || !controls[..cp.controls_len as usize]
                    .iter()
                    .all(|c| control_within_tiers(c, max_sym, max_ty))
            {
                break;
            }
            let seg = &segs[cp.items_done as usize - 1];
            cache.insert(
                seg.chain,
                PrefixEntry::new(
                    lattice.clone(),
                    source[..seg.byte_end as usize].into(),
                    cp.items_done,
                    cp.state,
                    Arc::clone(items),
                    Arc::clone(controls),
                    cp.controls_len,
                    Arc::clone(seed),
                    cp.edges_len,
                ),
            );
            self.prefix_inserts += 1;
        }
    }

    /// The checked-prelude snapshot for a lattice, built on first use.
    ///
    /// Program-supplied lattices go through a publish-once side table on
    /// the shared core: the table lock is held across the build, so N
    /// workers racing on the same new lattice build its state exactly
    /// once (the `lattice_states_published` counter proves it). Only
    /// tier-pure states are published; impure ones stay session-local
    /// and are promoted by the next refreeze instead.
    fn prelude_state(&mut self, lattice: &Lattice) -> Result<Arc<CheckerState>, Vec<Diagnostic>> {
        if let Some(ix) = self.states.iter().position(|(l, _)| l == lattice) {
            return Ok(Arc::clone(&self.states[ix].1));
        }
        let shared = Arc::clone(&self.shared);
        let mut table = lock(&shared.lattice_states);
        if let Some((_, state)) = table.iter().find(|(l, _)| l == lattice) {
            self.lattice_state_hits += 1;
            let state = Arc::clone(state);
            self.states.push((lattice.clone(), Arc::clone(&state)));
            return Ok(state);
        }
        let default_pc = resolve_default_pc(lattice, &self.opts)?;
        PRELUDE_CHECKS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let (_, state, _) = {
            let mut ctx = self.ctx.borrow_mut();
            // The prelude is trusted input and its snapshot is shared by
            // every later program — it never runs under a deadline.
            check_items(
                &self.prelude.items,
                lattice,
                &self.opts,
                default_pc,
                &mut ctx,
                CheckerState::empty(),
                None,
            )
            .map_err(|diags| {
                // Unreachable for the shipped prelude (it is unannotated and
                // well-typed under every lattice); surfaced defensively.
                debug_assert!(false, "prelude failed to check: {diags:?}");
                diags
            })?
        };
        let state = Arc::new(state);
        self.states.push((lattice.clone(), Arc::clone(&state)));
        let (max_sym, max_ty) = self.tier_limits();
        if state.within_tiers(max_sym, max_ty) {
            table.push((lattice.clone(), Arc::clone(&state)));
            self.lattice_states_published += 1;
        }
        Ok(state)
    }
}

/// What one worker session learned, harvested by
/// [`CheckerSession::into_harvest`] for [`SharedSessionCore::refreeze`]:
/// the overlay interner/pool tables plus any checked-prelude states the
/// session built for program-supplied lattices.
#[derive(Debug)]
pub struct SessionHarvest {
    pub(crate) overlay: CtxOverlay,
    pub(crate) new_states: Vec<(Lattice, CheckerState)>,
}

/// An immutable, `Send + Sync` snapshot of a warmed [`CheckerSession`]:
/// the frozen interner/pool segments, the parsed prelude, and the
/// per-lattice checked-prelude states.
///
/// Built once (via [`SharedSessionCore::new`] or
/// [`CheckerSession::freeze`]) and shared across worker threads via `Arc`;
/// each worker calls [`session`](SharedSessionCore::session) to get a
/// private overlay session that starts fully warm — no prelude re-lex,
/// re-parse, or re-check, ever.
#[derive(Debug, Clone)]
pub struct SharedSessionCore {
    opts: CheckOptions,
    /// The frozen interner + pool segment every worker overlays.
    ctx: Arc<FrozenTyCtx>,
    /// The parsed prelude (shared by handle with each worker session).
    prelude: Arc<Program>,
    /// Checked-prelude snapshots frozen with the core, shared by handle.
    /// Every `Symbol` and `TyId` inside points into the frozen segment.
    states: Vec<(Lattice, Arc<CheckerState>)>,
    /// The cross-session caches (prefix snapshots, publish-once lattice
    /// states), shared by every session of this core and carried across
    /// refreezes.
    shared: Arc<CoreShared>,
}

impl SharedSessionCore {
    /// Builds and freezes a warmed session in one step.
    #[must_use]
    pub fn new(opts: CheckOptions) -> Self {
        CheckerSession::new(opts).freeze()
    }

    /// Builds a core whose shared prefix-snapshot cache holds at most
    /// `cap` entries (`0` disables prefix snapshotting).
    #[must_use]
    pub fn with_prefix_cache_cap(opts: CheckOptions, cap: usize) -> Self {
        CheckerSession::new(opts).with_prefix_cache_cap(cap).freeze()
    }

    /// The bound of this core's shared prefix-snapshot cache.
    #[must_use]
    pub fn prefix_cache_cap(&self) -> usize {
        self.shared.prefix_cap
    }

    /// Number of prefix snapshots currently held by this core's cache.
    #[must_use]
    pub fn prefix_cache_len(&self) -> usize {
        lock(&self.shared.prefix).len()
    }

    /// The options every session cloned off this core checks under.
    #[must_use]
    pub fn options(&self) -> &CheckOptions {
        &self.opts
    }

    /// The frozen `(symbol, type)` segment sizes of this core.
    #[must_use]
    pub fn frozen_sizes(&self) -> (usize, usize) {
        (self.ctx.syms.len(), self.ctx.types.len())
    }

    /// A fresh per-worker session: a private overlay over the frozen
    /// segment, with the prelude program and the per-lattice
    /// checked-prelude snapshots cloned in. Costs a few table clones —
    /// roughly 10–100× cheaper than a cold [`CheckerSession::new`] +
    /// prelude check (the `session_warmup` bench tracks the ratio).
    #[must_use]
    pub fn session(&self) -> CheckerSession {
        CheckerSession {
            opts: self.opts.clone(),
            ctx: TyCtx::shared_with_base(&self.ctx),
            prelude: self.prelude.clone(),
            core_states: self.states.len(),
            states: self.states.clone(),
            deadline: None,
            shared: Arc::clone(&self.shared),
            prefix_hits: 0,
            prefix_misses: 0,
            prefix_inserts: 0,
            prefix_items_saved: 0,
            lattice_state_hits: 0,
            lattice_states_published: 0,
        }
    }

    /// Rebuilds a fresh core under the same options — the hard variant of
    /// the *refresh hook* for long-lived services.
    ///
    /// Freezing is one-way and tiers do not stack, so a core can never
    /// absorb what its workers learned through `rebuild`; it re-warms a
    /// new root segment from scratch (the process-wide prelude token/AST
    /// caches still hit, so only the prelude *check* is repaid) and drops
    /// the shared caches, whose handles would dangle against the new
    /// segment. Verdicts are unaffected — sessions off the old and the
    /// new core produce identical reports — which is exactly what lets a
    /// serve loop refresh between epochs without breaking its determinism
    /// contract. Services that want to *keep* what workers learned use
    /// [`refreeze`](SharedSessionCore::refreeze) instead.
    #[must_use]
    pub fn rebuild(&self) -> SharedSessionCore {
        SharedSessionCore::with_prefix_cache_cap(self.opts.clone(), self.shared.prefix_cap)
    }

    /// Merges harvested per-worker overlays into a fatter frozen root:
    /// overlay symbols, types, lattices, and push-memo entries are
    /// re-interned into the new frozen segment (children before parents,
    /// ids remapped), and harvested checked-prelude states for new
    /// lattices are remapped and adopted (first harvest wins per
    /// lattice). Existing frozen ids are preserved verbatim, so the
    /// shared caches — prefix snapshots included — stay valid and are
    /// carried over: frequently seen program-local symbols and types now
    /// start warm in every worker, and snapshots taken by one worker
    /// serve them all.
    #[must_use]
    pub fn refreeze(&self, harvests: Vec<SessionHarvest>) -> SharedSessionCore {
        let mut overlays = Vec::with_capacity(harvests.len());
        let mut state_lists = Vec::with_capacity(harvests.len());
        for h in harvests {
            overlays.push(h.overlay);
            state_lists.push(h.new_states);
        }
        let (ctx, remaps) = self.ctx.refreeze(&overlays);
        let mut states = self.states.clone();
        for (new_states, remap) in state_lists.iter().zip(&remaps) {
            for (lat, st) in new_states {
                if !states.iter().any(|(l, _)| l == lat) {
                    states.push((lat.clone(), Arc::new(st.remap(remap))));
                }
            }
        }
        SharedSessionCore {
            opts: self.opts.clone(),
            ctx: Arc::new(ctx),
            prelude: Arc::clone(&self.prelude),
            states,
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Tier sizes and frozen-segment hit counters of one session (see
/// [`CheckerSession::stats`]); batch drivers aggregate one per worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Interner frozen-segment size (0 for cold sessions).
    pub frozen_syms: usize,
    /// Interner overlay size (names first seen by this session).
    pub overlay_syms: usize,
    /// Pool frozen-segment size (0 for cold sessions).
    pub frozen_types: usize,
    /// Pool overlay size (types first built by this session).
    pub overlay_types: usize,
    /// Symbol intern calls answered by the frozen segment.
    pub sym_frozen_hits: u64,
    /// Total symbol intern calls.
    pub sym_intern_calls: u64,
    /// Type intern calls answered by the frozen segment.
    pub ty_frozen_hits: u64,
    /// Total type intern calls.
    pub ty_intern_calls: u64,
    /// `push_label` calls answered by the `(TyId, Label)` memo.
    pub push_cache_hits: u64,
    /// Checks served from a prefix snapshot (suffix-only re-check).
    pub prefix_hits: u64,
    /// Checks that consulted the prefix cache and fell through cold.
    pub prefix_misses: u64,
    /// Prefix snapshots recorded by this session's clean cold runs.
    pub prefix_inserts: u64,
    /// Top-level items whose re-check a prefix snapshot skipped.
    pub prefix_items_saved: u64,
    /// Program-lattice prelude states adopted from the publish-once
    /// shared table instead of being rebuilt.
    pub lattice_state_hits: u64,
    /// Program-lattice prelude states this session built *and* published
    /// to the shared table (pure states only).
    pub lattice_states_published: u64,
}

impl SessionStats {
    /// Accumulates another worker's counters into this one (tier sizes
    /// take the maximum — the frozen segment is shared, overlays are
    /// summed).
    pub fn absorb(&mut self, other: &SessionStats) {
        self.frozen_syms = self.frozen_syms.max(other.frozen_syms);
        self.frozen_types = self.frozen_types.max(other.frozen_types);
        self.overlay_syms += other.overlay_syms;
        self.overlay_types += other.overlay_types;
        self.sym_frozen_hits += other.sym_frozen_hits;
        self.sym_intern_calls += other.sym_intern_calls;
        self.ty_frozen_hits += other.ty_frozen_hits;
        self.ty_intern_calls += other.ty_intern_calls;
        self.push_cache_hits += other.push_cache_hits;
        self.prefix_hits += other.prefix_hits;
        self.prefix_misses += other.prefix_misses;
        self.prefix_inserts += other.prefix_inserts;
        self.prefix_items_saved += other.prefix_items_saved;
        self.lattice_state_hits += other.lattice_state_hits;
        self.lattice_states_published += other.lattice_states_published;
    }

    /// Fraction of symbol intern calls served by the frozen segment.
    #[must_use]
    pub fn sym_hit_rate(&self) -> f64 {
        if self.sym_intern_calls == 0 {
            0.0
        } else {
            self.sym_frozen_hits as f64 / self.sym_intern_calls as f64
        }
    }

    /// Fraction of type intern calls served by the frozen segment.
    #[must_use]
    pub fn ty_hit_rate(&self) -> f64 {
        if self.ty_intern_calls == 0 {
            0.0
        } else {
            self.ty_frozen_hits as f64 / self.ty_intern_calls as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_source, Mode, PRELUDE};

    #[test]
    fn session_matches_one_shot_results() {
        let sources = [
            "control C(inout bit<8> x) { apply { x = x + 8w1; } }",
            "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }",
            "lattice { bot < A; bot < B; A < top; B < top; }\n\
             control C(inout <bit<8>, A> a, inout <bit<8>, B> b) { apply { a = b; } }",
            "control C(inout bit<8> x) { apply { mark_to_drop_missing(); } }",
        ];
        let core = SharedSessionCore::new(CheckOptions::ifc());
        let mut cold = CheckerSession::new(CheckOptions::ifc());
        let mut shared = core.session();
        for _ in 0..2 {
            for src in sources {
                let one_shot = check_source(src, &CheckOptions::ifc());
                for session in [&mut cold, &mut shared] {
                    let via_session = session.check(src);
                    match (&one_shot, via_session) {
                        (Ok(a), Ok(b)) => {
                            assert_eq!(a.controls.len(), b.controls.len());
                            assert_eq!(a.lattice, b.lattice);
                            assert_eq!(a.program, b.program);
                        }
                        (Err(a), Err(b)) => {
                            let codes =
                                |ds: &[Diagnostic]| ds.iter().map(|d| d.code).collect::<Vec<_>>();
                            assert_eq!(codes(a), codes(&b), "{src}");
                            let spans =
                                |ds: &[Diagnostic]| ds.iter().map(|d| d.span).collect::<Vec<_>>();
                            assert_eq!(spans(a), spans(&b), "{src}");
                        }
                        (a, b) => panic!("verdicts diverge on {src}: {a:?} vs {b:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn session_caches_one_state_per_lattice() {
        let mut session = CheckerSession::new(CheckOptions::ifc());
        let two_point = "control C(inout <bit<8>, high> h) { apply { h = 8w1; } }";
        let diamond = "lattice { bot < A; bot < B; A < top; B < top; }\n\
                       control C(inout <bit<8>, A> a) { apply { a = 8w1; } }";
        for _ in 0..3 {
            session.check(two_point).expect("accepts");
            session.check(diamond).expect("accepts");
        }
        assert_eq!(session.states.len(), 2, "one snapshot per distinct lattice");
    }

    #[test]
    fn session_parse_errors_are_malformed_diags() {
        let mut session = CheckerSession::new(CheckOptions::ifc());
        let errs = session.check("control {").unwrap_err();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].code, DiagCode::Malformed);
        // The session survives a parse error and keeps checking.
        assert!(session.check("control C(inout bit<8> x) { apply { } }").is_ok());
    }

    #[test]
    fn base_mode_session_accepts_leaks() {
        let mut session = CheckerSession::new(CheckOptions::base());
        assert_eq!(session.options().mode, Mode::Base);
        let leak = "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }";
        session.check(leak).expect("base mode ignores labels");
    }

    #[test]
    fn session_respects_ambient_pc() {
        let mut session = CheckerSession::new(CheckOptions::ifc().with_pc("high"));
        let errs =
            session.check("control C(inout <bit<8>, low> l) { apply { l = 8w1; } }").unwrap_err();
        assert!(errs.iter().any(|d| d.code == DiagCode::ImplicitFlow), "{errs:?}");
    }

    #[test]
    fn prelude_text_is_nonempty() {
        assert!(PRELUDE.contains("standard_metadata_t"));
    }

    #[test]
    fn shared_core_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedSessionCore>();
    }

    #[test]
    fn core_sessions_start_warm_and_stay_private() {
        let core = SharedSessionCore::new(CheckOptions::ifc());
        let (frozen_syms, frozen_types) = core.frozen_sizes();
        assert!(frozen_syms > 0 && frozen_types > 4, "core froze the prelude universe");

        let mut a = core.session();
        let mut b = core.session();
        let stats = a.stats();
        assert_eq!(stats.frozen_syms, frozen_syms);
        assert_eq!(stats.frozen_types, frozen_types);
        assert_eq!((stats.overlay_syms, stats.overlay_types), (0, 0), "born with empty overlays");
        assert_eq!(a.states.len(), 1, "default-lattice snapshot cloned in");

        // `bit<32>` and `num_bits_set` live in the frozen prelude segment.
        a.check("control C(inout bit<32> x) { apply { x = num_bits_set(x); } }").expect("accepts");
        let sa = a.stats();
        assert!(sa.sym_frozen_hits > 0, "prelude names served frozen: {sa:?}");
        assert!(sa.ty_frozen_hits > 0, "prelude types served frozen: {sa:?}");
        // b's overlay is untouched by a's checking.
        assert_eq!(b.stats().overlay_syms, 0);
        b.check("control D(inout bit<16> y) { apply { y = y + 16w1; } }").expect("accepts");
    }

    #[test]
    fn core_sessions_handle_new_lattices_locally() {
        let core = SharedSessionCore::new(CheckOptions::ifc());
        let mut session = core.session();
        let diamond = "lattice { bot < A; bot < B; A < top; B < top; }\n\
                       control C(inout <bit<8>, A> a) { apply { a = 8w1; } }";
        session.check(diamond).expect("accepts");
        assert_eq!(session.states.len(), 2, "new lattice snapshot built in the overlay");
    }

    #[test]
    #[should_panic(expected = "tiers do not stack")]
    fn refreezing_a_core_session_panics() {
        let core = SharedSessionCore::new(CheckOptions::ifc());
        let _ = core.session().freeze();
    }

    #[test]
    fn bad_ambient_pc_is_a_diagnostic_not_a_panic() {
        // An unknown `--pc` label must surface per check (as it does on
        // the cold path), not blow up core construction / warming.
        let core = SharedSessionCore::new(CheckOptions::ifc().with_pc("bogus"));
        let mut session = core.session();
        let errs = session.check("control C(inout bit<8> x) { apply { } }").unwrap_err();
        assert!(errs.iter().any(|d| d.code == DiagCode::UnknownLabel), "{errs:?}");
    }

    /// Cold sessions are root-tier, so every snapshot is tier-pure and
    /// the private prefix cache engages immediately: handy for pinning
    /// resume ≡ cold equivalence without a refreeze in the loop.
    #[test]
    fn prefix_resume_matches_cold_check_bytes() {
        let base = "typedef bit<8> octet;\n\
                    header h_t { <octet, high> secret; <octet, low> public; }\n\
                    function octet idf(in octet x) { return x; }\n\
                    control C(inout h_t h) { apply { h.public = idf(h.public); } }\n";
        // One accepting and one leaking final control, plus an edited
        // middle item (which invalidates deeper snapshots).
        let tails = [
            "control D(inout h_t h) { apply { h.public = h.public + 8w1; } }",
            "control D(inout h_t h) { apply { h.public = h.secret; } }",
            "control D(inout h_t h, inout <bit<8>, low> out_b) { apply { out_b = idf(h.secret); } }",
        ];
        let mut warm = CheckerSession::new(CheckOptions::ifc());
        let first = format!("{base}{}", tails[0]);
        warm.check(&first).expect("accepts");
        assert!(warm.stats().prefix_inserts >= 4, "cold run snapshots every item boundary");
        for tail in tails {
            let src = format!("{base}{tail}");
            let mut cold = CheckerSession::new(CheckOptions::ifc()).with_prefix_cache_cap(0);
            let a = warm.check(&src);
            let b = cold.check(&src);
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.program, b.program, "{tail}");
                    assert_eq!(a.controls, b.controls, "{tail}");
                    assert_eq!(format!("{:?}", a.lineage), format!("{:?}", b.lineage), "{tail}");
                }
                (Err(a), Err(b)) => {
                    assert_eq!(format!("{a:?}"), format!("{b:?}"), "{tail}");
                }
                (a, b) => panic!("verdicts diverge on {tail}: {a:?} vs {b:?}"),
            }
        }
        let stats = warm.stats();
        assert!(stats.prefix_hits >= 3, "every resubmission resumed: {stats:?}");
        // Each resumed check skipped the 4 unchanged prefix items.
        assert!(stats.prefix_items_saved >= 12, "{stats:?}");
    }

    #[test]
    fn prefix_resume_replays_lineage_seed_edges() {
        // The violation's origin lies in the *prefix* (the `h.secret`
        // read flows through `tmp`), so the explanation path of the
        // resumed run must replay seeded edges byte-identically.
        let prefix = "control C(inout <bit<8>, high> h, inout <bit<8>, low> l) {\n\
                      apply { }\n\
                      }\n";
        let leak = "control D(inout <bit<8>, high> h2, inout <bit<8>, low> l2) {\n\
                    apply { l2 = h2; }\n\
                    }";
        let src = format!("{prefix}{leak}");
        let mut warm = CheckerSession::new(CheckOptions::ifc());
        let ok = format!("{prefix}control D(inout bit<8> x) {{ apply {{ }} }}");
        warm.check(&ok).expect("accepts");
        let resumed = warm.check(&src).unwrap_err();
        assert_eq!(warm.stats().prefix_hits, 1);
        let cold = CheckerSession::new(CheckOptions::ifc())
            .with_prefix_cache_cap(0)
            .check(&src)
            .unwrap_err();
        assert_eq!(format!("{resumed:?}"), format!("{cold:?}"));
    }

    #[test]
    fn timed_out_runs_never_insert_snapshots() {
        let src = "typedef bit<8> octet;\ncontrol C(inout octet x) { apply { x = x + 8w1; } }";
        let mut session = CheckerSession::new(CheckOptions::ifc());
        session.set_deadline(Some(std::time::Instant::now() - std::time::Duration::from_millis(1)));
        let errs = session.check(src).unwrap_err();
        assert!(errs.iter().any(|d| d.code == DiagCode::Timeout));
        assert_eq!(session.stats().prefix_inserts, 0, "transient runs are refused");
        // The resubmission finds nothing to resume from…
        session.check(src).expect("accepts unguarded");
        assert_eq!(session.stats().prefix_hits, 0);
        // …but inserts now, so a third round resumes.
        session.check(src).expect("accepts");
        assert_eq!(session.stats().prefix_hits, 1);
    }

    #[test]
    fn failing_runs_never_insert_snapshots() {
        let mut session = CheckerSession::new(CheckOptions::ifc());
        let leak = "typedef bit<8> octet;\n\
                    control C(inout <octet, low> l, inout <octet, high> h) { apply { l = h; } }";
        session.check(leak).unwrap_err();
        assert_eq!(session.stats().prefix_inserts, 0, "failed runs leave no snapshots");
    }

    #[test]
    fn core_sessions_insert_only_tier_pure_snapshots() {
        // A fresh core's frozen segment knows nothing about the user
        // program's names, so its snapshots are impure and refused…
        let core = SharedSessionCore::new(CheckOptions::ifc());
        let src = "typedef bit<8> octet;\ncontrol C(inout octet x) { apply { x = x + 8w1; } }";
        let mut s = core.session();
        s.check(src).expect("accepts");
        assert_eq!(s.stats().prefix_inserts, 0, "overlay handles are not publishable");
        // …until a refreeze promotes those names into the frozen segment.
        let harvest = s.into_harvest().expect("sole owner harvests");
        let core2 = core.refreeze(vec![harvest]);
        let mut s2 = core2.session();
        s2.check(src).expect("accepts");
        let stats = s2.stats();
        assert!(stats.prefix_inserts >= 2, "promoted names snapshot cleanly: {stats:?}");
        assert_eq!((stats.overlay_syms, stats.overlay_types), (0, 0), "fully warm resubmission");
        // A sibling session of the same core resumes from s2's snapshots.
        let mut s3 = core2.session();
        let edited = src.replace("x + 8w1", "x + 8w2");
        s3.check(&edited).expect("accepts");
        let stats3 = s3.stats();
        assert_eq!(stats3.prefix_hits, 1, "cross-session snapshot hit: {stats3:?}");
        assert_eq!(stats3.prefix_items_saved, 1);
    }

    #[test]
    fn pure_lattice_states_publish_once_across_siblings() {
        // A renamed two-point chain reuses every frozen type (its label
        // *indices* coincide with the warm lattice's), so its prelude
        // state is tier-pure and publishable: the first worker builds
        // it, every sibling adopts it from the shared table. The prefix
        // cache is disabled so the table is exercised in isolation (a
        // snapshot hit past the lattice decl would otherwise subsume it).
        let core = SharedSessionCore::with_prefix_cache_cap(CheckOptions::ifc(), 0);
        let chain = "lattice { lo < hi; }\n\
                     control C(inout <bit<8>, hi> a) { apply { a = a + 8w1; } }";
        let mut s = core.session();
        s.check(chain).expect("accepts");
        let stats = s.stats();
        assert_eq!(stats.lattice_states_published, 1, "{stats:?}");
        let mut sibling = core.session();
        sibling.check(chain).expect("accepts");
        let sib = sibling.stats();
        assert_eq!(sib.lattice_state_hits, 1, "publish-once table hit: {sib:?}");
        assert_eq!(sib.lattice_states_published, 0);
    }

    #[test]
    fn refreeze_adopts_harvested_lattice_states() {
        // The diamond's prelude state is *impure* (its inferred `pc_fn`
        // labels differ from the warm lattice's, so the prelude's
        // Function nodes are overlay-tier). It cannot be published to
        // the side table — a refreeze promotes it instead, so the next
        // generation's sessions are born with it.
        let core = SharedSessionCore::new(CheckOptions::ifc());
        let diamond = "lattice { bot < A; bot < B; A < top; B < top; }\n\
                       control C(inout <bit<8>, A> a) { apply { a = 8w1; } }";
        let mut s = core.session();
        s.check(diamond).expect("accepts");
        assert_eq!(s.stats().lattice_states_published, 0, "impure state stays local");
        let core2 = core.refreeze(vec![s.into_harvest().expect("harvests")]);
        let mut s2 = core2.session();
        assert_eq!(s2.states.len(), 2, "born with the remapped diamond state");
        s2.check(diamond).expect("accepts");
        // The adopted state answered: nothing was rebuilt or re-pushed.
        assert_eq!(s2.states.len(), 2);
        assert_eq!(s2.stats().lattice_state_hits, 0);
    }

    #[test]
    fn prefix_cache_cap_zero_disables() {
        let core = SharedSessionCore::with_prefix_cache_cap(CheckOptions::ifc(), 0);
        assert_eq!(core.prefix_cache_cap(), 0);
        let mut s = core.session();
        let src = "control C(inout bit<8> x) { apply { } }";
        s.check(src).expect("accepts");
        s.check(src).expect("accepts");
        let stats = s.stats();
        assert_eq!((stats.prefix_hits, stats.prefix_misses, stats.prefix_inserts), (0, 0, 0));
        assert_eq!(core.prefix_cache_len(), 0);
    }

    #[test]
    fn push_memo_is_lattice_scoped_across_programs() {
        // Soundness regression: the same header checked under a *chain*
        // lattice (where A ⊔ B = B) and then under a *diamond* lattice
        // with the same element names (where A ⊔ B = ⊤) shares one pool —
        // the chain's label-push memo must not leak into the diamond
        // program, or the explicit flow below would be accepted.
        let chain_ok = "lattice { bot < A; A < B; B < top; }\n\
                        header h_t { <bit<8>, A> f; }\n\
                        control C(inout <h_t, B> x, inout <bit<8>, B> sink) {\n\
                            apply { sink = x.f; }\n\
                        }";
        let diamond_leak = "lattice { bot < A; bot < B; A < top; B < top; }\n\
                            header h_t { <bit<8>, A> f; }\n\
                            control C(inout <h_t, B> x, inout <bit<8>, B> sink) {\n\
                                apply { sink = x.f; }\n\
                            }";
        for warm_chain_first in [false, true] {
            let mut session = SharedSessionCore::new(CheckOptions::ifc()).session();
            if warm_chain_first {
                session.check(chain_ok).expect("chain program accepts: A ⊔ B = B flows to B");
            }
            let errs = session.check(diamond_leak).unwrap_err();
            assert!(
                errs.iter().any(|d| d.code == DiagCode::ExplicitFlow),
                "diamond leak must be rejected (warm_chain_first={warm_chain_first}): {errs:?}"
            );
        }
    }
}
