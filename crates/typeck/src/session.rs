//! Reusable checker sessions for throughput-oriented workloads.
//!
//! [`check_source`](crate::check_source) is convenient but pays fixed costs
//! on every call: the standard prelude is re-lexed, re-parsed, and
//! re-checked, a fresh interner is grown from nothing, and the lattice
//! label table is rebuilt. A [`CheckerSession`] pays those costs once and
//! then checks any number of programs against the shared state — the shape
//! the `p4bid batch` driver and any long-running checking service want.
//!
//! A session is deliberately *not* `Sync`: parallel drivers give each
//! worker thread its own session, which keeps every structure lock-free.
//! Results are identical to the one-shot entry points (the conformance
//! suite asserts this).
//!
//! # Examples
//!
//! ```
//! use p4bid_typeck::{CheckerSession, CheckOptions, DiagCode};
//!
//! let mut session = CheckerSession::new(CheckOptions::ifc());
//! for _ in 0..3 {
//!     let ok = session.check("control C(inout bit<8> x) { apply { x = x + 8w1; } }");
//!     assert!(ok.is_ok());
//!     let leak = session.check(
//!         "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }",
//!     );
//!     assert!(leak.unwrap_err().iter().any(|d| d.code == DiagCode::ExplicitFlow));
//! }
//! ```

use crate::checker::{
    check_items, resolve_default_pc, resolve_lattice, CheckOptions, CheckerState, TypedProgram,
};
use crate::diag::{DiagCode, Diagnostic};
use crate::prelude_items;
use p4bid_ast::pool::{SharedTyCtx, TyCtx};
use p4bid_ast::surface::Program;
use p4bid_lattice::Lattice;
use std::rc::Rc;

/// A reusable checking session: prelude, interner, and per-lattice checked
/// prelude state are built once and shared across [`check`] calls.
///
/// The session is pinned to one [`CheckOptions`] (mode, lattice override,
/// ambient pc); programs may still bring their own `lattice { … }`
/// declarations — the session caches one checked-prelude snapshot per
/// distinct lattice it encounters.
///
/// [`check`]: CheckerSession::check
#[derive(Debug)]
pub struct CheckerSession {
    opts: CheckOptions,
    /// The shared interner + hash-consing type pool. Grown across checks
    /// (append-only); every [`TypedProgram`] this session produces holds a
    /// reference to it, so prelude types are pooled exactly once and keyed
    /// by `TyId` in the per-lattice snapshots.
    ctx: SharedTyCtx,
    /// The prelude, parsed once per session.
    prelude: Program,
    /// Checked-prelude snapshots, keyed by the lattice they were checked
    /// under. Real workloads use one lattice (or a handful), so a linear
    /// scan over `Lattice` equality is fine.
    states: Vec<(Lattice, CheckerState)>,
}

impl CheckerSession {
    /// Builds a session: parses the prelude once.
    #[must_use]
    pub fn new(opts: CheckOptions) -> Self {
        CheckerSession { opts, ctx: TyCtx::shared(), prelude: prelude_items(), states: Vec::new() }
    }

    /// The options this session checks under.
    #[must_use]
    pub fn options(&self) -> &CheckOptions {
        &self.opts
    }

    /// Parses and checks one program, with the prelude available — the
    /// session-reuse equivalent of [`check_source`](crate::check_source).
    ///
    /// # Errors
    ///
    /// Returns parser errors (as a single [`DiagCode::Malformed`]
    /// diagnostic) or the full list of type/flow errors.
    pub fn check(&mut self, source: &str) -> Result<TypedProgram, Vec<Diagnostic>> {
        let user = p4bid_syntax::parse(source).map_err(|e| {
            vec![Diagnostic::new(DiagCode::Malformed, e.message().to_string(), e.span())]
        })?;
        self.check_parsed(user)
    }

    /// Checks an already-parsed user program against the session prelude.
    ///
    /// # Errors
    ///
    /// Returns the full list of type/flow errors.
    pub fn check_parsed(&mut self, user: Program) -> Result<TypedProgram, Vec<Diagnostic>> {
        let lattice = resolve_lattice(&user, &self.opts)?;
        let default_pc = resolve_default_pc(&lattice, &self.opts)?;
        let state = self.prelude_state(&lattice)?.clone();

        let (controls, state) = {
            let mut ctx = self.ctx.borrow_mut();
            check_items(&user.items, &lattice, &self.opts, default_pc, &mut ctx, state)?
        };

        // The interpreter needs the prelude definitions in the program
        // body, exactly as `check_source` includes them.
        let mut program = self.prelude.clone();
        program.items.extend(user.items);
        Ok(TypedProgram { lattice, defs: state.defs, controls, program, ctx: Rc::clone(&self.ctx) })
    }

    /// The checked-prelude snapshot for a lattice, built on first use.
    fn prelude_state(&mut self, lattice: &Lattice) -> Result<&CheckerState, Vec<Diagnostic>> {
        if let Some(ix) = self.states.iter().position(|(l, _)| l == lattice) {
            return Ok(&self.states[ix].1);
        }
        let default_pc = resolve_default_pc(lattice, &self.opts)?;
        let (_, state) = {
            let mut ctx = self.ctx.borrow_mut();
            check_items(
                &self.prelude.items,
                lattice,
                &self.opts,
                default_pc,
                &mut ctx,
                CheckerState::empty(),
            )
            .map_err(|diags| {
                // Unreachable for the shipped prelude (it is unannotated and
                // well-typed under every lattice); surfaced defensively.
                debug_assert!(false, "prelude failed to check: {diags:?}");
                diags
            })?
        };
        self.states.push((lattice.clone(), state));
        Ok(&self.states.last().expect("just pushed").1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_source, Mode, PRELUDE};

    #[test]
    fn session_matches_one_shot_results() {
        let sources = [
            "control C(inout bit<8> x) { apply { x = x + 8w1; } }",
            "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }",
            "lattice { bot < A; bot < B; A < top; B < top; }\n\
             control C(inout <bit<8>, A> a, inout <bit<8>, B> b) { apply { a = b; } }",
            "control C(inout bit<8> x) { apply { mark_to_drop_missing(); } }",
        ];
        let mut session = CheckerSession::new(CheckOptions::ifc());
        for _ in 0..2 {
            for src in sources {
                let one_shot = check_source(src, &CheckOptions::ifc());
                let via_session = session.check(src);
                match (one_shot, via_session) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.controls.len(), b.controls.len());
                        assert_eq!(a.lattice, b.lattice);
                        assert_eq!(a.program, b.program);
                    }
                    (Err(a), Err(b)) => {
                        let codes =
                            |ds: &[Diagnostic]| ds.iter().map(|d| d.code).collect::<Vec<_>>();
                        assert_eq!(codes(&a), codes(&b), "{src}");
                        let spans =
                            |ds: &[Diagnostic]| ds.iter().map(|d| d.span).collect::<Vec<_>>();
                        assert_eq!(spans(&a), spans(&b), "{src}");
                    }
                    (a, b) => panic!("verdicts diverge on {src}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn session_caches_one_state_per_lattice() {
        let mut session = CheckerSession::new(CheckOptions::ifc());
        let two_point = "control C(inout <bit<8>, high> h) { apply { h = 8w1; } }";
        let diamond = "lattice { bot < A; bot < B; A < top; B < top; }\n\
                       control C(inout <bit<8>, A> a) { apply { a = 8w1; } }";
        for _ in 0..3 {
            session.check(two_point).expect("accepts");
            session.check(diamond).expect("accepts");
        }
        assert_eq!(session.states.len(), 2, "one snapshot per distinct lattice");
    }

    #[test]
    fn session_parse_errors_are_malformed_diags() {
        let mut session = CheckerSession::new(CheckOptions::ifc());
        let errs = session.check("control {").unwrap_err();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].code, DiagCode::Malformed);
        // The session survives a parse error and keeps checking.
        assert!(session.check("control C(inout bit<8> x) { apply { } }").is_ok());
    }

    #[test]
    fn base_mode_session_accepts_leaks() {
        let mut session = CheckerSession::new(CheckOptions::base());
        assert_eq!(session.options().mode, Mode::Base);
        let leak = "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }";
        session.check(leak).expect("base mode ignores labels");
    }

    #[test]
    fn session_respects_ambient_pc() {
        let mut session = CheckerSession::new(CheckOptions::ifc().with_pc("high"));
        let errs =
            session.check("control C(inout <bit<8>, low> l) { apply { l = 8w1; } }").unwrap_err();
        assert!(errs.iter().any(|d| d.code == DiagCode::ImplicitFlow), "{errs:?}");
    }

    #[test]
    fn prelude_text_is_nonempty() {
        assert!(PRELUDE.contains("standard_metadata_t"));
    }
}
