//! Reusable checker sessions for throughput-oriented workloads, and the
//! shared frozen core that lets a fleet of sessions skip warm-up entirely.
//!
//! [`check_source`](crate::check_source) is convenient but pays fixed costs
//! on every call: the standard prelude is re-checked, a fresh interner is
//! grown from nothing, and the lattice label table is rebuilt. A
//! [`CheckerSession`] pays those costs once and then checks any number of
//! programs against the shared state — the shape the `p4bid batch` driver
//! and any long-running checking service want.
//!
//! A session is deliberately *not* `Sync`: parallel drivers give each
//! worker thread its own session, which keeps every structure lock-free.
//! What *is* shared across threads is a [`SharedSessionCore`]: an
//! immutable, `Send + Sync` snapshot of a fully warmed session — frozen
//! interner/pool segments, the parsed prelude, and the per-lattice
//! checked-prelude states — produced by [`CheckerSession::freeze`] and
//! turned back into per-worker sessions by [`SharedSessionCore::session`]
//! at the cost of a few table clones (no prelude re-lex, re-parse, or
//! re-check; the regression suite counts those builds). Results are
//! identical to the one-shot entry points and to cold sessions (the
//! conformance and determinism suites assert this).
//!
//! # Examples
//!
//! ```
//! use p4bid_typeck::{CheckerSession, CheckOptions, DiagCode, SharedSessionCore};
//!
//! // One warmed, frozen core…
//! let core = SharedSessionCore::new(CheckOptions::ifc());
//! // …many cheap per-worker sessions.
//! let mut session = core.session();
//! for _ in 0..3 {
//!     let ok = session.check("control C(inout bit<8> x) { apply { x = x + 8w1; } }");
//!     assert!(ok.is_ok());
//!     let leak = session.check(
//!         "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }",
//!     );
//!     assert!(leak.unwrap_err().iter().any(|d| d.code == DiagCode::ExplicitFlow));
//! }
//! ```

use crate::checker::{
    check_items, resolve_default_pc, resolve_lattice, CheckOptions, CheckerState, TypedProgram,
};
use crate::diag::{DiagCode, Diagnostic};
use crate::{prelude_arc, PRELUDE_CHECKS};
use p4bid_ast::pool::{FrozenTyCtx, SharedTyCtx, TyCtx};
use p4bid_ast::surface::Program;
use p4bid_lattice::Lattice;
use std::rc::Rc;
use std::sync::Arc;

/// A reusable checking session: prelude, interner, and per-lattice checked
/// prelude state are built once and shared across [`check`] calls.
///
/// The session is pinned to one [`CheckOptions`] (mode, lattice override,
/// ambient pc); programs may still bring their own `lattice { … }`
/// declarations — the session caches one checked-prelude snapshot per
/// distinct lattice it encounters.
///
/// Sessions come in two flavors: *cold* ([`CheckerSession::new`]), which
/// type-checks the prelude itself on first use, and *shared-core*
/// ([`SharedSessionCore::session`]), which clones pre-checked state off an
/// immutable frozen segment and layers a private overlay on top for
/// program-local symbols and types.
///
/// [`check`]: CheckerSession::check
#[derive(Debug)]
pub struct CheckerSession {
    opts: CheckOptions,
    /// The shared interner + hash-consing type pool. Grown across checks
    /// (append-only); every [`TypedProgram`] this session produces holds a
    /// reference to it, so prelude types are pooled exactly once and keyed
    /// by `TyId` in the per-lattice snapshots. For shared-core sessions
    /// this is an overlay over the core's frozen segment.
    ctx: SharedTyCtx,
    /// A one-shot deadline for the *next* check (see
    /// [`set_deadline`](CheckerSession::set_deadline)); consumed by that
    /// check. When absent, each check derives its own deadline from
    /// `opts.check_timeout_ms`.
    deadline: Option<std::time::Instant>,
    /// The prelude, parsed once per process and shared by handle.
    prelude: Arc<Program>,
    /// Checked-prelude snapshots, keyed by the lattice they were checked
    /// under and shared by handle (snapshots are immutable once built, so
    /// cloning a session off a core is a handful of `Arc` bumps). Real
    /// workloads use one lattice (or a handful), so a linear scan over
    /// `Lattice` equality is fine.
    states: Vec<(Lattice, Arc<CheckerState>)>,
}

impl CheckerSession {
    /// Builds a cold (root-tier) session.
    #[must_use]
    pub fn new(opts: CheckOptions) -> Self {
        CheckerSession {
            opts,
            ctx: TyCtx::shared(),
            prelude: prelude_arc(),
            states: Vec::new(),
            deadline: None,
        }
    }

    /// The options this session checks under.
    #[must_use]
    pub fn options(&self) -> &CheckOptions {
        &self.opts
    }

    /// Arms an explicit wall-clock deadline for the *next* check (it is
    /// consumed by that check). Drivers that do per-program work *before*
    /// calling [`check`](CheckerSession::check) — e.g. the batch workers,
    /// which may sleep under fault injection — use this so the budget
    /// covers the whole program, not just the checking half. When no
    /// explicit deadline is armed, each check derives one from
    /// `opts.check_timeout_ms` on entry.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// The default lattice of this session's options: the override if one
    /// is set, else the two-point lattice (a program without a `lattice`
    /// declaration resolves to exactly this).
    fn default_lattice(&self) -> Lattice {
        self.opts.lattice.clone().unwrap_or_else(Lattice::two_point)
    }

    /// Builds the checked-prelude snapshot for the session's default
    /// lattice if it does not exist yet. [`freeze`](CheckerSession::freeze)
    /// calls this so every worker cloned off the core starts warm; exposed
    /// so benchmarks can isolate session-build cost.
    ///
    /// Warming can legitimately fail on user input — e.g. an ambient
    /// `--pc` label that is not in the lattice. The error is *not*
    /// surfaced here: every [`check`](CheckerSession::check) re-resolves
    /// the same state and reports the diagnostic per program, exactly as a
    /// cold session would.
    pub fn warm(&mut self) {
        let lattice = self.default_lattice();
        let _ = self.prelude_state(&lattice);
    }

    /// Freezes this session into an immutable, `Send + Sync`
    /// [`SharedSessionCore`] that any number of worker threads can clone
    /// cheap sessions off. The default-lattice prelude snapshot is built
    /// first (if missing), so cloned sessions start fully warm.
    ///
    /// # Panics
    ///
    /// Panics if the session's context is still referenced by live
    /// [`TypedProgram`]s (freeze requires sole ownership), or if the
    /// session itself came from a shared core (tiers do not stack).
    #[must_use]
    pub fn freeze(mut self) -> SharedSessionCore {
        self.warm();
        let ctx = Rc::try_unwrap(self.ctx)
            .expect(
                "freeze requires sole ownership of the session context; drop TypedPrograms first",
            )
            .into_inner();
        SharedSessionCore {
            opts: self.opts,
            ctx: Arc::new(ctx.freeze()),
            prelude: self.prelude,
            states: self.states,
        }
    }

    /// Tier sizes and frozen-segment hit counters of this session's
    /// interner and pool.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        let ctx = self.ctx.borrow();
        let (frozen_syms, overlay_syms) = ctx.syms.tier_sizes();
        let (sym_frozen_hits, sym_intern_calls) = ctx.syms.frozen_hit_stats();
        let (frozen_types, overlay_types) = ctx.types.tier_sizes();
        let (ty_frozen_hits, ty_intern_calls) = ctx.types.frozen_hit_stats();
        SessionStats {
            frozen_syms,
            overlay_syms,
            frozen_types,
            overlay_types,
            sym_frozen_hits,
            sym_intern_calls,
            ty_frozen_hits,
            ty_intern_calls,
            push_cache_hits: ctx.types.push_cache_hits(),
        }
    }

    /// Parses and checks one program, with the prelude available — the
    /// session-reuse equivalent of [`check_source`](crate::check_source).
    ///
    /// # Errors
    ///
    /// Returns parser errors (as a single [`DiagCode::Malformed`]
    /// diagnostic), a single [`DiagCode::Oversized`] diagnostic when the
    /// source exceeds `opts.max_source_bytes`, or the full list of
    /// type/flow errors.
    pub fn check(&mut self, source: &str) -> Result<TypedProgram, Vec<Diagnostic>> {
        if let Some(d) = crate::oversized_diag(source, &self.opts) {
            self.deadline = None;
            return Err(vec![d]);
        }
        let user = match p4bid_syntax::parse(source) {
            Ok(user) => user,
            Err(e) => {
                // An armed deadline is per-check: don't leak it into the
                // next program when this one dies in the parser.
                self.deadline = None;
                return Err(vec![Diagnostic::new(
                    DiagCode::Malformed,
                    e.message().to_string(),
                    e.span(),
                )]);
            }
        };
        self.check_parsed(user)
    }

    /// Checks an already-parsed user program against the session prelude.
    ///
    /// # Errors
    ///
    /// Returns the full list of type/flow errors.
    pub fn check_parsed(&mut self, user: Program) -> Result<TypedProgram, Vec<Diagnostic>> {
        let deadline = self.deadline.take().or_else(|| self.opts.deadline_from_now());
        let lattice = resolve_lattice(&user, &self.opts)?;
        let default_pc = resolve_default_pc(&lattice, &self.opts)?;
        let state = CheckerState::clone(&*self.prelude_state(&lattice)?);

        let (controls, state, lineage) = {
            let mut ctx = self.ctx.borrow_mut();
            check_items(&user.items, &lattice, &self.opts, default_pc, &mut ctx, state, deadline)?
        };

        // The interpreter needs the prelude definitions in the program
        // body, exactly as `check_source` includes them.
        let mut program = (*self.prelude).clone();
        program.items.extend(user.items);
        Ok(TypedProgram {
            lattice,
            defs: state.defs,
            controls,
            program,
            ctx: Rc::clone(&self.ctx),
            lineage,
        })
    }

    /// The checked-prelude snapshot for a lattice, built on first use.
    fn prelude_state(&mut self, lattice: &Lattice) -> Result<Arc<CheckerState>, Vec<Diagnostic>> {
        if let Some(ix) = self.states.iter().position(|(l, _)| l == lattice) {
            return Ok(Arc::clone(&self.states[ix].1));
        }
        let default_pc = resolve_default_pc(lattice, &self.opts)?;
        PRELUDE_CHECKS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let (_, state, _) = {
            let mut ctx = self.ctx.borrow_mut();
            // The prelude is trusted input and its snapshot is shared by
            // every later program — it never runs under a deadline.
            check_items(
                &self.prelude.items,
                lattice,
                &self.opts,
                default_pc,
                &mut ctx,
                CheckerState::empty(),
                None,
            )
            .map_err(|diags| {
                // Unreachable for the shipped prelude (it is unannotated and
                // well-typed under every lattice); surfaced defensively.
                debug_assert!(false, "prelude failed to check: {diags:?}");
                diags
            })?
        };
        let state = Arc::new(state);
        self.states.push((lattice.clone(), Arc::clone(&state)));
        Ok(state)
    }
}

/// An immutable, `Send + Sync` snapshot of a warmed [`CheckerSession`]:
/// the frozen interner/pool segments, the parsed prelude, and the
/// per-lattice checked-prelude states.
///
/// Built once (via [`SharedSessionCore::new`] or
/// [`CheckerSession::freeze`]) and shared across worker threads via `Arc`;
/// each worker calls [`session`](SharedSessionCore::session) to get a
/// private overlay session that starts fully warm — no prelude re-lex,
/// re-parse, or re-check, ever.
#[derive(Debug, Clone)]
pub struct SharedSessionCore {
    opts: CheckOptions,
    /// The frozen interner + pool segment every worker overlays.
    ctx: Arc<FrozenTyCtx>,
    /// The parsed prelude (shared by handle with each worker session).
    prelude: Arc<Program>,
    /// Checked-prelude snapshots frozen with the core, shared by handle.
    /// Every `Symbol` and `TyId` inside points into the frozen segment.
    states: Vec<(Lattice, Arc<CheckerState>)>,
}

impl SharedSessionCore {
    /// Builds and freezes a warmed session in one step.
    #[must_use]
    pub fn new(opts: CheckOptions) -> Self {
        CheckerSession::new(opts).freeze()
    }

    /// The options every session cloned off this core checks under.
    #[must_use]
    pub fn options(&self) -> &CheckOptions {
        &self.opts
    }

    /// The frozen `(symbol, type)` segment sizes of this core.
    #[must_use]
    pub fn frozen_sizes(&self) -> (usize, usize) {
        (self.ctx.syms.len(), self.ctx.types.len())
    }

    /// A fresh per-worker session: a private overlay over the frozen
    /// segment, with the prelude program and the per-lattice
    /// checked-prelude snapshots cloned in. Costs a few table clones —
    /// roughly 10–100× cheaper than a cold [`CheckerSession::new`] +
    /// prelude check (the `session_warmup` bench tracks the ratio).
    #[must_use]
    pub fn session(&self) -> CheckerSession {
        CheckerSession {
            opts: self.opts.clone(),
            ctx: TyCtx::shared_with_base(&self.ctx),
            prelude: self.prelude.clone(),
            states: self.states.clone(),
            deadline: None,
        }
    }

    /// Rebuilds a fresh core under the same options — the *refresh hook*
    /// for long-lived services (`p4bid serve --refresh-every N`).
    ///
    /// Freezing is one-way and tiers do not stack, so a core can never
    /// absorb what its workers learned; refreshing instead re-warms a new
    /// root segment from scratch (the process-wide prelude token/AST
    /// caches still hit, so only the prelude *check* is repaid). Verdicts
    /// are unaffected — sessions off the old and the new core produce
    /// identical reports — which is exactly what lets a serve loop refresh
    /// between epochs without breaking its determinism contract.
    #[must_use]
    pub fn rebuild(&self) -> SharedSessionCore {
        SharedSessionCore::new(self.opts.clone())
    }
}

/// Tier sizes and frozen-segment hit counters of one session (see
/// [`CheckerSession::stats`]); batch drivers aggregate one per worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Interner frozen-segment size (0 for cold sessions).
    pub frozen_syms: usize,
    /// Interner overlay size (names first seen by this session).
    pub overlay_syms: usize,
    /// Pool frozen-segment size (0 for cold sessions).
    pub frozen_types: usize,
    /// Pool overlay size (types first built by this session).
    pub overlay_types: usize,
    /// Symbol intern calls answered by the frozen segment.
    pub sym_frozen_hits: u64,
    /// Total symbol intern calls.
    pub sym_intern_calls: u64,
    /// Type intern calls answered by the frozen segment.
    pub ty_frozen_hits: u64,
    /// Total type intern calls.
    pub ty_intern_calls: u64,
    /// `push_label` calls answered by the `(TyId, Label)` memo.
    pub push_cache_hits: u64,
}

impl SessionStats {
    /// Accumulates another worker's counters into this one (tier sizes
    /// take the maximum — the frozen segment is shared, overlays are
    /// summed).
    pub fn absorb(&mut self, other: &SessionStats) {
        self.frozen_syms = self.frozen_syms.max(other.frozen_syms);
        self.frozen_types = self.frozen_types.max(other.frozen_types);
        self.overlay_syms += other.overlay_syms;
        self.overlay_types += other.overlay_types;
        self.sym_frozen_hits += other.sym_frozen_hits;
        self.sym_intern_calls += other.sym_intern_calls;
        self.ty_frozen_hits += other.ty_frozen_hits;
        self.ty_intern_calls += other.ty_intern_calls;
        self.push_cache_hits += other.push_cache_hits;
    }

    /// Fraction of symbol intern calls served by the frozen segment.
    #[must_use]
    pub fn sym_hit_rate(&self) -> f64 {
        if self.sym_intern_calls == 0 {
            0.0
        } else {
            self.sym_frozen_hits as f64 / self.sym_intern_calls as f64
        }
    }

    /// Fraction of type intern calls served by the frozen segment.
    #[must_use]
    pub fn ty_hit_rate(&self) -> f64 {
        if self.ty_intern_calls == 0 {
            0.0
        } else {
            self.ty_frozen_hits as f64 / self.ty_intern_calls as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_source, Mode, PRELUDE};

    #[test]
    fn session_matches_one_shot_results() {
        let sources = [
            "control C(inout bit<8> x) { apply { x = x + 8w1; } }",
            "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }",
            "lattice { bot < A; bot < B; A < top; B < top; }\n\
             control C(inout <bit<8>, A> a, inout <bit<8>, B> b) { apply { a = b; } }",
            "control C(inout bit<8> x) { apply { mark_to_drop_missing(); } }",
        ];
        let core = SharedSessionCore::new(CheckOptions::ifc());
        let mut cold = CheckerSession::new(CheckOptions::ifc());
        let mut shared = core.session();
        for _ in 0..2 {
            for src in sources {
                let one_shot = check_source(src, &CheckOptions::ifc());
                for session in [&mut cold, &mut shared] {
                    let via_session = session.check(src);
                    match (&one_shot, via_session) {
                        (Ok(a), Ok(b)) => {
                            assert_eq!(a.controls.len(), b.controls.len());
                            assert_eq!(a.lattice, b.lattice);
                            assert_eq!(a.program, b.program);
                        }
                        (Err(a), Err(b)) => {
                            let codes =
                                |ds: &[Diagnostic]| ds.iter().map(|d| d.code).collect::<Vec<_>>();
                            assert_eq!(codes(a), codes(&b), "{src}");
                            let spans =
                                |ds: &[Diagnostic]| ds.iter().map(|d| d.span).collect::<Vec<_>>();
                            assert_eq!(spans(a), spans(&b), "{src}");
                        }
                        (a, b) => panic!("verdicts diverge on {src}: {a:?} vs {b:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn session_caches_one_state_per_lattice() {
        let mut session = CheckerSession::new(CheckOptions::ifc());
        let two_point = "control C(inout <bit<8>, high> h) { apply { h = 8w1; } }";
        let diamond = "lattice { bot < A; bot < B; A < top; B < top; }\n\
                       control C(inout <bit<8>, A> a) { apply { a = 8w1; } }";
        for _ in 0..3 {
            session.check(two_point).expect("accepts");
            session.check(diamond).expect("accepts");
        }
        assert_eq!(session.states.len(), 2, "one snapshot per distinct lattice");
    }

    #[test]
    fn session_parse_errors_are_malformed_diags() {
        let mut session = CheckerSession::new(CheckOptions::ifc());
        let errs = session.check("control {").unwrap_err();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].code, DiagCode::Malformed);
        // The session survives a parse error and keeps checking.
        assert!(session.check("control C(inout bit<8> x) { apply { } }").is_ok());
    }

    #[test]
    fn base_mode_session_accepts_leaks() {
        let mut session = CheckerSession::new(CheckOptions::base());
        assert_eq!(session.options().mode, Mode::Base);
        let leak = "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }";
        session.check(leak).expect("base mode ignores labels");
    }

    #[test]
    fn session_respects_ambient_pc() {
        let mut session = CheckerSession::new(CheckOptions::ifc().with_pc("high"));
        let errs =
            session.check("control C(inout <bit<8>, low> l) { apply { l = 8w1; } }").unwrap_err();
        assert!(errs.iter().any(|d| d.code == DiagCode::ImplicitFlow), "{errs:?}");
    }

    #[test]
    fn prelude_text_is_nonempty() {
        assert!(PRELUDE.contains("standard_metadata_t"));
    }

    #[test]
    fn shared_core_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedSessionCore>();
    }

    #[test]
    fn core_sessions_start_warm_and_stay_private() {
        let core = SharedSessionCore::new(CheckOptions::ifc());
        let (frozen_syms, frozen_types) = core.frozen_sizes();
        assert!(frozen_syms > 0 && frozen_types > 4, "core froze the prelude universe");

        let mut a = core.session();
        let mut b = core.session();
        let stats = a.stats();
        assert_eq!(stats.frozen_syms, frozen_syms);
        assert_eq!(stats.frozen_types, frozen_types);
        assert_eq!((stats.overlay_syms, stats.overlay_types), (0, 0), "born with empty overlays");
        assert_eq!(a.states.len(), 1, "default-lattice snapshot cloned in");

        // `bit<32>` and `num_bits_set` live in the frozen prelude segment.
        a.check("control C(inout bit<32> x) { apply { x = num_bits_set(x); } }").expect("accepts");
        let sa = a.stats();
        assert!(sa.sym_frozen_hits > 0, "prelude names served frozen: {sa:?}");
        assert!(sa.ty_frozen_hits > 0, "prelude types served frozen: {sa:?}");
        // b's overlay is untouched by a's checking.
        assert_eq!(b.stats().overlay_syms, 0);
        b.check("control D(inout bit<16> y) { apply { y = y + 16w1; } }").expect("accepts");
    }

    #[test]
    fn core_sessions_handle_new_lattices_locally() {
        let core = SharedSessionCore::new(CheckOptions::ifc());
        let mut session = core.session();
        let diamond = "lattice { bot < A; bot < B; A < top; B < top; }\n\
                       control C(inout <bit<8>, A> a) { apply { a = 8w1; } }";
        session.check(diamond).expect("accepts");
        assert_eq!(session.states.len(), 2, "new lattice snapshot built in the overlay");
    }

    #[test]
    #[should_panic(expected = "tiers do not stack")]
    fn refreezing_a_core_session_panics() {
        let core = SharedSessionCore::new(CheckOptions::ifc());
        let _ = core.session().freeze();
    }

    #[test]
    fn bad_ambient_pc_is_a_diagnostic_not_a_panic() {
        // An unknown `--pc` label must surface per check (as it does on
        // the cold path), not blow up core construction / warming.
        let core = SharedSessionCore::new(CheckOptions::ifc().with_pc("bogus"));
        let mut session = core.session();
        let errs = session.check("control C(inout bit<8> x) { apply { } }").unwrap_err();
        assert!(errs.iter().any(|d| d.code == DiagCode::UnknownLabel), "{errs:?}");
    }

    #[test]
    fn push_memo_is_lattice_scoped_across_programs() {
        // Soundness regression: the same header checked under a *chain*
        // lattice (where A ⊔ B = B) and then under a *diamond* lattice
        // with the same element names (where A ⊔ B = ⊤) shares one pool —
        // the chain's label-push memo must not leak into the diamond
        // program, or the explicit flow below would be accepted.
        let chain_ok = "lattice { bot < A; A < B; B < top; }\n\
                        header h_t { <bit<8>, A> f; }\n\
                        control C(inout <h_t, B> x, inout <bit<8>, B> sink) {\n\
                            apply { sink = x.f; }\n\
                        }";
        let diamond_leak = "lattice { bot < A; bot < B; A < top; B < top; }\n\
                            header h_t { <bit<8>, A> f; }\n\
                            control C(inout <h_t, B> x, inout <bit<8>, B> sink) {\n\
                                apply { sink = x.f; }\n\
                            }";
        for warm_chain_first in [false, true] {
            let mut session = SharedSessionCore::new(CheckOptions::ifc()).session();
            if warm_chain_first {
                session.check(chain_ok).expect("chain program accepts: A ⊔ B = B flows to B");
            }
            let errs = session.check(diamond_leak).unwrap_err();
            assert!(
                errs.iter().any(|d| d.code == DiagCode::ExplicitFlow),
                "diamond leak must be rejected (warm_chain_first={warm_chain_first}): {errs:?}"
            );
        }
    }
}
