//! Flow lineage: the source → sink edges the checker walks, recorded per
//! program so a rejection can be *explained* as a chain of flows instead
//! of a bare code + span.
//!
//! Every data movement the IFC judgements inspect — an assignment, a
//! variable initializer, an argument passed to a parameter, a returned
//! value, a `declassify`, a table key selecting an action — records one
//! compact [`LineageEdge`] into the program's [`LineageGraph`]. When a
//! flow constraint fails, the checker walks its log *backwards* from the
//! violating expression to its origins and attaches the resulting path to
//! the [`Diagnostic`](crate::Diagnostic) as rendered [`FlowEdge`]s: the
//! human renderer prints the chain
//! (`` `h` (high) --assign--> `x` (high) --assign--> `l` (low) ``) and
//! the `p4bid-batch-report/2` JSON schema carries it as a
//! machine-readable `lineage` array.
//!
//! Recording happens on the checking hot path for *every* program,
//! including the (overwhelmingly common) accepted ones, so the graph
//! stores only `Copy` data — operation, endpoint spans, and labels as
//! lattice elements. Rendered source text and label names exist only in
//! the [`FlowEdge`]s the checker builds while explaining a failure: that
//! cold path has the program AST and the lattice in hand, and the
//! rendered path outlives both inside the diagnostic.

use p4bid_ast::span::Span;
use p4bid_lattice::Label;
use std::fmt;
use std::fmt::Write as _;

/// The operation that moved data across one recorded flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FlowOp {
    /// T-Assign: the right-hand side flows into an l-value.
    Assign,
    /// T-VarInit: an initializer flows into a fresh binding.
    Init,
    /// An argument flows into a parameter (T-Call, or a table's bound
    /// argument prefix in T-TblDecl).
    Arg,
    /// A returned value flows into the function's declared return type.
    Return,
    /// A guard (or ambient `pc`) taints a write/call/exit in its scope —
    /// the implicit-flow side conditions `pc ⊑ χ₁` / `pc ⊑ pc_fn`.
    GuardPc,
    /// A table key selects among actions (T-TblDecl's `χ_k ⊑ pc_fnⱼ`).
    Table,
    /// An index selects a stack element (T-Index's `χ₂ ⊑ χ₁`).
    Index,
    /// `declassify(e)` lowers the expression's label to ⊥.
    Declassify,
}

impl FlowOp {
    /// Stable identifier, used by the human chain rendering and the
    /// `lineage` array of the `p4bid-batch-report/2` schema.
    #[must_use]
    pub fn ident(self) -> &'static str {
        match self {
            FlowOp::Assign => "assign",
            FlowOp::Init => "init",
            FlowOp::Arg => "arg",
            FlowOp::Return => "return",
            FlowOp::GuardPc => "guard-pc",
            FlowOp::Table => "table",
            FlowOp::Index => "index",
            FlowOp::Declassify => "declassify",
        }
    }
}

impl fmt::Display for FlowOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.ident())
    }
}

/// One endpoint of a *rendered* flow edge: source text, the name of its
/// security label, and where it sits in the program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FlowNode {
    /// Rendered expression or l-value (e.g. `hdr.ipv4.ttl`, `h == 8w0`).
    pub what: String,
    /// The label name, rendered against the active lattice.
    pub label: String,
    /// Source span of the endpoint.
    pub span: Span,
}

impl FlowNode {
    /// Builds an endpoint.
    #[must_use]
    pub fn new(what: impl Into<String>, label: impl Into<String>, span: Span) -> Self {
        FlowNode { what: what.into(), label: label.into(), span }
    }
}

impl fmt::Display for FlowNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}` ({})", self.what, self.label)
    }
}

/// One source → sink flow, rendered for a diagnostic's explanation path.
///
/// Labels are stored as *names* (against the active lattice) and
/// endpoints as rendered source text, so the path outlives the session
/// that produced it and serializes without a lattice in hand.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FlowEdge {
    /// What moved the data.
    pub op: FlowOp,
    /// Where the data came from.
    pub source: FlowNode,
    /// Where the data went.
    pub sink: FlowNode,
}

/// Renders a path of edges as one human-readable chain:
/// `` `h` (high) --assign--> `x` (high) --assign--> `l` (low) ``.
///
/// Consecutive edges whose endpoints do not line up textually (e.g. a
/// compound source expression fed by one of its operands) are separated
/// with `; ` so the chain never misreads as a single continuous flow.
#[must_use]
pub fn render_chain(edges: &[FlowEdge]) -> String {
    let mut out = String::new();
    let mut prev_sink: Option<&str> = None;
    for e in edges {
        match prev_sink {
            Some(sink) if sink == e.source.what => {}
            Some(_) => {
                let _ = write!(out, "; {}", e.source);
            }
            None => {
                let _ = write!(out, "{}", e.source);
            }
        }
        let _ = write!(out, " --{}--> {}", e.op, e.sink);
        prev_sink = Some(&e.sink.what);
    }
    out
}

/// One recorded flow in compact form: the operation, the endpoint spans,
/// and the endpoint labels as elements of the active lattice.
///
/// Deliberately all-`Copy`: this is what the checker pushes for every
/// data movement in every program, so it carries no rendered text (see
/// the module docs; [`FlowEdge`] is the rendered failure-path form).
/// Resolve the labels to names with the
/// [`TypedProgram::lattice`](crate::TypedProgram) that produced the
/// graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineageEdge {
    /// What moved the data.
    pub op: FlowOp,
    /// Span of the source expression.
    pub src_span: Span,
    /// Label of the source expression.
    pub src_label: Label,
    /// Span of the sink (l-value, binding name, call, …).
    pub sink_span: Span,
    /// Label of the sink.
    pub sink_label: Label,
}

/// Longest predecessor path the checker's backward trace reconstructs
/// (the violating edge itself is appended on top, for 8 rendered hops
/// total).
pub const TRACE_CAP: usize = 7;

/// Per-program flow graph: every edge the checker walked, in check order
/// (checking is sequential, so the order is deterministic for a given
/// program and options).
///
/// Kept on accepted programs as an audit trail
/// ([`TypedProgram::lineage`](crate::TypedProgram)) — e.g. "did this
/// program declassify anything?" is
/// `edges().iter().any(|e| e.op == FlowOp::Declassify)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LineageGraph {
    edges: Vec<LineageEdge>,
}

impl LineageGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        LineageGraph::default()
    }

    /// Records one walked edge.
    pub fn record(&mut self, edge: LineageEdge) {
        self.edges.push(edge);
    }

    /// Every recorded edge, in check order.
    #[must_use]
    pub fn edges(&self) -> &[LineageEdge] {
        &self.edges
    }

    /// Number of recorded edges.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

impl From<Vec<LineageEdge>> for LineageGraph {
    fn from(edges: Vec<LineageEdge>) -> Self {
        LineageGraph { edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(op: FlowOp, src: &str, src_l: &str, sink: &str, sink_l: &str) -> FlowEdge {
        FlowEdge {
            op,
            source: FlowNode::new(src, src_l, Span::dummy()),
            sink: FlowNode::new(sink, sink_l, Span::dummy()),
        }
    }

    #[test]
    fn chain_renders_continuous_and_broken_paths() {
        let continuous = [
            edge(FlowOp::Assign, "h", "high", "x", "high"),
            edge(FlowOp::Assign, "x", "high", "l", "low"),
        ];
        assert_eq!(
            render_chain(&continuous),
            "`h` (high) --assign--> `x` (high) --assign--> `l` (low)"
        );
        let broken = [
            edge(FlowOp::Assign, "h", "high", "x", "high"),
            edge(FlowOp::Assign, "x + 8w1", "high", "l", "low"),
        ];
        assert_eq!(
            render_chain(&broken),
            "`h` (high) --assign--> `x` (high); `x + 8w1` (high) --assign--> `l` (low)"
        );
    }

    #[test]
    fn graph_keeps_edges_in_record_order() {
        let mut g = LineageGraph::new();
        assert!(g.is_empty());
        let bot = p4bid_lattice::Lattice::two_point().bottom();
        let e = |op| LineageEdge {
            op,
            src_span: Span::dummy(),
            src_label: bot,
            sink_span: Span::dummy(),
            sink_label: bot,
        };
        g.record(e(FlowOp::Init));
        g.record(e(FlowOp::Assign));
        assert_eq!(g.len(), 2);
        assert_eq!(g.edges()[0].op, FlowOp::Init);
        assert_eq!(g.edges()[1].op, FlowOp::Assign);
    }

    #[test]
    fn op_idents_are_stable() {
        assert_eq!(FlowOp::GuardPc.ident(), "guard-pc");
        assert_eq!(FlowOp::Declassify.ident(), "declassify");
        assert_eq!(FlowOp::Assign.to_string(), "assign");
    }
}
