//! Typing contexts: the type-definition context Δ and the typing context Γ.
//!
//! Δ ([`TypeDefs`]) maps type names (typedefs, headers, structs) to resolved
//! security types and implements the unfolding judgement `Δ ⊢ τ ⇝ τ'`
//! together with label resolution. Γ ([`ScopedEnv`]) maps variables to their
//! security types plus a writability flag (the algorithmic residue of the
//! `goes in / goes inout` direction annotation on T-Var).

use crate::diag::{DiagCode, Diagnostic};
use p4bid_ast::sectype::{SecTy, Ty};
use p4bid_ast::span::Span;
use p4bid_ast::surface::{AnnType, TypeExpr};
use p4bid_lattice::{Label, Lattice};
use std::collections::HashMap;
use std::rc::Rc;

/// The type-definition context Δ plus the declared match kinds.
#[derive(Debug, Clone, Default)]
pub struct TypeDefs {
    types: HashMap<String, SecTy>,
    match_kinds: Vec<String>,
}

impl TypeDefs {
    /// An empty context.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a named type (typedef / header / struct).
    ///
    /// Returns `false` (and leaves the old definition) if the name was
    /// already defined.
    pub fn define(&mut self, name: &str, ty: SecTy) -> bool {
        if self.types.contains_key(name) {
            return false;
        }
        self.types.insert(name.to_string(), ty);
        true
    }

    /// Looks up a named type.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<&SecTy> {
        self.types.get(name)
    }

    /// Registers a match kind (from a `match_kind { … }` declaration).
    pub fn add_match_kind(&mut self, kind: &str) {
        if !self.match_kinds.iter().any(|k| k == kind) {
            self.match_kinds.push(kind.to_string());
        }
    }

    /// Whether `kind` is a declared match kind.
    #[must_use]
    pub fn is_match_kind(&self, kind: &str) -> bool {
        self.match_kinds.iter().any(|k| k == kind)
    }

    /// Resolves a surface type annotation to a security type:
    /// `Δ ⊢ τ ⇝ τ'` plus label-name resolution.
    ///
    /// Labels on *base* types become the outer label. A label on a
    /// compound type (e.g. `<alice_t, A>` in Listing 6, where `alice_t` is
    /// a header) is *pushed down*: it is joined onto every nested base-field
    /// label, and the compound keeps its `⊥` outer label as required by
    /// Figure 4.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] on unknown type names or labels.
    pub fn resolve(&self, ann: &AnnType, lat: &Lattice) -> Result<SecTy, Diagnostic> {
        let label = match &ann.label {
            None => lat.bottom(),
            Some(name) => lat.label(&name.node).ok_or_else(|| {
                Diagnostic::new(
                    DiagCode::UnknownLabel,
                    format!("unknown security label `{}`; the active lattice is {lat}", name.node),
                    name.span,
                )
            })?,
        };
        let base = self.resolve_unlabeled(&ann.ty, ann.span, lat)?;
        Ok(push_label(&base, label, lat))
    }

    /// Resolves the structural part, with `⊥` everywhere an annotation is
    /// absent.
    fn resolve_unlabeled(
        &self,
        ty: &TypeExpr,
        span: Span,
        lat: &Lattice,
    ) -> Result<SecTy, Diagnostic> {
        let t = match ty {
            TypeExpr::Bool => SecTy::bottom(Ty::Bool, lat),
            TypeExpr::Int => SecTy::bottom(Ty::Int, lat),
            TypeExpr::Bit(n) => SecTy::bottom(Ty::Bit(*n), lat),
            TypeExpr::Void => SecTy::bottom(Ty::Unit, lat),
            TypeExpr::Named(name) => self.lookup(name).cloned().ok_or_else(|| {
                Diagnostic::new(DiagCode::UnknownType, format!("unknown type `{name}`"), span)
            })?,
            TypeExpr::Stack(elem, n) => {
                let elem = self.resolve(elem, lat)?;
                SecTy::bottom(Ty::Stack(Rc::new(elem), *n), lat)
            }
        };
        Ok(t)
    }
}

/// Joins `label` onto a resolved type: onto the outer label for base
/// scalars, recursively onto fields/elements for compounds (whose outer
/// label stays `⊥`, Figure 4).
#[must_use]
pub fn push_label(ty: &SecTy, label: Label, lat: &Lattice) -> SecTy {
    if lat.is_bottom(label) {
        return ty.clone();
    }
    match &ty.ty {
        Ty::Bool | Ty::Int | Ty::Bit(_) => SecTy::new(ty.ty.clone(), lat.join(ty.label, label)),
        Ty::Record(fields) => SecTy::new(
            Ty::Record(Rc::new(
                fields.iter().map(|(n, t)| (n.clone(), push_label(t, label, lat))).collect(),
            )),
            ty.label,
        ),
        Ty::Header(fields) => SecTy::new(
            Ty::Header(Rc::new(
                fields.iter().map(|(n, t)| (n.clone(), push_label(t, label, lat))).collect(),
            )),
            ty.label,
        ),
        Ty::Stack(elem, n) => {
            SecTy::new(Ty::Stack(Rc::new(push_label(elem, label, lat)), *n), ty.label)
        }
        // Unit, match kinds, tables, functions are unaffected by pushing.
        Ty::Unit | Ty::MatchKind | Ty::Table(_) | Ty::Function(_) => ty.clone(),
    }
}

/// One Γ entry: the variable's security type plus whether it may be
/// written (`goes inout`) or only read (`in` parameters, closures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Resolved security type.
    pub ty: SecTy,
    /// Whether assignment to (any part of) the variable is allowed.
    pub writable: bool,
}

/// The typing context Γ, as a stack of lexical scopes.
#[derive(Debug, Clone, Default)]
pub struct ScopedEnv {
    scopes: Vec<HashMap<String, VarInfo>>,
}

impl ScopedEnv {
    /// An environment with a single (global) scope.
    #[must_use]
    pub fn new() -> Self {
        ScopedEnv { scopes: vec![HashMap::new()] }
    }

    /// Opens a nested scope.
    pub fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    /// Closes the innermost scope.
    ///
    /// # Panics
    ///
    /// Panics if only the global scope remains (checker bug).
    pub fn pop_scope(&mut self) {
        assert!(self.scopes.len() > 1, "cannot pop the global scope");
        self.scopes.pop();
    }

    /// Declares a variable in the innermost scope. Shadowing an outer
    /// binding is allowed (Core P4 declarations extend ε); redeclaring
    /// within the *same* scope returns `false`.
    pub fn declare(&mut self, name: &str, info: VarInfo) -> bool {
        let scope = self.scopes.last_mut().expect("at least the global scope");
        if scope.contains_key(name) {
            return false;
        }
        scope.insert(name.to_string(), info);
        true
    }

    /// Looks a name up through the scope stack, innermost first.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<&VarInfo> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    /// Runs `f` inside a fresh scope.
    pub fn scoped<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        self.push_scope();
        let r = f(self);
        self.pop_scope();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4bid_ast::span::Spanned;

    fn ann(ty: TypeExpr, label: Option<&str>) -> AnnType {
        AnnType {
            ty,
            label: label.map(|l| Spanned::new(l.to_string(), Span::dummy())),
            span: Span::dummy(),
        }
    }

    #[test]
    fn resolve_base_types() {
        let lat = Lattice::two_point();
        let defs = TypeDefs::new();
        let t = defs.resolve(&ann(TypeExpr::Bit(8), Some("high")), &lat).unwrap();
        assert_eq!(t, SecTy::new(Ty::Bit(8), lat.top()));
        let t = defs.resolve(&ann(TypeExpr::Bool, None), &lat).unwrap();
        assert_eq!(t, SecTy::bottom(Ty::Bool, &lat));
    }

    #[test]
    fn resolve_unknown_label() {
        let lat = Lattice::two_point();
        let defs = TypeDefs::new();
        let err = defs.resolve(&ann(TypeExpr::Bit(8), Some("secret")), &lat).unwrap_err();
        assert_eq!(err.code, DiagCode::UnknownLabel);
        assert!(err.message.contains("secret"));
    }

    #[test]
    fn resolve_unknown_type() {
        let lat = Lattice::two_point();
        let defs = TypeDefs::new();
        let err = defs.resolve(&ann(TypeExpr::Named("ipv4_t".into()), None), &lat).unwrap_err();
        assert_eq!(err.code, DiagCode::UnknownType);
    }

    #[test]
    fn labels_push_into_compounds() {
        let lat = Lattice::diamond();
        let a = lat.label("A").unwrap();
        let mut defs = TypeDefs::new();
        let hdr = SecTy::bottom(
            Ty::Header(Rc::new(vec![
                ("x".into(), SecTy::bottom(Ty::Bit(8), &lat)),
                ("y".into(), SecTy::new(Ty::Bit(8), lat.label("B").unwrap())),
            ])),
            &lat,
        );
        defs.define("alice_t", hdr);
        let t = defs.resolve(&ann(TypeExpr::Named("alice_t".into()), Some("A")), &lat).unwrap();
        // Outer label stays ⊥, fields get joined with A.
        assert_eq!(t.label, lat.bottom());
        let Ty::Header(fields) = &t.ty else { panic!() };
        assert_eq!(fields[0].1.label, a);
        assert_eq!(fields[1].1.label, lat.top(), "B ⊔ A = ⊤");
    }

    #[test]
    fn stack_resolution() {
        let lat = Lattice::two_point();
        let defs = TypeDefs::new();
        let elem = ann(TypeExpr::Bit(8), Some("high"));
        let stack =
            AnnType { ty: TypeExpr::Stack(Box::new(elem), 4), label: None, span: Span::dummy() };
        let t = defs.resolve(&stack, &lat).unwrap();
        let Ty::Stack(e, 4) = &t.ty else { panic!("{t:?}") };
        assert_eq!(e.label, lat.top());
        assert_eq!(t.label, lat.bottom());
    }

    #[test]
    fn define_rejects_duplicates() {
        let lat = Lattice::two_point();
        let mut defs = TypeDefs::new();
        assert!(defs.define("t", SecTy::bottom(Ty::Bool, &lat)));
        assert!(!defs.define("t", SecTy::bottom(Ty::Int, &lat)));
        assert_eq!(defs.lookup("t").unwrap().ty, Ty::Bool);
    }

    #[test]
    fn match_kinds() {
        let mut defs = TypeDefs::new();
        assert!(!defs.is_match_kind("exact"));
        defs.add_match_kind("exact");
        defs.add_match_kind("exact");
        assert!(defs.is_match_kind("exact"));
        assert!(!defs.is_match_kind("lpm"));
    }

    #[test]
    fn scoped_env_shadowing() {
        let lat = Lattice::two_point();
        let mut env = ScopedEnv::new();
        let low = VarInfo { ty: SecTy::bottom(Ty::Bool, &lat), writable: true };
        let high = VarInfo { ty: SecTy::new(Ty::Bool, lat.top()), writable: false };
        assert!(env.declare("x", low.clone()));
        assert!(!env.declare("x", high.clone()), "same-scope redeclaration rejected");
        env.scoped(|env| {
            assert!(env.declare("x", high.clone()), "shadowing in inner scope allowed");
            assert_eq!(env.lookup("x").unwrap().ty.label, lat.top());
        });
        assert_eq!(env.lookup("x").unwrap().ty.label, lat.bottom());
        assert!(env.lookup("y").is_none());
    }
}
