//! Typing contexts: the type-definition context Δ and the typing context Γ.
//!
//! Δ ([`TypeDefs`]) maps type names (typedefs, headers, structs) to resolved
//! security types and implements the unfolding judgement `Δ ⊢ τ ⇝ τ'`
//! together with label resolution. Γ ([`ScopedEnv`]) maps variables to their
//! security types plus a writability flag (the algorithmic residue of the
//! `goes in / goes inout` direction annotation on T-Var).
//!
//! Both contexts are keyed by interned [`Symbol`]s and backed by
//! `Vec`-indexed tables, so the hot path of the checker (declare/lookup on
//! every expression) costs an array index instead of a `String`-keyed
//! hash-map probe. Resolved types are hash-consed [`SecTy`] handles
//! (`Copy`), so a Γ entry is a few machine words and lookups copy instead
//! of cloning. Name-based entry points remain for cold callers (the
//! interpreter resolves the occasional annotation at runtime) and resolve
//! through a linear scan over the — always small — definition list.

use crate::diag::{DiagCode, Diagnostic};
use p4bid_ast::intern::{Interner, Symbol};
use p4bid_ast::pool::TyPool;
use p4bid_ast::sectype::{SecTy, TyId};
use p4bid_ast::span::Span;
use p4bid_ast::surface::{AnnType, TypeExpr};
use p4bid_lattice::{Label, Lattice};

/// Memoized security-label resolution: lattice element names interned once,
/// then resolved by symbol index.
///
/// [`Lattice::label`] is a linear scan over the element names; inside the
/// checker that scan would run once per annotation. This table interns every
/// element name up front so a label occurrence costs one interner probe and
/// one `Vec` index.
#[derive(Debug, Clone, Default)]
pub struct LabelTable {
    by_sym: Vec<Option<Label>>,
}

impl LabelTable {
    /// Builds the table for a lattice, interning every element name.
    #[must_use]
    pub fn new(lat: &Lattice, syms: &mut Interner) -> Self {
        let mut by_sym = Vec::new();
        for label in lat.labels() {
            let sym = syms.intern(lat.name(label));
            if by_sym.len() <= sym.index() {
                by_sym.resize(sym.index() + 1, None);
            }
            by_sym[sym.index()] = Some(label);
        }
        LabelTable { by_sym }
    }

    /// The label an interned symbol names, if any.
    #[must_use]
    pub fn get(&self, sym: Symbol) -> Option<Label> {
        self.by_sym.get(sym.index()).copied().flatten()
    }

    /// Resolves a label by name via an interner probe (never allocates:
    /// a name that was never interned cannot be a lattice element).
    #[must_use]
    pub fn resolve(&self, name: &str, syms: &Interner) -> Option<Label> {
        syms.lookup(name).and_then(|s| self.get(s))
    }
}

/// The type-definition context Δ plus the declared match kinds.
#[derive(Debug, Clone, Default)]
pub struct TypeDefs {
    /// Definitions in declaration order; names kept for the name-based
    /// (cold) lookup path and for diagnostics.
    entries: Vec<(String, SecTy)>,
    /// `by_sym[sym] = index into entries`.
    by_sym: Vec<Option<u32>>,
    match_kinds: Vec<(Symbol, String)>,
}

impl TypeDefs {
    /// An empty context.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a named type (typedef / header / struct) under its
    /// interned symbol.
    ///
    /// Returns `false` (and leaves the old definition) if the name was
    /// already defined.
    pub fn define(&mut self, sym: Symbol, name: &str, ty: SecTy) -> bool {
        if self.by_sym.len() <= sym.index() {
            self.by_sym.resize(sym.index() + 1, None);
        }
        if self.by_sym[sym.index()].is_some() {
            return false;
        }
        self.by_sym[sym.index()] = Some(self.entries.len() as u32);
        self.entries.push((name.to_string(), ty));
        true
    }

    /// Looks up a named type by symbol (the checker's fast path).
    #[must_use]
    pub fn lookup(&self, sym: Symbol) -> Option<SecTy> {
        let ix = self.by_sym.get(sym.index()).copied().flatten()?;
        Some(self.entries[ix as usize].1)
    }

    /// Looks up a named type by name (cold path: linear scan).
    #[must_use]
    pub fn lookup_name(&self, name: &str) -> Option<SecTy> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, t)| *t)
    }

    /// Registers a match kind (from a `match_kind { … }` declaration).
    pub fn add_match_kind(&mut self, sym: Symbol, kind: &str) {
        if !self.match_kinds.iter().any(|(s, _)| *s == sym) {
            self.match_kinds.push((sym, kind.to_string()));
        }
    }

    /// Whether `sym` names a declared match kind.
    #[must_use]
    pub fn is_match_kind(&self, sym: Symbol) -> bool {
        self.match_kinds.iter().any(|(s, _)| *s == sym)
    }

    /// Whether `kind` is a declared match kind (name-based cold path).
    #[must_use]
    pub fn is_match_kind_name(&self, kind: &str) -> bool {
        self.match_kinds.iter().any(|(_, k)| k == kind)
    }

    /// Whether every handle in Δ lies below the given tier boundaries —
    /// i.e. the table references only entities of the shared frozen
    /// segment, making it valid in (and publishable to) any session
    /// layered over the same base. Pass `usize::MAX` boundaries for
    /// root-tier sessions, whose handles are only session-local anyway.
    #[must_use]
    pub fn within_tiers(&self, max_sym: usize, max_ty: usize) -> bool {
        self.entries.iter().all(|(_, t)| t.ty.index() < max_ty)
            && self.match_kinds.iter().all(|(s, _)| s.index() < max_sym)
            && self.by_sym.iter().enumerate().all(|(ix, e)| e.is_none() || ix < max_sym)
    }

    /// Rebuilds Δ with every handle translated through a refreeze remap
    /// (see [`IdRemap`](p4bid_ast::pool::IdRemap)).
    #[must_use]
    pub fn remap(&self, r: &p4bid_ast::pool::IdRemap) -> TypeDefs {
        let mut by_sym = Vec::new();
        for (ix, e) in self.by_sym.iter().enumerate() {
            if let Some(entry_ix) = e {
                let new_ix = r.sym_index(ix);
                if by_sym.len() <= new_ix {
                    by_sym.resize(new_ix + 1, None);
                }
                by_sym[new_ix] = Some(*entry_ix);
            }
        }
        TypeDefs {
            entries: self.entries.iter().map(|(n, t)| (n.clone(), r.secty(*t))).collect(),
            by_sym,
            match_kinds: self.match_kinds.iter().map(|(s, k)| (r.sym(*s), k.clone())).collect(),
        }
    }

    /// Resolves a surface type annotation to a security type:
    /// `Δ ⊢ τ ⇝ τ'` plus label-name resolution, constructing any new
    /// structural nodes through the pool.
    ///
    /// Labels on *base* types become the outer label. A label on a
    /// compound type (e.g. `<alice_t, A>` in Listing 6, where `alice_t` is
    /// a header) is *pushed down*: it is joined onto every nested base-field
    /// label, and the compound keeps its `⊥` outer label as required by
    /// Figure 4.
    ///
    /// This is the name-based entry point (used by the interpreter for the
    /// occasional runtime annotation); the checker goes through
    /// [`resolve_interned`](Self::resolve_interned).
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] on unknown type names or labels.
    pub fn resolve(
        &self,
        ann: &AnnType,
        lat: &Lattice,
        pool: &mut TyPool,
    ) -> Result<SecTy, Diagnostic> {
        self.resolve_via(ann, lat, pool, &|name| lat.label(name), &|defs, name| {
            defs.lookup_name(name)
        })
    }

    /// Resolves a surface type annotation through the interner: labels via
    /// the [`LabelTable`], type names via symbol probes. Semantics are
    /// identical to [`resolve`](Self::resolve).
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] on unknown type names or labels.
    pub fn resolve_interned(
        &self,
        ann: &AnnType,
        lat: &Lattice,
        pool: &mut TyPool,
        labels: &LabelTable,
        syms: &Interner,
    ) -> Result<SecTy, Diagnostic> {
        self.resolve_via(ann, lat, pool, &|name| labels.resolve(name, syms), &|defs, name| {
            syms.lookup(name).and_then(|s| defs.lookup(s))
        })
    }

    fn resolve_via(
        &self,
        ann: &AnnType,
        lat: &Lattice,
        pool: &mut TyPool,
        label_of: &dyn Fn(&str) -> Option<Label>,
        type_of: &dyn Fn(&Self, &str) -> Option<SecTy>,
    ) -> Result<SecTy, Diagnostic> {
        let label = match &ann.label {
            None => lat.bottom(),
            Some(name) => label_of(&name.node).ok_or_else(|| {
                Diagnostic::new(
                    DiagCode::UnknownLabel,
                    format!("unknown security label `{}`; the active lattice is {lat}", name.node),
                    name.span,
                )
            })?,
        };
        let base = self.resolve_unlabeled(&ann.ty, ann.span, lat, pool, label_of, type_of)?;
        Ok(push_label(base, label, lat, pool))
    }

    /// Resolves the structural part, with `⊥` everywhere an annotation is
    /// absent.
    fn resolve_unlabeled(
        &self,
        ty: &TypeExpr,
        span: Span,
        lat: &Lattice,
        pool: &mut TyPool,
        label_of: &dyn Fn(&str) -> Option<Label>,
        type_of: &dyn Fn(&Self, &str) -> Option<SecTy>,
    ) -> Result<SecTy, Diagnostic> {
        let t = match ty {
            TypeExpr::Bool => SecTy::bottom(TyId::BOOL, lat),
            TypeExpr::Int => SecTy::bottom(TyId::INT, lat),
            TypeExpr::Bit(n) => SecTy::bottom(pool.bit(*n), lat),
            TypeExpr::Void => SecTy::bottom(TyId::UNIT, lat),
            TypeExpr::Named(name) => type_of(self, name).ok_or_else(|| {
                Diagnostic::new(DiagCode::UnknownType, format!("unknown type `{name}`"), span)
            })?,
            TypeExpr::Stack(elem, n) => {
                let elem = self.resolve_via(elem, lat, pool, label_of, type_of)?;
                SecTy::bottom(pool.stack(elem, *n), lat)
            }
        };
        Ok(t)
    }
}

/// Joins `label` onto a resolved type: onto the outer label for base
/// scalars, recursively onto fields/elements for compounds (whose outer
/// label stays `⊥`, Figure 4). New compound nodes are interned through the
/// pool; pushing `⊥` is the identity and allocates nothing.
///
/// Thin wrapper around the memoizing [`TyPool::push_label`]: compound
/// pushes are cached per `(TyId, Label)` in the pool (frozen tier
/// included), so annotated compound types like `<alice_t, A>` resolve
/// O(1) after their first use.
#[must_use]
pub fn push_label(ty: SecTy, label: Label, lat: &Lattice, pool: &mut TyPool) -> SecTy {
    pool.push_label(ty, label, lat)
}

/// One Γ entry: the variable's security type plus whether it may be
/// written (`goes inout`) or only read (`in` parameters, closures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarInfo {
    /// Resolved security type.
    pub ty: SecTy,
    /// Whether assignment to (any part of) the variable is allowed.
    pub writable: bool,
}

/// The typing context Γ, as a stack of lexical scopes.
///
/// Bindings live in `slots`, a `Vec` indexed by [`Symbol`]: each slot holds
/// the stack of live bindings for that name (outermost first), tagged with
/// the scope depth that introduced them. Lookup is an array index plus a
/// `last()`; opening a scope is a `Vec` push; closing one pops exactly the
/// symbols that scope declared.
#[derive(Debug, Clone)]
pub struct ScopedEnv {
    /// `slots[sym] = [(scope_depth, binding), …]`, innermost last.
    slots: Vec<Vec<(u32, VarInfo)>>,
    /// Per-scope undo log: the symbols each open scope declared.
    scopes: Vec<Vec<Symbol>>,
}

impl Default for ScopedEnv {
    fn default() -> Self {
        Self::new()
    }
}

impl ScopedEnv {
    /// An environment with a single (global) scope.
    #[must_use]
    pub fn new() -> Self {
        ScopedEnv { slots: Vec::new(), scopes: vec![Vec::new()] }
    }

    /// Opens a nested scope.
    pub fn push_scope(&mut self) {
        self.scopes.push(Vec::new());
    }

    /// Closes the innermost scope, dropping its bindings.
    ///
    /// # Panics
    ///
    /// Panics if only the global scope remains (checker bug).
    pub fn pop_scope(&mut self) {
        assert!(self.scopes.len() > 1, "cannot pop the global scope");
        let declared = self.scopes.pop().expect("non-empty scope stack");
        for sym in declared {
            self.slots[sym.index()].pop();
        }
    }

    /// Declares a variable in the innermost scope. Shadowing an outer
    /// binding is allowed (Core P4 declarations extend ε); redeclaring
    /// within the *same* scope returns `false`.
    pub fn declare(&mut self, sym: Symbol, info: VarInfo) -> bool {
        if self.slots.len() <= sym.index() {
            self.slots.resize_with(sym.index() + 1, Vec::new);
        }
        let depth = (self.scopes.len() - 1) as u32;
        let stack = &mut self.slots[sym.index()];
        if stack.last().is_some_and(|(d, _)| *d == depth) {
            return false;
        }
        stack.push((depth, info));
        self.scopes.last_mut().expect("at least the global scope").push(sym);
        true
    }

    /// Looks a symbol up: the innermost live binding, if any.
    #[must_use]
    pub fn lookup(&self, sym: Symbol) -> Option<VarInfo> {
        self.slots.get(sym.index())?.last().map(|&(_, info)| info)
    }

    /// Runs `f` inside a fresh scope.
    pub fn scoped<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        self.push_scope();
        let r = f(self);
        self.pop_scope();
        r
    }

    /// Whether only the global scope is live and every binding's symbol
    /// index and type id lie below the given tier boundaries (see
    /// [`TypeDefs::within_tiers`]). At item boundaries the checker has
    /// popped every nested scope, so the first conjunct always holds for
    /// prefix snapshots — it is asserted, not assumed.
    #[must_use]
    pub fn within_tiers(&self, max_sym: usize, max_ty: usize) -> bool {
        self.scopes.len() == 1
            && self.slots.iter().enumerate().all(|(ix, stack)| {
                stack.is_empty()
                    || (ix < max_sym && stack.iter().all(|(_, v)| v.ty.ty.index() < max_ty))
            })
    }

    /// Rebuilds Γ with every binding moved to its remapped symbol index
    /// and every type handle translated (the outer `slots` vector is
    /// *re-indexed*, not mapped in place: overlay symbols change index
    /// across a refreeze).
    #[must_use]
    pub fn remap(&self, r: &p4bid_ast::pool::IdRemap) -> ScopedEnv {
        let mut slots: Vec<Vec<(u32, VarInfo)>> = Vec::new();
        for (ix, stack) in self.slots.iter().enumerate() {
            if stack.is_empty() {
                continue;
            }
            let new_ix = r.sym_index(ix);
            if slots.len() <= new_ix {
                slots.resize_with(new_ix + 1, Vec::new);
            }
            slots[new_ix] = stack
                .iter()
                .map(|&(d, v)| (d, VarInfo { ty: r.secty(v.ty), writable: v.writable }))
                .collect();
        }
        ScopedEnv {
            slots,
            scopes: self
                .scopes
                .iter()
                .map(|syms| syms.iter().map(|&s| r.sym(s)).collect())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4bid_ast::sectype::{FieldList, Ty};
    use p4bid_ast::span::Spanned;

    fn ann(ty: TypeExpr, label: Option<&str>) -> AnnType {
        AnnType {
            ty,
            label: label.map(|l| Spanned::new(l.to_string(), Span::dummy())),
            span: Span::dummy(),
        }
    }

    #[test]
    fn resolve_base_types() {
        let lat = Lattice::two_point();
        let mut pool = TyPool::new();
        let defs = TypeDefs::new();
        let t = defs.resolve(&ann(TypeExpr::Bit(8), Some("high")), &lat, &mut pool).unwrap();
        assert_eq!(t, SecTy::new(pool.bit(8), lat.top()));
        let t = defs.resolve(&ann(TypeExpr::Bool, None), &lat, &mut pool).unwrap();
        assert_eq!(t, SecTy::bottom(TyId::BOOL, &lat));
    }

    #[test]
    fn resolve_interned_matches_name_based() {
        let lat = Lattice::diamond();
        let mut syms = Interner::new();
        let mut pool = TyPool::new();
        let labels = LabelTable::new(&lat, &mut syms);
        let mut defs = TypeDefs::new();
        let h = syms.intern("h_t");
        let bit16 = pool.bit(16);
        defs.define(h, "h_t", SecTy::bottom(bit16, &lat));
        for a in [
            ann(TypeExpr::Bit(8), Some("A")),
            ann(TypeExpr::Named("h_t".into()), Some("B")),
            ann(TypeExpr::Bool, None),
        ] {
            let by_name = defs.resolve(&a, &lat, &mut pool).unwrap();
            let by_sym = defs.resolve_interned(&a, &lat, &mut pool, &labels, &syms).unwrap();
            assert_eq!(by_name, by_sym);
        }
    }

    #[test]
    fn resolve_unknown_label() {
        let lat = Lattice::two_point();
        let mut syms = Interner::new();
        let mut pool = TyPool::new();
        let labels = LabelTable::new(&lat, &mut syms);
        let defs = TypeDefs::new();
        let a = ann(TypeExpr::Bit(8), Some("secret"));
        let err = defs.resolve(&a, &lat, &mut pool).unwrap_err();
        assert_eq!(err.code, DiagCode::UnknownLabel);
        assert!(err.message.contains("secret"));
        let err = defs.resolve_interned(&a, &lat, &mut pool, &labels, &syms).unwrap_err();
        assert_eq!(err.code, DiagCode::UnknownLabel);
    }

    #[test]
    fn resolve_unknown_type() {
        let lat = Lattice::two_point();
        let mut pool = TyPool::new();
        let defs = TypeDefs::new();
        let err = defs
            .resolve(&ann(TypeExpr::Named("ipv4_t".into()), None), &lat, &mut pool)
            .unwrap_err();
        assert_eq!(err.code, DiagCode::UnknownType);
    }

    #[test]
    fn labels_push_into_compounds() {
        let lat = Lattice::diamond();
        let a = lat.label("A").unwrap();
        let mut syms = Interner::new();
        let mut pool = TyPool::new();
        let mut defs = TypeDefs::new();
        let x = syms.intern("x");
        let y = syms.intern("y");
        let bit8 = pool.bit(8);
        let hdr_ty = pool.header(FieldList::new(vec![
            (x, SecTy::bottom(bit8, &lat)),
            (y, SecTy::new(bit8, lat.label("B").unwrap())),
        ]));
        let alice = syms.intern("alice_t");
        defs.define(alice, "alice_t", SecTy::bottom(hdr_ty, &lat));
        let t = defs
            .resolve(&ann(TypeExpr::Named("alice_t".into()), Some("A")), &lat, &mut pool)
            .unwrap();
        // Outer label stays ⊥, fields get joined with A.
        assert_eq!(t.label, lat.bottom());
        let fields = pool.fields(t.ty).unwrap().as_slice().to_vec();
        assert_eq!(fields[0].1.label, a);
        assert_eq!(fields[1].1.label, lat.top(), "B ⊔ A = ⊤");
    }

    #[test]
    fn stack_resolution() {
        let lat = Lattice::two_point();
        let mut pool = TyPool::new();
        let defs = TypeDefs::new();
        let elem = ann(TypeExpr::Bit(8), Some("high"));
        let stack =
            AnnType { ty: TypeExpr::Stack(Box::new(elem), 4), label: None, span: Span::dummy() };
        let t = defs.resolve(&stack, &lat, &mut pool).unwrap();
        let Ty::Stack(e, 4) = pool.kind(t.ty) else { panic!("{t:?}") };
        assert_eq!(e.label, lat.top());
        assert_eq!(t.label, lat.bottom());
    }

    #[test]
    fn define_rejects_duplicates() {
        let lat = Lattice::two_point();
        let mut syms = Interner::new();
        let mut defs = TypeDefs::new();
        let t = syms.intern("t");
        assert!(defs.define(t, "t", SecTy::bottom(TyId::BOOL, &lat)));
        assert!(!defs.define(t, "t", SecTy::bottom(TyId::INT, &lat)));
        assert_eq!(defs.lookup(t).unwrap().ty, TyId::BOOL);
        assert_eq!(defs.lookup_name("t").unwrap().ty, TyId::BOOL);
    }

    #[test]
    fn match_kinds() {
        let mut syms = Interner::new();
        let mut defs = TypeDefs::new();
        let exact = syms.intern("exact");
        assert!(!defs.is_match_kind(exact));
        defs.add_match_kind(exact, "exact");
        defs.add_match_kind(exact, "exact");
        assert!(defs.is_match_kind(exact));
        assert!(defs.is_match_kind_name("exact"));
        assert!(!defs.is_match_kind_name("lpm"));
    }

    #[test]
    fn label_table_resolves_every_element() {
        let lat = Lattice::diamond();
        let mut syms = Interner::new();
        let labels = LabelTable::new(&lat, &mut syms);
        for l in lat.labels() {
            assert_eq!(labels.resolve(lat.name(l), &syms), Some(l));
        }
        assert_eq!(labels.resolve("nosuch", &syms), None);
    }

    #[test]
    fn scoped_env_shadowing() {
        let lat = Lattice::two_point();
        let mut syms = Interner::new();
        let mut env = ScopedEnv::new();
        let x = syms.intern("x");
        let y = syms.intern("y");
        let low = VarInfo { ty: SecTy::bottom(TyId::BOOL, &lat), writable: true };
        let high = VarInfo { ty: SecTy::new(TyId::BOOL, lat.top()), writable: false };
        assert!(env.declare(x, low));
        assert!(!env.declare(x, high), "same-scope redeclaration rejected");
        env.scoped(|env| {
            assert!(env.declare(x, high), "shadowing in inner scope allowed");
            assert_eq!(env.lookup(x).unwrap().ty.label, lat.top());
        });
        assert_eq!(env.lookup(x).unwrap().ty.label, lat.bottom());
        assert!(env.lookup(y).is_none());
    }

    #[test]
    fn pop_scope_only_drops_that_scopes_bindings() {
        let lat = Lattice::two_point();
        let mut syms = Interner::new();
        let mut env = ScopedEnv::new();
        let a = syms.intern("a");
        let b = syms.intern("b");
        let info = VarInfo { ty: SecTy::bottom(TyId::BOOL, &lat), writable: true };
        env.declare(a, info);
        env.push_scope();
        env.declare(b, info);
        env.push_scope();
        env.declare(a, VarInfo { ty: SecTy::new(TyId::BOOL, lat.top()), writable: false });
        assert!(!env.lookup(a).unwrap().writable);
        env.pop_scope();
        assert!(env.lookup(a).unwrap().writable, "outer binding restored");
        assert!(env.lookup(b).is_some());
        env.pop_scope();
        assert!(env.lookup(b).is_none());
    }
}
