//! The binary-operation typing oracle `T(Δ; ⊕; ρ₁; ρ₂) = ρ₃` (T-BinOp).
//!
//! The paper leaves the meaning of binary operations to an oracle; we
//! implement the P4₁₆ operator set the case studies need, including P4's
//! implicit coercion of arbitrary-precision `int` literals to `bit<n>`
//! operands.

use p4bid_ast::sectype::Ty;
use p4bid_ast::surface::{BinOp, UnOp};

/// Result type of `ρ₁ ⊕ ρ₂`, or `None` if the operands are unsupported.
///
/// Rules (mirroring P4₁₆ §8):
///
/// * arithmetic / bitwise ops: `bit<n> ⊕ bit<n> → bit<n>`, with `int`
///   coercing to the other operand's width; `int ⊕ int → int`;
/// * shifts: left operand sets the result type; the right operand may be
///   any numeric type;
/// * comparisons: numeric or boolean (for `==`/`!=`) operands → `bool`;
/// * `&&`/`||`: `bool × bool → bool`.
#[must_use]
pub fn binop_result(op: BinOp, lhs: &Ty, rhs: &Ty) -> Option<Ty> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | BitAnd | BitOr | BitXor => numeric_join(lhs, rhs),
        Shl | Shr => match (lhs, rhs) {
            (Ty::Bit(n), Ty::Bit(_)) | (Ty::Bit(n), Ty::Int) => Some(Ty::Bit(*n)),
            (Ty::Int, Ty::Int) | (Ty::Int, Ty::Bit(_)) => Some(Ty::Int),
            _ => None,
        },
        Eq | Ne => {
            if numeric_join(lhs, rhs).is_some() || (lhs == &Ty::Bool && rhs == &Ty::Bool) {
                Some(Ty::Bool)
            } else {
                None
            }
        }
        Lt | Le | Gt | Ge => numeric_join(lhs, rhs).map(|_| Ty::Bool),
        And | Or => {
            if lhs == &Ty::Bool && rhs == &Ty::Bool {
                Some(Ty::Bool)
            } else {
                None
            }
        }
    }
}

/// Result type of a unary operation.
#[must_use]
pub fn unop_result(op: UnOp, operand: &Ty) -> Option<Ty> {
    match op {
        UnOp::Not => (operand == &Ty::Bool).then_some(Ty::Bool),
        UnOp::Neg => match operand {
            Ty::Bit(n) => Some(Ty::Bit(*n)),
            Ty::Int => Some(Ty::Int),
            _ => None,
        },
        UnOp::BitNot => match operand {
            Ty::Bit(n) => Some(Ty::Bit(*n)),
            _ => None,
        },
    }
}

/// Common numeric type of two operands, if any: equal-width bit-vectors
/// stay put, `int` adapts to the other side's width.
fn numeric_join(lhs: &Ty, rhs: &Ty) -> Option<Ty> {
    match (lhs, rhs) {
        (Ty::Bit(n), Ty::Bit(m)) if n == m => Some(Ty::Bit(*n)),
        (Ty::Bit(n), Ty::Int) | (Ty::Int, Ty::Bit(n)) => Some(Ty::Bit(*n)),
        (Ty::Int, Ty::Int) => Some(Ty::Int),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(binop_result(BinOp::Add, &Ty::Bit(8), &Ty::Bit(8)), Some(Ty::Bit(8)));
        assert_eq!(binop_result(BinOp::Add, &Ty::Bit(8), &Ty::Int), Some(Ty::Bit(8)));
        assert_eq!(binop_result(BinOp::Mul, &Ty::Int, &Ty::Int), Some(Ty::Int));
        assert_eq!(binop_result(BinOp::Add, &Ty::Bit(8), &Ty::Bit(16)), None);
        assert_eq!(binop_result(BinOp::Add, &Ty::Bool, &Ty::Bool), None);
    }

    #[test]
    fn shifts_keep_left_width() {
        assert_eq!(binop_result(BinOp::Shl, &Ty::Bit(32), &Ty::Bit(8)), Some(Ty::Bit(32)));
        assert_eq!(binop_result(BinOp::Shr, &Ty::Bit(32), &Ty::Int), Some(Ty::Bit(32)));
        assert_eq!(binop_result(BinOp::Shr, &Ty::Int, &Ty::Int), Some(Ty::Int));
        assert_eq!(binop_result(BinOp::Shl, &Ty::Bool, &Ty::Int), None);
    }

    #[test]
    fn comparisons() {
        assert_eq!(binop_result(BinOp::Eq, &Ty::Bit(8), &Ty::Bit(8)), Some(Ty::Bool));
        assert_eq!(binop_result(BinOp::Eq, &Ty::Bool, &Ty::Bool), Some(Ty::Bool));
        assert_eq!(binop_result(BinOp::Lt, &Ty::Bit(8), &Ty::Int), Some(Ty::Bool));
        assert_eq!(binop_result(BinOp::Lt, &Ty::Bool, &Ty::Bool), None);
        assert_eq!(binop_result(BinOp::Eq, &Ty::Bit(8), &Ty::Bit(9)), None);
    }

    #[test]
    fn logical() {
        assert_eq!(binop_result(BinOp::And, &Ty::Bool, &Ty::Bool), Some(Ty::Bool));
        assert_eq!(binop_result(BinOp::Or, &Ty::Bit(1), &Ty::Bool), None);
    }

    #[test]
    fn unary() {
        assert_eq!(unop_result(UnOp::Not, &Ty::Bool), Some(Ty::Bool));
        assert_eq!(unop_result(UnOp::Not, &Ty::Bit(1)), None);
        assert_eq!(unop_result(UnOp::Neg, &Ty::Bit(8)), Some(Ty::Bit(8)));
        assert_eq!(unop_result(UnOp::Neg, &Ty::Int), Some(Ty::Int));
        assert_eq!(unop_result(UnOp::BitNot, &Ty::Bit(8)), Some(Ty::Bit(8)));
        assert_eq!(unop_result(UnOp::BitNot, &Ty::Int), None);
    }
}
