//! The binary-operation typing oracle `T(Δ; ⊕; ρ₁; ρ₂) = ρ₃` (T-BinOp).
//!
//! The paper leaves the meaning of binary operations to an oracle; we
//! implement the P4₁₆ operator set the case studies need, including P4's
//! implicit coercion of arbitrary-precision `int` literals to `bit<n>`
//! operands.
//!
//! The oracle works directly on pooled [`TyId`]s: every result is either
//! one of the operand ids or a pre-interned primitive, so no interning (and
//! no mutation) is needed on the hot path.

use p4bid_ast::pool::TyPool;
use p4bid_ast::sectype::{Ty, TyId};
use p4bid_ast::surface::{BinOp, UnOp};

/// Result type of `ρ₁ ⊕ ρ₂`, or `None` if the operands are unsupported.
///
/// Rules (mirroring P4₁₆ §8):
///
/// * arithmetic / bitwise ops: `bit<n> ⊕ bit<n> → bit<n>`, with `int`
///   coercing to the other operand's width; `int ⊕ int → int`;
/// * shifts: left operand sets the result type; the right operand may be
///   any numeric type;
/// * comparisons: numeric or boolean (for `==`/`!=`) operands → `bool`;
/// * `&&`/`||`: `bool × bool → bool`.
#[must_use]
pub fn binop_result(pool: &TyPool, op: BinOp, lhs: TyId, rhs: TyId) -> Option<TyId> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | BitAnd | BitOr | BitXor => numeric_join(pool, lhs, rhs),
        Shl | Shr => match (pool.kind(lhs), pool.kind(rhs)) {
            (Ty::Bit(_), Ty::Bit(_)) | (Ty::Bit(_), Ty::Int) => Some(lhs),
            (Ty::Int, Ty::Int) | (Ty::Int, Ty::Bit(_)) => Some(TyId::INT),
            _ => None,
        },
        Eq | Ne => {
            if numeric_join(pool, lhs, rhs).is_some() || (lhs == TyId::BOOL && rhs == TyId::BOOL) {
                Some(TyId::BOOL)
            } else {
                None
            }
        }
        Lt | Le | Gt | Ge => numeric_join(pool, lhs, rhs).map(|_| TyId::BOOL),
        And | Or => {
            if lhs == TyId::BOOL && rhs == TyId::BOOL {
                Some(TyId::BOOL)
            } else {
                None
            }
        }
    }
}

/// Result type of a unary operation.
#[must_use]
pub fn unop_result(pool: &TyPool, op: UnOp, operand: TyId) -> Option<TyId> {
    match op {
        UnOp::Not => (operand == TyId::BOOL).then_some(TyId::BOOL),
        UnOp::Neg => match pool.kind(operand) {
            Ty::Bit(_) | Ty::Int => Some(operand),
            _ => None,
        },
        UnOp::BitNot => match pool.kind(operand) {
            Ty::Bit(_) => Some(operand),
            _ => None,
        },
    }
}

/// Common numeric type of two operands, if any: equal-width bit-vectors
/// stay put (`lhs == rhs` is the hash-consed fast path), `int` adapts to
/// the other side's width.
fn numeric_join(pool: &TyPool, lhs: TyId, rhs: TyId) -> Option<TyId> {
    if lhs == rhs {
        return match pool.kind(lhs) {
            Ty::Bit(_) | Ty::Int => Some(lhs),
            _ => None,
        };
    }
    match (pool.kind(lhs), pool.kind(rhs)) {
        (Ty::Bit(_), Ty::Int) => Some(lhs),
        (Ty::Int, Ty::Bit(_)) => Some(rhs),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> TyPool {
        TyPool::new()
    }

    #[test]
    fn arithmetic() {
        let mut p = pool();
        let (b8, b16) = (p.bit(8), p.bit(16));
        assert_eq!(binop_result(&p, BinOp::Add, b8, b8), Some(b8));
        assert_eq!(binop_result(&p, BinOp::Add, b8, TyId::INT), Some(b8));
        assert_eq!(binop_result(&p, BinOp::Mul, TyId::INT, TyId::INT), Some(TyId::INT));
        assert_eq!(binop_result(&p, BinOp::Add, b8, b16), None);
        assert_eq!(binop_result(&p, BinOp::Add, TyId::BOOL, TyId::BOOL), None);
    }

    #[test]
    fn shifts_keep_left_width() {
        let mut p = pool();
        let (b8, b32) = (p.bit(8), p.bit(32));
        assert_eq!(binop_result(&p, BinOp::Shl, b32, b8), Some(b32));
        assert_eq!(binop_result(&p, BinOp::Shr, b32, TyId::INT), Some(b32));
        assert_eq!(binop_result(&p, BinOp::Shr, TyId::INT, TyId::INT), Some(TyId::INT));
        assert_eq!(binop_result(&p, BinOp::Shl, TyId::BOOL, TyId::INT), None);
    }

    #[test]
    fn comparisons() {
        let mut p = pool();
        let (b8, b9) = (p.bit(8), p.bit(9));
        assert_eq!(binop_result(&p, BinOp::Eq, b8, b8), Some(TyId::BOOL));
        assert_eq!(binop_result(&p, BinOp::Eq, TyId::BOOL, TyId::BOOL), Some(TyId::BOOL));
        assert_eq!(binop_result(&p, BinOp::Lt, b8, TyId::INT), Some(TyId::BOOL));
        assert_eq!(binop_result(&p, BinOp::Lt, TyId::BOOL, TyId::BOOL), None);
        assert_eq!(binop_result(&p, BinOp::Eq, b8, b9), None);
    }

    #[test]
    fn logical() {
        let mut p = pool();
        let b1 = p.bit(1);
        assert_eq!(binop_result(&p, BinOp::And, TyId::BOOL, TyId::BOOL), Some(TyId::BOOL));
        assert_eq!(binop_result(&p, BinOp::Or, b1, TyId::BOOL), None);
    }

    #[test]
    fn unary() {
        let mut p = pool();
        let b8 = p.bit(8);
        let b1 = p.bit(1);
        assert_eq!(unop_result(&p, UnOp::Not, TyId::BOOL), Some(TyId::BOOL));
        assert_eq!(unop_result(&p, UnOp::Not, b1), None);
        assert_eq!(unop_result(&p, UnOp::Neg, b8), Some(b8));
        assert_eq!(unop_result(&p, UnOp::Neg, TyId::INT), Some(TyId::INT));
        assert_eq!(unop_result(&p, UnOp::BitNot, b8), Some(b8));
        assert_eq!(unop_result(&p, UnOp::BitNot, TyId::INT), None);
    }
}
