//! The Core P4 typechecker, in three modes:
//!
//! * **base** — the plain Core P4 typing judgements of §3.3 (the paper's
//!   "unannotated, p4c" baseline in Table 1): security annotations are
//!   stripped and no flow checks run;
//! * **ifc** — the P4BID security type system of §4.2 (Figures 5, 6, 7),
//!   which additionally enforces the lattice constraints;
//! * **permissive** — labels are resolved but flows are not enforced, so
//!   the non-interference harness can *run* buggy programs and exhibit
//!   their leaks.
//!
//! The declarative rules are implemented algorithmically:
//!
//! * expression checking *synthesizes* the principal type
//!   `⟨τ, χ⟩ goes d` (smallest label, most permissive direction);
//!   T-SubType-In is applied at every `in`-position use site;
//! * T-Subtype-PC is realized by threading the exact current context label
//!   `pc` downwards (`if` joins the guard label into it);
//! * `pc_fn` (T-FuncDecl) is inferred by checking the body once in
//!   *bound-collection* mode: every write/call/return contributes an upper
//!   bound, and `pc_fn` is the meet of the bounds (see DESIGN.md §4 for why
//!   the admissible set is a principal down-set);
//! * `pc_tbl` (T-TblDecl) is `⊓ⱼ pc_fnⱼ` over the table's actions, valid
//!   iff every key label is below it.
//!
//! All resolved types are hash-consed in the session's
//! [`TyPool`]: `SecTy` values are `Copy` id+label
//! pairs, the τ-equality side conditions are id comparisons (with a slow
//! path only for the `int` ↔ `bit<n>` coercion), and record/header field
//! lookups are symbol-keyed.

use crate::diag::{DiagCode, Diagnostic};
use crate::env::{LabelTable, ScopedEnv, TypeDefs, VarInfo};
use crate::lineage::{FlowEdge, FlowNode, FlowOp, LineageEdge, LineageGraph, TRACE_CAP};
use crate::oracle;
use p4bid_ast::intern::{Interner, Symbol};
use p4bid_ast::pool::{SharedTyCtx, TyCtx, TyPool};
use p4bid_ast::pretty::expr_to_string;
use p4bid_ast::sectype::{FieldList, FnParam, FnTy, SecTy, Ty, TyId};
use p4bid_ast::span::Span;
use p4bid_ast::surface::*;
use p4bid_lattice::{Label, Lattice};
use std::sync::Arc;

/// Which judgement set to enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Plain Core P4 typing (the p4c baseline): annotations ignored.
    Base,
    /// The P4BID information-flow control type system.
    #[default]
    Ifc,
    /// Labels are resolved (so downstream tools like the NI harness know
    /// them) but no flow constraint is enforced. Used to *run* the
    /// seeded-buggy case-study programs and demonstrate their leaks.
    Permissive,
}

/// Options controlling a check run.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Baseline or IFC mode.
    pub mode: Mode,
    /// Lattice override. When `None`, a `lattice { … }` declaration in the
    /// program is used, falling back to [`Lattice::two_point`].
    pub lattice: Option<Lattice>,
    /// Ambient security context for controls without a `@pc(...)`
    /// annotation (label name, resolved against the active lattice).
    /// Defaults to `⊥`.
    pub pc: Option<String>,
    /// Whether the checker records flow edges into a per-program
    /// [`LineageGraph`] and attaches source→sink explanation paths to
    /// flow diagnostics (default on; recording is skipped in base mode,
    /// which has no labels to explain).
    pub record_lineage: bool,
    /// Whether `declassify(e)` is permitted (default off:
    /// declassification is an escape hatch a policy must grant
    /// explicitly, e.g. via a `p4bid.policy` rule).
    pub allow_declassify: bool,
    /// Largest program source, in bytes, the checker will accept. Larger
    /// inputs are rejected with a single [`DiagCode::Oversized`]
    /// diagnostic before the lexer ever sees them. `0` (the default)
    /// disables the guard.
    pub max_source_bytes: u64,
    /// Per-program wall-clock budget, in milliseconds. When it expires
    /// mid-check the checker stops early with a single
    /// [`DiagCode::Timeout`] diagnostic instead of hanging its worker.
    /// `0` (the default) disables the guard.
    pub check_timeout_ms: u64,
    /// Whether the ambient `pc` is a *floor*: a control whose `@pc(L)`
    /// annotation sits below the ambient context is rejected with
    /// [`DiagCode::PcBelowAmbient`] instead of silently lowering its
    /// write bound. Off by default (a standalone check trusts the
    /// annotation); the topology fixpoint driver turns it on, because
    /// there the ambient pc models real upstream influence that a
    /// single switch must not understate.
    pub pc_floor: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            mode: Mode::default(),
            lattice: None,
            pc: None,
            record_lineage: true,
            allow_declassify: false,
            max_source_bytes: 0,
            check_timeout_ms: 0,
            pc_floor: false,
        }
    }
}

impl CheckOptions {
    /// IFC mode with defaults.
    #[must_use]
    pub fn ifc() -> Self {
        CheckOptions { mode: Mode::Ifc, ..Default::default() }
    }

    /// Baseline mode with defaults.
    #[must_use]
    pub fn base() -> Self {
        CheckOptions { mode: Mode::Base, ..Default::default() }
    }

    /// Permissive mode (labels resolved, flows not enforced) with
    /// defaults.
    #[must_use]
    pub fn permissive() -> Self {
        CheckOptions { mode: Mode::Permissive, ..Default::default() }
    }

    /// Sets the ambient `pc` label by name, builder-style.
    #[must_use]
    pub fn with_pc(mut self, pc: impl Into<String>) -> Self {
        self.pc = Some(pc.into());
        self
    }

    /// Sets the lattice, builder-style.
    #[must_use]
    pub fn with_lattice(mut self, lattice: Lattice) -> Self {
        self.lattice = Some(lattice);
        self
    }

    /// Turns flow-lineage recording on or off, builder-style.
    #[must_use]
    pub fn with_lineage(mut self, record: bool) -> Self {
        self.record_lineage = record;
        self
    }

    /// Permits or forbids `declassify(e)`, builder-style.
    #[must_use]
    pub fn with_declassify(mut self, allow: bool) -> Self {
        self.allow_declassify = allow;
        self
    }

    /// Caps accepted source size in bytes (`0` = unlimited),
    /// builder-style.
    #[must_use]
    pub fn with_max_source_bytes(mut self, bytes: u64) -> Self {
        self.max_source_bytes = bytes;
        self
    }

    /// Sets the per-program wall-clock budget in milliseconds (`0` = no
    /// deadline), builder-style.
    #[must_use]
    pub fn with_check_timeout_ms(mut self, ms: u64) -> Self {
        self.check_timeout_ms = ms;
        self
    }

    /// Makes the ambient `pc` a floor that `@pc(...)` annotations may not
    /// dip below, builder-style (see [`CheckOptions::pc_floor`]).
    #[must_use]
    pub fn with_pc_floor(mut self, floor: bool) -> Self {
        self.pc_floor = floor;
        self
    }

    /// The deadline implied by [`CheckOptions::check_timeout_ms`] for a
    /// check starting now, if the guard is enabled.
    #[must_use]
    pub fn deadline_from_now(&self) -> Option<std::time::Instant> {
        (self.check_timeout_ms > 0).then(|| {
            std::time::Instant::now() + std::time::Duration::from_millis(self.check_timeout_ms)
        })
    }
}

/// A resolved control-block parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypedParam {
    /// Parameter name (the human-facing boundary form).
    pub name: String,
    /// The interned parameter name (what the interpreter binds by).
    pub sym: Symbol,
    /// Direction (`in` or `inout`; directionless defaults to `in`).
    pub direction: Direction,
    /// Resolved security type.
    pub ty: SecTy,
}

/// A checked control block, with resolved parameter types, the ambient
/// `pc` it was checked under, and the inferred signatures of its
/// declarations (the `pc_fn` write bounds of T-FuncDecl and the `pc_tbl`
/// application bounds of T-TblDecl).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypedControl {
    /// Control name.
    pub name: String,
    /// Resolved parameters.
    pub params: Vec<TypedParam>,
    /// Ambient security context.
    pub pc: Label,
    /// Inferred function/action types, in declaration order (includes
    /// globals visible to this control).
    pub functions: Vec<(String, Arc<FnTy>)>,
    /// Inferred table bounds `pc_tbl`, in declaration order.
    pub tables: Vec<(String, Label)>,
}

impl TypedControl {
    /// The inferred type of a function or action declared in (or visible
    /// to) this control.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&FnTy> {
        self.functions.iter().rev().find(|(n, _)| n == name).map(|(_, f)| &**f)
    }

    /// The inferred `pc_tbl` of a table declared in this control.
    #[must_use]
    pub fn table_pc(&self, name: &str) -> Option<Label> {
        self.tables.iter().find(|(n, _)| n == name).map(|(_, l)| *l)
    }
}

/// The checked program's items — prelude, a possibly snapshot-shared
/// prefix, and the freshly checked suffix — assembled without
/// deep-copying the shared parts. A session's prefix-snapshot resume
/// borrows the prefix AST straight from the snapshot (`Arc`), so building
/// one of these is O(suffix), not O(program); iteration order and
/// equality behave exactly like the flat [`Program`] this replaces.
#[derive(Debug, Clone)]
pub struct ProgramView {
    prelude: Arc<Program>,
    prefix: Arc<Vec<Item>>,
    prefix_len: usize,
    suffix: Vec<Item>,
}

impl ProgramView {
    pub(crate) fn new(
        prelude: Arc<Program>,
        prefix: Arc<Vec<Item>>,
        prefix_len: usize,
        suffix: Vec<Item>,
    ) -> Self {
        Self { prelude, prefix, prefix_len, suffix }
    }

    /// A view over a whole program, no shared parts.
    pub(crate) fn flat(program: Program) -> Self {
        let prefix_len = program.items.len();
        Self {
            prelude: Arc::new(Program { items: Vec::new() }),
            prefix: Arc::new(program.items),
            prefix_len,
            suffix: Vec::new(),
        }
    }

    /// All items in source order (prelude items first if a prelude was
    /// included).
    pub fn items(&self) -> impl Iterator<Item = &Item> {
        self.prelude
            .items
            .iter()
            .chain(self.prefix[..self.prefix_len].iter())
            .chain(self.suffix.iter())
    }

    /// Iterates over the control blocks in source order.
    pub fn controls(&self) -> impl Iterator<Item = &ControlDecl> {
        self.items().filter_map(|i| match i {
            Item::Control(c) => Some(c),
            _ => None,
        })
    }

    /// Number of items in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prelude.items.len() + self.prefix_len + self.suffix.len()
    }

    /// Whether the view holds no items at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes a flat [`Program`] (deep-copies the shared parts).
    #[must_use]
    pub fn to_program(&self) -> Program {
        Program { items: self.items().cloned().collect() }
    }
}

impl PartialEq for ProgramView {
    /// Item-sequence equality, independent of how the parts are split
    /// between prefix and suffix.
    fn eq(&self, other: &Self) -> bool {
        self.items().eq(other.items())
    }
}

impl Eq for ProgramView {}

/// The result of a successful check: the program, the active lattice, the
/// resolved type definitions, per-control parameter signatures, and the
/// shared interner/type-pool context all resolved ids point into. This is
/// everything the interpreter and the non-interference harness need.
#[derive(Debug, Clone)]
pub struct TypedProgram {
    /// The checked program (prelude items first if a prelude was included).
    pub program: ProgramView,
    /// The active security lattice.
    pub lattice: Lattice,
    /// The resolved type-definition context Δ.
    pub defs: TypeDefs,
    /// Checked control blocks, in source order.
    pub controls: Vec<TypedControl>,
    /// The interner + type pool every [`Symbol`] and
    /// [`TyId`] in this program resolves
    /// against. Shared with the producing session (append-only, so ids
    /// stay valid as the session checks further programs).
    pub ctx: SharedTyCtx,
    /// Every flow edge the checker walked, in check order. Empty when
    /// lineage recording is off (or in base mode, which has no labels).
    pub lineage: LineageGraph,
}

impl TypedProgram {
    /// Finds a checked control by name.
    #[must_use]
    pub fn control(&self, name: &str) -> Option<&TypedControl> {
        self.controls.iter().find(|c| c.name == name)
    }

    /// The interned symbol of `name`, if the checker ever saw it.
    #[must_use]
    pub fn sym(&self, name: &str) -> Option<Symbol> {
        self.ctx.borrow().syms.lookup(name)
    }

    /// Interns `name` in the program's context (for constructing input
    /// values whose field keys must agree with the program's types).
    #[must_use]
    pub fn intern(&self, name: &str) -> Symbol {
        self.ctx.borrow_mut().syms.intern(name)
    }

    /// The string a symbol of this program stands for.
    #[must_use]
    pub fn sym_name(&self, sym: Symbol) -> String {
        self.ctx.borrow().syms.resolve(sym).to_string()
    }
}

/// Typechecks an already-parsed program.
///
/// # Errors
///
/// Returns all diagnostics if the program is ill-typed (or, in IFC mode,
/// leaky). The diagnostic list is never empty on `Err`.
pub fn check_program(
    program: Program,
    opts: &CheckOptions,
) -> Result<TypedProgram, Vec<Diagnostic>> {
    let lattice = resolve_lattice(&program, opts)?;
    let default_pc = resolve_default_pc(&lattice, opts)?;
    let ctx = TyCtx::shared();
    let deadline = opts.deadline_from_now();
    let (controls, state, lineage) = {
        let mut c = ctx.borrow_mut();
        check_items(
            &program.items,
            &lattice,
            opts,
            default_pc,
            &mut c,
            CheckerState::empty(),
            deadline,
        )?
    };
    Ok(TypedProgram {
        lattice,
        defs: state.defs,
        controls,
        program: ProgramView::flat(program),
        ctx,
        lineage,
    })
}

/// Resolves the active lattice: the override in `opts`, else the program's
/// `lattice { … }` declaration, else the two-point default.
pub(crate) fn resolve_lattice(
    program: &Program,
    opts: &CheckOptions,
) -> Result<Lattice, Vec<Diagnostic>> {
    if let Some(l) = &opts.lattice {
        return Ok(l.clone());
    }
    match program.lattice_decl() {
        Some(decl) => lattice_from_decl(decl),
        None => Ok(Lattice::two_point()),
    }
}

/// Builds the lattice a `lattice { … }` declaration describes (shared by
/// [`resolve_lattice`] and the session's pre-parse prefix-cache probe,
/// which must resolve the lattice from the declaration alone).
pub(crate) fn lattice_from_decl(decl: &LatticeDecl) -> Result<Lattice, Vec<Diagnostic>> {
    let names = decl.element_names();
    let order: Vec<(String, String)> =
        decl.order.iter().map(|(lo, hi)| (lo.node.clone(), hi.node.clone())).collect();
    Lattice::from_order(&names, &order).map_err(|e| {
        vec![Diagnostic::new(
            DiagCode::Malformed,
            format!("invalid lattice declaration: {e}"),
            decl.span,
        )]
    })
}

/// Resolves the ambient `pc` override against the active lattice.
pub(crate) fn resolve_default_pc(
    lattice: &Lattice,
    opts: &CheckOptions,
) -> Result<Label, Vec<Diagnostic>> {
    match &opts.pc {
        None => Ok(lattice.bottom()),
        Some(name) => lattice.label(name).ok_or_else(|| {
            vec![Diagnostic::new(
                DiagCode::UnknownLabel,
                format!("ambient pc label `{name}` is not in the lattice {lattice}"),
                Span::dummy(),
            )]
        }),
    }
}

/// The carried checker context: Δ, the global Γ bindings, and the inferred
/// global function signatures. A [`CheckerSession`](crate::CheckerSession)
/// snapshots this after checking the prelude so later programs start from
/// the snapshot instead of re-checking it; because every type inside is a
/// pooled `TyId`, the snapshot clone copies ids, never type structure.
#[derive(Debug, Clone)]
pub(crate) struct CheckerState {
    pub(crate) defs: TypeDefs,
    pub(crate) env: ScopedEnv,
    pub(crate) sig_functions: Vec<(String, Arc<FnTy>)>,
}

impl CheckerState {
    pub(crate) fn empty() -> Self {
        CheckerState { defs: TypeDefs::new(), env: ScopedEnv::new(), sig_functions: Vec::new() }
    }

    /// Whether every interner/pool handle in the state lies below the
    /// given tier boundaries — the prefix-snapshot purity condition (a
    /// pure state is valid in any session over the same frozen base).
    pub(crate) fn within_tiers(&self, max_sym: usize, max_ty: usize) -> bool {
        self.defs.within_tiers(max_sym, max_ty)
            && self.env.within_tiers(max_sym, max_ty)
            && self.sig_functions.iter().all(|(_, f)| fnty_within_tiers(f, max_sym, max_ty))
    }

    /// Rebuilds the state with every handle translated through a
    /// refreeze remap, making an overlay-local state valid over the new
    /// frozen generation.
    pub(crate) fn remap(&self, r: &p4bid_ast::pool::IdRemap) -> CheckerState {
        CheckerState {
            defs: self.defs.remap(r),
            env: self.env.remap(r),
            sig_functions: self
                .sig_functions
                .iter()
                .map(|(n, f)| (n.clone(), Arc::new(r.fnty(f))))
                .collect(),
        }
    }
}

/// Whether a function type's handles all lie below the tier boundaries.
pub(crate) fn fnty_within_tiers(f: &FnTy, max_sym: usize, max_ty: usize) -> bool {
    f.params.iter().all(|p| p.name.index() < max_sym && p.ty.ty.index() < max_ty)
        && f.ret.ty.index() < max_ty
}

/// Whether a checked control's handles all lie below the tier boundaries
/// (parameter symbols/types and inferred signatures; table bounds are
/// plain labels).
pub(crate) fn control_within_tiers(c: &TypedControl, max_sym: usize, max_ty: usize) -> bool {
    c.params.iter().all(|p| p.sym.index() < max_sym && p.ty.ty.index() < max_ty)
        && c.functions.iter().all(|(_, f)| fnty_within_tiers(f, max_sym, max_ty))
}

/// Checks a run of top-level items under an initial state, returning the
/// checked controls, the final state (for prelude snapshotting), and the
/// recorded flow-lineage graph.
///
/// # Errors
///
/// Returns all diagnostics if any item is ill-typed.
pub(crate) fn check_items<'a>(
    items: &'a [Item],
    lattice: &'a Lattice,
    opts: &CheckOptions,
    default_pc: Label,
    ctx: &'a mut TyCtx,
    state: CheckerState,
    deadline: Option<std::time::Instant>,
) -> Result<(Vec<TypedControl>, CheckerState, LineageGraph), Vec<Diagnostic>> {
    check_items_run(items, lattice, opts, default_pc, ctx, state, deadline, None, false)
        .map(|out| (out.controls, out.state, out.lineage))
}

/// How a resumed run continues a prior one: the snapshot's already-checked
/// controls and its rendered flow-log prefix, both truncated to the
/// snapshot's depth.
pub(crate) struct ResumeSeed {
    pub(crate) seed: Arc<crate::prefix::SeedEdges>,
    pub(crate) edges_len: u32,
    pub(crate) controls: Arc<Vec<TypedControl>>,
    pub(crate) controls_len: u32,
}

/// One mid-run snapshot candidate: the carried state after `items_done`
/// items, plus how much of the run's output belongs to that prefix.
pub(crate) struct RunCheckpoint {
    pub(crate) items_done: u32,
    pub(crate) state: CheckerState,
    pub(crate) controls_len: u32,
    pub(crate) edges_len: u32,
}

/// A successful [`check_items_run`]: combined (seed + new) outputs, plus
/// the checkpoint candidates and rendered flow log when collecting.
pub(crate) struct RunOutput {
    pub(crate) controls: Vec<TypedControl>,
    pub(crate) state: CheckerState,
    pub(crate) lineage: LineageGraph,
    pub(crate) checkpoints: Vec<RunCheckpoint>,
    pub(crate) seed_edges: Option<crate::prefix::SeedEdges>,
}

/// The full item-run driver behind [`check_items`]. With `resume`, the
/// run continues from a prefix snapshot: the seed's controls are adopted
/// and its rendered edges prepend the flow log, so traces and verdicts
/// come out byte-identical to a cold check of the whole program. With
/// `collect`, per-item checkpoints are gathered (only while no diagnostic
/// has fired — failed runs never produce snapshots) and the run's flow
/// log is rendered to owned edges for future seeding.
///
/// # Errors
///
/// Returns all diagnostics if any item is ill-typed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_items_run<'a>(
    items: &'a [Item],
    lattice: &'a Lattice,
    opts: &CheckOptions,
    default_pc: Label,
    ctx: &'a mut TyCtx,
    state: CheckerState,
    deadline: Option<std::time::Instant>,
    resume: Option<ResumeSeed>,
    collect: bool,
) -> Result<RunOutput, Vec<Diagnostic>> {
    debug_assert!(resume.is_none() || !collect, "resumed runs never collect checkpoints");
    let TyCtx { syms, types } = ctx;
    let labels = LabelTable::new(lattice, syms);
    let mut checker = Checker {
        lat: lattice,
        labels,
        syms,
        pool: types,
        resolve_labels: opts.mode != Mode::Base,
        enforce: opts.mode == Mode::Ifc,
        record: opts.record_lineage && opts.mode != Mode::Base,
        allow_declassify: opts.allow_declassify,
        pc_floor: opts.pc_floor,
        defs: state.defs,
        env: state.env,
        diags: Vec::new(),
        log: FlowLog {
            seed: resume.as_ref().map(|r| (Arc::clone(&r.seed), r.edges_len)),
            ..FlowLog::default()
        },
        guards: Vec::new(),
        guard_keys: Vec::new(),
        sig_functions: state.sig_functions,
        sig_tables: Vec::new(),
        pc_bounds: None,
        return_ty: None,
        deadline,
        timed_out: false,
    };

    let mut controls = match &resume {
        Some(r) => r.controls[..r.controls_len as usize].to_vec(),
        None => Vec::new(),
    };
    let mut checkpoints = Vec::new();
    for (items_done, item) in (1_u32..).zip(items) {
        if checker.deadline_expired() {
            break;
        }
        match item {
            Item::Lattice(_) => {}
            Item::Type(t) => checker.type_decl(t),
            Item::Function(f) => checker.function_decl(f),
            Item::Action(a) => checker.action_decl(a),
            Item::Control(c) => {
                if let Some(tc) = checker.control_decl(c, default_pc) {
                    controls.push(tc);
                }
            }
        }
        if collect && checker.diags.is_empty() {
            checkpoints.push(RunCheckpoint {
                items_done,
                state: CheckerState {
                    defs: checker.defs.clone(),
                    env: checker.env.clone(),
                    sig_functions: checker.sig_functions.clone(),
                },
                controls_len: controls.len() as u32,
                edges_len: checker.log.edges.len() as u32,
            });
        }
    }

    if checker.diags.is_empty() {
        let seed_edges = collect.then(|| checker.rendered_seed());
        let state = CheckerState {
            defs: checker.defs,
            env: checker.env,
            sig_functions: checker.sig_functions,
        };
        Ok(RunOutput {
            controls,
            state,
            lineage: checker.log.into_graph(),
            checkpoints,
            seed_edges,
        })
    } else {
        Err(checker.diags)
    }
}

/// One active `if` guard (innermost last), for blaming implicit flows:
/// when a `pc ⊑ bound` side condition fails, the innermost guard whose
/// label breaks the bound is the source of the leak.
struct GuardCtx<'a> {
    /// The guard expression (rendered only if the guard is blamed).
    cond: &'a Expr,
    /// The guard's label (already joined into the branch `pc`).
    label: Label,
    /// Range of the guard's trace keys in [`Checker::guard_keys`] (the
    /// arena is stack-disciplined: popped guards truncate it back).
    keys_start: u32,
    keys_len: u32,
}

// ----------------------------------------------------------------------
// Structural flow keys
//
// Lineage traces follow *handles*: the l-value-shaped subexpressions of
// an edge's source, matched against the sinks of earlier edges. Matching
// is by span-insensitive structural hash, never by rendered text — key
// extraction runs on the checking hot path for every program (including
// accepted ones), so it must not allocate. A 64-bit collision can at
// worst mis-pick one hop of an explanation path, never change a verdict.
// ----------------------------------------------------------------------

use p4bid_ast::fnv::{byte as fnv_byte, bytes as fnv_bytes, OFFSET as FNV_OFFSET};

/// Folds an expression's structure (not its spans) into `h`: two
/// occurrences of the same written expression hash equal.
fn expr_key_into(e: &Expr, h: u64) -> u64 {
    match &e.kind {
        ExprKind::Bool(b) => fnv_byte(fnv_byte(h, 1), u8::from(*b)),
        ExprKind::Int { value, width } => {
            let h = fnv_bytes(fnv_byte(h, 2), &value.to_le_bytes());
            fnv_bytes(h, &width.unwrap_or(u16::MAX).to_le_bytes())
        }
        ExprKind::Var(name) => fnv_bytes(fnv_byte(h, 3), name.as_bytes()),
        ExprKind::Index(recv, index) => expr_key_into(index, expr_key_into(recv, fnv_byte(h, 4))),
        ExprKind::Binary(op, lhs, rhs) => {
            expr_key_into(rhs, expr_key_into(lhs, fnv_byte(fnv_byte(h, 5), *op as u8)))
        }
        ExprKind::Unary(op, inner) => expr_key_into(inner, fnv_byte(fnv_byte(h, 6), *op as u8)),
        ExprKind::Record(fields) => {
            let mut h = fnv_byte(h, 7);
            for (name, value) in fields {
                h = expr_key_into(value, fnv_bytes(h, name.node.as_bytes()));
            }
            h
        }
        ExprKind::Field(recv, field) => {
            fnv_bytes(expr_key_into(recv, fnv_byte(h, 8)), field.node.as_bytes())
        }
        ExprKind::Call(callee, args) => {
            let mut h = expr_key_into(callee, fnv_byte(h, 9));
            for arg in args {
                h = expr_key_into(arg, h);
            }
            h
        }
    }
}

/// Structural key of one expression.
fn expr_key(e: &Expr) -> u64 {
    expr_key_into(e, FNV_OFFSET)
}

/// The key of a bare declared name (variable, table, action, parameter):
/// identical to the key of a `Var` expression naming it, so name sinks
/// match later reads of the binding.
fn name_key(name: &str) -> u64 {
    fnv_bytes(fnv_byte(FNV_OFFSET, 3), name.as_bytes())
}

/// Collects the structural keys of the maximal l-value-shaped
/// subexpressions of `e` — the handles lineage traces follow backwards.
fn lvalue_key_hashes(e: &Expr, out: &mut Vec<u64>) {
    if e.is_lvalue_shaped() {
        out.push(expr_key(e));
        return;
    }
    match &e.kind {
        ExprKind::Binary(_, lhs, rhs) => {
            lvalue_key_hashes(lhs, out);
            lvalue_key_hashes(rhs, out);
        }
        ExprKind::Unary(_, inner) => lvalue_key_hashes(inner, out),
        ExprKind::Record(fields) => {
            for (_, value) in fields {
                lvalue_key_hashes(value, out);
            }
        }
        ExprKind::Call(_, args) => {
            for arg in args {
                lvalue_key_hashes(arg, out);
            }
        }
        ExprKind::Field(recv, _) => lvalue_key_hashes(recv, out),
        ExprKind::Index(recv, index) => {
            lvalue_key_hashes(recv, out);
            lvalue_key_hashes(index, out);
        }
        _ => {}
    }
}

/// A lineage sink before rendering: a borrowed expression or name from
/// the program being checked. Rendering to source text happens only on
/// failure paths ([`Checker::render_sink`]).
#[derive(Clone, Copy)]
enum SinkRef<'a> {
    /// An l-value, callee, or indexing expression.
    Expr(&'a Expr),
    /// A declared name: variable binding, table, or action.
    Name(&'a str),
    /// An interned parameter name.
    Param(Symbol),
    /// The function's return slot.
    Return,
    /// The builtin `declassify(inner)` call.
    Declassify(&'a Expr),
}

/// One flow edge awaiting its verdict: all-`Copy` borrows into the
/// program being checked. Prepared by [`Checker::edge`], rendered by
/// [`Checker::flow_error`] if the constraint fails, recorded compactly
/// by [`Checker::commit`] either way.
#[derive(Clone, Copy)]
struct PendingEdge<'a> {
    op: FlowOp,
    src: &'a Expr,
    src_label: Label,
    sink: SinkRef<'a>,
    sink_label: Label,
    sink_span: Span,
}

/// The checker's in-flight flow log: compact edges plus the structural
/// keys backward traces match on. Recording is allocation-free per edge
/// (the vectors grow amortized); the log converts into the owned public
/// [`LineageGraph`] when checking finishes.
#[derive(Default)]
struct FlowLog<'a> {
    /// Replayed prefix edges from a resumed snapshot (rendered, owned)
    /// with the count that belongs to this run's prefix — the shared
    /// `Arc` may cover a deeper run. Seed edges occupy combined indices
    /// `0..seed_len()`, live edges follow.
    seed: Option<(Arc<crate::prefix::SeedEdges>, u32)>,
    edges: Vec<PendingEdge<'a>>,
    /// Per-edge structural key of the sink (what later traces match).
    sink_keys: Vec<u64>,
    /// Flat arena of per-edge source keys (the l-value-shaped
    /// subexpressions of the source).
    src_keys: Vec<u64>,
    /// Per-edge `(start, len)` range into `src_keys`.
    src_ranges: Vec<(u32, u32)>,
}

impl<'a> FlowLog<'a> {
    fn record(&mut self, e: PendingEdge<'a>, syms: &Interner) {
        let sink_key = match e.sink {
            SinkRef::Expr(s) => expr_key(s),
            SinkRef::Name(n) => name_key(n),
            SinkRef::Param(sym) => name_key(syms.resolve(sym)),
            SinkRef::Return => name_key("return"),
            // Never the target of a later read: tagged off the expression
            // key space.
            SinkRef::Declassify(_) => fnv_byte(FNV_OFFSET, 0xff),
        };
        self.sink_keys.push(sink_key);
        let start = self.src_keys.len();
        lvalue_key_hashes(e.src, &mut self.src_keys);
        let len = self.src_keys.len() - start;
        self.src_ranges.push((start as u32, len as u32));
        self.edges.push(e);
    }

    fn src_keys_of(&self, ix: usize) -> &[u64] {
        let (start, len) = self.src_ranges[ix];
        &self.src_keys[start as usize..(start as usize + len as usize)]
    }

    /// Number of replayed seed edges (combined indices below this are
    /// seed edges, at or above are live edges).
    fn seed_len(&self) -> usize {
        self.seed.as_ref().map_or(0, |(_, n)| *n as usize)
    }

    /// Total edge count across the seed prefix and the live run.
    fn total_len(&self) -> usize {
        self.seed_len() + self.edges.len()
    }

    /// The sink key of the edge at a combined index.
    fn sink_key_at(&self, ix: usize) -> u64 {
        let sl = self.seed_len();
        if ix < sl {
            self.seed.as_ref().expect("ix < seed_len implies a seed").0.sink_keys[ix]
        } else {
            self.sink_keys[ix - sl]
        }
    }

    /// The source keys of the edge at a combined index.
    fn src_keys_at(&self, ix: usize) -> &[u64] {
        let sl = self.seed_len();
        if ix < sl {
            self.seed.as_ref().expect("ix < seed_len implies a seed").0.src_keys_of(ix)
        } else {
            self.src_keys_of(ix - sl)
        }
    }

    /// Walks backwards from a violating expression (described by its
    /// l-value `keys`) to its origins: repeatedly finds the most recent
    /// earlier edge whose sink matches one of the current keys, prepends
    /// it, and continues from *that* edge's source keys. Returns
    /// *combined* edge indices oldest-first — the walk crosses seamlessly
    /// from live edges into the replayed seed prefix, so resumed runs
    /// trace exactly like cold ones (capped at [`TRACE_CAP`] hops; the
    /// strictly decreasing cursor guarantees termination).
    fn trace_indices(&self, keys: &[u64]) -> Vec<usize> {
        let mut path = std::collections::VecDeque::new();
        let mut keys: Vec<u64> = keys.to_vec();
        let mut cursor = self.total_len();
        while path.len() < TRACE_CAP {
            let found = (0..cursor).rev().find(|&i| keys.contains(&self.sink_key_at(i)));
            let Some(ix) = found else { break };
            path.push_front(ix);
            keys.clear();
            keys.extend_from_slice(self.src_keys_at(ix));
            cursor = ix;
        }
        path.into()
    }

    fn into_graph(self) -> LineageGraph {
        let sl = self.seed_len();
        let FlowLog { seed, edges: live, .. } = self;
        let mut edges: Vec<LineageEdge> = Vec::with_capacity(sl + live.len());
        if let Some((seed, _)) = &seed {
            edges.extend(seed.edges[..sl].iter().map(crate::prefix::OwnedEdge::lineage_edge));
        }
        edges.extend(live.into_iter().map(|e| LineageEdge {
            op: e.op,
            src_span: e.src.span,
            src_label: e.src_label,
            sink_span: e.sink_span,
            sink_label: e.sink_label,
        }));
        edges.into()
    }
}

struct Checker<'a> {
    lat: &'a Lattice,
    /// Interned lattice element names (`Vec`-indexed by symbol).
    labels: LabelTable,
    /// The session's interner; names are interned at declaration sites and
    /// probed (never grown) at use sites.
    syms: &'a mut Interner,
    /// The session's hash-consing type pool; every resolved type is
    /// constructed through it.
    pool: &'a mut TyPool,
    /// Whether annotations are resolved against the lattice (Ifc and
    /// Permissive modes) or stripped (Base).
    resolve_labels: bool,
    /// Whether flow constraints are enforced (Ifc mode only).
    enforce: bool,
    /// Whether flow edges are recorded into [`Checker::lineage`]
    /// (`CheckOptions::record_lineage`, and never in base mode).
    record: bool,
    /// Whether `declassify(e)` is permitted.
    allow_declassify: bool,
    /// Whether the ambient `pc` is a floor `@pc(...)` annotations may not
    /// dip below ([`CheckOptions::pc_floor`]).
    pc_floor: bool,
    defs: TypeDefs,
    env: ScopedEnv,
    diags: Vec<Diagnostic>,
    /// Every flow edge walked so far, in check order (compact; rendered
    /// only when a failure needs an explanation path).
    log: FlowLog<'a>,
    /// The stack of active `if` guards (innermost last); empty unless
    /// lineage recording is on.
    guards: Vec<GuardCtx<'a>>,
    /// Stack-disciplined arena of the active guards' trace keys.
    guard_keys: Vec<u64>,
    /// Inferred signatures, recorded as declarations are checked.
    sig_functions: Vec<(String, Arc<FnTy>)>,
    sig_tables: Vec<(String, Label)>,
    /// `Some(bounds)` while checking a function body whose `pc_fn` is being
    /// inferred; every pc constraint records its bound here.
    pc_bounds: Option<Vec<Label>>,
    /// `Γ(return)` inside a function body.
    return_ty: Option<SecTy>,
    /// Wall-clock budget for this check run (`--check-timeout-ms`);
    /// polled per item and per statement. `None` when the guard is off.
    deadline: Option<std::time::Instant>,
    /// Set once the deadline expires: a single `E-TIMEOUT` diagnostic is
    /// emitted and the rest of the run is skipped.
    timed_out: bool,
}

impl<'a> Checker<'a> {
    fn error(&mut self, code: DiagCode, message: impl Into<String>, span: Span) {
        self.diags.push(Diagnostic::new(code, message, span));
    }

    /// Polls the wall-clock budget. On first expiry, emits the one
    /// `E-TIMEOUT` diagnostic; afterwards the item and statement loops
    /// bail out early. Free when no deadline is set.
    fn deadline_expired(&mut self) -> bool {
        if self.timed_out {
            return true;
        }
        match self.deadline {
            Some(d) if std::time::Instant::now() >= d => {
                self.timed_out = true;
                self.diags.push(Diagnostic::new(
                    DiagCode::Timeout,
                    "check aborted: wall-clock budget exceeded",
                    Span::dummy(),
                ));
                true
            }
            _ => false,
        }
    }

    fn name(&self, l: Label) -> &str {
        self.lat.name(l)
    }

    /// Renders a pooled type for diagnostics (cold path).
    fn ty_str(&self, id: TyId) -> String {
        self.pool.display(id, self.syms)
    }

    /// Resolves a parameter name symbol for diagnostics (cold path).
    fn param_name(&self, sym: Symbol) -> &str {
        self.syms.resolve(sym)
    }

    // ------------------------------------------------------------------
    // Flow lineage
    // ------------------------------------------------------------------

    /// Prepares one flow edge `src → sink` for recording, or `None` when
    /// lineage is off. Preparation copies borrows and labels — no keys,
    /// no rendering. The edge is *not* recorded yet: failure sites first
    /// attach an explanation path via [`Checker::flow_error`], then
    /// [`Checker::commit`] the edge, so a violating edge never traces
    /// through itself.
    fn edge(
        &self,
        op: FlowOp,
        src: &'a Expr,
        src_label: Label,
        sink: SinkRef<'a>,
        sink_label: Label,
        sink_span: Span,
    ) -> Option<PendingEdge<'a>> {
        if !self.record {
            return None;
        }
        Some(PendingEdge { op, src, src_label, sink, sink_label, sink_span })
    }

    /// Records a prepared edge into the flow log.
    fn commit(&mut self, flo: Option<PendingEdge<'a>>) {
        if let Some(e) = flo {
            self.log.record(e, self.syms);
        }
    }

    /// Renders a sink reference into the source text a diagnostic shows
    /// (cold path).
    fn render_sink(&self, s: SinkRef<'_>) -> String {
        match s {
            SinkRef::Expr(e) => expr_to_string(e),
            SinkRef::Name(n) => n.to_string(),
            SinkRef::Param(sym) => self.syms.resolve(sym).to_string(),
            SinkRef::Return => "return".to_string(),
            SinkRef::Declassify(inner) => format!("declassify({})", expr_to_string(inner)),
        }
    }

    /// Renders one compact edge into the diagnostic-facing form (cold
    /// path: the AST the edge borrows is still in hand).
    fn render_edge(&self, e: &PendingEdge<'_>) -> FlowEdge {
        FlowEdge {
            op: e.op,
            source: FlowNode::new(expr_to_string(e.src), self.name(e.src_label), e.src.span),
            sink: FlowNode::new(self.render_sink(e.sink), self.name(e.sink_label), e.sink_span),
        }
    }

    /// Renders the edge at a *combined* flow-log index: replayed seed
    /// edges are already rendered text (their label indices resolve
    /// through the active lattice, which the snapshot pinned equal),
    /// live edges render from their borrowed AST as usual.
    fn render_edge_at(&self, ix: usize) -> FlowEdge {
        let sl = self.log.seed_len();
        if ix < sl {
            let e = &self.log.seed.as_ref().expect("ix < seed_len implies a seed").0.edges[ix];
            FlowEdge {
                op: e.op,
                source: FlowNode::new(e.src_text.to_string(), self.name(e.src_label), e.src_span),
                sink: FlowNode::new(e.sink_text.to_string(), self.name(e.sink_label), e.sink_span),
            }
        } else {
            self.render_edge(&self.log.edges[ix - sl])
        }
    }

    /// Traces a violating expression's keys back through the log and
    /// renders the predecessor path oldest-first.
    fn trace_rendered(&self, keys: &[u64]) -> Vec<FlowEdge> {
        self.log.trace_indices(keys).iter().map(|&ix| self.render_edge_at(ix)).collect()
    }

    /// Renders the live flow log into an owned [`SeedEdges`] for prefix
    /// snapshots (cold collecting runs only — the AST the edges borrow
    /// is still in hand here).
    fn rendered_seed(&self) -> crate::prefix::SeedEdges {
        debug_assert!(self.log.seed.is_none(), "collecting runs start from no seed");
        crate::prefix::SeedEdges {
            edges: self
                .log
                .edges
                .iter()
                .map(|e| crate::prefix::OwnedEdge {
                    op: e.op,
                    src_text: expr_to_string(e.src).into(),
                    src_label: e.src_label,
                    src_span: e.src.span,
                    sink_text: self.render_sink(e.sink).into(),
                    sink_label: e.sink_label,
                    sink_span: e.sink_span,
                })
                .collect(),
            sink_keys: self.log.sink_keys.clone(),
            src_keys: self.log.src_keys.clone(),
            src_ranges: self.log.src_ranges.clone(),
        }
    }

    /// Emits a flow diagnostic with the violating edge's explanation path
    /// attached: the traced predecessors of its source, then the edge.
    fn flow_error(
        &mut self,
        code: DiagCode,
        message: String,
        span: Span,
        flo: &Option<PendingEdge<'a>>,
    ) {
        let mut d = Diagnostic::new(code, message, span);
        if let Some(e) = flo {
            let mut keys = Vec::new();
            lvalue_key_hashes(e.src, &mut keys);
            let mut path = self.trace_rendered(&keys);
            path.push(self.render_edge(e));
            d = d.with_lineage(path);
        }
        self.diags.push(d);
    }

    /// The implicit-flow explanation for a failed `pc ⊑ bound` side
    /// condition: the innermost guard whose label breaks the bound (or the
    /// ambient `pc` itself, for `@pc`/`--pc` violations) flowing into the
    /// sink via a `guard-pc` edge.
    fn pc_path(&self, pc: Label, bound: Label, sink: SinkRef<'_>, span: Span) -> Vec<FlowEdge> {
        let sink = FlowNode::new(self.render_sink(sink), self.name(bound), span);
        match self.guards.iter().rev().find(|g| !self.lat.leq(g.label, bound)) {
            Some(g) => {
                let edge = FlowEdge {
                    op: FlowOp::GuardPc,
                    source: FlowNode::new(expr_to_string(g.cond), self.name(g.label), g.cond.span),
                    sink,
                };
                let keys = &self.guard_keys
                    [g.keys_start as usize..(g.keys_start as usize + g.keys_len as usize)];
                let mut path = self.trace_rendered(keys);
                path.push(edge);
                path
            }
            None => {
                let source = FlowNode::new("pc", self.name(pc), span);
                vec![FlowEdge { op: FlowOp::GuardPc, source, sink }]
            }
        }
    }

    // ------------------------------------------------------------------
    // pc constraints
    // ------------------------------------------------------------------

    /// Enforces `pc ⊑ bound` (the write-effect side conditions of T-Assign,
    /// T-Call, T-TblCall, T-Exit, T-Return).
    ///
    /// In bound-collection mode the ambient function `pc_fn` is symbolic:
    /// `bound` is recorded as an upper bound for it, and only the
    /// guard-context part of `pc` (which is what `pc` holds in that mode)
    /// is checked against `bound`.
    /// `sink` is the rendered write target / call / control transfer the
    /// failed condition would have leaked into (lineage only).
    fn require_pc(
        &mut self,
        pc: Label,
        bound: Label,
        code: DiagCode,
        what: &str,
        sink: SinkRef<'_>,
        span: Span,
    ) {
        if !self.enforce {
            return;
        }
        if let Some(bounds) = &mut self.pc_bounds {
            bounds.push(bound);
        }
        if !self.lat.leq(pc, bound) {
            let msg = format!(
                "{what} in a `{}` security context, but only contexts up to `{}` may do this",
                self.name(pc),
                self.name(bound),
            );
            let mut d = Diagnostic::new(code, msg, span);
            if self.record {
                d = d.with_lineage(self.pc_path(pc, bound, sink, span));
            }
            self.diags.push(d);
        }
    }

    // ------------------------------------------------------------------
    // Types
    // ------------------------------------------------------------------

    /// Resolves a surface type. In base mode all annotations are stripped
    /// first (the baseline checker never consults the lattice).
    fn resolve(&mut self, ann: &AnnType) -> Option<SecTy> {
        let resolved = if self.resolve_labels {
            self.defs.resolve_interned(ann, self.lat, self.pool, &self.labels, self.syms)
        } else {
            self.defs.resolve_interned(
                &strip_labels(ann),
                self.lat,
                self.pool,
                &self.labels,
                self.syms,
            )
        };
        match resolved {
            Ok(t) => Some(t),
            Err(d) => {
                self.diags.push(d);
                None
            }
        }
    }

    fn type_decl(&mut self, t: &TypeDecl) {
        match t {
            TypeDecl::MatchKind { kinds } => {
                for k in kinds {
                    let sym = self.syms.intern(&k.node);
                    self.defs.add_match_kind(sym, &k.node);
                }
            }
            TypeDecl::Typedef { ty, name } => {
                if let Some(resolved) = self.resolve(ty) {
                    let sym = self.syms.intern(&name.node);
                    if !self.defs.define(sym, &name.node, resolved) {
                        self.error(
                            DiagCode::DuplicateDef,
                            format!("type `{}` is already defined", name.node),
                            name.span,
                        );
                    }
                }
            }
            TypeDecl::Header { name, fields } | TypeDecl::Struct { name, fields } => {
                let is_header = matches!(t, TypeDecl::Header { .. });
                let mut resolved_fields: Vec<(Symbol, SecTy)> = Vec::with_capacity(fields.len());
                for (fname, fty) in fields {
                    let fsym = self.syms.intern(&fname.node);
                    if resolved_fields.iter().any(|(n, _)| *n == fsym) {
                        self.error(
                            DiagCode::DuplicateDef,
                            format!("duplicate field `{}` in `{}`", fname.node, name.node),
                            fname.span,
                        );
                        continue;
                    }
                    if let Some(rt) = self.resolve(fty) {
                        if is_header && !self.pool.is_base_scalar(rt.ty) {
                            // "The fields of headers … must be base types"
                            // (§3.3). Structs may nest headers.
                            self.error(
                                DiagCode::TypeMismatch,
                                format!(
                                    "header field `{}` must have a base type, found `{}`",
                                    fname.node,
                                    self.ty_str(rt.ty)
                                ),
                                fname.span,
                            );
                            continue;
                        }
                        resolved_fields.push((fsym, rt));
                    }
                }
                let fields = FieldList::new(resolved_fields);
                let ty =
                    if is_header { self.pool.header(fields) } else { self.pool.record(fields) };
                let sym = self.syms.intern(&name.node);
                if !self.defs.define(sym, &name.node, SecTy::bottom(ty, self.lat)) {
                    self.error(
                        DiagCode::DuplicateDef,
                        format!("type `{}` is already defined", name.node),
                        name.span,
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Expressions (Figure 5)
    // ------------------------------------------------------------------

    /// Synthesizes `⟨τ, χ⟩ goes d` for an expression. The returned `bool`
    /// is `true` iff the expression `goes inout` *and* is writable (T-Var
    /// on a writable binding, propagated through fields and indices).
    ///
    /// Returns `None` after recording a diagnostic, to stop error cascades.
    fn expr(&mut self, e: &'a Expr, pc: Label) -> Option<(SecTy, bool)> {
        match &e.kind {
            ExprKind::Bool(_) => Some((SecTy::bottom(TyId::BOOL, self.lat), false)),
            ExprKind::Int { width, .. } => {
                let ty = match width {
                    Some(w) => self.pool.bit(*w),
                    None => TyId::INT,
                };
                Some((SecTy::bottom(ty, self.lat), false))
            }
            ExprKind::Var(name) => {
                // Use sites probe the interner: a name that was never
                // interned was never declared.
                match self.syms.lookup(name).and_then(|sym| self.env.lookup(sym)) {
                    Some(info) => Some((info.ty, info.writable)),
                    None => {
                        self.error(
                            DiagCode::UnknownVar,
                            format!("unknown variable `{name}`"),
                            e.span,
                        );
                        None
                    }
                }
            }
            ExprKind::Field(recv, field) => {
                let (rt, writable) = self.expr(recv, pc)?;
                match self.syms.lookup(&field.node).and_then(|s| self.pool.field(rt.ty, s)) {
                    Some(ft) => Some((ft, writable)),
                    None => {
                        let msg =
                            format!("type `{}` has no field `{}`", self.ty_str(rt.ty), field.node);
                        self.error(DiagCode::UnknownField, msg, field.span);
                        None
                    }
                }
            }
            ExprKind::Index(recv, index) => {
                let (rt, writable) = self.expr(recv, pc)?;
                let elem = match self.pool.kind(rt.ty) {
                    Ty::Stack(elem, _) => Some(*elem),
                    _ => None,
                };
                let Some(elem) = elem else {
                    let msg = format!("cannot index into `{}`", self.ty_str(rt.ty));
                    self.error(DiagCode::TypeMismatch, msg, e.span);
                    return None;
                };
                let (it, _) = self.expr(index, pc)?;
                if !matches!(self.pool.kind(it.ty), Ty::Bit(_) | Ty::Int) {
                    let msg =
                        format!("stack index must be numeric, found `{}`", self.ty_str(it.ty));
                    self.error(DiagCode::TypeMismatch, msg, index.span);
                    return None;
                }
                // T-Index: χ₂ ⊑ χ₁ — the index may not be more secret than
                // the elements, or which element is touched leaks it.
                if self.enforce && !self.lat.leq(it.label, elem.label) {
                    let flo = self.edge(
                        FlowOp::Index,
                        index,
                        it.label,
                        SinkRef::Expr(e),
                        elem.label,
                        e.span,
                    );
                    let msg = format!(
                        "index has label `{}` but the stack elements are `{}`; \
                         the element access would leak the index",
                        self.name(it.label),
                        self.name(elem.label)
                    );
                    self.flow_error(DiagCode::IndexLeak, msg, index.span, &flo);
                    self.commit(flo);
                }
                Some((elem, writable))
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let (lt, _) = self.expr(lhs, pc)?;
                let (rt, _) = self.expr(rhs, pc)?;
                match oracle::binop_result(self.pool, *op, lt.ty, rt.ty) {
                    Some(ty) => {
                        // T-BinOp: result label is the join of the operands.
                        let label = self.lat.join(lt.label, rt.label);
                        Some((SecTy::new(ty, label), false))
                    }
                    None => {
                        let msg = format!(
                            "operator `{op}` cannot be applied to `{}` and `{}`",
                            self.ty_str(lt.ty),
                            self.ty_str(rt.ty)
                        );
                        self.error(DiagCode::InvalidOperands, msg, e.span);
                        None
                    }
                }
            }
            ExprKind::Unary(op, inner) => {
                let (it, _) = self.expr(inner, pc)?;
                match oracle::unop_result(self.pool, *op, it.ty) {
                    Some(ty) => Some((SecTy::new(ty, it.label), false)),
                    None => {
                        let msg = format!(
                            "operator `{op}` cannot be applied to `{}`",
                            self.ty_str(it.ty)
                        );
                        self.error(DiagCode::InvalidOperands, msg, e.span);
                        None
                    }
                }
            }
            ExprKind::Record(fields) => {
                let mut rfields: Vec<(Symbol, SecTy)> = Vec::with_capacity(fields.len());
                for (name, value) in fields {
                    let fsym = self.syms.intern(&name.node);
                    if rfields.iter().any(|(n, _)| *n == fsym) {
                        self.error(
                            DiagCode::DuplicateDef,
                            format!("duplicate record field `{}`", name.node),
                            name.span,
                        );
                        continue;
                    }
                    let (vt, _) = self.expr(value, pc)?;
                    rfields.push((fsym, vt));
                }
                let ty = self.pool.record(FieldList::new(rfields));
                Some((SecTy::bottom(ty, self.lat), false))
            }
            ExprKind::Call(callee, args) => {
                let ret = self.check_call(callee, args, pc, e.span, false)?;
                Some((ret, false))
            }
        }
    }

    /// T-Call / T-TblCall. `as_stmt` permits table application, which has
    /// no value and is only legal in statement position.
    fn check_call(
        &mut self,
        callee: &'a Expr,
        args: &'a [Expr],
        pc: Label,
        span: Span,
        as_stmt: bool,
    ) -> Option<SecTy> {
        // `declassify` is a checker builtin, not a binding: any user
        // definition of the name shadows it.
        if let ExprKind::Var(name) = &callee.kind {
            if name == "declassify"
                && self.syms.lookup(name).and_then(|sym| self.env.lookup(sym)).is_none()
            {
                return self.declassify_call(args, pc, span);
            }
        }
        let (ct, _) = self.expr(callee, pc)?;
        // Cheap clone (compound nodes are `Arc`-backed) so the pool borrow
        // does not overlap the recursive checks below.
        let callee_kind = self.pool.kind(ct.ty).clone();
        match callee_kind {
            Ty::Function(fnty) => {
                if args.len() != fnty.params.len() {
                    self.error(
                        DiagCode::ArityMismatch,
                        format!(
                            "call supplies {} argument(s) but the callee takes {}",
                            args.len(),
                            fnty.params.len()
                        ),
                        span,
                    );
                    return None;
                }
                for (param, arg) in fnty.params.iter().zip(args) {
                    self.check_arg(param, arg, pc);
                }
                // T-Call: pc ⊑ pc_fn — calling in a higher context would
                // leak the context through the callee's writes.
                self.require_pc(
                    pc,
                    fnty.pc_fn,
                    DiagCode::CallPcViolation,
                    "this call occurs",
                    SinkRef::Expr(callee),
                    span,
                );
                Some(fnty.ret)
            }
            Ty::Table(pc_tbl) => {
                if !as_stmt {
                    self.error(
                        DiagCode::NotCallable,
                        "tables can only be applied as statements",
                        span,
                    );
                    return None;
                }
                if !args.is_empty() {
                    self.error(
                        DiagCode::ArityMismatch,
                        "table application takes no arguments",
                        span,
                    );
                    return None;
                }
                // T-TblCall: pc ⊑ pc_tbl.
                self.require_pc(
                    pc,
                    pc_tbl,
                    DiagCode::TableApplyPcViolation,
                    "this table is applied",
                    SinkRef::Expr(callee),
                    span,
                );
                Some(SecTy::unit(self.lat))
            }
            _ => {
                let msg = format!("`{}` is not callable", self.ty_str(ct.ty));
                self.error(DiagCode::NotCallable, msg, callee.span);
                None
            }
        }
    }

    /// The `declassify(e)` builtin: re-labels the value of `e` to ⊥, the
    /// escape hatch a policy grants per program group
    /// ([`CheckOptions::allow_declassify`]). The lowered flow is recorded
    /// as a `declassify` lineage edge whether or not it is permitted; a
    /// forbidden use is a security error carrying that edge's path.
    fn declassify_call(&mut self, args: &'a [Expr], pc: Label, span: Span) -> Option<SecTy> {
        if args.len() != 1 {
            self.error(
                DiagCode::ArityMismatch,
                format!("`declassify` takes exactly 1 argument, {} supplied", args.len()),
                span,
            );
            return None;
        }
        let (at, _) = self.expr(&args[0], pc)?;
        if !self.resolve_labels {
            // Base mode strips labels, so declassification is the identity.
            return Some(at);
        }
        let bottom = self.lat.bottom();
        let flo = self.edge(
            FlowOp::Declassify,
            &args[0],
            at.label,
            SinkRef::Declassify(&args[0]),
            bottom,
            span,
        );
        if self.enforce && !self.allow_declassify {
            let msg = format!(
                "`declassify` of `{}` data is not permitted under this policy",
                self.name(at.label)
            );
            self.flow_error(DiagCode::DeclassifyForbidden, msg, span, &flo);
        }
        self.commit(flo);
        Some(SecTy::new(at.ty, bottom))
    }

    /// Checks one argument against a parameter, honoring directions:
    /// `in` positions admit label subtyping (T-SubType-In); `inout`
    /// positions require a writable l-value with the *exact* security type
    /// (no subtyping — see the `write_to_high` example in §4.2).
    fn check_arg(&mut self, param: &FnParam, arg: &'a Expr, pc: Label) {
        let Some((at, writable)) = self.expr(arg, pc) else { return };
        let flo = self.edge(
            FlowOp::Arg,
            arg,
            at.label,
            SinkRef::Param(param.name),
            param.ty.label,
            arg.span,
        );
        if !self.pool.same_shape(at, param.ty) {
            let msg = format!(
                "argument for `{}` has type `{}` but the parameter expects `{}`",
                self.param_name(param.name),
                self.ty_str(at.ty),
                self.ty_str(param.ty.ty)
            );
            self.flow_error(DiagCode::TypeMismatch, msg, arg.span, &flo);
            self.commit(flo);
            return;
        }
        match param.direction {
            Direction::In => {
                if self.enforce && !self.lat.leq(at.label, param.ty.label) {
                    let msg = format!(
                        "argument labeled `{}` flows into `in` parameter `{}` \
                         labeled `{}`",
                        self.name(at.label),
                        self.param_name(param.name),
                        self.name(param.ty.label)
                    );
                    self.flow_error(DiagCode::ExplicitFlow, msg, arg.span, &flo);
                }
            }
            Direction::InOut => {
                if !arg.is_lvalue_shaped() || !writable {
                    self.error(
                        DiagCode::NotAssignable,
                        format!(
                            "`inout` argument for `{}` must be a writable l-value",
                            self.param_name(param.name)
                        ),
                        arg.span,
                    );
                    self.commit(flo);
                    return;
                }
                if self.enforce && at.label != param.ty.label {
                    let msg = format!(
                        "`inout` argument labeled `{}` does not match parameter \
                         `{}` labeled `{}`; `inout` positions admit no label \
                         subtyping",
                        self.name(at.label),
                        self.param_name(param.name),
                        self.name(param.ty.label)
                    );
                    self.flow_error(DiagCode::InoutLabelMismatch, msg, arg.span, &flo);
                }
            }
        }
        self.commit(flo);
    }

    // ------------------------------------------------------------------
    // Statements (Figure 6)
    // ------------------------------------------------------------------

    fn stmt(&mut self, s: &'a Stmt, pc: Label) {
        if self.deadline_expired() {
            return;
        }
        match &s.kind {
            StmtKind::Call(e) => {
                let ExprKind::Call(callee, args) = &e.kind else {
                    self.error(DiagCode::Malformed, "expected a call statement", s.span);
                    return;
                };
                self.check_call(callee, args, pc, s.span, true);
            }
            StmtKind::Assign(lhs, rhs) => self.assign(lhs, rhs, pc, s.span),
            StmtKind::If(cond, then_branch, else_branch) => {
                let guard_label = match self.expr(cond, pc) {
                    Some((ct, _)) => {
                        if ct.ty != TyId::BOOL {
                            let msg = format!(
                                "`if` guard must be `bool`, found `{}`",
                                self.ty_str(ct.ty)
                            );
                            self.error(DiagCode::TypeMismatch, msg, cond.span);
                        }
                        ct.label
                    }
                    None => self.lat.bottom(),
                };
                // T-Cond: the branches are checked at χ₂ ⊒ pc ⊔ χ₁; the
                // principal choice is exactly pc ⊔ χ₁.
                let branch_pc = self.lat.join(pc, guard_label);
                if self.record {
                    let keys_start = self.guard_keys.len() as u32;
                    lvalue_key_hashes(cond, &mut self.guard_keys);
                    let keys_len = self.guard_keys.len() as u32 - keys_start;
                    self.guards.push(GuardCtx { cond, label: guard_label, keys_start, keys_len });
                }
                self.env.push_scope();
                self.stmt(then_branch, branch_pc);
                self.env.pop_scope();
                if let Some(els) = else_branch {
                    self.env.push_scope();
                    self.stmt(els, branch_pc);
                    self.env.pop_scope();
                }
                if self.record {
                    if let Some(g) = self.guards.pop() {
                        self.guard_keys.truncate(g.keys_start as usize);
                    }
                }
            }
            StmtKind::Block(stmts) => {
                self.env.push_scope();
                for st in stmts {
                    self.stmt(st, pc);
                }
                self.env.pop_scope();
            }
            StmtKind::Exit => {
                // T-Exit types only at ⊥: an `exit` in a secret context
                // would leak through the control-flow signal.
                self.require_pc(
                    pc,
                    self.lat.bottom(),
                    DiagCode::ImplicitFlow,
                    "`exit` occurs",
                    SinkRef::Name("exit"),
                    s.span,
                );
            }
            StmtKind::Return(value) => self.return_stmt(value.as_ref(), pc, s.span),
            StmtKind::VarDecl(v) => self.var_decl(v, pc),
        }
    }

    /// T-Assign: `lhs goes inout : ⟨τ, χ₁⟩`, `rhs : ⟨τ, χ₂⟩`, `χ₂ ⊑ χ₁`,
    /// `pc ⊑ χ₁`.
    fn assign(&mut self, lhs: &'a Expr, rhs: &'a Expr, pc: Label, span: Span) {
        if !lhs.is_lvalue_shaped() {
            self.error(DiagCode::NotAssignable, "assignment target is not an l-value", lhs.span);
            return;
        }
        let Some((lt, writable)) = self.expr(lhs, pc) else { return };
        if !writable {
            self.error(
                DiagCode::NotAssignable,
                "assignment target is read-only (declared `in`)",
                lhs.span,
            );
            return;
        }
        let Some((rt, _)) = self.expr(rhs, pc) else { return };
        let flo = self.edge(FlowOp::Assign, rhs, rt.label, SinkRef::Expr(lhs), lt.label, lhs.span);
        if !self.pool.same_shape(rt, lt) {
            let msg = format!(
                "cannot assign `{}` to a location of type `{}`",
                self.ty_str(rt.ty),
                self.ty_str(lt.ty)
            );
            self.flow_error(DiagCode::TypeMismatch, msg, span, &flo);
            self.commit(flo);
            return;
        }
        if self.enforce && !self.lat.leq(rt.label, lt.label) {
            let msg = format!(
                "explicit flow: `{}` data assigned to a `{}` location",
                self.name(rt.label),
                self.name(lt.label)
            );
            self.flow_error(DiagCode::ExplicitFlow, msg, span, &flo);
        }
        self.commit(flo);
        self.require_pc(
            pc,
            lt.label,
            DiagCode::ImplicitFlow,
            "this write occurs",
            SinkRef::Expr(lhs),
            span,
        );
    }

    /// T-Return: types only at ⊥; the value must match `Γ(return)`.
    fn return_stmt(&mut self, value: Option<&'a Expr>, pc: Label, span: Span) {
        let Some(ret) = self.return_ty else {
            self.error(DiagCode::BadReturn, "`return` outside a function body", span);
            return;
        };
        match (value, ret.ty) {
            (None, TyId::UNIT) => {}
            (None, other) => {
                let msg =
                    format!("this function must return a value of type `{}`", self.ty_str(other));
                self.error(DiagCode::BadReturn, msg, span);
            }
            (Some(e), _) => {
                if ret.ty == TyId::UNIT {
                    self.error(DiagCode::BadReturn, "this function does not return a value", span);
                    return;
                }
                let Some((vt, _)) = self.expr(e, pc) else { return };
                let flo = self.edge(FlowOp::Return, e, vt.label, SinkRef::Return, ret.label, span);
                if !self.pool.same_shape(vt, ret) {
                    let msg = format!(
                        "returned value has type `{}` but the function returns `{}`",
                        self.ty_str(vt.ty),
                        self.ty_str(ret.ty)
                    );
                    self.flow_error(DiagCode::BadReturn, msg, e.span, &flo);
                } else if self.enforce && !self.lat.leq(vt.label, ret.label) {
                    let msg = format!(
                        "returned value labeled `{}` exceeds the declared return \
                         label `{}`",
                        self.name(vt.label),
                        self.name(ret.label)
                    );
                    self.flow_error(DiagCode::ExplicitFlow, msg, e.span, &flo);
                }
                self.commit(flo);
            }
        }
        self.require_pc(
            pc,
            self.lat.bottom(),
            DiagCode::ImplicitFlow,
            "`return` occurs",
            SinkRef::Return,
            span,
        );
    }

    /// T-VarDecl / T-VarInit. Declarations carry no `pc` side condition
    /// (fresh locations cannot leak), but the initializer label must be
    /// below the declared label.
    fn var_decl(&mut self, v: &'a VarDecl, pc: Label) {
        let Some(declared) = self.resolve(&v.ty) else { return };
        if let Some(init) = &v.init {
            if let Some((it, _)) = self.expr(init, pc) {
                let flo = self.edge(
                    FlowOp::Init,
                    init,
                    it.label,
                    SinkRef::Name(&v.name.node),
                    declared.label,
                    v.name.span,
                );
                if !self.pool.same_shape(it, declared) {
                    let msg = format!(
                        "initializer has type `{}` but `{}` is declared `{}`",
                        self.ty_str(it.ty),
                        v.name.node,
                        self.ty_str(declared.ty)
                    );
                    self.flow_error(DiagCode::TypeMismatch, msg, init.span, &flo);
                } else if self.enforce && !self.lat.leq(it.label, declared.label) {
                    let msg = format!(
                        "initializer labeled `{}` flows into `{}` declared `{}`",
                        self.name(it.label),
                        v.name.node,
                        self.name(declared.label)
                    );
                    self.flow_error(DiagCode::ExplicitFlow, msg, init.span, &flo);
                }
                self.commit(flo);
            }
        }
        let sym = self.syms.intern(&v.name.node);
        if !self.env.declare(sym, VarInfo { ty: declared, writable: true }) {
            self.error(
                DiagCode::DuplicateDef,
                format!("`{}` is already declared in this scope", v.name.node),
                v.name.span,
            );
        }
    }

    // ------------------------------------------------------------------
    // Declarations (Figure 7)
    // ------------------------------------------------------------------

    fn resolve_params(&mut self, params: &[Param], is_action: bool) -> Vec<FnParam> {
        let mut out = Vec::with_capacity(params.len());
        for p in params {
            let Some(ty) = self.resolve(&p.ty) else { continue };
            let control_plane = is_action && p.direction.is_none();
            out.push(FnParam {
                name: self.syms.intern(&p.name.node),
                direction: p.direction.unwrap_or(Direction::In),
                ty,
                control_plane,
            });
        }
        out
    }

    /// T-FuncDecl, shared by actions and functions. Checks the body in
    /// bound-collection mode and infers `pc_fn` as the meet of the
    /// collected write bounds.
    fn function_like(
        &mut self,
        name: &p4bid_ast::Spanned<String>,
        params: &[Param],
        ret: Option<&AnnType>,
        body: &'a [Stmt],
        is_action: bool,
        span: Span,
    ) {
        let fn_params = self.resolve_params(params, is_action);
        if fn_params.len() != params.len() {
            // Some parameter type failed to resolve; diagnostics were
            // already recorded. Do not bind a bogus signature.
            return;
        }
        let ret_ty = match ret {
            None => SecTy::unit(self.lat),
            Some(ann) => match self.resolve(ann) {
                Some(t) => t,
                None => return,
            },
        };

        // Γ₁ = Γ[xᵢ : ⟨τᵢ, χᵢ⟩, return : ⟨τ_ret, χ_ret⟩], body at pc_fn.
        self.env.push_scope();
        for p in &fn_params {
            let writable = p.direction == Direction::InOut;
            self.env.declare(p.name, VarInfo { ty: p.ty, writable });
        }
        let saved_bounds = self.pc_bounds.replace(Vec::new());
        let saved_ret = self.return_ty.replace(ret_ty);
        for s in body {
            self.stmt(s, self.lat.bottom());
        }
        let bounds = self.pc_bounds.take().unwrap_or_default();
        self.pc_bounds = saved_bounds;
        self.return_ty = saved_ret;
        self.env.pop_scope();

        // pc_fn is the meet of every upper bound the body generated; with
        // no writes at all the function may be called anywhere (⊤).
        let pc_fn = if self.enforce { self.lat.meet_all(bounds) } else { self.lat.top() };

        if ret_ty.ty != TyId::UNIT && !always_returns(body) {
            let msg = format!(
                "function `{}` may finish without returning a `{}`",
                name.node,
                self.ty_str(ret_ty.ty)
            );
            self.error(DiagCode::MissingReturn, msg, span);
        }

        let fnty = Arc::new(FnTy { params: fn_params, pc_fn, ret: ret_ty, is_action });
        self.sig_functions.push((name.node.clone(), Arc::clone(&fnty)));
        let fn_tyid = self.pool.intern(Ty::Function(fnty));
        let info = VarInfo { ty: SecTy::bottom(fn_tyid, self.lat), writable: false };
        let sym = self.syms.intern(&name.node);
        if !self.env.declare(sym, info) {
            self.error(
                DiagCode::DuplicateDef,
                format!("`{}` is already declared in this scope", name.node),
                name.span,
            );
        }
    }

    fn action_decl(&mut self, a: &'a ActionDecl) {
        self.function_like(&a.name, &a.params, None, &a.body, true, a.span);
    }

    fn function_decl(&mut self, f: &'a FunctionDecl) {
        self.function_like(&f.name, &f.params, Some(&f.ret), &f.body, false, f.span);
    }

    /// T-TblDecl: computes `pc_tbl = ⊓ⱼ pc_fnⱼ`, checks every key label is
    /// below every action's write bound, and typechecks the bound argument
    /// prefixes.
    fn table_decl(&mut self, t: &'a TableDecl) {
        // Gather the action signatures first: pc_tbl depends on them.
        let mut action_tys: Vec<(Arc<FnTy>, &ActionRef)> = Vec::new();
        for aref in &t.actions {
            match self.syms.lookup(&aref.name.node).and_then(|sym| self.env.lookup(sym)) {
                Some(info) => match self.pool.kind(info.ty.ty).clone() {
                    Ty::Function(f) if f.is_action => {
                        action_tys.push((f, aref));
                    }
                    Ty::Function(_) => {
                        self.error(
                            DiagCode::UnknownAction,
                            format!(
                                "`{}` is a function; only actions may appear in a table",
                                aref.name.node
                            ),
                            aref.name.span,
                        );
                    }
                    _ => {
                        let msg = format!(
                            "`{}` is `{}`, not an action",
                            aref.name.node,
                            self.ty_str(info.ty.ty)
                        );
                        self.error(DiagCode::UnknownAction, msg, aref.name.span);
                    }
                },
                None => {
                    self.error(
                        DiagCode::UnknownAction,
                        format!("unknown action `{}`", aref.name.node),
                        aref.name.span,
                    );
                }
            }
        }

        let pc_tbl = if self.enforce {
            self.lat.meet_all(action_tys.iter().map(|(f, _)| f.pc_fn))
        } else {
            self.lat.top()
        };

        // Keys: known match kinds, scalar key expressions, and
        // χ_k ⊑ pc_fnⱼ for every action j (T-TblDecl).
        for key in &t.keys {
            let kind_known = self
                .syms
                .lookup(&key.match_kind.node)
                .is_some_and(|sym| self.defs.is_match_kind(sym));
            if !kind_known {
                self.error(
                    DiagCode::UnknownMatchKind,
                    format!("unknown match kind `{}`", key.match_kind.node),
                    key.match_kind.span,
                );
            }
            let Some((kt, _)) = self.expr(&key.expr, pc_tbl) else { continue };
            if !self.pool.is_base_scalar(kt.ty) {
                let msg = format!("table keys must be scalars, found `{}`", self.ty_str(kt.ty));
                self.error(DiagCode::TypeMismatch, msg, key.expr.span);
                continue;
            }
            let key_flo = self.edge(
                FlowOp::Table,
                &key.expr,
                kt.label,
                SinkRef::Name(&t.name.node),
                pc_tbl,
                key.expr.span,
            );
            if self.enforce {
                for (fnty, aref) in &action_tys {
                    if !self.lat.leq(kt.label, fnty.pc_fn) {
                        // The violating edge names the offending action
                        // (not the whole table) as the sink.
                        let flo = self.edge(
                            FlowOp::Table,
                            &key.expr,
                            kt.label,
                            SinkRef::Name(&aref.name.node),
                            fnty.pc_fn,
                            key.expr.span,
                        );
                        let msg = format!(
                            "table key labeled `{}` selects action `{}` which \
                             writes at level `{}`; matching on the key would \
                             leak it",
                            self.name(kt.label),
                            aref.name.node,
                            self.name(fnty.pc_fn)
                        );
                        self.flow_error(DiagCode::TableKeyFlow, msg, key.expr.span, &flo);
                    }
                }
            }
            self.commit(key_flo);
        }

        // Bound argument prefixes: the directional parameters of each
        // action are bound at declaration time; the directionless
        // (control-plane) suffix is installed by the controller.
        for (fnty, aref) in &action_tys {
            let data_params: Vec<&FnParam> = fnty.data_params().collect();
            if aref.args.len() != data_params.len() {
                self.error(
                    DiagCode::ArityMismatch,
                    format!(
                        "action `{}` takes {} data-plane argument(s), {} supplied",
                        aref.name.node,
                        data_params.len(),
                        aref.args.len()
                    ),
                    aref.span,
                );
                continue;
            }
            for (param, arg) in data_params.iter().zip(&aref.args) {
                self.check_arg(param, arg, pc_tbl);
            }
        }

        // Default action, if named, must be one of the listed actions.
        if let Some(d) = &t.default_action {
            if !t.actions.iter().any(|a| a.name.node == d.node) {
                self.error(
                    DiagCode::UnknownAction,
                    format!("default action `{}` is not in the table's action list", d.node),
                    d.span,
                );
            }
        }

        self.sig_tables.push((t.name.node.clone(), pc_tbl));
        let tbl_tyid = self.pool.table(pc_tbl);
        let info = VarInfo { ty: SecTy::bottom(tbl_tyid, self.lat), writable: false };
        let sym = self.syms.intern(&t.name.node);
        if !self.env.declare(sym, info) {
            self.error(
                DiagCode::DuplicateDef,
                format!("`{}` is already declared in this scope", t.name.node),
                t.name.span,
            );
        }
    }

    /// Checks one control block under its ambient `pc` (the `@pc(...)`
    /// annotation, or the run-wide default).
    fn control_decl(&mut self, c: &'a ControlDecl, default_pc: Label) -> Option<TypedControl> {
        // Control-local declarations are visible only inside this control:
        // roll the signature log back to the globals afterwards.
        let fn_mark = self.sig_functions.len();
        let pc = match (&c.pc, self.resolve_labels) {
            (Some(name), true) => match self.labels.resolve(&name.node, self.syms) {
                Some(l) => {
                    if self.pc_floor && self.enforce && !self.lat.leq(default_pc, l) {
                        self.error(
                            DiagCode::PcBelowAmbient,
                            format!(
                                "control `{}` declares pc `{}` below the ambient context `{}`",
                                c.name.node,
                                self.lat.name(l),
                                self.lat.name(default_pc),
                            ),
                            name.span,
                        );
                    }
                    l
                }
                None => {
                    self.error(
                        DiagCode::UnknownLabel,
                        format!("unknown pc label `{}`", name.node),
                        name.span,
                    );
                    default_pc
                }
            },
            _ => {
                if self.resolve_labels {
                    default_pc
                } else {
                    self.lat.bottom()
                }
            }
        };

        self.env.push_scope();
        let mut typed_params = Vec::new();
        for p in &c.params {
            let Some(ty) = self.resolve(&p.ty) else { continue };
            let direction = p.direction.unwrap_or(Direction::In);
            let writable = direction == Direction::InOut;
            let sym = self.syms.intern(&p.name.node);
            if !self.env.declare(sym, VarInfo { ty, writable }) {
                self.error(
                    DiagCode::DuplicateDef,
                    format!("duplicate parameter `{}`", p.name.node),
                    p.name.span,
                );
            }
            typed_params.push(TypedParam { name: p.name.node.clone(), sym, direction, ty });
        }
        let params_ok = typed_params.len() == c.params.len();

        for d in &c.decls {
            match d {
                CtrlDecl::Var(v) => self.var_decl(v, pc),
                CtrlDecl::Action(a) => self.action_decl(a),
                CtrlDecl::Function(f) => self.function_decl(f),
                CtrlDecl::Table(t) => self.table_decl(t),
            }
        }

        self.env.push_scope();
        for s in &c.apply {
            self.stmt(s, pc);
        }
        self.env.pop_scope();
        self.env.pop_scope();

        let functions = self.sig_functions.clone();
        self.sig_functions.truncate(fn_mark);
        params_ok.then(|| TypedControl {
            name: c.name.node.clone(),
            params: typed_params,
            pc,
            functions,
            tables: std::mem::take(&mut self.sig_tables),
        })
    }
}

/// Whether a statement sequence is guaranteed to return or exit on every
/// path (used for the missing-return check on non-void functions).
fn always_returns(stmts: &[Stmt]) -> bool {
    stmts.iter().any(stmt_always_returns)
}

fn stmt_always_returns(s: &Stmt) -> bool {
    match &s.kind {
        StmtKind::Return(_) | StmtKind::Exit => true,
        StmtKind::If(_, t, Some(e)) => stmt_always_returns(t) && stmt_always_returns(e),
        StmtKind::Block(ss) => always_returns(ss),
        _ => false,
    }
}

/// Recursively removes every security annotation (base mode).
fn strip_labels(ann: &AnnType) -> AnnType {
    let ty = match &ann.ty {
        TypeExpr::Stack(elem, n) => TypeExpr::Stack(Box::new(strip_labels(elem)), *n),
        other => other.clone(),
    };
    AnnType { ty, label: None, span: ann.span }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_edge<'a>(log: &mut FlowLog<'a>, src: &'a Expr, sink: &'a Expr, syms: &Interner) {
        let lat = Lattice::two_point();
        log.record(
            PendingEdge {
                op: FlowOp::Assign,
                src,
                src_label: lat.bottom(),
                sink: SinkRef::Expr(sink),
                sink_label: lat.bottom(),
                sink_span: sink.span,
            },
            syms,
        );
    }

    #[test]
    fn trace_follows_the_most_recent_write() {
        let syms = Interner::new();
        let sp = Span::dummy();
        let (h, x, zero) = (
            Expr::var("h", sp),
            Expr::var("x", sp),
            Expr::new(ExprKind::Int { value: 0, width: Some(8) }, sp),
        );
        let mut log = FlowLog::default();
        log_edge(&mut log, &h, &x, &syms); // x = h
        log_edge(&mut log, &zero, &x, &syms); // x = 8w0 (overwrites)
        let path = log.trace_indices(&[expr_key(&x)]);
        assert_eq!(path, vec![1], "only the latest write to x counts");
        // The literal source has no l-value keys, so the trace stops.
        assert!(log.src_keys_of(1).is_empty());
    }

    #[test]
    fn trace_chains_through_intermediaries_and_terminates() {
        let syms = Interner::new();
        let sp = Span::dummy();
        let (h, x, y) = (Expr::var("h", sp), Expr::var("x", sp), Expr::var("y", sp));
        let mut log = FlowLog::default();
        log_edge(&mut log, &h, &x, &syms); // x = h
        log_edge(&mut log, &x, &y, &syms); // y = x
        assert_eq!(log.trace_indices(&[expr_key(&y)]), vec![0, 1], "oldest first");
        // A self-referential chain (x = x repeatedly) stays bounded.
        let mut looped = FlowLog::default();
        for _ in 0..32 {
            log_edge(&mut looped, &x, &x, &syms);
        }
        assert!(looped.trace_indices(&[expr_key(&x)]).len() <= TRACE_CAP);
    }

    #[test]
    fn structural_keys_are_span_insensitive_and_name_compatible() {
        let a = Expr::var("hdr", Span::dummy());
        let b = Expr::var("hdr", Span::new(10, 20));
        assert_eq!(expr_key(&a), expr_key(&b));
        assert_eq!(name_key("hdr"), expr_key(&a));
        assert_ne!(expr_key(&a), expr_key(&Expr::var("hdx", Span::dummy())));
    }
}
