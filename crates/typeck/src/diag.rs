//! Typechecker diagnostics.
//!
//! Every rejected program gets one or more [`Diagnostic`]s pointing at the
//! offending source span, with a machine-readable [`DiagCode`] so tests and
//! tools can assert on the *class* of violation (explicit flow, implicit
//! flow, table-key flow, …) rather than on message text.

use crate::lineage::{render_chain, FlowEdge};
use p4bid_ast::span::Span;
use std::fmt;

/// Machine-readable diagnostic classes.
///
/// The `*Flow` codes are the information-flow violations the paper's case
/// studies exercise; the remaining codes are ordinary (base) type errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DiagCode {
    // --- base type errors -------------------------------------------------
    /// Reference to an unknown type name.
    UnknownType,
    /// Reference to an unknown variable.
    UnknownVar,
    /// Reference to an unknown field.
    UnknownField,
    /// Reference to an unknown match kind.
    UnknownMatchKind,
    /// Reference to an unknown action in a table.
    UnknownAction,
    /// A name declared twice in the same scope.
    DuplicateDef,
    /// Operand or assignment type mismatch.
    TypeMismatch,
    /// Called something that is not a function or action.
    NotCallable,
    /// Applied something that is not a table.
    NotATable,
    /// Wrong number of arguments.
    ArityMismatch,
    /// Assignment target is not an l-value, or is read-only.
    NotAssignable,
    /// `return` outside a function, or with the wrong type.
    BadReturn,
    /// A non-void function body may fall through without returning.
    MissingReturn,
    /// Binary/unary operator applied to unsupported operand types.
    InvalidOperands,
    /// Malformed program structure (e.g. no control block).
    Malformed,

    // --- failure-domain diagnostics ----------------------------------------
    /// The checker itself failed on this program (a caught panic in an
    /// isolated worker). Never cached; the program counts as rejected.
    InternalError,
    /// The per-program wall-clock budget (`--check-timeout-ms`) expired
    /// before checking finished. Never cached.
    Timeout,
    /// The program source exceeds the configured `--max-source-bytes`
    /// cap and was rejected without being parsed.
    Oversized,

    // --- security (IFC) errors --------------------------------------------
    /// Reference to a label that is not in the active lattice.
    UnknownLabel,
    /// Explicit flow: assignment of higher-labeled data into a
    /// lower-labeled location (`χ₂ ⋢ χ₁` in T-Assign).
    ExplicitFlow,
    /// Implicit flow: write below the current security context
    /// (`pc ⋢ χ₁` in T-Assign, or an `exit`/`return` above ⊥).
    ImplicitFlow,
    /// A call in a context higher than the callee's write bound
    /// (`pc ⋢ pc_fn` in T-Call).
    CallPcViolation,
    /// A table whose key is more secret than some action's writes
    /// (`χ_k ⋢ pc_fn_j` in T-TblDecl).
    TableKeyFlow,
    /// A table applied in a context above its `pc_tbl` (T-TblCall).
    TableApplyPcViolation,
    /// An `inout` argument whose security type differs from the parameter
    /// (no subtyping on `inout`, §4.2).
    InoutLabelMismatch,
    /// Indexing with an index more secret than the stack elements
    /// (`χ₂ ⋢ χ₁` in T-Index).
    IndexLeak,
    /// A `declassify(e)` site in a run whose options (or policy rule) do
    /// not permit declassification.
    DeclassifyForbidden,
    /// A control whose `@pc(...)` annotation sits below the ambient
    /// context when the options make the ambient pc a floor
    /// (`CheckOptions::pc_floor`; the topology fixpoint driver's
    /// ingress-label seeding). An understated pc would let the control
    /// write below the real influence of the data reaching it.
    PcBelowAmbient,
}

impl DiagCode {
    /// Whether the code is one of the information-flow violations (as
    /// opposed to a plain type error a non-security P4 compiler would also
    /// report).
    #[must_use]
    pub fn is_security(self) -> bool {
        matches!(
            self,
            DiagCode::UnknownLabel
                | DiagCode::ExplicitFlow
                | DiagCode::ImplicitFlow
                | DiagCode::CallPcViolation
                | DiagCode::TableKeyFlow
                | DiagCode::TableApplyPcViolation
                | DiagCode::InoutLabelMismatch
                | DiagCode::IndexLeak
                | DiagCode::DeclassifyForbidden
                | DiagCode::PcBelowAmbient
        )
    }

    /// Whether the code describes a *transient* checking failure — a
    /// caught worker panic or an expired wall-clock budget — whose
    /// verdict must never be cached or replayed: a retry of the same
    /// body may legitimately produce a different outcome.
    #[must_use]
    pub fn is_transient(self) -> bool {
        matches!(self, DiagCode::InternalError | DiagCode::Timeout)
    }

    /// Short stable identifier, e.g. `E-EXPLICIT-FLOW`.
    #[must_use]
    pub fn ident(self) -> &'static str {
        match self {
            DiagCode::UnknownType => "E-UNKNOWN-TYPE",
            DiagCode::UnknownVar => "E-UNKNOWN-VAR",
            DiagCode::UnknownField => "E-UNKNOWN-FIELD",
            DiagCode::UnknownMatchKind => "E-UNKNOWN-MATCH-KIND",
            DiagCode::UnknownAction => "E-UNKNOWN-ACTION",
            DiagCode::DuplicateDef => "E-DUPLICATE-DEF",
            DiagCode::TypeMismatch => "E-TYPE-MISMATCH",
            DiagCode::NotCallable => "E-NOT-CALLABLE",
            DiagCode::NotATable => "E-NOT-A-TABLE",
            DiagCode::ArityMismatch => "E-ARITY-MISMATCH",
            DiagCode::NotAssignable => "E-NOT-ASSIGNABLE",
            DiagCode::BadReturn => "E-BAD-RETURN",
            DiagCode::MissingReturn => "E-MISSING-RETURN",
            DiagCode::InvalidOperands => "E-INVALID-OPERANDS",
            DiagCode::Malformed => "E-MALFORMED",
            DiagCode::InternalError => "E-INTERNAL",
            DiagCode::Timeout => "E-TIMEOUT",
            DiagCode::Oversized => "E-OVERSIZED",
            DiagCode::UnknownLabel => "E-UNKNOWN-LABEL",
            DiagCode::ExplicitFlow => "E-EXPLICIT-FLOW",
            DiagCode::ImplicitFlow => "E-IMPLICIT-FLOW",
            DiagCode::CallPcViolation => "E-CALL-PC",
            DiagCode::TableKeyFlow => "E-TABLE-KEY-FLOW",
            DiagCode::TableApplyPcViolation => "E-TABLE-APPLY-PC",
            DiagCode::InoutLabelMismatch => "E-INOUT-LABEL",
            DiagCode::IndexLeak => "E-INDEX-LEAK",
            DiagCode::DeclassifyForbidden => "E-DECLASSIFY-FORBIDDEN",
            DiagCode::PcBelowAmbient => "E-PC-FLOOR",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ident())
    }
}

/// A single typechecker diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Machine-readable class.
    pub code: DiagCode,
    /// Human-readable message (lowercase, no trailing punctuation).
    pub message: String,
    /// Primary source span.
    pub span: Span,
    /// Optional extra notes (e.g. "the fix in Listing 2 writes to
    /// local_hdr.phys_ttl instead").
    pub notes: Vec<String>,
    /// The source → sink flow path explaining the violation, oldest edge
    /// first with the violating edge last. Empty for diagnostics with no
    /// flow to explain (parse errors, unknown names) and when lineage
    /// recording is off.
    pub lineage: Vec<FlowEdge>,
}

impl Diagnostic {
    /// Builds a diagnostic.
    #[must_use]
    pub fn new(code: DiagCode, message: impl Into<String>, span: Span) -> Self {
        Diagnostic { code, message: message.into(), span, notes: Vec::new(), lineage: Vec::new() }
    }

    /// Adds a note, builder-style.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Attaches a flow-lineage path, builder-style.
    #[must_use]
    pub fn with_lineage(mut self, path: Vec<FlowEdge>) -> Self {
        self.lineage = path;
        self
    }

    /// The lineage path rendered as one human-readable chain, e.g.
    /// `` `h` (high) --assign--> `x` (high) --assign--> `l` (low) ``.
    /// `None` when the diagnostic carries no lineage.
    #[must_use]
    pub fn lineage_chain(&self) -> Option<String> {
        (!self.lineage.is_empty()).then(|| render_chain(&self.lineage))
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error[{}]: {}", self.code.ident(), self.message)?;
        for note in &self.notes {
            write!(f, "\n  note: {note}")?;
        }
        if let Some(chain) = self.lineage_chain() {
            write!(f, "\n  flow: {chain}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn security_classification() {
        assert!(DiagCode::ExplicitFlow.is_security());
        assert!(DiagCode::TableKeyFlow.is_security());
        assert!(!DiagCode::TypeMismatch.is_security());
        assert!(!DiagCode::UnknownVar.is_security());
    }

    #[test]
    fn display_includes_code_and_notes() {
        let d = Diagnostic::new(DiagCode::ExplicitFlow, "high flows to low", Span::new(1, 2))
            .with_note("label the target high");
        let s = d.to_string();
        assert!(s.contains("E-EXPLICIT-FLOW"));
        assert!(s.contains("high flows to low"));
        assert!(s.contains("note: label the target high"));
    }

    #[test]
    fn idents_are_stable() {
        assert_eq!(DiagCode::ImplicitFlow.ident(), "E-IMPLICIT-FLOW");
        assert_eq!(DiagCode::TableApplyPcViolation.ident(), "E-TABLE-APPLY-PC");
        assert_eq!(DiagCode::DeclassifyForbidden.ident(), "E-DECLASSIFY-FORBIDDEN");
        assert_eq!(DiagCode::InternalError.ident(), "E-INTERNAL");
        assert_eq!(DiagCode::Timeout.ident(), "E-TIMEOUT");
        assert_eq!(DiagCode::Oversized.ident(), "E-OVERSIZED");
    }

    #[test]
    fn transient_failures_are_classified() {
        // Transient verdicts must never be cached; a deterministic
        // oversized reject may be.
        assert!(DiagCode::InternalError.is_transient());
        assert!(DiagCode::Timeout.is_transient());
        assert!(!DiagCode::Oversized.is_transient());
        assert!(!DiagCode::ExplicitFlow.is_transient());
        // None of the failure-domain codes is a security violation.
        assert!(!DiagCode::InternalError.is_security());
        assert!(!DiagCode::Timeout.is_security());
        assert!(!DiagCode::Oversized.is_security());
    }

    #[test]
    fn display_renders_the_flow_chain() {
        use crate::lineage::{FlowEdge, FlowNode, FlowOp};
        let edge = FlowEdge {
            op: FlowOp::Assign,
            source: FlowNode::new("h", "high", Span::new(1, 2)),
            sink: FlowNode::new("l", "low", Span::new(3, 4)),
        };
        let d = Diagnostic::new(DiagCode::ExplicitFlow, "high flows to low", Span::new(3, 4))
            .with_lineage(vec![edge]);
        let s = d.to_string();
        assert!(s.contains("flow: `h` (high) --assign--> `l` (low)"), "{s}");
        assert!(d.lineage_chain().is_some());
        let plain = Diagnostic::new(DiagCode::UnknownVar, "unknown `x`", Span::new(0, 1));
        assert!(plain.lineage_chain().is_none());
    }
}
