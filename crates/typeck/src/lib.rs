//! The P4BID typecheckers: plain Core P4 typing (§3.3 of the paper, the
//! "p4c" baseline of Table 1) and the information-flow control type system
//! (§4.2, Figures 5–7).
//!
//! The main entry points are [`check_source`] (parse + check a
//! security-annotated P4 program, including the standard prelude) and
//! [`check_program`] (check an already-parsed [`Program`]).
//!
//! # Examples
//!
//! The buggy assignment from Listing 1/2 of the paper — a `high` physical
//! TTL written into the `low` public `ipv4.ttl` — is rejected with an
//! explicit-flow diagnostic, and the fixed program is accepted:
//!
//! ```
//! use p4bid_typeck::{check_source, CheckOptions, DiagCode};
//!
//! let buggy = r#"
//!     header ipv4_t { <bit<8>, low> ttl; }
//!     header local_t { <bit<8>, high> phys_ttl; }
//!     struct headers { ipv4_t ipv4; local_t local_hdr; }
//!     control Ingress(inout headers hdr) {
//!         action update(<bit<8>, high> phys_ttl) {
//!             hdr.ipv4.ttl = phys_ttl;          // !BUG!: low <- high
//!         }
//!         apply { }
//!     }
//! "#;
//! let errs = check_source(buggy, &CheckOptions::ifc()).unwrap_err();
//! assert!(errs.iter().any(|d| d.code == DiagCode::ExplicitFlow));
//!
//! let fixed = buggy.replace("hdr.ipv4.ttl", "hdr.local_hdr.phys_ttl");
//! assert!(check_source(&fixed, &CheckOptions::ifc()).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod diag;
pub mod env;
pub mod lineage;
pub mod oracle;
pub(crate) mod prefix;
pub mod session;

pub use checker::{
    check_program, CheckOptions, Mode, ProgramView, TypedControl, TypedParam, TypedProgram,
};
pub use diag::{DiagCode, Diagnostic};
pub use env::{LabelTable, ScopedEnv, TypeDefs, VarInfo};
pub use lineage::{render_chain, FlowEdge, FlowNode, FlowOp, LineageEdge, LineageGraph};
pub use session::{
    CheckerSession, SessionHarvest, SessionStats, SharedSessionCore, DEFAULT_PREFIX_CACHE_CAP,
};

use p4bid_ast::surface::Program;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The standard prelude, implicitly available to every program checked via
/// [`check_source`]: the BMv2-style `standard_metadata_t`, the builtin
/// match kinds, `NoAction`, `mark_to_drop`, and `num_bits_set` (the
/// popcount helper the D2R case study uses, Listing 3).
///
/// Everything is written in the surface language itself — the typecheckers
/// and the interpreter treat prelude definitions like user code.
pub const PRELUDE: &str = r#"
match_kind { exact, lpm, ternary }

struct standard_metadata_t {
    bit<9>  ingress_port;
    bit<9>  egress_spec;
    bit<9>  egress_port;
    bit<32> instance_type;
    bit<32> packet_length;
    bit<3>  priority;
}

action NoAction() { }

function void mark_to_drop(inout standard_metadata_t meta) {
    meta.egress_spec = 9w511;
}

function bit<32> num_bits_set(in bit<32> x) {
    bit<32> v = x;
    v = v - ((v >> 1) & 0x55555555);
    v = (v & 0x33333333) + ((v >> 2) & 0x33333333);
    v = (v + (v >> 4)) & 0x0F0F0F0F;
    return (v * 0x01010101) >> 24;
}
"#;

/// How many times this process has lexed, parsed, and type-checked the
/// prelude (see [`prelude_build_counts`]). The lex and parse counters can
/// each reach at most 1: both results are cached process-wide.
pub(crate) static PRELUDE_LEXES: AtomicU64 = AtomicU64::new(0);
pub(crate) static PRELUDE_PARSES: AtomicU64 = AtomicU64::new(0);
pub(crate) static PRELUDE_CHECKS: AtomicU64 = AtomicU64::new(0);

/// Process-wide prelude build counters, for asserting that shared-core
/// workers never rebuild the prelude (the batch/fuzz regression suite pins
/// this down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreludeBuildCounts {
    /// Times the prelude text was lexed (at most 1: the `Copy` token slice
    /// is cached process-wide and shared by every session).
    pub lexes: u64,
    /// Times the prelude token slice was parsed (at most 1: the parsed
    /// `Program` is cached process-wide).
    pub parses: u64,
    /// Times the prelude items were type-checked (once per
    /// session-and-lattice on the cold path; once per *core*-and-lattice
    /// on the shared-core path).
    pub checks: u64,
}

/// Reads the process-wide prelude build counters.
#[must_use]
pub fn prelude_build_counts() -> PreludeBuildCounts {
    PreludeBuildCounts {
        lexes: PRELUDE_LEXES.load(Ordering::Relaxed),
        parses: PRELUDE_PARSES.load(Ordering::Relaxed),
        checks: PRELUDE_CHECKS.load(Ordering::Relaxed),
    }
}

/// The prelude token slice, lexed once per process (tokens are `Copy` and
/// carry no text of their own, so the slice is shared statically exactly
/// as the ROADMAP's token-stream-reuse item asked for).
pub(crate) fn prelude_tokens() -> &'static [p4bid_syntax::Token] {
    static TOKENS: OnceLock<Vec<p4bid_syntax::Token>> = OnceLock::new();
    TOKENS.get_or_init(|| {
        PRELUDE_LEXES.fetch_add(1, Ordering::Relaxed);
        p4bid_syntax::lex(PRELUDE).expect("the shipped prelude lexes")
    })
}

/// The prelude, parsed once per process from the cached token slice and
/// shared by handle (sessions clone the `Arc`, never the AST).
pub(crate) fn prelude_arc() -> std::sync::Arc<Program> {
    static PROGRAM: OnceLock<std::sync::Arc<Program>> = OnceLock::new();
    std::sync::Arc::clone(PROGRAM.get_or_init(|| {
        PRELUDE_PARSES.fetch_add(1, Ordering::Relaxed);
        std::sync::Arc::new(
            p4bid_syntax::parse_tokens(PRELUDE, prelude_tokens())
                .expect("the shipped prelude parses"),
        )
    }))
}

/// Parses the prelude: a clone of the process-wide cached parse of the
/// process-wide cached token slice. Infallible for the shipped prelude;
/// kept private so the unit tests can prove it.
fn prelude_items() -> Program {
    (*prelude_arc()).clone()
}

/// The `--max-source-bytes` guard: the single [`DiagCode::Oversized`]
/// diagnostic for a source that exceeds the cap, or `None` when it fits
/// (or the guard is off). Checked before the lexer ever sees the input.
pub(crate) fn oversized_diag(source: &str, opts: &CheckOptions) -> Option<Diagnostic> {
    let cap = opts.max_source_bytes;
    (cap > 0 && source.len() as u64 > cap).then(|| {
        Diagnostic::new(
            DiagCode::Oversized,
            format!("program source is {} bytes, over the {cap}-byte cap", source.len()),
            p4bid_ast::span::Span::dummy(),
        )
    })
}

/// Parses and typechecks a source program, with the [`PRELUDE`] available.
///
/// # Errors
///
/// Returns parser errors (as a single [`Diagnostic`] with code
/// [`DiagCode::Malformed`]), a single [`DiagCode::Oversized`] diagnostic
/// when the source exceeds `opts.max_source_bytes`, or the full list of
/// type/flow errors.
pub fn check_source(source: &str, opts: &CheckOptions) -> Result<TypedProgram, Vec<Diagnostic>> {
    if let Some(d) = oversized_diag(source, opts) {
        return Err(vec![d]);
    }
    let user = p4bid_syntax::parse(source).map_err(|e| {
        vec![Diagnostic::new(DiagCode::Malformed, e.message().to_string(), e.span())]
    })?;
    let mut program = prelude_items();
    program.items.extend(user.items);
    check_program(program, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_parses_and_checks_in_both_modes() {
        let p = prelude_items();
        assert!(p.items.len() >= 4);
        check_program(p.clone(), &CheckOptions::ifc()).expect("prelude is IFC-clean");
        check_program(p, &CheckOptions::base()).expect("prelude is base-clean");
    }

    #[test]
    fn empty_program_with_prelude_checks() {
        let t =
            check_source("control C(inout bit<8> x) { apply { } }", &CheckOptions::ifc()).unwrap();
        assert_eq!(t.controls.len(), 1);
        assert_eq!(t.controls[0].name, "C");
    }

    #[test]
    fn parse_errors_become_diagnostics() {
        let errs = check_source("control {", &CheckOptions::ifc()).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].code, DiagCode::Malformed);
    }

    #[test]
    fn oversized_sources_are_rejected_before_parsing() {
        let src = "control C(inout bit<8> x) { apply { } }";
        let tight = CheckOptions::ifc().with_max_source_bytes(8);
        let errs = check_source(src, &tight).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].code, DiagCode::Oversized);
        // The cap is exclusive: a source exactly at the cap still checks.
        let exact = CheckOptions::ifc().with_max_source_bytes(src.len() as u64);
        assert!(check_source(src, &exact).is_ok());
        // 0 disables the guard.
        assert!(check_source(src, &CheckOptions::ifc()).is_ok());
        // Even unparseable garbage is rejected as oversized, not malformed.
        let errs = check_source("control {{{{ not p4", &tight).unwrap_err();
        assert_eq!(errs[0].code, DiagCode::Oversized);
    }

    #[test]
    fn expired_deadline_is_a_timeout_diagnostic() {
        // `check_timeout_ms: 0` disables the guard, so arm an explicit
        // deadline in the past to hit the expiry path deterministically.
        let mut session = CheckerSession::new(CheckOptions::ifc());
        session.set_deadline(Some(std::time::Instant::now() - std::time::Duration::from_millis(1)));
        let errs =
            session.check("control C(inout bit<8> x) { apply { x = x + 8w1; } }").unwrap_err();
        assert!(errs.iter().any(|d| d.code == DiagCode::Timeout), "{errs:?}");
        // The deadline was consumed: the next check runs unguarded.
        assert!(session.check("control C(inout bit<8> x) { apply { x = x + 8w1; } }").is_ok());
    }
}
