//! Item-granular prefix snapshots: content-hashed checkpoints of the
//! checker's carried state after each top-level item.
//!
//! A [`CheckerSession`](crate::CheckerSession) that finishes a clean check
//! of an `N`-item program records one [`PrefixEntry`] per item boundary,
//! keyed by the FNV chain hash of the token spans up to that boundary
//! (see [`p4bid_syntax::item_segments`]). When a program is resubmitted
//! with an edit near the end, the session probes the deepest matching
//! boundary and re-checks only the suffix — an edit to the last control
//! of a 64-item program re-checks one item, not 64.
//!
//! # Soundness
//!
//! Three rules keep a snapshot hit byte-identical to a cold check:
//!
//! * **Byte re-verification.** The chain hash is only a locator; a probe
//!   compares the stored prefix bytes against the submitted source, so a
//!   64-bit collision can cause a miss, never a wrong resume.
//! * **Lattice pinning.** Entries store the lattice they were checked
//!   under and only match a submission resolving to an equal lattice.
//!   The session resolves the lattice *conservatively* before probing
//!   (`quick_lattice`); any doubt falls back to the cold path.
//! * **Tier purity.** Entries are only inserted when every interner/pool
//!   handle in the snapshot lies in the shared frozen segment
//!   ([`CheckerState::within_tiers`](crate::checker::CheckerState)), so a
//!   snapshot taken by one worker is valid in every session over the
//!   same frozen base — and survives an overlay refreeze, which keeps
//!   frozen ids stable by construction.
//!
//! Failed runs never insert (mirroring the serve verdict cache's refusal
//! of transient verdicts): checkpoints are collected during the run but
//! discarded unless the run ends with zero diagnostics, so a panic or
//! timeout mid-check cannot poison the snapshot tree.

use std::collections::HashMap;
use std::sync::Arc;

use p4bid_ast::span::Span;
use p4bid_ast::surface::Item;
use p4bid_lattice::{Label, Lattice};

use crate::checker::{CheckerState, TypedControl};
use crate::lineage::{FlowOp, LineageEdge};

/// One replayed lineage edge: the rendered, owned form of a
/// `PendingEdge`, carried inside prefix snapshots so resumed runs can
/// still explain violations whose origins lie in the (un-re-checked)
/// prefix. Labels stay as lattice indices — the entry's pinned lattice
/// resolves them to names at render time.
#[derive(Debug, Clone)]
pub(crate) struct OwnedEdge {
    pub(crate) op: FlowOp,
    pub(crate) src_text: Box<str>,
    pub(crate) src_label: Label,
    pub(crate) src_span: Span,
    pub(crate) sink_text: Box<str>,
    pub(crate) sink_label: Label,
    pub(crate) sink_span: Span,
}

impl OwnedEdge {
    pub(crate) fn lineage_edge(&self) -> LineageEdge {
        LineageEdge {
            op: self.op,
            src_span: self.src_span,
            src_label: self.src_label,
            sink_span: self.sink_span,
            sink_label: self.sink_label,
        }
    }
}

/// The full flow log of one clean cold run, rendered to owned edges with
/// its structural trace keys intact. Every checkpoint of that run shares
/// one `Arc<SeedEdges>` and remembers how many leading edges belong to
/// its prefix (`edges_len`), so storage stays linear in the run.
#[derive(Debug, Default)]
pub(crate) struct SeedEdges {
    pub(crate) edges: Vec<OwnedEdge>,
    pub(crate) sink_keys: Vec<u64>,
    pub(crate) src_keys: Vec<u64>,
    pub(crate) src_ranges: Vec<(u32, u32)>,
}

impl SeedEdges {
    pub(crate) fn src_keys_of(&self, ix: usize) -> &[u64] {
        let (start, len) = self.src_ranges[ix];
        &self.src_keys[start as usize..(start as usize + len as usize)]
    }
}

/// One prefix checkpoint: everything needed to restart a check after
/// `items` top-level items as if they had just been checked.
#[derive(Debug, Clone)]
pub(crate) struct PrefixEntry {
    /// The lattice the prefix was checked under (equality-matched).
    pub(crate) lattice: Lattice,
    /// The exact prefix bytes (chain hashes only locate; bytes decide).
    pub(crate) prefix: Arc<str>,
    /// Number of top-level items the snapshot covers.
    pub(crate) items: u32,
    /// Δ/Γ/signatures after those items.
    pub(crate) state: CheckerState,
    /// The prefix's surface AST (shared across the run's checkpoints),
    /// re-used to assemble the resumed `TypedProgram` without re-parsing.
    pub(crate) items_ast: Arc<Vec<Item>>,
    /// The run's checked controls; the first `controls_len` belong to
    /// this prefix.
    pub(crate) controls: Arc<Vec<TypedControl>>,
    pub(crate) controls_len: u32,
    /// The run's rendered flow log; the first `edges_len` edges belong
    /// to this prefix and seed the resumed run's lineage.
    pub(crate) seed: Arc<SeedEdges>,
    pub(crate) edges_len: u32,
    /// LRU stamp (touched on hit).
    stamp: u64,
}

impl PrefixEntry {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        lattice: Lattice,
        prefix: Arc<str>,
        items: u32,
        state: CheckerState,
        items_ast: Arc<Vec<Item>>,
        controls: Arc<Vec<TypedControl>>,
        controls_len: u32,
        seed: Arc<SeedEdges>,
        edges_len: u32,
    ) -> Self {
        PrefixEntry {
            lattice,
            prefix,
            items,
            state,
            items_ast,
            controls,
            controls_len,
            seed,
            edges_len,
            stamp: 0,
        }
    }
}

/// Bounded chain-hash-keyed store of [`PrefixEntry`]s with touch-on-hit
/// LRU eviction (O(n) min-scan, like the serve verdict cache). A cap of
/// zero disables the cache entirely.
#[derive(Debug)]
pub(crate) struct PrefixCache {
    cap: usize,
    len: usize,
    clock: u64,
    map: HashMap<u64, Vec<PrefixEntry>>,
}

impl PrefixCache {
    pub(crate) fn new(cap: usize) -> Self {
        PrefixCache { cap, len: 0, clock: 0, map: HashMap::new() }
    }

    /// Looks up a snapshot for the given chain hash covering exactly
    /// `items` top-level items, verifying the lattice and the prefix
    /// bytes. Touches the entry's LRU stamp and clones it out (cheap:
    /// pooled ids and `Arc` bumps).
    pub(crate) fn probe(
        &mut self,
        chain: u64,
        lattice: &Lattice,
        prefix: &str,
        items: u32,
    ) -> Option<PrefixEntry> {
        if self.cap == 0 {
            return None;
        }
        self.clock += 1;
        let bucket = self.map.get_mut(&chain)?;
        let entry = bucket
            .iter_mut()
            .find(|e| e.items == items && e.lattice == *lattice && *e.prefix == *prefix)?;
        entry.stamp = self.clock;
        Some(entry.clone())
    }

    /// Inserts a snapshot under its chain hash, replacing any entry with
    /// the same identity and evicting the least-recently-used entry when
    /// over capacity. Callers enforce the soundness rules (tier purity,
    /// clean-run-only) *before* inserting.
    pub(crate) fn insert(&mut self, chain: u64, mut entry: PrefixEntry) {
        if self.cap == 0 {
            return;
        }
        self.clock += 1;
        entry.stamp = self.clock;
        let bucket = self.map.entry(chain).or_default();
        if let Some(old) = bucket.iter_mut().find(|e| {
            e.items == entry.items && e.lattice == entry.lattice && e.prefix == entry.prefix
        }) {
            *old = entry;
            return;
        }
        bucket.push(entry);
        self.len += 1;
        if self.len > self.cap {
            self.evict_lru();
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    fn evict_lru(&mut self) {
        let oldest = self
            .map
            .iter()
            .flat_map(|(chain, bucket)| bucket.iter().map(|e| (e.stamp, *chain)))
            .min()
            .map(|(_, chain)| chain);
        let Some(chain) = oldest else { return };
        let bucket = self.map.get_mut(&chain).expect("bucket of the LRU entry exists");
        let ix = bucket
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(ix, _)| ix)
            .expect("LRU bucket is non-empty");
        bucket.remove(ix);
        if bucket.is_empty() {
            self.map.remove(&chain);
        }
        self.len -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(lat: Lattice, prefix: &str, items: u32) -> PrefixEntry {
        PrefixEntry::new(
            lat,
            prefix.into(),
            items,
            CheckerState::empty(),
            Arc::new(Vec::new()),
            Arc::new(Vec::new()),
            0,
            Arc::new(SeedEdges::default()),
            0,
        )
    }

    #[test]
    fn probe_verifies_bytes_lattice_and_depth() {
        let mut c = PrefixCache::new(8);
        let lat = Lattice::two_point();
        c.insert(7, entry(lat.clone(), "typedef bit<8> t;", 1));
        assert!(c.probe(7, &lat, "typedef bit<8> t;", 1).is_some());
        // Same chain, different bytes: a collision misses instead of lying.
        assert!(c.probe(7, &lat, "typedef bit<9> u;", 1).is_none());
        // Different depth under the same chain misses.
        assert!(c.probe(7, &lat, "typedef bit<8> t;", 2).is_none());
        // Different lattice misses.
        let diamond = Lattice::from_order(&["bot", "top"], &[("bot", "top")]).unwrap();
        assert!(c.probe(7, &diamond, "typedef bit<8> t;", 1).is_none());
        // Unknown chain misses.
        assert!(c.probe(8, &lat, "typedef bit<8> t;", 1).is_none());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut c = PrefixCache::new(2);
        let lat = Lattice::two_point();
        c.insert(1, entry(lat.clone(), "a", 1));
        c.insert(2, entry(lat.clone(), "b", 1));
        // Touch 1 so 2 is coldest, then overflow.
        assert!(c.probe(1, &lat, "a", 1).is_some());
        c.insert(3, entry(lat.clone(), "c", 1));
        assert_eq!(c.len(), 2);
        assert!(c.probe(2, &lat, "b", 1).is_none(), "coldest entry was evicted");
        assert!(c.probe(1, &lat, "a", 1).is_some());
        assert!(c.probe(3, &lat, "c", 1).is_some());
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut c = PrefixCache::new(4);
        let lat = Lattice::two_point();
        c.insert(1, entry(lat.clone(), "a", 1));
        c.insert(1, entry(lat.clone(), "a", 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn cap_zero_disables() {
        let mut c = PrefixCache::new(0);
        let lat = Lattice::two_point();
        c.insert(1, entry(lat.clone(), "a", 1));
        assert_eq!(c.len(), 0);
        assert!(c.probe(1, &lat, "a", 1).is_none());
    }
}
