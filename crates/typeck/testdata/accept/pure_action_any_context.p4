// An action with no writes has pc_fn = ⊤ and may be called from any
// security context (T-Call).
control C(inout <bit<8>, high> h) {
    action nop() { }
    apply {
        if (h == 8w0) {
            nop();
        }
    }
}
