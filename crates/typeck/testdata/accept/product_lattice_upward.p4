// The confidentiality × integrity product lattice, legal direction:
// public-trusted data may flow into every other point (it is ⊥), and
// each component may be raised independently.
lattice {
    pub_trust < pub_untrust;
    pub_trust < sec_trust;
    pub_untrust < sec_untrust;
    sec_trust < sec_untrust;
}
header creds_t {
    <bit<32>, pub_trust>   announced;
    <bit<32>, pub_untrust> external;
    <bit<32>, sec_trust>   session_key;
    <bit<32>, sec_untrust> scratch;
}
control Raise(inout creds_t hdr) {
    apply {
        hdr.session_key = hdr.session_key + hdr.announced;
        hdr.external = hdr.announced;
        hdr.scratch = hdr.external + hdr.session_key;
    }
}
