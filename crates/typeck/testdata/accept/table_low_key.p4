// The §5.2 cache, fixed: a public address may key a table whose actions
// write public state (T-TblDecl).
control C(inout <bit<8>, low> addr, inout <bool, low> hit) {
    action cache_hit() { hit = true; }
    action cache_miss() { hit = false; }
    table fetch {
        key = { addr: exact; }
        actions = { cache_hit; cache_miss; }
        default_action = cache_miss;
    }
    apply {
        fetch.apply();
    }
}
