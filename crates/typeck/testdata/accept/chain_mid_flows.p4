// A three-level chain l0 < l1 < l2: each level may flow upward, and a
// guard at l1 may drive writes at l1 and l2 (T-Cond raises the branch
// pc to l1, which is below both write bounds).
lattice { l0 < l1; l1 < l2; }
header tiers_t {
    <bit<8>, l0> public;
    <bit<8>, l1> internal;
    <bit<8>, l2> secret;
}
control Tiers(inout tiers_t hdr) {
    apply {
        hdr.internal = hdr.public;
        hdr.secret = hdr.internal + hdr.public;
        if (hdr.internal == 8w3) {
            hdr.internal = 8w0;
            hdr.secret = hdr.secret + 8w1;
        }
    }
}
