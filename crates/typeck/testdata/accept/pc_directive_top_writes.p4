// pc: A
// At ambient pc = A (set by the harness directive above), writes to
// fields at A and above are allowed.
lattice { bot < A; bot < B; A < top; B < top; }
control Alice(inout <bit<32>, A> own, inout <bit<32>, top> telem) {
    apply {
        own = own + 32w1;
        telem = telem + 32w1;
    }
}
