// Indexing a high-element stack with a public index is fine: the read
// joins element and index labels, high ⊔ low = high (T-Index).
control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
    <bit<8>, high>[4] arr;
    apply {
        h = arr[l];
        arr[l] = h;
    }
}
