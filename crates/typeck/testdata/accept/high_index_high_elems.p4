// Indexing a stack of secret elements with a secret index is fine:
// T-Index only forbids the index being *above* the elements.
control C(inout <bit<8>, high> h) {
    <bit<8>, high>[4] table_mem;
    apply {
        table_mem[h] = h;
        h = table_mem[8w2];
    }
}
