// Branching on a secret is fine as long as both arms only write secret
// locations (T-Cond raises the pc to high inside the arms).
control C(inout <bit<8>, high> h) {
    apply {
        if (h == 8w0) {
            h = 8w1;
        } else {
            h = 8w2;
        }
    }
}
