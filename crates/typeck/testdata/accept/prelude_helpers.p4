// The implicit prelude: standard_metadata_t, num_bits_set, mark_to_drop
// and NoAction are available without declaration.
control C(inout standard_metadata_t meta, inout bit<32> x) {
    apply {
        x = num_bits_set(x);
        mark_to_drop(meta);
        NoAction();
    }
}
