// `in` arguments are covariant: a low value may be passed where a high
// parameter is expected (T-SubType-In).
control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
    action stash(in <bit<8>, high> v) { h = v; }
    apply {
        stash(l);
        stash(h);
    }
}
