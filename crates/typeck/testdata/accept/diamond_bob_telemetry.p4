// Listing 6's Bob_Ingress on the Figure 8b diamond: Bob increments the
// shared ⊤ telemetry counter, keyed on ⊥ routing data.
lattice { bot < A; bot < B; A < top; B < top; }
header data_t {
    <bit<32>, A> alice_data;
    <bit<32>, B> bob_data;
    <bit<32>, top> telem;
    <bit<32>, bot> eth_dst;
}
@pc(B) control Bob(inout data_t hdr) {
    action set_by_bob() { hdr.telem = hdr.telem + 32w1; }
    table update {
        key = { hdr.eth_dst: exact; }
        actions = { set_by_bob; NoAction; }
    }
    apply {
        update.apply();
    }
}
