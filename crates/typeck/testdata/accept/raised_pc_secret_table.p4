// A control running entirely in a secret context (@pc(high)) may still
// apply a table whose actions only write secret state: pc_tbl = high,
// and the secret key is below every action's write bound (T-TblDecl,
// T-TblCall).
header flow_t {
    <bit<16>, high> id;
    <bit<16>, high> count;
}
@pc(high) control Track(inout flow_t hdr) {
    action bump(<bit<16>, high> step) { hdr.count = hdr.count + step; }
    table counters {
        key = { hdr.id: exact; }
        actions = { bump; NoAction; }
        default_action = NoAction;
    }
    apply {
        counters.apply();
    }
}
