// Base-typing features together: typedefs, structs nesting headers,
// functions with returns on every path, and int-literal coercion.
typedef bit<32> ip_t;
header inner_t { bit<8> v; }
struct outer_t { inner_t nested; }
function bit<8> clampv(in bit<8> x) {
    if (x == 8w255) {
        return 8w254;
    } else {
        return x;
    }
}
control C(inout outer_t o, inout <ip_t, high> secret_ip) {
    apply {
        o.nested.v = clampv(o.nested.v + 1);
        secret_ip = secret_ip + 1;
    }
}
