// declassify: allow
// With the grant in force, `declassify(e)` lowers e's label to ⊥ and
// the downward assignment typechecks; the lineage graph still records
// the declassification edge as the audit trail.
control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
    apply {
        l = declassify(h);
    }
}
