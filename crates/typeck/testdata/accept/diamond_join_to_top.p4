// Diamond-lattice joins flow upward: A ⊔ B = top may be stored in the
// telemetry slot labeled top (Listing 6's legal aggregation direction).
lattice { bot < A; bot < B; A < top; B < top; }
header data_t {
    <bit<32>, A>   alice_data;
    <bit<32>, B>   bob_data;
    <bit<32>, top> telemetry;
}
control Aggregate(inout data_t hdr) {
    apply {
        hdr.telemetry = hdr.alice_data + hdr.bob_data;
    }
}
