// Upward flows are always fine: low data may be stored in high
// locations (T-Assign with χ₂ ⊑ χ₁).
control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
    apply {
        h = l;
        h = h + l;
    }
}
