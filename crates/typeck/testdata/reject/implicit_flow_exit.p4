// expect: E-IMPLICIT-FLOW
// `exit` types at ⊥ only (T-Exit): the presence of the signal would
// leak the secret guard.
control C(inout <bit<8>, high> h) {
    apply {
        if (h == 8w0) {
            exit;
        }
    }
}
