// expect: E-EXPLICIT-FLOW
// The label of an expression is the join of its operands: low ⊔ high =
// high may not land in a low location.
control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
    apply {
        l = h + l;
    }
}
