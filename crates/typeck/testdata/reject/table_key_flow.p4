// expect: E-TABLE-KEY-FLOW
// The §5.2 cache bug: a secret query keys a table whose actions write
// the public hit flag, leaking lookups (T-TblDecl: χ_k ⋢ pc_fn).
control C(inout <bit<8>, high> query, inout <bool, low> hit) {
    action cache_hit() { hit = true; }
    table fetch {
        key = { query: exact; }
        actions = { cache_hit; }
    }
    apply {
        fetch.apply();
    }
}
