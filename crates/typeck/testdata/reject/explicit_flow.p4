// expect: E-EXPLICIT-FLOW
// The canonical downward assignment: secret data stored in a public
// location (T-Assign with χ₂ ⋢ χ₁).
control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
    apply {
        l = h;
    }
}
