// expect: E-DECLASSIFY-FORBIDDEN
// `declassify(e)` erases e's label down to ⊥, which the default policy
// forbids: the grant takes `// declassify: allow` here, or a policy-pack
// rule (`declassify = true`) at the CLI layer.
control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
    apply {
        l = declassify(h);
    }
}
