// pc: A
// expect: E-IMPLICIT-FLOW
// At ambient pc = A (harness directive above), writes to ⊥-labeled
// routing data are forbidden: Alice may only write at A and above.
lattice { bot < A; bot < B; A < top; B < top; }
control Alice(inout <bit<32>, bot> routing) {
    apply {
        routing = 32w1;
    }
}
