// expect: E-EXPLICIT-FLOW
// A hand-declared confidentiality × integrity product lattice
// (pub/sec × trust/untrust, ordered pointwise). Declassification —
// writing secret-but-trusted data into the public-trusted slot — drops
// the confidentiality component and must be rejected.
lattice {
    pub_trust < pub_untrust;
    pub_trust < sec_trust;
    pub_untrust < sec_untrust;
    sec_trust < sec_untrust;
}
header creds_t {
    <bit<32>, pub_trust> announced;
    <bit<32>, sec_trust> session_key;
}
control Declassify(inout creds_t hdr) {
    apply {
        hdr.announced = hdr.session_key;
    }
}
