// expect: E-TABLE-APPLY-PC
// Implicit flow through a table action under a raised pc: Alice's
// control (@pc(A)) applies a table whose action writes Bob's field, so
// pc_tbl = B and A ⋢ B on the Figure 8b diamond (T-TblCall).
lattice { bot < A; bot < B; A < top; B < top; }
header data_t {
    <bit<32>, bot> shared;
    <bit<32>, B>   bob_data;
}
@pc(A) control Alice(inout data_t hdr) {
    action set_bob() { hdr.bob_data = 32w1; }
    table route_bob {
        key = { hdr.shared: exact; }
        actions = { set_bob; }
    }
    apply {
        route_bob.apply();
    }
}
