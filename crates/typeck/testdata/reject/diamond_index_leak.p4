// expect: E-INDEX-LEAK
// Indexing Bob's stack with Alice's index on the diamond: A and B are
// incomparable, so which element is touched would reveal Alice's data
// to Bob (T-Index: χ₂ ⋢ χ₁).
lattice { bot < A; bot < B; A < top; B < top; }
control C(inout <bit<8>, A> alice_cursor) {
    <bit<8>, B>[8] bob_slots;
    apply {
        bob_slots[alice_cursor] = 8w0;
    }
}
