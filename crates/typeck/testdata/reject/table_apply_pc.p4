// expect: E-TABLE-APPLY-PC
// A table over public state (pc_tbl = low) applied under a secret
// guard (T-TblCall: pc ⋢ pc_tbl).
control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
    action set_low() { l = 8w1; }
    table t {
        key = { l: exact; }
        actions = { set_low; }
    }
    apply {
        if (h == 8w0) {
            t.apply();
        }
    }
}
