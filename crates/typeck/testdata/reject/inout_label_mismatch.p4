// expect: E-INOUT-LABEL
// No subtyping on `inout` (§4.2): passing a low variable to an inout
// high parameter would let the callee write at the wrong label.
control C(inout <bool, low> l) {
    action write_to_high(inout <bool, high> h) { h = true; }
    apply {
        write_to_high(l);
    }
}
