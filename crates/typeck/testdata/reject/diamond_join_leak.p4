// expect: E-EXPLICIT-FLOW
// A diamond-lattice join: A ⊔ B = top, which must not flow back into an
// A-labeled location (T-BinOp joins the operand labels, T-Assign
// rejects top ⋢ A).
lattice { bot < A; bot < B; A < top; B < top; }
header data_t {
    <bit<32>, A> alice_data;
    <bit<32>, B> bob_data;
}
control Mix(inout data_t hdr) {
    apply {
        hdr.alice_data = hdr.alice_data + hdr.bob_data;
    }
}
