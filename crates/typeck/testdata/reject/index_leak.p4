// expect: E-INDEX-LEAK
// Indexing public elements with a secret index leaks the index through
// which element is observed (T-Index: χ₂ ⋢ χ₁).
control C(inout <bit<8>, high> h) {
    <bit<8>, low>[4] arr;
    apply {
        h = arr[h];
    }
}
