// expect: E-CALL-PC
// Calling a low-writing action inside a secret guard leaks the guard
// through the callee's writes (T-Call: pc ⋢ pc_fn).
control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
    action bump_public() { l = l + 8w1; }
    apply {
        if (h == 8w7) {
            bump_public();
        }
    }
}
