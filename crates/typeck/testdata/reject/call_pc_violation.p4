// expect: E-CALL-PC
// §4.1's laundering attempt: an action that writes low state has
// pc_fn = low and may not be called under a high guard (T-Call).
control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
    action set_low() { l = 8w1; }
    apply {
        if (h == 8w1) {
            set_low();
        }
    }
}
