// expect: E-IMPLICIT-FLOW
// T-Return types only at ⊥: returning early under a secret guard turns
// the function's control flow into a covert channel.
control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
    function bit<8> probe(in <bit<8>, high> secret) {
        if (secret == 8w0) {
            return 8w1;
        }
        return 8w0;
    }
    apply {
        h = probe(h);
    }
}
