// expect: E-EXPLICIT-FLOW
// A two-hop laundering chain: the secret moves through a local variable
// before landing in the public header. The diagnostic's flow path must
// name every hop, not just the final assignment.
control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
    apply {
        <bit<8>, high> x = h;
        l = x;
    }
}
