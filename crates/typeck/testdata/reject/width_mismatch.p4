// expect: E-TYPE-MISMATCH
// A plain (base) type error, reported in both modes: bit widths must
// match in assignments.
control C(inout bit<8> x, inout bit<16> y) {
    apply {
        x = y;
    }
}
