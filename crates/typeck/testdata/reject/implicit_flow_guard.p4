// expect: E-IMPLICIT-FLOW
// Listing 1's bug shape: a public write under a secret guard leaks one
// bit of the guard (T-Cond/T-Assign with pc ⋢ χ₁).
control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {
    apply {
        if (h == 8w0) {
            l = 8w1;
        }
    }
}
