// expect: E-EXPLICIT-FLOW
// Listing 6 line 12 on the Figure 8b diamond: Alice's control must not
// write Bob's field — A and B are incomparable.
lattice { bot < A; bot < B; A < top; B < top; }
header data_t {
    <bit<32>, A> alice_data;
    <bit<32>, B> bob_data;
}
@pc(A) control Alice(inout data_t hdr) {
    action set_by_alice(<bit<32>, A> value) { hdr.bob_data = value; }
    apply { }
}
