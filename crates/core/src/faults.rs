//! Deterministic fault injection for chaos testing.
//!
//! The failure-domain layer (panic-isolated workers, resource guards,
//! graceful drain) only earns its keep if every isolation path can be
//! exercised *repeatably* in CI. This module injects faults at the
//! pipeline's seams, driven by one environment variable:
//!
//! ```text
//! P4BID_FAULTS=<seed>:<spec>
//! ```
//!
//! where `<spec>` is a comma-separated list of `site=value` pairs:
//!
//! | site       | value     | effect                                          |
//! |------------|-----------|-------------------------------------------------|
//! | `panic`    | percent   | a checking worker panics on this program        |
//! | `slow`     | percent   | a check sleeps `slow-ms` before running         |
//! | `slow-ms`  | millis    | sleep duration for `slow` (default 50)          |
//! | `scan-eio` | percent   | the watch scanner's file read fails with `EIO`  |
//! | `sock-eio` | percent   | a socket connection read fails with `EIO`       |
//!
//! e.g. `P4BID_FAULTS=42:panic=10,slow=5,slow-ms=20`.
//!
//! **Determinism is the whole point.** Each decision is a pure function of
//! `(seed, site, key)` — no RNG state, no call counters — where the key is
//! the *content hash* of the program for check-path faults and the *path
//! hash* for scanner faults. The same program therefore panics (or
//! doesn't) regardless of which worker picks it up, how many jobs run, or
//! how work was stolen — which is exactly what lets the chaos suite assert
//! byte-identical reports across `--jobs 1/2/8` with faults enabled.
//!
//! With `P4BID_FAULTS` unset (the production configuration) every query
//! short-circuits on a `None` plan; the hot path costs one relaxed load.

use std::sync::OnceLock;
use std::time::Duration;

/// An injection site: where in the pipeline a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// A per-program panic inside a checking worker.
    WorkerPanic,
    /// A per-program artificial delay before checking.
    SlowCheck,
    /// An `EIO` from the directory scanner's file read.
    ScanRead,
    /// An `EIO` from a socket connection read.
    SocketRead,
}

impl Site {
    /// The site's mixing tag: distinct per site so `panic=100` and
    /// `slow=100` select independent program subsets at lower rates.
    fn tag(self) -> u64 {
        match self {
            Site::WorkerPanic => 0x70_61_6e_69, // "pani"
            Site::SlowCheck => 0x73_6c_6f_77,   // "slow"
            Site::ScanRead => 0x73_63_61_6e,    // "scan"
            Site::SocketRead => 0x73_6f_63_6b,  // "sock"
        }
    }
}

/// A parsed `P4BID_FAULTS` plan: per-site percentages plus the slow-check
/// sleep duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The mixing seed (the part before `:`).
    pub seed: u64,
    /// Percent of programs whose check panics.
    pub panic_pct: u8,
    /// Percent of programs whose check is delayed.
    pub slow_pct: u8,
    /// The delay for slowed checks, in milliseconds.
    pub slow_ms: u64,
    /// Percent of scanner file reads that fail with `EIO`.
    pub scan_eio_pct: u8,
    /// Percent of socket connection reads that fail with `EIO`.
    pub sock_eio_pct: u8,
}

impl FaultPlan {
    /// Parses a `<seed>:<spec>` string. Returns `None` on any malformed
    /// input — chaos configuration errors should disable injection, not
    /// crash the service they exist to harden.
    #[must_use]
    pub fn parse(raw: &str) -> Option<FaultPlan> {
        let (seed, spec) = raw.split_once(':')?;
        let mut plan =
            FaultPlan { seed: seed.trim().parse().ok()?, slow_ms: 50, ..Default::default() };
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (site, value) = pair.split_once('=')?;
            let value = value.trim();
            match site.trim() {
                "panic" => plan.panic_pct = value.parse::<u8>().ok()?.min(100),
                "slow" => plan.slow_pct = value.parse::<u8>().ok()?.min(100),
                "slow-ms" => plan.slow_ms = value.parse().ok()?,
                "scan-eio" => plan.scan_eio_pct = value.parse::<u8>().ok()?.min(100),
                "sock-eio" => plan.sock_eio_pct = value.parse::<u8>().ok()?.min(100),
                _ => return None,
            }
        }
        Some(plan)
    }

    /// The configured percentage for one site.
    #[must_use]
    pub fn pct(&self, site: Site) -> u8 {
        match site {
            Site::WorkerPanic => self.panic_pct,
            Site::SlowCheck => self.slow_pct,
            Site::ScanRead => self.scan_eio_pct,
            Site::SocketRead => self.sock_eio_pct,
        }
    }

    /// Whether a fault fires at `site` for the work item identified by
    /// `key`. Pure in `(self.seed, site, key)`.
    #[must_use]
    pub fn fires(&self, site: Site, key: u64) -> bool {
        let pct = u64::from(self.pct(site));
        if pct == 0 {
            return false;
        }
        mix(self.seed ^ site.tag().wrapping_mul(0x9e37_79b9_7f4a_7c15), key) % 100 < pct
    }
}

/// SplitMix64-style finalizer over the seed/site/key mix: cheap, stateless,
/// and well distributed even for consecutive keys.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a.wrapping_add(b).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The process-wide plan, parsed once from `P4BID_FAULTS`. `None` when the
/// variable is unset or malformed.
pub fn plan() -> Option<&'static FaultPlan> {
    static PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();
    PLAN.get_or_init(|| std::env::var("P4BID_FAULTS").ok().and_then(|v| FaultPlan::parse(&v)))
        .as_ref()
}

/// Whether a fault fires at `site` for `key` under the process-wide plan.
#[must_use]
pub fn fires(site: Site, key: u64) -> bool {
    plan().is_some_and(|p| p.fires(site, key))
}

/// Runs the check-path faults for the program with content hash `key`:
/// sleeps if a slow-check fault fires, then panics if a worker-panic fault
/// fires. Called by the batch/serve/fuzz workers *inside* their
/// `catch_unwind` isolation, after the per-program deadline is armed (so
/// injected slowness deterministically exercises `--check-timeout-ms`).
///
/// # Panics
///
/// Panics deliberately when a `panic=` fault fires for `key`.
pub fn check_faults(key: u64) {
    let Some(p) = plan() else { return };
    if p.fires(Site::SlowCheck, key) {
        std::thread::sleep(Duration::from_millis(p.slow_ms));
    }
    assert!(
        !p.fires(Site::WorkerPanic, key),
        "injected fault: worker panic (P4BID_FAULTS, key {key:#018x})"
    );
}

/// The injected I/O error for read faults (`EIO`-flavored, so it lands on
/// the same match arms as a real disk or socket error).
#[must_use]
pub fn injected_eio(what: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault: EIO reading {what} (P4BID_FAULTS)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let p = FaultPlan::parse("42:panic=10,slow=5,slow-ms=20,scan-eio=3,sock-eio=7").unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.panic_pct, 10);
        assert_eq!(p.slow_pct, 5);
        assert_eq!(p.slow_ms, 20);
        assert_eq!(p.scan_eio_pct, 3);
        assert_eq!(p.sock_eio_pct, 7);
    }

    #[test]
    fn slow_ms_defaults_to_50() {
        assert_eq!(FaultPlan::parse("1:slow=100").unwrap().slow_ms, 50);
    }

    #[test]
    fn malformed_specs_disable_injection() {
        for raw in ["", "42", "42:panic", "42:panic=x", "42:bogus=1", "x:panic=1"] {
            assert_eq!(FaultPlan::parse(raw), None, "{raw:?}");
        }
    }

    #[test]
    fn percentages_clamp_to_100() {
        let p = FaultPlan::parse("1:panic=250").unwrap();
        assert_eq!(p.panic_pct, 100);
        assert!(p.fires(Site::WorkerPanic, 12345));
    }

    #[test]
    fn decisions_are_pure_and_site_scoped() {
        let p = FaultPlan::parse("7:panic=30,slow=30").unwrap();
        let fired: Vec<bool> = (0..200).map(|k| p.fires(Site::WorkerPanic, k)).collect();
        // Pure: the same (seed, site, key) always decides the same way.
        for (k, &f) in fired.iter().enumerate() {
            assert_eq!(p.fires(Site::WorkerPanic, k as u64), f);
        }
        // Roughly the configured rate (loose bounds; the mix is not a CSPRNG).
        let hits = fired.iter().filter(|&&f| f).count();
        assert!((20..=90).contains(&hits), "{hits}/200 at 30%");
        // Sites are independent: panic and slow pick different subsets.
        let slow: Vec<bool> = (0..200).map(|k| p.fires(Site::SlowCheck, k)).collect();
        assert_ne!(fired, slow);
    }

    #[test]
    fn different_seeds_pick_different_subsets() {
        let a = FaultPlan::parse("1:panic=50").unwrap();
        let b = FaultPlan::parse("2:panic=50").unwrap();
        let fa: Vec<bool> = (0..100).map(|k| a.fires(Site::WorkerPanic, k)).collect();
        let fb: Vec<bool> = (0..100).map(|k| b.fires(Site::WorkerPanic, k)).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn zero_percent_never_fires() {
        let p = FaultPlan::parse("9:slow-ms=10").unwrap();
        for k in 0..50 {
            assert!(!p.fires(Site::WorkerPanic, k));
            assert!(!p.fires(Site::SlowCheck, k));
        }
    }

    #[test]
    fn injected_eio_is_an_io_error() {
        let e = injected_eio("socket");
        assert!(e.to_string().contains("injected fault"), "{e}");
    }
}
