//! Streaming ingest: the long-lived service layer over the shared frozen
//! core (`p4bid serve` / `p4bid watch`).
//!
//! The batch driver ([`crate::batch`]) answers "check this corpus, once";
//! this module answers "keep checking whatever arrives". Two ingest
//! sources feed the same engine:
//!
//! * a **watched directory** ([`DirScanner`]) — a dependency-free,
//!   poll-based scanner that fingerprints every `.p4` file by
//!   `(mtime, size)` with a content-hash tiebreaker, so touch-without-edit
//!   does not re-check and edit-within-one-mtime-tick does;
//! * a **line-delimited request feed** ([`run_feed`]) on stdin or a Unix
//!   socket ([`run_socket`]) — one JSON object per line, `{"id": …,
//!   "path": "…"}` or `{"id": …, "source": "…"}` ([`parse_request`];
//!   parsed by a small built-in reader, consistent with the
//!   dependency-free workspace), with a blank line (or EOF / connection
//!   close) flushing the pending requests.
//!
//! Each flush — one scan tick with changes, one feed flush — forms an
//! **epoch**: the pending inputs go through
//! [`check_batch_with_core`] against
//! the engine's one long-lived [`SharedSessionCore`], and the epoch's
//! report is **byte-identical** to what `p4bid batch` would print for the
//! same inputs in the same order (the serve determinism suite pins this
//! down through the real binary). Epoch framing, timing, and statistics
//! go to stderr; stdout carries only the reports — the human table, or
//! one `p4bid-serve-report/1` JSON document per line in `--json` mode.
//!
//! # Examples
//!
//! ```
//! use p4bid::serve::{run_feed, ServeEngine};
//! use p4bid::CheckOptions;
//! use std::io::Cursor;
//!
//! let feed = "{\"id\": \"ok\", \"source\": \"control C(inout bit<8> x) { apply { } }\"}\n\
//!             \n\
//!             {\"id\": \"leak\", \"source\": \"control C(inout <bit<8>, low> l, \
//!             inout <bit<8>, high> h) { apply { l = h; } }\"}\n";
//! let mut engine = ServeEngine::new(CheckOptions::ifc(), 1);
//! let (mut out, mut log) = (Vec::new(), Vec::new());
//! let summary =
//!     run_feed(&mut engine, &mut Cursor::new(feed), &mut out, &mut log, false, None).unwrap();
//! assert_eq!(summary.epochs, 2, "blank line and EOF each flushed one epoch");
//! assert!(summary.any_rejected, "the second epoch caught the leak");
//! ```

use crate::batch::{check_batch_with_core, program_json, BatchInput, BatchReport, BatchStats};
use p4bid_typeck::{CheckOptions, SharedSessionCore};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

// ---------------------------------------------------------------------
// Request feed: one JSON object per line.
// ---------------------------------------------------------------------

/// Where one ingest request gets its program text from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestBody {
    /// Read the program from this file. The feed loop reads it as soon
    /// as the request line arrives, so an unreadable path is reported
    /// next to the line that named it (and the epoch snapshots each
    /// file's content at receipt, not at flush).
    Path(String),
    /// The program text was inlined in the request.
    Source(String),
}

/// One parsed feed request: `{"id": …, "path": "…"}` or
/// `{"id": …, "source": "…"}`. The `id` becomes the program's report name;
/// for `path` requests it defaults to the file name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRequest {
    /// Report name for this program.
    pub id: String,
    /// Where the program text comes from.
    pub body: RequestBody,
}

/// Parses one feed line into a [`ServeRequest`].
///
/// The accepted grammar is a flat JSON object: string values with the
/// standard escapes (including `\uXXXX` and surrogate pairs), numbers and
/// `true`/`false`/`null` kept as their literal text (so `"id": 7` works),
/// unknown keys ignored. Exactly one of `path`/`source` must be present;
/// inline `source` requests must carry an `id`.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, nested values, or
/// a missing/conflicting `path`/`source`/`id` combination.
pub fn parse_request(line: &str) -> Result<ServeRequest, String> {
    let mut p = MiniJson { src: line, pos: 0 };
    p.skip_ws();
    p.expect('{')?;
    let (mut id, mut path, mut source) = (None, None, None);
    p.skip_ws();
    if p.peek() != Some('}') {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(':')?;
            p.skip_ws();
            let value = p.value()?;
            let slot = match key.as_str() {
                "id" => Some(&mut id),
                "path" => Some(&mut path),
                "source" => Some(&mut source),
                _ => None,
            };
            if let Some(slot) = slot {
                if slot.is_some() {
                    return Err(format!("duplicate `{key}` key"));
                }
                *slot = Some(value);
            }
            p.skip_ws();
            if p.peek() == Some(',') {
                p.pos += 1;
                continue;
            }
            break;
        }
    }
    p.expect('}')?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err("trailing characters after the request object".to_string());
    }

    let string_only = |slot: Option<MiniValue>, key: &str| match slot {
        None => Ok(None),
        Some(MiniValue::Str(s)) => Ok(Some(s)),
        Some(MiniValue::Lit(l)) => Err(format!("`{key}` must be a JSON string, got `{l}`")),
    };
    let id = match id {
        None => None,
        Some(MiniValue::Str(s)) => Some(s),
        // Numeric ids are fine as names: keep the literal text.
        Some(MiniValue::Lit(l)) => Some(l),
    };
    let body = match (string_only(path, "path")?, string_only(source, "source")?) {
        (Some(p), None) => RequestBody::Path(p),
        (None, Some(s)) => RequestBody::Source(s),
        (Some(_), Some(_)) => return Err("request has both `path` and `source`".to_string()),
        (None, None) => return Err("request needs a `path` or a `source`".to_string()),
    };
    let id = match (id, &body) {
        (Some(id), _) => id,
        (None, RequestBody::Path(p)) => {
            Path::new(p).file_name().map_or_else(|| p.clone(), |n| n.to_string_lossy().into_owned())
        }
        (None, RequestBody::Source(_)) => {
            return Err("inline `source` requests need an `id`".to_string())
        }
    };
    Ok(ServeRequest { id, body })
}

/// A scalar from the request grammar: a decoded string, or the literal
/// text of a number / `true` / `false` / `null`.
#[derive(Debug)]
enum MiniValue {
    Str(String),
    Lit(String),
}

/// The minimal JSON reader behind [`parse_request`]: flat objects with
/// scalar values, tracked as a byte cursor over the (UTF-8) line.
struct MiniJson<'a> {
    src: &'a str,
    pos: usize,
}

impl MiniJson<'_> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Result<char, String> {
        let c = self.peek().ok_or_else(|| "unexpected end of line".to_string())?;
        self.pos += c.len_utf8();
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\r' | '\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.bump() {
            Ok(c) if c == want => Ok(()),
            Ok(c) => Err(format!("expected `{want}`, found `{c}`")),
            Err(_) => Err(format!("expected `{want}`, found end of line")),
        }
    }

    fn value(&mut self) -> Result<MiniValue, String> {
        match self.peek() {
            Some('"') => self.string().map(MiniValue::Str),
            Some('[' | '{') => Err("nested values are not part of the request grammar".to_string()),
            Some(c) if c == '-' || c.is_ascii_digit() || c.is_ascii_alphabetic() => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(c) if c == '-' || c == '+' || c == '.' || c.is_ascii_alphanumeric()
                ) {
                    self.pos += 1;
                }
                Ok(MiniValue::Lit(self.src[start..self.pos].to_string()))
            }
            Some(c) => Err(format!("unexpected `{c}`")),
            None => Err("unexpected end of line".to_string()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{0008}'),
                    'f' => out.push('\u{000c}'),
                    'u' => out.push(self.unicode_escape()?),
                    c => return Err(format!("unsupported escape `\\{c}`")),
                },
                c if (c as u32) < 0x20 => {
                    return Err("unescaped control character in string".to_string())
                }
                c => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0;
        for _ in 0..4 {
            let c = self.bump()?;
            let d = c.to_digit(16).ok_or_else(|| format!("bad hex digit `{c}` in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&hi) {
            // A high surrogate must be followed by an escaped low one.
            self.expect('\\')?;
            self.expect('u')?;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(format!("invalid surrogate pair \\u{hi:04x}\\u{lo:04x}"));
            }
            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
        } else {
            hi
        };
        char::from_u32(code).ok_or_else(|| format!("invalid \\u escape U+{code:04X}"))
    }
}

// ---------------------------------------------------------------------
// Watched directories: the poll-based scanner.
// ---------------------------------------------------------------------

/// What one [`DirScanner::scan`] tick found.
#[derive(Debug, Default)]
pub struct ScanDelta {
    /// Files added or modified since the previous scan, sorted by name —
    /// exactly the input order `p4bid batch` would use for them.
    pub changed: Vec<BatchInput>,
    /// Names tracked by the previous scan that no longer exist, sorted.
    pub removed: Vec<String>,
    /// Names whose content could not be read this tick (non-UTF-8,
    /// permissions), sorted; each is reported once per observed change,
    /// and stays tracked so it joins an epoch when it becomes readable.
    pub unreadable: Vec<String>,
}

impl ScanDelta {
    /// Whether the tick found nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty() && self.removed.is_empty() && self.unreadable.is_empty()
    }
}

/// The fingerprint change detection keys on: the `(mtime, size)` fast path
/// skips reading a file at all; the content hash catches edits the fast
/// path cannot see and acquits touched-but-unchanged files. Files whose
/// read failed are tracked too (`readable: false`) so they are reported
/// unreadable exactly once per change, never as "removed".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fingerprint {
    mtime: Option<SystemTime>,
    size: u64,
    hash: u64,
    readable: bool,
}

/// Files whose mtime is younger than this are always re-read and hashed,
/// never fast-pathed on `(mtime, size)`: a same-size rewrite landing in
/// the same mtime tick as the previous scan would otherwise be invisible
/// (the racily-clean problem; the window comfortably exceeds any real
/// filesystem's timestamp granularity). Once a file's mtime settles past
/// the window, the idle tick goes back to stat-only.
const RACY_WINDOW: Duration = Duration::from_secs(2);

/// A poll-based scanner over one directory's `.p4` files.
///
/// Deliberately notification-free (no inotify/kqueue crate, consistent
/// with the dependency-free workspace): callers poll [`scan`] on their own
/// interval, and each tick reports exactly the files whose *content*
/// changed since the previous tick. The first scan reports every file —
/// the initial full-fleet epoch.
///
/// Writers should drop files **atomically** (write to a temporary name,
/// then rename into the directory): a scan tick can otherwise observe a
/// half-written file. A torn read self-heals — recently-modified files
/// are re-hashed every tick (the 2-second racy window), so the completed
/// content forms a follow-up epoch — but the torn epoch already emitted
/// stands.
///
/// [`scan`]: DirScanner::scan
#[derive(Debug)]
pub struct DirScanner {
    dir: PathBuf,
    seen: BTreeMap<String, Fingerprint>,
}

impl DirScanner {
    /// A scanner over `dir` that has seen nothing yet.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DirScanner { dir: dir.into(), seen: BTreeMap::new() }
    }

    /// The watched directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of files currently tracked.
    #[must_use]
    pub fn tracked(&self) -> usize {
        self.seen.len()
    }

    /// One poll tick: lists the directory's `.p4` files and returns the
    /// added/modified ones (with their content), the removed names, and
    /// the names whose read failed (non-UTF-8, permissions). An
    /// unreadable file is reported once per observed change — not every
    /// tick — and stays tracked, so it is never mis-reported as removed;
    /// it joins an epoch as soon as it becomes readable. Files that
    /// vanish mid-scan are treated as not present this tick.
    ///
    /// # Errors
    ///
    /// Only listing the directory itself can fail (e.g. it was deleted);
    /// per-file races are absorbed as described above.
    pub fn scan(&mut self) -> io::Result<ScanDelta> {
        let now = SystemTime::now();
        // One stat per entry (via the DirEntry), names sorted for the
        // input-order contract.
        let mut entries: Vec<(String, PathBuf, Option<SystemTime>, u64)> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            if path.extension().is_none_or(|e| e != "p4") {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            if !meta.is_file() {
                continue;
            }
            let name = path
                .file_name()
                .map_or_else(|| path.display().to_string(), |n| n.to_string_lossy().into_owned());
            entries.push((name, path, meta.modified().ok(), meta.len()));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));

        let mut delta = ScanDelta::default();
        let mut present = std::collections::BTreeSet::new();
        for (name, path, mtime, size) in entries {
            if let Some(fp) = self.seen.get(&name) {
                // The fast path needs a *settled* mtime: files modified
                // within RACY_WINDOW of now are always re-hashed, so a
                // same-size rewrite inside one mtime tick is still seen.
                // A mtime *ahead* of the local clock (skewed producer)
                // counts as settled — an edit moves it to a different
                // value, which the equality check catches. Unreadable
                // fingerprints never fast-path: readability can return
                // via chmod, which touches neither mtime nor size.
                let settled = mtime.is_some_and(|m| match now.duration_since(m) {
                    Ok(age) => age >= RACY_WINDOW,
                    Err(_) => true, // future mtime
                });
                if fp.readable && settled && fp.mtime == mtime && fp.size == size {
                    present.insert(name);
                    continue; // unchanged fast path: no read
                }
            }
            match std::fs::read_to_string(&path) {
                Ok(source) => {
                    let hash = fnv1a(source.as_bytes());
                    let unchanged =
                        self.seen.get(&name).is_some_and(|fp| fp.readable && fp.hash == hash);
                    self.seen
                        .insert(name.clone(), Fingerprint { mtime, size, hash, readable: true });
                    if !unchanged {
                        delta.changed.push(BatchInput::new(name.clone(), source));
                    }
                }
                Err(_) => {
                    // Keep tracking the file (it exists — it must not be
                    // reported removed) and surface the failure once per
                    // observed (mtime, size).
                    let already = self
                        .seen
                        .get(&name)
                        .is_some_and(|fp| !fp.readable && fp.mtime == mtime && fp.size == size);
                    self.seen.insert(
                        name.clone(),
                        Fingerprint { mtime, size, hash: 0, readable: false },
                    );
                    if !already {
                        delta.unreadable.push(name.clone());
                    }
                }
            }
            present.insert(name);
        }

        delta.removed =
            self.seen.keys().filter(|k| !present.contains(*k)).cloned().collect::<Vec<_>>();
        for name in &delta.removed {
            self.seen.remove(name);
        }
        Ok(delta)
    }
}

/// 64-bit FNV-1a — the content fingerprint. Not cryptographic, which is
/// fine: a collision only costs one skipped re-check of a file edited to
/// a colliding body, and the `(mtime, size)` fast path already accepts
/// the same class of miss.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// The epoch engine.
// ---------------------------------------------------------------------

/// One epoch's verdicts: a [`BatchReport`] plus its position in the
/// epoch sequence.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// 0-based epoch number.
    pub epoch: u64,
    /// The verdicts, exactly as `p4bid batch` would report them.
    pub report: BatchReport,
}

impl EpochReport {
    /// The human table — byte-identical to
    /// [`BatchReport::render_table`] on the same inputs, which is the
    /// serve determinism contract (epoch framing goes to stderr, never
    /// in here).
    #[must_use]
    pub fn render_table(&self) -> String {
        self.report.render_table()
    }

    /// One `p4bid-serve-report/1` JSON document on a single line (the
    /// NDJSON form): the per-program objects are the exact bytes the
    /// `p4bid-batch-report/1` schema embeds for the same inputs.
    #[must_use]
    pub fn to_ndjson(&self) -> String {
        let mut out = String::from("{\"schema\": \"p4bid-serve-report/1\"");
        let _ = write!(out, ", \"epoch\": {}", self.epoch);
        out.push_str(", \"programs\": [");
        for (i, p) in self.report.programs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&program_json(p));
        }
        let _ = write!(out, "], \"summary\": {}", self.report.summary_json());
        out.push_str("}\n");
        out
    }
}

/// The long-lived checking engine behind `p4bid serve` / `p4bid watch`:
/// one [`SharedSessionCore`] serving every epoch, cumulative statistics,
/// and an optional periodic core refresh.
///
/// The engine is ingest-agnostic — [`run_feed`], [`run_socket`], and
/// [`run_watch`] all drive the same [`run_epoch`](ServeEngine::run_epoch).
#[derive(Debug)]
pub struct ServeEngine {
    core: SharedSessionCore,
    jobs: usize,
    epoch: u64,
    refresh_every: Option<u64>,
    refreshes: u64,
    stats: BatchStats,
}

impl ServeEngine {
    /// An engine checking under `opts` with `jobs` workers per epoch
    /// (`0` = one per core), warming and freezing its core up front.
    #[must_use]
    pub fn new(opts: CheckOptions, jobs: usize) -> Self {
        Self::with_core(SharedSessionCore::new(opts), jobs)
    }

    /// An engine over an existing core — lets callers (and the
    /// `serve_latency` bench) pay the freeze cost where they choose.
    #[must_use]
    pub fn with_core(core: SharedSessionCore, jobs: usize) -> Self {
        ServeEngine {
            core,
            jobs,
            epoch: 0,
            refresh_every: None,
            refreshes: 0,
            stats: BatchStats::default(),
        }
    }

    /// Rebuilds the core every `n` epochs (`SharedSessionCore::rebuild`,
    /// the ROADMAP's epoch-based refresh scheme). Verdicts are unaffected;
    /// `None` disables refreshing (the default).
    #[must_use]
    pub fn with_refresh_every(mut self, n: Option<u64>) -> Self {
        self.refresh_every = n.filter(|&n| n > 0);
        self
    }

    /// Epochs run so far.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epoch
    }

    /// Core refreshes performed so far.
    #[must_use]
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Cumulative tier/hit-rate statistics over every epoch so far
    /// (workers counts per-epoch sessions; `--stats`/`--stats-json`
    /// render this).
    #[must_use]
    pub fn cumulative_stats(&self) -> BatchStats {
        self.stats
    }

    /// Checks one epoch's inputs against the long-lived core and returns
    /// the epoch report. Refreshes the core first when a refresh is due.
    #[must_use]
    pub fn run_epoch(&mut self, inputs: &[BatchInput]) -> EpochReport {
        if let Some(n) = self.refresh_every {
            if self.epoch > 0 && self.epoch.is_multiple_of(n) {
                self.core = self.core.rebuild();
                self.refreshes += 1;
            }
        }
        let report = check_batch_with_core(inputs, &self.core, self.jobs);
        self.stats.merge(&report.stats);
        let epoch = self.epoch;
        self.epoch += 1;
        EpochReport { epoch, report }
    }
}

// ---------------------------------------------------------------------
// Ingest loops.
// ---------------------------------------------------------------------

/// What one ingest loop did, for exit codes and the final stderr line.
#[derive(Debug, Default, Clone, Copy)]
pub struct ServeSummary {
    /// Epochs emitted (ticks/flushes with at least one program).
    pub epochs: u64,
    /// Programs checked across all epochs.
    pub requests: u64,
    /// Feed lines dropped (malformed request, unreadable `path`).
    pub skipped: u64,
    /// Whether any epoch rejected any program (exit code 1).
    pub any_rejected: bool,
}

/// Flushes `pending` as one epoch: runs it, writes the report to `out`
/// (flushing, so downstream consumers see epochs as they complete), and
/// frames the epoch on `log`.
fn flush_epoch(
    engine: &mut ServeEngine,
    pending: &mut Vec<BatchInput>,
    out: &mut dyn Write,
    log: &mut dyn Write,
    json: bool,
    summary: &mut ServeSummary,
) -> io::Result<()> {
    if pending.is_empty() {
        return Ok(());
    }
    let start = std::time::Instant::now();
    let epoch = engine.run_epoch(pending);
    if json {
        out.write_all(epoch.to_ndjson().as_bytes())?;
    } else {
        out.write_all(epoch.render_table().as_bytes())?;
    }
    out.flush()?;
    let _ = writeln!(
        log,
        "epoch {}: checked {} program(s) in {:.1} ms on {} worker(s)",
        epoch.epoch,
        epoch.report.programs.len(),
        start.elapsed().as_secs_f64() * 1e3,
        epoch.report.jobs,
    );
    summary.epochs += 1;
    summary.requests += pending.len() as u64;
    summary.any_rejected |= !epoch.report.all_accepted();
    pending.clear();
    Ok(())
}

/// Resolves one request into a batch input, reading `path` bodies from
/// disk as the request line is received — so read failures are logged
/// next to the offending line and the epoch snapshots content at
/// receipt.
fn load_request(req: ServeRequest) -> Result<BatchInput, String> {
    match req.body {
        RequestBody::Source(source) => Ok(BatchInput::new(req.id, source)),
        RequestBody::Path(path) => match std::fs::read_to_string(&path) {
            Ok(source) => Ok(BatchInput::new(req.id, source)),
            Err(e) => Err(format!("cannot read `{path}`: {e}")),
        },
    }
}

/// Drives the line-delimited request feed: requests accumulate until a
/// blank line or EOF flushes them as one epoch. Reports go to `out`
/// (tables, or NDJSON epoch documents with `json`); framing, skipped-line
/// notices, and timing go to `log`. Stops after `max_epochs` epochs when
/// set, else at EOF.
///
/// # Errors
///
/// Propagates I/O errors from the reader and from `out`; malformed or
/// unreadable requests are logged and counted, never fatal.
pub fn run_feed(
    engine: &mut ServeEngine,
    reader: &mut dyn BufRead,
    out: &mut dyn Write,
    log: &mut dyn Write,
    json: bool,
    max_epochs: Option<u64>,
) -> io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    let mut pending: Vec<BatchInput> = Vec::new();
    let mut line = String::new();
    let done = |s: &ServeSummary| max_epochs.is_some_and(|m| s.epochs >= m);
    while !done(&summary) {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            flush_epoch(engine, &mut pending, out, log, json, &mut summary)?;
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            flush_epoch(engine, &mut pending, out, log, json, &mut summary)?;
            continue;
        }
        match parse_request(trimmed).and_then(load_request) {
            Ok(input) => pending.push(input),
            Err(e) => {
                summary.skipped += 1;
                let _ = writeln!(log, "skipped request: {e}");
            }
        }
    }
    Ok(summary)
}

/// Drives the watched-directory loop: scans every `interval`, and every
/// tick whose [`ScanDelta`] contains changed files becomes one epoch
/// (removed files are logged, not checked). The first tick checks the
/// whole directory. Runs until `max_epochs` epochs were emitted; with
/// `None` it serves forever (the daemon form).
///
/// # Errors
///
/// Propagates failures to list the directory and I/O errors on `out`.
pub fn run_watch(
    engine: &mut ServeEngine,
    scanner: &mut DirScanner,
    out: &mut dyn Write,
    log: &mut dyn Write,
    json: bool,
    max_epochs: Option<u64>,
    interval: Duration,
) -> io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    let done = |s: &ServeSummary| max_epochs.is_some_and(|m| s.epochs >= m);
    while !done(&summary) {
        let delta = scanner.scan()?;
        for name in &delta.removed {
            let _ = writeln!(log, "removed: {name}");
        }
        for name in &delta.unreadable {
            let _ = writeln!(log, "cannot read: {name}");
        }
        let mut pending = delta.changed;
        flush_epoch(engine, &mut pending, out, log, json, &mut summary)?;
        if !done(&summary) {
            std::thread::sleep(interval);
        }
    }
    Ok(summary)
}

/// Drives the feed protocol over a Unix domain socket: binds (replacing a
/// stale *socket* at that path — anything else there is an error, never
/// deleted), then serves connections sequentially — each connection is a
/// [`run_feed`] whose EOF is the connection close, so one connection can
/// carry many epochs and its close flushes the last one. The socket file
/// is removed when the loop ends.
///
/// # Errors
///
/// Propagates bind/accept failures, I/O errors on `out`, and a non-socket
/// file already existing at `socket`.
#[cfg(unix)]
pub fn run_socket(
    engine: &mut ServeEngine,
    socket: &Path,
    out: &mut dyn Write,
    log: &mut dyn Write,
    json: bool,
    max_epochs: Option<u64>,
) -> io::Result<ServeSummary> {
    if let Ok(meta) = std::fs::symlink_metadata(socket) {
        use std::os::unix::fs::FileTypeExt as _;
        if !meta.file_type().is_socket() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "`{}` exists and is not a socket; refusing to replace it",
                    socket.display()
                ),
            ));
        }
        // A connectable socket means a live daemon owns the path; only a
        // refused/dead one is stale and safe to unlink.
        if std::os::unix::net::UnixStream::connect(socket).is_ok() {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("`{}` is already being served by a live daemon", socket.display()),
            ));
        }
        let _ = std::fs::remove_file(socket); // stale socket from a dead daemon
    }
    let listener = std::os::unix::net::UnixListener::bind(socket)?;
    let _ = writeln!(log, "listening on {}", socket.display());
    let mut summary = ServeSummary::default();
    while max_epochs.is_none_or(|m| summary.epochs < m) {
        let (stream, _) = listener.accept()?;
        let remaining = max_epochs.map(|m| m - summary.epochs);
        let s = run_feed(engine, &mut io::BufReader::new(stream), out, log, json, remaining)?;
        summary.epochs += s.epochs;
        summary.requests += s.requests;
        summary.skipped += s.skipped;
        summary.any_rejected |= s.any_rejected;
    }
    let _ = std::fs::remove_file(socket);
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::check_batch;
    use std::io::Cursor;

    const OK: &str = "control C(inout bit<8> x) { apply { x = x + 8w1; } }";
    const LEAK: &str =
        "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }";

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("p4bid-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    // --- request parsing -------------------------------------------------

    #[test]
    fn parses_source_and_path_requests() {
        let r = parse_request(r#"{"id": "prog-1", "source": "control C() { apply { } }"}"#)
            .expect("parses");
        assert_eq!(r.id, "prog-1");
        assert_eq!(r.body, RequestBody::Source("control C() { apply { } }".to_string()));

        let r = parse_request(r#"{"id": "x", "path": "/tmp/x.p4"}"#).expect("parses");
        assert_eq!(r.body, RequestBody::Path("/tmp/x.p4".to_string()));

        // `id` defaults to the file name for path requests; numeric ids
        // keep their literal text; unknown keys are ignored.
        let r = parse_request(r#"{"path": "/corp/fleet/edge.p4", "prio": 3}"#).expect("parses");
        assert_eq!(r.id, "edge.p4");
        let r = parse_request(r#"{"id": 17, "path": "x.p4"}"#).expect("parses");
        assert_eq!(r.id, "17");
    }

    #[test]
    fn decodes_string_escapes() {
        let r = parse_request(
            "{\"id\": \"e\", \"source\": \"a\\n\\t\\\"q\\\" \\\\ \\u00e9 \\ud83d\\ude00\"}",
        )
        .expect("parses");
        assert_eq!(r.body, RequestBody::Source("a\n\t\"q\" \\ é 😀".to_string()));
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, needle) in [
            ("", "expected `{`"),
            ("{", "end of line"),
            (r#"{"id": "a"}"#, "needs a `path` or a `source`"),
            (r#"{"source": "x"}"#, "need an `id`"),
            (r#"{"id": "a", "path": "p", "source": "s"}"#, "both"),
            (r#"{"id": "a", "source": ["x"]}"#, "nested"),
            (r#"{"id": "a", "path": 4}"#, "must be a JSON string"),
            (r#"{"id": "a", "id": "b", "source": "x"}"#, "duplicate"),
            (r#"{"id": "a", "source": "x"} trailing"#, "trailing"),
            (r#"{"id": "a", "source": "\q"}"#, "unsupported escape"),
            (r#"{"id": "a", "source": "\ud800"}"#, "expected `\\`"),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    // --- directory scanning ----------------------------------------------

    #[test]
    fn scanner_detects_add_modify_delete_unchanged() {
        let dir = scratch_dir("scan");
        let mut scanner = DirScanner::new(&dir);

        // Empty directory: nothing.
        assert!(scanner.scan().expect("scan").is_empty());

        // Add two files (plus a non-.p4 file, which is invisible).
        std::fs::write(dir.join("a.p4"), OK).unwrap();
        std::fs::write(dir.join("b.p4"), LEAK).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let delta = scanner.scan().expect("scan");
        let names: Vec<&str> = delta.changed.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["a.p4", "b.p4"], "sorted by name");
        assert_eq!(delta.changed[1].source, LEAK, "content rides along");
        assert!(delta.removed.is_empty());
        assert_eq!(scanner.tracked(), 2);

        // No edits: an empty tick.
        assert!(scanner.scan().expect("scan").is_empty());

        // Modify one; the other stays quiet.
        std::fs::write(dir.join("b.p4"), OK).unwrap();
        let delta = scanner.scan().expect("scan");
        assert_eq!(delta.changed.len(), 1);
        assert_eq!(delta.changed[0].name, "b.p4");
        assert_eq!(delta.changed[0].source, OK);

        // Delete one.
        std::fs::remove_file(dir.join("a.p4")).unwrap();
        let delta = scanner.scan().expect("scan");
        assert!(delta.changed.is_empty());
        assert_eq!(delta.removed, ["a.p4"]);
        assert_eq!(scanner.tracked(), 1);

        // Touch without edit: the content hash acquits the file even
        // though the mtime fast path missed.
        let now = std::time::SystemTime::now();
        let f = std::fs::File::options().append(true).open(dir.join("b.p4")).unwrap();
        f.set_modified(now + Duration::from_secs(7)).unwrap();
        drop(f);
        assert!(scanner.scan().expect("scan").is_empty(), "touched but unchanged");

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn scanner_catches_same_size_rewrite_in_one_mtime_tick() {
        // The racily-clean case: a rewrite with identical length and a
        // pinned (identical) mtime. The (mtime, size) fast path cannot
        // see it; the recent-mtime re-hash must.
        let dir = scratch_dir("racy");
        let path = dir.join("r.p4");
        let pin = std::time::SystemTime::now();
        let v1 = "control C(inout <bit<8>, low> a) { apply { a = 8w1; } }";
        let v2 = "control C(inout <bit<8>, low> b) { apply { b = 8w2; } }";
        assert_eq!(v1.len(), v2.len());

        let mut scanner = DirScanner::new(&dir);
        std::fs::write(&path, v1).unwrap();
        std::fs::File::options().append(true).open(&path).unwrap().set_modified(pin).unwrap();
        assert_eq!(scanner.scan().expect("scan").changed.len(), 1);

        std::fs::write(&path, v2).unwrap();
        std::fs::File::options().append(true).open(&path).unwrap().set_modified(pin).unwrap();
        let delta = scanner.scan().expect("scan");
        assert_eq!(delta.changed.len(), 1, "same-size same-mtime rewrite must be seen");
        assert_eq!(delta.changed[0].source, v2);

        // Once the mtime settles past the racy window, the fast path
        // takes over: an aged, untouched file costs a stat, not a read.
        let aged = pin - Duration::from_secs(60);
        std::fs::File::options().append(true).open(&path).unwrap().set_modified(aged).unwrap();
        assert_eq!(scanner.scan().expect("scan").changed.len(), 0, "mtime moved, content same");
        assert!(scanner.scan().expect("scan").is_empty(), "settled: fast path, no change");

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn scanner_surfaces_unreadable_files_once_and_never_as_removed() {
        let dir = scratch_dir("unreadable");
        std::fs::write(dir.join("bad.p4"), [0xff, 0xfe, b'x']).unwrap(); // invalid UTF-8
        let mut scanner = DirScanner::new(&dir);
        let delta = scanner.scan().expect("scan");
        assert!(delta.changed.is_empty());
        assert_eq!(delta.unreadable, ["bad.p4"]);
        assert_eq!(scanner.tracked(), 1, "stays tracked while it exists");

        // Reported once per observed change, not every tick — and never
        // mis-reported as removed.
        let delta = scanner.scan().expect("scan");
        assert!(delta.is_empty(), "{delta:?}");

        // The moment it becomes readable it joins an epoch.
        std::fs::write(dir.join("bad.p4"), OK).unwrap();
        let delta = scanner.scan().expect("scan");
        assert_eq!(delta.changed.len(), 1);
        assert_eq!(delta.changed[0].source, OK);
        assert!(delta.unreadable.is_empty());

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn scanner_errors_when_directory_vanishes() {
        let dir = scratch_dir("gone");
        let mut scanner = DirScanner::new(&dir);
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(scanner.scan().is_err());
    }

    // --- the epoch engine -------------------------------------------------

    #[test]
    fn epoch_reports_match_batch_byte_for_byte() {
        let inputs = vec![
            BatchInput::new("ok", OK),
            BatchInput::new("leak", LEAK),
            BatchInput::new("broken", "control {"),
        ];
        let batch = check_batch(&inputs, &CheckOptions::ifc(), 1);
        for jobs in [1, 2, 8] {
            let mut engine = ServeEngine::new(CheckOptions::ifc(), jobs);
            let epoch = engine.run_epoch(&inputs);
            assert_eq!(epoch.render_table(), batch.render_table(), "jobs={jobs}");
            assert_eq!(epoch.report.to_json(), batch.to_json(), "jobs={jobs}");
        }
    }

    #[test]
    fn ndjson_epoch_documents_embed_batch_program_objects() {
        let inputs = vec![BatchInput::new("we\"ird", OK), BatchInput::new("leak", LEAK)];
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1);
        let first = engine.run_epoch(&inputs).to_ndjson();
        let second = engine.run_epoch(&inputs[..1]).to_ndjson();
        assert!(
            first.starts_with("{\"schema\": \"p4bid-serve-report/1\", \"epoch\": 0, "),
            "{first}"
        );
        assert!(second.contains("\"epoch\": 1"), "{second}");
        assert_eq!(first.lines().count(), 1, "one document per line");
        // The embedded program objects are the exact bytes of the batch
        // schema for the same inputs.
        let batch_json = check_batch(&inputs, &CheckOptions::ifc(), 1).to_json();
        for line in batch_json.lines().filter(|l| l.trim_start().starts_with("{\"index\"")) {
            assert!(
                first.contains(line.trim().trim_end_matches(',')),
                "{line} not embedded in {first}"
            );
        }
        assert!(first.contains("\"summary\": {\"total\": 2, \"accepted\": 1, \"rejected\": 1}"));
    }

    #[test]
    fn engine_refresh_preserves_verdicts_and_counts() {
        let inputs = vec![BatchInput::new("ok", OK), BatchInput::new("leak", LEAK)];
        let mut plain = ServeEngine::new(CheckOptions::ifc(), 2);
        let mut refreshing = ServeEngine::new(CheckOptions::ifc(), 2).with_refresh_every(Some(1));
        for _ in 0..3 {
            let a = plain.run_epoch(&inputs);
            let b = refreshing.run_epoch(&inputs);
            assert_eq!(a.render_table(), b.render_table());
            assert_eq!(a.to_ndjson(), b.to_ndjson());
        }
        assert_eq!(plain.refreshes(), 0);
        assert_eq!(refreshing.refreshes(), 2, "refreshed before epochs 1 and 2");
        assert_eq!(refreshing.epochs(), 3);
        assert!(refreshing.cumulative_stats().workers >= 3, "one per epoch at least");
    }

    // --- ingest loops ------------------------------------------------------

    fn feed_line(id: &str, source: &str) -> String {
        format!(
            "{{\"id\": \"{id}\", \"source\": \"{}\"}}\n",
            source.replace('\\', "\\\\").replace('"', "\\\"")
        )
    }

    #[test]
    fn feed_epochs_are_byte_identical_to_batch_runs() {
        let feed = format!(
            "{}{}\n{}{}",
            feed_line("a", OK),
            feed_line("b", LEAK),
            feed_line("c", OK),
            feed_line("d", "control {"),
        );
        let epoch1 = vec![BatchInput::new("a", OK), BatchInput::new("b", LEAK)];
        let epoch2 = vec![BatchInput::new("c", OK), BatchInput::new("d", "control {")];
        for jobs in [1, 2, 8] {
            let mut engine = ServeEngine::new(CheckOptions::ifc(), jobs);
            let (mut out, mut log) = (Vec::new(), Vec::new());
            let summary = run_feed(
                &mut engine,
                &mut Cursor::new(feed.as_bytes()),
                &mut out,
                &mut log,
                false,
                None,
            )
            .expect("feed runs");
            assert_eq!((summary.epochs, summary.requests, summary.skipped), (2, 4, 0));
            assert!(summary.any_rejected);
            let expected = format!(
                "{}{}",
                check_batch(&epoch1, &CheckOptions::ifc(), 1).render_table(),
                check_batch(&epoch2, &CheckOptions::ifc(), 1).render_table(),
            );
            assert_eq!(String::from_utf8(out).unwrap(), expected, "jobs={jobs}");
            let log = String::from_utf8(log).unwrap();
            assert!(log.contains("epoch 0: checked 2 program(s)"), "{log}");
            assert!(log.contains("epoch 1: checked 2 program(s)"), "{log}");
        }
    }

    #[test]
    fn feed_skips_bad_lines_and_reads_path_requests() {
        let dir = scratch_dir("feed-paths");
        std::fs::write(dir.join("ok.p4"), OK).unwrap();
        let feed = format!(
            "not json at all\n{{\"id\": \"ghost\", \"path\": \"{}\"}}\n{{\"path\": \"{}\"}}\n",
            dir.join("missing.p4").display(),
            dir.join("ok.p4").display(),
        );
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1);
        let (mut out, mut log) = (Vec::new(), Vec::new());
        let summary = run_feed(
            &mut engine,
            &mut Cursor::new(feed.as_bytes()),
            &mut out,
            &mut log,
            false,
            None,
        )
        .expect("feed runs");
        assert_eq!((summary.epochs, summary.requests, summary.skipped), (1, 1, 2));
        assert!(!summary.any_rejected);
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("ok.p4"), "path request named by file name: {out}");
        let log = String::from_utf8(log).unwrap();
        assert!(log.contains("skipped request: expected `{`"), "{log}");
        assert!(log.contains("skipped request: cannot read"), "{log}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn feed_honors_max_epochs_and_empty_flushes() {
        // Blank lines with nothing pending emit nothing; max_epochs stops
        // the loop mid-feed.
        let feed = format!("\n\n{}\n\n{}", feed_line("a", OK), feed_line("b", OK));
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1);
        let (mut out, mut log) = (Vec::new(), Vec::new());
        let summary = run_feed(
            &mut engine,
            &mut Cursor::new(feed.as_bytes()),
            &mut out,
            &mut log,
            true,
            Some(1),
        )
        .expect("feed runs");
        assert_eq!(summary.epochs, 1);
        assert_eq!(summary.requests, 1);
        let out = String::from_utf8(out).unwrap();
        assert_eq!(out.lines().count(), 1, "exactly one epoch document: {out}");
        assert!(out.contains("\"epoch\": 0"));
    }

    #[test]
    fn watch_serves_epochs_as_files_change() {
        // Two deterministic single-epoch runs over one persistent
        // engine + scanner: the directory is mutated only while no
        // watcher is running, so there is no writer/tick race to time
        // out on — the loop, removal logging, and cross-run epoch
        // numbering are still exercised for real. (The e2e suite covers
        // the concurrent-mutation case against the spawned binary, with
        // a deadline.)
        let dir = scratch_dir("watch");
        std::fs::write(dir.join("start.p4"), OK).unwrap();
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 2);
        let mut scanner = DirScanner::new(&dir);
        let (mut out, mut log) = (Vec::new(), Vec::new());

        let first = run_watch(
            &mut engine,
            &mut scanner,
            &mut out,
            &mut log,
            false,
            Some(1),
            Duration::from_millis(1),
        )
        .expect("watch runs");
        assert_eq!((first.epochs, first.requests), (1, 1));
        assert!(!first.any_rejected);

        std::fs::remove_file(dir.join("start.p4")).unwrap();
        std::fs::write(dir.join("later.tmp"), LEAK).unwrap();
        std::fs::rename(dir.join("later.tmp"), dir.join("later.p4")).unwrap();

        let second = run_watch(
            &mut engine,
            &mut scanner,
            &mut out,
            &mut log,
            false,
            Some(1),
            Duration::from_millis(1),
        )
        .expect("watch runs");
        assert_eq!((second.epochs, second.requests), (1, 1));
        assert!(second.any_rejected, "the dropped-in leak was caught");
        assert_eq!(engine.epochs(), 2, "epoch numbering continues across runs");

        let expected = format!(
            "{}{}",
            check_batch(&[BatchInput::new("start.p4", OK)], &CheckOptions::ifc(), 1).render_table(),
            check_batch(&[BatchInput::new("later.p4", LEAK)], &CheckOptions::ifc(), 1)
                .render_table(),
        );
        assert_eq!(String::from_utf8(out).unwrap(), expected);
        assert!(String::from_utf8(log).unwrap().contains("removed: start.p4"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[cfg(unix)]
    #[test]
    fn socket_connections_flush_epochs() {
        use std::os::unix::net::UnixStream;
        let dir = scratch_dir("sock");
        let socket = dir.join("p4bid.sock");
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1);
        let (mut out, mut log) = (Vec::new(), Vec::new());
        let sock2 = socket.clone();
        let client = std::thread::spawn(move || {
            // The listener binds before accepting; retry briefly.
            let mut stream = loop {
                match UnixStream::connect(&sock2) {
                    Ok(s) => break s,
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            };
            stream.write_all(feed_line("a", OK).as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            stream.write_all(feed_line("b", LEAK).as_bytes()).unwrap();
            // Connection close flushes the second epoch.
        });
        let summary =
            run_socket(&mut engine, &socket, &mut out, &mut log, true, Some(2)).expect("serves");
        client.join().unwrap();
        assert_eq!((summary.epochs, summary.requests), (2, 2));
        assert!(summary.any_rejected);
        let out = String::from_utf8(out).unwrap();
        assert_eq!(out.lines().count(), 2, "{out}");
        assert!(out.contains("\"epoch\": 0") && out.contains("\"epoch\": 1"), "{out}");
        assert!(!socket.exists(), "socket file removed on shutdown");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[cfg(unix)]
    #[test]
    fn socket_refuses_to_replace_a_non_socket_file() {
        let dir = scratch_dir("sock-refuse");
        let path = dir.join("precious.txt");
        std::fs::write(&path, "do not delete").unwrap();
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1);
        let (mut out, mut log) = (Vec::new(), Vec::new());
        let err = run_socket(&mut engine, &path, &mut out, &mut log, false, Some(1)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists, "{err}");
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "do not delete",
            "the existing file must survive the typo"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[cfg(unix)]
    #[test]
    fn socket_refuses_to_steal_a_live_daemons_path() {
        let dir = scratch_dir("sock-live");
        let path = dir.join("live.sock");
        // A live listener owns the path (connect succeeds against its
        // backlog even before any accept).
        let listener = std::os::unix::net::UnixListener::bind(&path).expect("bind");
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1);
        let (mut out, mut log) = (Vec::new(), Vec::new());
        let err = run_socket(&mut engine, &path, &mut out, &mut log, false, Some(1)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse, "{err}");
        assert!(path.exists(), "the live daemon's socket file must survive");
        drop(listener);
        // Once the daemon is dead the socket is stale: the probe fails
        // and the path is reclaimed (exercised end to end by the stale
        // branch of run_socket in the e2e suite).
        assert!(std::os::unix::net::UnixStream::connect(&path).is_err(), "now stale");
        let _ = std::fs::remove_dir_all(dir);
    }
}
