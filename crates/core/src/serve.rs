//! Streaming ingest: the long-lived service layer over the shared frozen
//! core (`p4bid serve` / `p4bid watch`).
//!
//! The batch driver ([`crate::batch`]) answers "check this corpus, once";
//! this module answers "keep checking whatever arrives". Two ingest
//! sources feed the same engine:
//!
//! * a **watched directory** ([`DirScanner`]) — a dependency-free,
//!   poll-based scanner that fingerprints every `.p4` file by
//!   `(mtime, size)` with a content-hash tiebreaker, so touch-without-edit
//!   does not re-check and edit-within-one-mtime-tick does;
//! * a **line-delimited request feed** ([`run_feed`]) on stdin or a Unix
//!   socket ([`run_socket`]) — one JSON object per line, `{"id": …,
//!   "path": "…"}` or `{"id": …, "source": "…"}` ([`parse_request`];
//!   parsed by a small built-in reader, consistent with the
//!   dependency-free workspace), with a blank line (or EOF / connection
//!   close) flushing the pending requests.
//!
//! Each flush — one scan tick with changes, one feed flush — forms an
//! **epoch**: the pending inputs go through
//! [`check_batch_with_core`] against
//! the engine's one long-lived [`SharedSessionCore`], and the epoch's
//! report is **byte-identical** to what `p4bid batch` would print for the
//! same inputs in the same order (the serve determinism suite pins this
//! down through the real binary). Epoch framing, timing, and statistics
//! go to stderr; stdout carries only the reports — the human table, or
//! one `p4bid-serve-report/2` JSON document per line in `--json` mode.
//!
//! The socket form is a **concurrent multi-producer front door**: a
//! nonblocking acceptor thread hands each connection to its own reader
//! thread, the readers queue parsed requests into a shared pending map
//! keyed by `(connection id, arrival seq)`, and an **epoch sequencer**
//! on the serving thread cuts that map into epochs — on a flush marker
//! (blank line or connection close), when an epoch-size bound
//! ([`IngestLimits::max_epoch`]) is reached, or when the queue is full
//! ([`IngestLimits::max_pending`], the backpressure bound). Because the
//! pending map iterates in key order, the inputs of an epoch are always
//! sorted by `(connection id, arrival seq)` — so for a fixed
//! interleaving of arrivals the epoch bytes are identical across runs
//! and `--jobs` settings, and per-connection order is always preserved.
//! Per-connection I/O errors (a client that vanishes mid-line, an
//! `accept` hiccup) are logged and counted, **never fatal** to the
//! daemon, and the socket file is unlinked on every exit path.
//!
//! The engine can carry a **verdict cache** ([`ServeEngine::with_cache`])
//! keyed by `(FNV-1a content hash, CheckOptions fingerprint)`: a
//! resubmitted body is answered from the cache with a report
//! byte-identical to a fresh check, and hit/miss/size counters surface
//! in the `p4bid-stats/5` document ([`ServeOps`]).
//!
//! # Examples
//!
//! ```
//! use p4bid::serve::{run_feed, ServeEngine};
//! use p4bid::CheckOptions;
//! use std::io::Cursor;
//!
//! let feed = "{\"id\": \"ok\", \"source\": \"control C(inout bit<8> x) { apply { } }\"}\n\
//!             \n\
//!             {\"id\": \"leak\", \"source\": \"control C(inout <bit<8>, low> l, \
//!             inout <bit<8>, high> h) { apply { l = h; } }\"}\n";
//! let mut engine = ServeEngine::new(CheckOptions::ifc(), 1);
//! let (mut out, mut log) = (Vec::new(), Vec::new());
//! let limits = p4bid::serve::IngestLimits::default();
//! let summary =
//!     run_feed(&mut engine, &mut Cursor::new(feed), &mut out, &mut log, false, None, &limits)
//!         .unwrap();
//! assert_eq!(summary.epochs, 2, "blank line and EOF each flushed one epoch");
//! assert!(summary.any_rejected, "the second epoch caught the leak");
//! ```

use crate::batch::{
    check_batch_with_core, program_json, BatchDiagnostic, BatchInput, BatchReport, BatchStats,
    ProgramReport,
};
use crate::policy::PolicyPack;
use p4bid_typeck::{CheckOptions, Mode, SharedSessionCore};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
#[cfg(unix)]
use std::sync::{Condvar, Mutex};
use std::time::{Duration, SystemTime};

// ---------------------------------------------------------------------
// Request feed: one JSON object per line.
// ---------------------------------------------------------------------

/// Where one ingest request gets its program text from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestBody {
    /// Read the program from this file. The feed loop reads it as soon
    /// as the request line arrives, so an unreadable path is reported
    /// next to the line that named it (and the epoch snapshots each
    /// file's content at receipt, not at flush).
    Path(String),
    /// The program text was inlined in the request.
    Source(String),
}

/// One parsed feed request: `{"id": …, "path": "…"}` or
/// `{"id": …, "source": "…"}`. The `id` becomes the program's report name;
/// for `path` requests it defaults to the full path as given — not the
/// basename, which would make `a/x.p4` and `b/x.p4` collide in reports
/// and alias telemetry keyed by id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRequest {
    /// Report name for this program.
    pub id: String,
    /// Where the program text comes from.
    pub body: RequestBody,
}

/// Parses one feed line into a [`ServeRequest`].
///
/// The accepted grammar is a flat JSON object: string values with the
/// standard escapes (including `\uXXXX` and surrogate pairs), numbers and
/// `true`/`false`/`null` kept as their literal text (so `"id": 7` works),
/// unknown keys ignored. Exactly one of `path`/`source` must be present;
/// inline `source` requests must carry an `id`.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, nested values, or
/// a missing/conflicting `path`/`source`/`id` combination.
pub fn parse_request(line: &str) -> Result<ServeRequest, String> {
    let mut p = MiniJson { src: line, pos: 0 };
    p.skip_ws();
    p.expect('{')?;
    let (mut id, mut path, mut source) = (None, None, None);
    p.skip_ws();
    if p.peek() != Some('}') {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(':')?;
            p.skip_ws();
            let value = p.value()?;
            let slot = match key.as_str() {
                "id" => Some(&mut id),
                "path" => Some(&mut path),
                "source" => Some(&mut source),
                _ => None,
            };
            if let Some(slot) = slot {
                if slot.is_some() {
                    return Err(format!("duplicate `{key}` key"));
                }
                *slot = Some(value);
            }
            p.skip_ws();
            if p.peek() == Some(',') {
                p.pos += 1;
                continue;
            }
            break;
        }
    }
    p.expect('}')?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err("trailing characters after the request object".to_string());
    }

    let string_only = |slot: Option<MiniValue>, key: &str| match slot {
        None => Ok(None),
        Some(MiniValue::Str(s)) => Ok(Some(s)),
        Some(MiniValue::Lit(l)) => Err(format!("`{key}` must be a JSON string, got `{l}`")),
    };
    let id = match id {
        None => None,
        Some(MiniValue::Str(s)) => Some(s),
        // Numeric ids are fine as names: keep the literal text.
        Some(MiniValue::Lit(l)) => Some(l),
    };
    let body = match (string_only(path, "path")?, string_only(source, "source")?) {
        (Some(p), None) => RequestBody::Path(p),
        (None, Some(s)) => RequestBody::Source(s),
        (Some(_), Some(_)) => return Err("request has both `path` and `source`".to_string()),
        (None, None) => return Err("request needs a `path` or a `source`".to_string()),
    };
    let id = match (id, &body) {
        (Some(id), _) => id,
        // The full path, not the basename: two fleet files named x.p4 in
        // different directories must not share a report id.
        (None, RequestBody::Path(p)) => p.clone(),
        (None, RequestBody::Source(_)) => {
            return Err("inline `source` requests need an `id`".to_string())
        }
    };
    Ok(ServeRequest { id, body })
}

/// A scalar from the request grammar: a decoded string, or the literal
/// text of a number / `true` / `false` / `null`.
#[derive(Debug)]
enum MiniValue {
    Str(String),
    Lit(String),
}

/// The minimal JSON reader behind [`parse_request`]: flat objects with
/// scalar values, tracked as a byte cursor over the (UTF-8) line.
struct MiniJson<'a> {
    src: &'a str,
    pos: usize,
}

impl MiniJson<'_> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Result<char, String> {
        let c = self.peek().ok_or_else(|| "unexpected end of line".to_string())?;
        self.pos += c.len_utf8();
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\r' | '\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.bump() {
            Ok(c) if c == want => Ok(()),
            Ok(c) => Err(format!("expected `{want}`, found `{c}`")),
            Err(_) => Err(format!("expected `{want}`, found end of line")),
        }
    }

    fn value(&mut self) -> Result<MiniValue, String> {
        match self.peek() {
            Some('"') => self.string().map(MiniValue::Str),
            Some('[' | '{') => Err("nested values are not part of the request grammar".to_string()),
            Some(c) if c == '-' || c.is_ascii_digit() || c.is_ascii_alphabetic() => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(c) if c == '-' || c == '+' || c == '.' || c.is_ascii_alphanumeric()
                ) {
                    self.pos += 1;
                }
                Ok(MiniValue::Lit(self.src[start..self.pos].to_string()))
            }
            Some(c) => Err(format!("unexpected `{c}`")),
            None => Err("unexpected end of line".to_string()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{0008}'),
                    'f' => out.push('\u{000c}'),
                    'u' => out.push(self.unicode_escape()?),
                    c => return Err(format!("unsupported escape `\\{c}`")),
                },
                c if (c as u32) < 0x20 => {
                    return Err("unescaped control character in string".to_string())
                }
                c => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0;
        for _ in 0..4 {
            let c = self.bump()?;
            let d = c.to_digit(16).ok_or_else(|| format!("bad hex digit `{c}` in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&hi) {
            // A high surrogate must be followed by an escaped low one.
            self.expect('\\')?;
            self.expect('u')?;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(format!("invalid surrogate pair \\u{hi:04x}\\u{lo:04x}"));
            }
            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
        } else {
            hi
        };
        char::from_u32(code).ok_or_else(|| format!("invalid \\u escape U+{code:04X}"))
    }
}

// ---------------------------------------------------------------------
// Ingest limits and line framing.
// ---------------------------------------------------------------------

/// Bounds on the ingest front door, shared by the stdin feed and the
/// socket daemon. The defaults keep the historical behaviour (unbounded
/// epochs, no backpressure) except for the request-line cap, which
/// defends the daemon against a newline-free feed.
#[derive(Debug, Clone)]
pub struct IngestLimits {
    /// Longest accepted request line, in bytes (default 1 MiB). A longer
    /// line is dropped *as it streams past* — counted as skipped, never
    /// buffered — and framing resynchronizes at the next newline.
    pub max_line: usize,
    /// Largest epoch, in programs (`0` = unbounded): the sequencer cuts
    /// an epoch as soon as this many requests are pending, without
    /// waiting for a flush marker.
    pub max_epoch: usize,
    /// Bound on the pending queue (`0` = unbounded). A full queue forces
    /// the sequencer to cut an epoch; a producer that outruns it is
    /// blocked (the default) or shed ([`shed`](IngestLimits::shed)).
    pub max_pending: usize,
    /// Backpressure policy at a full queue: `false` blocks the producing
    /// connection until the sequencer drains, `true` drops (sheds) the
    /// request and counts it in [`ServeOps::shed`].
    pub shed: bool,
}

impl Default for IngestLimits {
    fn default() -> Self {
        IngestLimits { max_line: 1 << 20, max_epoch: 0, max_pending: 0, shed: false }
    }
}

/// One event out of the [`LineFramer`].
#[derive(Debug, PartialEq, Eq)]
enum FeedEvent {
    /// A complete line, newline stripped (possibly blank).
    Line(String),
    /// An over-long line was dropped; carries its total byte length.
    Oversized(u64),
    /// A complete line under the cap that was not valid UTF-8.
    BadUtf8,
}

/// Incremental newline framing with a hard per-line byte cap — the fix
/// for the unbounded `read_line` OOM: one newline-free multi-gigabyte
/// feed used to accumulate into a single `String`. Here an over-long
/// line is dropped as it streams past (only its length is tracked) and
/// framing resynchronizes at the next newline.
#[derive(Debug)]
struct LineFramer {
    max: usize,
    buf: Vec<u8>,
    /// `Some(bytes seen so far)` while inside an over-long line, until
    /// the resynchronizing newline.
    dropping: Option<u64>,
}

impl LineFramer {
    fn new(max: usize) -> Self {
        LineFramer { max: max.max(1), buf: Vec::new(), dropping: None }
    }

    fn emit_line(&mut self, events: &mut Vec<FeedEvent>) {
        match String::from_utf8(std::mem::take(&mut self.buf)) {
            Ok(s) => events.push(FeedEvent::Line(s)),
            Err(_) => events.push(FeedEvent::BadUtf8),
        }
    }

    /// Feeds one chunk, appending any completed events.
    fn push(&mut self, chunk: &[u8], events: &mut Vec<FeedEvent>) {
        let mut rest = chunk;
        loop {
            let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
                // No newline in what is left: buffer it, or keep counting
                // the over-long line without buffering.
                if let Some(dropped) = &mut self.dropping {
                    *dropped += rest.len() as u64;
                } else if self.buf.len() + rest.len() > self.max {
                    self.dropping = Some((self.buf.len() + rest.len()) as u64);
                    self.buf = Vec::new();
                } else {
                    self.buf.extend_from_slice(rest);
                }
                return;
            };
            let (seg, after) = (&rest[..nl], &rest[nl + 1..]);
            if let Some(dropped) = self.dropping.take() {
                events.push(FeedEvent::Oversized(dropped + nl as u64));
            } else if self.buf.len() + seg.len() > self.max {
                events.push(FeedEvent::Oversized((self.buf.len() + seg.len()) as u64));
                self.buf = Vec::new();
            } else {
                self.buf.extend_from_slice(seg);
                self.emit_line(events);
            }
            rest = after;
        }
    }

    /// EOF: the unterminated tail, if any, becomes a final event.
    fn finish(&mut self, events: &mut Vec<FeedEvent>) {
        if let Some(dropped) = self.dropping.take() {
            events.push(FeedEvent::Oversized(dropped));
        } else if !self.buf.is_empty() {
            self.emit_line(events);
        }
    }
}

// ---------------------------------------------------------------------
// Watched directories: the poll-based scanner.
// ---------------------------------------------------------------------

/// Item-granular attribution for one changed file in a [`ScanDelta`]:
/// which top-level item is the first whose cumulative content-chain hash
/// (see [`p4bid_syntax::item_chains`]) differs from the previously
/// scanned content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemChange {
    /// File name, matching the corresponding [`ScanDelta::changed`] entry.
    pub name: String,
    /// 0-based index of the first changed top-level item. `None` when the
    /// file is new to the scanner (first scan, or it was previously
    /// unreadable) or when either version does not lex.
    pub first_changed: Option<usize>,
    /// Top-level item count of the new content (`0` when it does not lex).
    pub items: usize,
}

/// What one [`DirScanner::scan`] tick found.
#[derive(Debug, Default)]
pub struct ScanDelta {
    /// Files added or modified since the previous scan, sorted by name —
    /// exactly the input order `p4bid batch` would use for them.
    pub changed: Vec<BatchInput>,
    /// Item-granular change attribution, parallel to `changed` (same
    /// order, same length): which top-level item the edit first touched.
    pub item_changes: Vec<ItemChange>,
    /// Names tracked by the previous scan that no longer exist, sorted.
    pub removed: Vec<String>,
    /// Names whose content could not be read this tick (non-UTF-8,
    /// permissions), sorted; each is reported once per observed change,
    /// and stays tracked so it joins an epoch when it becomes readable.
    pub unreadable: Vec<String>,
}

impl ScanDelta {
    /// Whether the tick found nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty() && self.removed.is_empty() && self.unreadable.is_empty()
    }
}

/// The fingerprint change detection keys on: the `(mtime, size)` fast path
/// skips reading a file at all; the content hash catches edits the fast
/// path cannot see and acquits touched-but-unchanged files. Files whose
/// read failed are tracked too (`readable: false`) so they are reported
/// unreadable exactly once per change, never as "removed".
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    mtime: Option<SystemTime>,
    size: u64,
    hash: u64,
    /// Cumulative per-item chain hashes of the last readable content
    /// ([`p4bid_syntax::item_chains`]); empty for unreadable files and
    /// content that does not lex. Lets a change tick attribute the edit
    /// to the first differing top-level item.
    chains: Vec<u64>,
    readable: bool,
    /// Current retry backoff for an unreadable file, in ticks: doubled
    /// (up to [`MAX_READ_BACKOFF`]) on every failed read, reset by a
    /// successful one. `0` for readable files.
    backoff: u32,
    /// Ticks left before the next read retry of an unreadable file.
    /// While positive, the scan tick skips the file entirely — no read,
    /// no report — so a persistently failing path cannot make the
    /// watcher re-fail it on every poll.
    cooldown: u32,
}

/// Cap on the per-path read-retry backoff, in scan ticks. With the
/// default 2-second watch interval this retries a persistently
/// unreadable file about once a minute instead of every tick, while a
/// transient failure (editor rename window, NFS hiccup) still recovers
/// within a tick or two.
const MAX_READ_BACKOFF: u32 = 32;

/// Files whose mtime is younger than this are always re-read and hashed,
/// never fast-pathed on `(mtime, size)`: a same-size rewrite landing in
/// the same mtime tick as the previous scan would otherwise be invisible
/// (the racily-clean problem; the window comfortably exceeds any real
/// filesystem's timestamp granularity). Once a file's mtime settles past
/// the window, the idle tick goes back to stat-only.
const RACY_WINDOW: Duration = Duration::from_secs(2);

/// A poll-based scanner over one directory's `.p4` files.
///
/// Deliberately notification-free (no inotify/kqueue crate, consistent
/// with the dependency-free workspace): callers poll [`scan`] on their own
/// interval, and each tick reports exactly the files whose *content*
/// changed since the previous tick. The first scan reports every file —
/// the initial full-fleet epoch.
///
/// Writers should drop files **atomically** (write to a temporary name,
/// then rename into the directory): a scan tick can otherwise observe a
/// half-written file. A torn read self-heals — recently-modified files
/// are re-hashed every tick (the 2-second racy window), so the completed
/// content forms a follow-up epoch — but the torn epoch already emitted
/// stands.
///
/// [`scan`]: DirScanner::scan
#[derive(Debug)]
pub struct DirScanner {
    dir: PathBuf,
    seen: BTreeMap<String, Fingerprint>,
    /// File reads attempted across all ticks — lets tests pin the
    /// backoff schedule (a cooled-down path must not be re-read).
    reads: u64,
}

impl DirScanner {
    /// A scanner over `dir` that has seen nothing yet.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DirScanner { dir: dir.into(), seen: BTreeMap::new(), reads: 0 }
    }

    /// The watched directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of files currently tracked.
    #[must_use]
    pub fn tracked(&self) -> usize {
        self.seen.len()
    }

    /// One poll tick: lists the directory's `.p4` files and returns the
    /// added/modified ones (with their content), the removed names, and
    /// the names whose read failed (non-UTF-8, permissions). An
    /// unreadable file is reported once per observed change — not every
    /// tick — and stays tracked, so it is never mis-reported as removed;
    /// it joins an epoch as soon as it becomes readable. Files that
    /// vanish mid-scan are treated as not present this tick.
    ///
    /// # Errors
    ///
    /// Only listing the directory itself can fail (e.g. it was deleted);
    /// per-file races are absorbed as described above.
    pub fn scan(&mut self) -> io::Result<ScanDelta> {
        let now = SystemTime::now();
        // One stat per entry (via the DirEntry), names sorted for the
        // input-order contract.
        let mut entries: Vec<(String, PathBuf, Option<SystemTime>, u64)> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            if path.extension().is_none_or(|e| e != "p4") {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            if !meta.is_file() {
                continue;
            }
            let name = path
                .file_name()
                .map_or_else(|| path.display().to_string(), |n| n.to_string_lossy().into_owned());
            entries.push((name, path, meta.modified().ok(), meta.len()));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));

        let mut delta = ScanDelta::default();
        let mut present = std::collections::BTreeSet::new();
        for (name, path, mtime, size) in entries {
            if let Some(fp) = self.seen.get_mut(&name) {
                // An unreadable file in its backoff window is skipped
                // outright: no read, no report. The doubling schedule
                // (capped at MAX_READ_BACKOFF ticks) keeps a persistently
                // failing path from being re-failed on every poll.
                if !fp.readable && fp.cooldown > 0 {
                    fp.cooldown -= 1;
                    present.insert(name);
                    continue;
                }
            }
            if let Some(fp) = self.seen.get(&name) {
                // The fast path needs a *settled* mtime: files modified
                // within RACY_WINDOW of now are always re-hashed, so a
                // same-size rewrite inside one mtime tick is still seen.
                // A mtime *ahead* of the local clock (skewed producer)
                // counts as settled — an edit moves it to a different
                // value, which the equality check catches. Unreadable
                // fingerprints never fast-path: readability can return
                // via chmod, which touches neither mtime nor size.
                let settled = mtime.is_some_and(|m| match now.duration_since(m) {
                    Ok(age) => age >= RACY_WINDOW,
                    Err(_) => true, // future mtime
                });
                if fp.readable && settled && fp.mtime == mtime && fp.size == size {
                    present.insert(name);
                    continue; // unchanged fast path: no read
                }
            }
            self.reads += 1;
            // Chaos hook: a `scan-eio` fault fails this read, keyed on the
            // file name so the decision is stable across ticks and runs.
            let read =
                if crate::faults::fires(crate::faults::Site::ScanRead, fnv1a(name.as_bytes())) {
                    Err(crate::faults::injected_eio(&name))
                } else {
                    std::fs::read_to_string(&path)
                };
            match read {
                Ok(source) => {
                    let hash = fnv1a(source.as_bytes());
                    let unchanged =
                        self.seen.get(&name).is_some_and(|fp| fp.readable && fp.hash == hash);
                    let chains = p4bid_syntax::item_chains(&source);
                    if !unchanged {
                        // Attribute the edit to the first top-level item
                        // whose cumulative chain hash differs from the
                        // last readable content; a new (or previously
                        // unreadable, or unlexable) file has no baseline.
                        let first_changed =
                            self.seen.get(&name).filter(|fp| fp.readable).and_then(|fp| {
                                p4bid_syntax::first_changed_item(&fp.chains, &chains)
                            });
                        delta.item_changes.push(ItemChange {
                            name: name.clone(),
                            first_changed,
                            items: chains.len(),
                        });
                        delta.changed.push(BatchInput::new(name.clone(), source));
                    }
                    self.seen.insert(
                        name.clone(),
                        Fingerprint {
                            mtime,
                            size,
                            hash,
                            chains,
                            readable: true,
                            backoff: 0,
                            cooldown: 0,
                        },
                    );
                }
                Err(_) => {
                    // Keep tracking the file (it exists — it must not be
                    // reported removed), surface the failure once per
                    // observed (mtime, size), and back off the next retry.
                    let prev = self.seen.get(&name);
                    let already =
                        prev.is_some_and(|fp| !fp.readable && fp.mtime == mtime && fp.size == size);
                    let backoff = prev
                        .filter(|fp| !fp.readable)
                        .map_or(1, |fp| (fp.backoff.saturating_mul(2)).min(MAX_READ_BACKOFF));
                    self.seen.insert(
                        name.clone(),
                        Fingerprint {
                            mtime,
                            size,
                            hash: 0,
                            chains: Vec::new(),
                            readable: false,
                            backoff,
                            cooldown: backoff,
                        },
                    );
                    if !already {
                        delta.unreadable.push(name.clone());
                    }
                }
            }
            present.insert(name);
        }

        delta.removed =
            self.seen.keys().filter(|k| !present.contains(*k)).cloned().collect::<Vec<_>>();
        for name in &delta.removed {
            self.seen.remove(name);
        }
        Ok(delta)
    }
}

/// 64-bit FNV-1a — the content fingerprint ([`p4bid_ast::fnv`], the one
/// implementation every fingerprint in the workspace shares). Not
/// cryptographic, which is fine: a collision only costs one skipped
/// re-check of a file edited to a colliding body, and the `(mtime, size)`
/// fast path already accepts the same class of miss.
fn fnv1a(bytes: &[u8]) -> u64 {
    p4bid_ast::fnv::hash(bytes)
}

// ---------------------------------------------------------------------
// The verdict cache.
// ---------------------------------------------------------------------

/// An explicit field-wise fingerprint of a [`CheckOptions`] value, used
/// to key verdict-cache entries and to group per-policy batches.
///
/// Deliberately **not** a `Debug`-rendering hash: destructuring forces a
/// compile error the moment `CheckOptions` grows a field, so a new option
/// can never silently alias two distinct sets (which would replay wrong
/// verdicts). Every field feeds the hash with a framing byte, and
/// variable-length parts are length-prefixed so adjacent fields cannot
/// splice into each other.
#[must_use]
pub fn options_fingerprint(opts: &CheckOptions) -> u64 {
    // Exhaustive destructuring: adding a CheckOptions field breaks this
    // line until the fingerprint learns about it. Do not use `..` here.
    let CheckOptions {
        mode,
        lattice,
        pc,
        record_lineage,
        allow_declassify,
        max_source_bytes,
        check_timeout_ms,
        pc_floor,
    } = opts;
    let mut bytes = Vec::new();
    bytes.push(match mode {
        Mode::Base => 0u8,
        Mode::Ifc => 1,
        Mode::Permissive => 2,
    });
    match pc {
        None => bytes.push(0),
        Some(name) => {
            bytes.push(1);
            bytes.extend_from_slice(&(name.len() as u64).to_le_bytes());
            bytes.extend_from_slice(name.as_bytes());
        }
    }
    match lattice {
        None => bytes.push(0),
        Some(lat) => {
            bytes.push(1);
            let labels: Vec<_> = lat.labels().collect();
            bytes.extend_from_slice(&(labels.len() as u64).to_le_bytes());
            for &l in &labels {
                let name = lat.name(l);
                bytes.extend_from_slice(&(name.len() as u64).to_le_bytes());
                bytes.extend_from_slice(name.as_bytes());
            }
            // The full order relation, one bit per pair.
            for &a in &labels {
                for &b in &labels {
                    bytes.push(u8::from(lat.leq(a, b)));
                }
            }
        }
    }
    bytes.push(u8::from(*record_lineage));
    bytes.push(u8::from(*allow_declassify));
    bytes.push(u8::from(*pc_floor));
    // The resource guards change verdicts (E-OVERSIZED is content- and
    // cap-determined), so they partition the cache like any other option.
    bytes.extend_from_slice(&max_source_bytes.to_le_bytes());
    bytes.extend_from_slice(&check_timeout_ms.to_le_bytes());
    fnv1a(&bytes)
}

/// Key of one verdict-cache entry: the FNV-1a hash of the program text
/// (the same fingerprint [`DirScanner`] keys change detection on) plus
/// the [`options_fingerprint`] of the effective [`CheckOptions`] — two
/// daemons checking under different modes/lattices/policies can never
/// share a verdict. The 64-bit content hash is only a *locator*: every
/// hit re-verifies the stored program body byte-for-byte, so a hash
/// collision costs one cache miss, never a replayed wrong verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct VerdictKey {
    content: u64,
    opts: u64,
}

/// One cached verdict: everything content-determined in a
/// [`ProgramReport`], plus the exact program body the verdict was
/// computed from (checked on every hit — see [`VerdictKey`]). The index
/// and name are request-specific and are re-attached on each hit, so a
/// hit renders byte-identically to a fresh check of the same source
/// under the same id.
#[derive(Debug, Clone)]
struct CachedVerdict {
    source: String,
    accepted: bool,
    diagnostics: Vec<BatchDiagnostic>,
}

/// Whether a verdict is transient — produced by a worker panic or an
/// expired wall-clock budget rather than by the program's content. A
/// transient verdict must never enter the verdict cache: the next
/// submission of the same body may well succeed, and a cached
/// `E-INTERNAL` would replay the failure long after its cause (an
/// injected fault, a scheduling hiccup) is gone.
fn is_transient_verdict(diagnostics: &[BatchDiagnostic]) -> bool {
    diagnostics.iter().any(|d| d.code == "E-INTERNAL" || d.code == "E-TIMEOUT")
}

/// A bounded verdict cache with least-recently-used eviction and
/// hit/miss counters. `cap == 0` disables it entirely.
///
/// Recency is a monotonic stamp per entry, refreshed on hit: O(1) on the
/// hot hit path, with an O(n) minimum scan only on the (rare, bounded-n)
/// eviction path. Insertion-order eviction would evict the *hottest*
/// entry under churn — exactly the entry worth keeping.
#[derive(Debug, Default)]
struct VerdictCache {
    map: HashMap<VerdictKey, (u64, CachedVerdict)>,
    cap: usize,
    /// Monotonic recency clock; bumped on every hit and insert.
    clock: u64,
    hits: u64,
    misses: u64,
}

impl VerdictCache {
    fn new(cap: usize) -> Self {
        VerdictCache { cap, ..Default::default() }
    }

    fn enabled(&self) -> bool {
        self.cap > 0
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Looks up `key`, verifying the stored body equals `source`: a
    /// colliding body is a miss (and will overwrite the slot on insert),
    /// never a replayed verdict. Hits refresh the entry's recency.
    fn lookup(&mut self, key: VerdictKey, source: &str) -> Option<CachedVerdict> {
        match self.map.get_mut(&key) {
            Some((stamp, verdict)) if verdict.source == source => {
                self.clock += 1;
                *stamp = self.clock;
                self.hits += 1;
                Some(verdict.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: VerdictKey, verdict: CachedVerdict) {
        self.clock += 1;
        if self.map.insert(key, (self.clock, verdict)).is_none() && self.map.len() > self.cap {
            // Evict the least-recently-used entry (stamps are unique, so
            // the minimum — and thus the cache state — is deterministic).
            if let Some(&lru) = self.map.iter().min_by_key(|(_, (stamp, _))| *stamp).map(|(k, _)| k)
            {
                self.map.remove(&lru);
            }
        }
    }
}

/// Front-door operational counters for the `p4bid-stats/5` schema:
/// connection, queue, and verdict-cache behaviour of one serve run.
/// Rendered on **stderr** only (`--stats`/`--stats-json`) — everything
/// in here varies with arrival timing, so it is never part of the
/// deterministic report schemas.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServeOps {
    /// Connections accepted by the socket front door.
    pub connections: u64,
    /// Per-connection I/O and `accept` errors absorbed — logged and
    /// counted, never fatal to the daemon.
    pub conn_errors: u64,
    /// Requests dropped by the shed backpressure policy.
    pub shed: u64,
    /// High-water mark of the shared pending queue.
    pub peak_pending: u64,
    /// Verdict-cache hits.
    pub cache_hits: u64,
    /// Verdict-cache misses (a repeated in-epoch body counts one miss
    /// per occurrence, though it is checked only once).
    pub cache_misses: u64,
    /// Entries currently cached.
    pub cache_size: u64,
    /// Core refreshes performed by `--refresh-every`: each one re-freezes
    /// the shared core, folding the harvested per-worker overlay tables
    /// into a fatter frozen root (the `p4bid-stats/5` addition).
    pub refreezes: u64,
}

impl ServeOps {
    /// Human form for `--stats`, matching [`BatchStats::render_text`]'s
    /// two-line shape.
    #[must_use]
    pub fn render_text(&self) -> String {
        format!(
            "front door: {} connection(s), {} connection error(s), {} shed, peak queue {}\n\
             verdict cache: {} hit(s), {} miss(es), {} cached; {} refreeze(s)\n",
            self.connections,
            self.conn_errors,
            self.shed,
            self.peak_pending,
            self.cache_hits,
            self.cache_misses,
            self.cache_size,
            self.refreezes,
        )
    }
}

// ---------------------------------------------------------------------
// The epoch engine.
// ---------------------------------------------------------------------

/// One epoch's verdicts: a [`BatchReport`] plus its position in the
/// epoch sequence.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// 0-based epoch number.
    pub epoch: u64,
    /// The verdicts, exactly as `p4bid batch` would report them.
    pub report: BatchReport,
}

impl EpochReport {
    /// The human table — byte-identical to
    /// [`BatchReport::render_table`] on the same inputs, which is the
    /// serve determinism contract (epoch framing goes to stderr, never
    /// in here).
    #[must_use]
    pub fn render_table(&self) -> String {
        self.report.render_table()
    }

    /// One `p4bid-serve-report/2` JSON document on a single line (the
    /// NDJSON form): the per-program objects are the exact bytes the
    /// `p4bid-batch-report/2` schema embeds for the same inputs (`/2`
    /// added the per-diagnostic `lineage` array to both schemas).
    #[must_use]
    pub fn to_ndjson(&self) -> String {
        let mut out = String::from("{\"schema\": \"p4bid-serve-report/2\"");
        let _ = write!(out, ", \"epoch\": {}", self.epoch);
        out.push_str(", \"programs\": [");
        for (i, p) in self.report.programs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&program_json(p));
        }
        let _ = write!(out, "], \"summary\": {}", self.report.summary_json());
        out.push_str("}\n");
        out
    }
}

/// The long-lived checking engine behind `p4bid serve` / `p4bid watch`:
/// one [`SharedSessionCore`] serving every epoch, cumulative statistics,
/// and an optional periodic core refresh.
///
/// The engine is ingest-agnostic — [`run_feed`], [`run_socket`], and
/// [`run_watch`] all drive the same [`run_epoch`](ServeEngine::run_epoch).
#[derive(Debug)]
pub struct ServeEngine {
    core: SharedSessionCore,
    jobs: usize,
    epoch: u64,
    refresh_every: Option<u64>,
    refreshes: u64,
    stats: BatchStats,
    cache: VerdictCache,
    /// [`options_fingerprint`] of the core's base [`CheckOptions`], baked
    /// into every verdict-cache key (stable across
    /// [`SharedSessionCore::rebuild`], which preserves the options).
    opts_fp: u64,
    /// Per-program policy pack ([`ServeEngine::with_policy`]); `None`
    /// checks everything under the base options.
    policy: Option<PolicyPack>,
    /// Lazily-built cores for the non-base option sets a policy resolves
    /// to, keyed by options fingerprint (small and stable: one entry per
    /// distinct rule outcome, refreshed alongside the base core).
    extra_cores: Vec<(u64, SharedSessionCore)>,
    /// Worker-session harvests accumulated since the last refreeze —
    /// collected per base-core epoch only while `--refresh-every` is on,
    /// consumed by [`SharedSessionCore::refreeze`] when the refresh fires.
    harvests: Vec<p4bid_typeck::SessionHarvest>,
    /// Front-door counters recorded by [`run_socket`], cumulative across
    /// socket runs over one engine.
    door: DoorCounters,
}

/// The front-door slice of [`ServeOps`] owned by the engine; the cache
/// counters live in [`VerdictCache`].
#[derive(Debug, Default, Clone, Copy)]
struct DoorCounters {
    connections: u64,
    conn_errors: u64,
    shed: u64,
    peak_pending: u64,
}

impl ServeEngine {
    /// An engine checking under `opts` with `jobs` workers per epoch
    /// (`0` = one per core), warming and freezing its core up front.
    #[must_use]
    pub fn new(opts: CheckOptions, jobs: usize) -> Self {
        Self::with_core(SharedSessionCore::new(opts), jobs)
    }

    /// An engine over an existing core — lets callers (and the
    /// `serve_latency` bench) pay the freeze cost where they choose.
    #[must_use]
    pub fn with_core(core: SharedSessionCore, jobs: usize) -> Self {
        let opts_fp = options_fingerprint(core.options());
        ServeEngine {
            core,
            jobs,
            epoch: 0,
            refresh_every: None,
            refreshes: 0,
            stats: BatchStats::default(),
            cache: VerdictCache::default(),
            opts_fp,
            policy: None,
            extra_cores: Vec::new(),
            harvests: Vec::new(),
            door: DoorCounters::default(),
        }
    }

    /// Re-freezes the core every `n` epochs ([`SharedSessionCore::refreeze`]
    /// over the harvested per-worker overlay tables), folding the names and
    /// types workers interned since the last refresh into a fatter frozen
    /// root — which is what lets worker sessions publish tier-pure prefix
    /// snapshots for resubmitted programs. Verdicts are unaffected; `None`
    /// disables refreshing (the default).
    #[must_use]
    pub fn with_refresh_every(mut self, n: Option<u64>) -> Self {
        self.refresh_every = n.filter(|&n| n > 0);
        self
    }

    /// Caches up to `cap` verdicts keyed by `(content hash, options
    /// fingerprint)`, evicting the least-recently-used entry past the
    /// cap; `0` disables the cache (the default). A hit re-verifies the
    /// stored source against the submission — a hash collision is a
    /// miss, never a replayed verdict — then skips the checker entirely
    /// and renders byte-identically to a fresh check.
    #[must_use]
    pub fn with_cache(mut self, cap: usize) -> Self {
        self.cache = VerdictCache::new(cap);
        self
    }

    /// Resolves per-program [`CheckOptions`] through `policy` before
    /// checking: the first rule whose glob matches a program's name
    /// overrides the base options for that program (and for its
    /// verdict-cache key, so one body cached under two policies never
    /// cross-answers). `None` — or an empty pack — leaves every program
    /// on the base options.
    #[must_use]
    pub fn with_policy(mut self, policy: Option<PolicyPack>) -> Self {
        self.policy = policy.filter(|p| !p.is_empty());
        self
    }

    /// Epochs run so far.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epoch
    }

    /// Core refreshes performed so far.
    #[must_use]
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Cumulative tier/hit-rate statistics over every epoch so far
    /// (workers counts per-epoch sessions; `--stats`/`--stats-json`
    /// render this).
    #[must_use]
    pub fn cumulative_stats(&self) -> BatchStats {
        self.stats
    }

    /// Front-door and verdict-cache counters so far (the serve-specific
    /// half of the `p4bid-stats/5` document).
    #[must_use]
    pub fn ops(&self) -> ServeOps {
        ServeOps {
            connections: self.door.connections,
            conn_errors: self.door.conn_errors,
            shed: self.door.shed,
            peak_pending: self.door.peak_pending,
            cache_hits: self.cache.hits,
            cache_misses: self.cache.misses,
            cache_size: self.cache.len() as u64,
            refreezes: self.refreshes,
        }
    }

    /// Records `n` pending requests flushed by a graceful drain in the
    /// cumulative `drained` counter (the `p4bid-stats/5` failure-domain
    /// line). The requests still get checked — drained work is finished
    /// work, not dropped work; the counter says the final epoch(s) were
    /// cut by a shutdown request rather than by the normal triggers.
    fn note_drained(&mut self, n: u64) {
        self.stats.drained += n;
    }

    /// Checks one epoch's inputs against the long-lived core and returns
    /// the epoch report. Refreshes the core first when a refresh is due;
    /// answers from the verdict cache when one is configured.
    #[must_use]
    pub fn run_epoch(&mut self, inputs: &[BatchInput]) -> EpochReport {
        if let Some(n) = self.refresh_every {
            if self.epoch > 0 && self.epoch.is_multiple_of(n) {
                // Refreeze, don't rebuild: the harvested overlay tables
                // become frozen, so the names this daemon's programs keep
                // using are served tier-pure from now on (and tier-pure
                // prefix snapshots start landing). Old frozen ids are
                // preserved verbatim, so existing snapshots stay valid.
                self.core = self.core.refreeze(std::mem::take(&mut self.harvests));
                for (_, core) in &mut self.extra_cores {
                    *core = core.rebuild();
                }
                self.refreshes += 1;
            }
        }
        let report = if self.cache.enabled() {
            self.check_epoch_cached(inputs)
        } else {
            self.check_epoch_uncached(inputs)
        };
        self.stats.merge(&report.stats);
        let epoch = self.epoch;
        self.epoch += 1;
        EpochReport { epoch, report }
    }

    /// The cached check path: answer every input whose `(content hash,
    /// options fingerprint)` key is cached with the *same body*, check
    /// only the misses (the first occurrence of each missing key — an
    /// epoch resubmitting one body many times checks it once, while two
    /// colliding bodies each get their own check), and reassemble by
    /// input position. Verdicts depend only on source text and options,
    /// so the assembled report is byte-identical to an uncached check of
    /// the same inputs.
    fn check_epoch_cached(&mut self, inputs: &[BatchInput]) -> BatchReport {
        enum Slot {
            Hit(CachedVerdict),
            Miss(usize),
        }
        let mut to_check: Vec<BatchInput> = Vec::new();
        let mut first_miss: HashMap<VerdictKey, usize> = HashMap::new();
        let mut slots: Vec<(VerdictKey, Slot)> = Vec::with_capacity(inputs.len());
        for input in inputs {
            let key = VerdictKey {
                content: fnv1a(input.source.as_bytes()),
                opts: self.resolve_fp(&input.name),
            };
            let slot = match self.cache.lookup(key, &input.source) {
                Some(verdict) => Slot::Hit(verdict),
                None => {
                    // Dedup within the epoch, but only against the same
                    // body: a colliding key must not reuse another
                    // program's pending slot.
                    let pos = match first_miss.get(&key) {
                        Some(&pos) if to_check[pos].source == input.source => pos,
                        _ => {
                            to_check.push(input.clone());
                            let pos = to_check.len() - 1;
                            first_miss.insert(key, pos);
                            pos
                        }
                    };
                    Slot::Miss(pos)
                }
            };
            slots.push((key, slot));
        }
        let checked = if to_check.is_empty() {
            // All hits: no sessions ran, so no stats and one (formal)
            // worker for the epoch-framing line.
            BatchReport { programs: Vec::new(), jobs: 1, stats: BatchStats::default() }
        } else {
            self.check_epoch_uncached(&to_check)
        };
        let programs = slots
            .into_iter()
            .enumerate()
            .map(|(index, (key, slot))| {
                let verdict = match slot {
                    Slot::Hit(verdict) => verdict,
                    Slot::Miss(pos) => {
                        let p = &checked.programs[pos];
                        let verdict = CachedVerdict {
                            source: inputs[index].source.clone(),
                            accepted: p.accepted,
                            diagnostics: p.diagnostics.clone(),
                        };
                        if !is_transient_verdict(&verdict.diagnostics) {
                            self.cache.insert(key, verdict.clone());
                        }
                        verdict
                    }
                };
                ProgramReport {
                    index,
                    name: inputs[index].name.clone(),
                    accepted: verdict.accepted,
                    diagnostics: verdict.diagnostics,
                }
            })
            .collect();
        BatchReport { programs, jobs: checked.jobs, stats: checked.stats }
    }

    /// The uncached check path: with a policy loaded, partitions the
    /// epoch by resolved options fingerprint (first-appearance order),
    /// runs each partition against its long-lived core, and reassembles
    /// by input position. With no policy — or when every input resolves
    /// to the base options — this is exactly [`check_batch_with_core`].
    fn check_epoch_uncached(&mut self, inputs: &[BatchInput]) -> BatchReport {
        if self.policy.is_none() {
            return self.check_base_core(inputs);
        }
        let mut groups: Vec<(u64, Vec<usize>)> = Vec::new();
        for (i, input) in inputs.iter().enumerate() {
            let fp = self.resolve_fp(&input.name);
            match groups.iter_mut().find(|(g, _)| *g == fp) {
                Some((_, ixs)) => ixs.push(i),
                None => groups.push((fp, vec![i])),
            }
        }
        if groups.len() <= 1 && groups.first().is_none_or(|(fp, _)| *fp == self.opts_fp) {
            return self.check_base_core(inputs);
        }
        let mut programs: Vec<ProgramReport> = Vec::with_capacity(inputs.len());
        let mut stats = BatchStats::default();
        let mut report_jobs = 1;
        for (fp, ixs) in &groups {
            let subset: Vec<BatchInput> = ixs.iter().map(|&i| inputs[i].clone()).collect();
            let sub = if *fp == self.opts_fp {
                self.check_base_core(&subset)
            } else {
                let core = self.core_for(*fp, &inputs[ixs[0]].name);
                check_batch_with_core(&subset, &core, self.jobs)
            };
            report_jobs = report_jobs.max(sub.jobs);
            stats.merge(&sub.stats);
            for mut p in sub.programs {
                p.index = ixs[p.index];
                programs.push(p);
            }
        }
        programs.sort_by_key(|p| p.index);
        BatchReport { programs, jobs: report_jobs, stats }
    }

    /// One batch against the base core. With `--refresh-every` armed the
    /// worker sessions are harvested — their overlay tables and
    /// newly built per-lattice prelude states accumulate until the next
    /// refreeze folds them into the frozen root. The report is
    /// byte-identical either way.
    fn check_base_core(&mut self, inputs: &[BatchInput]) -> BatchReport {
        if self.refresh_every.is_some() {
            let (report, harvests) =
                crate::batch::check_batch_harvesting(inputs, &self.core, self.jobs);
            self.harvests.extend(harvests);
            report
        } else {
            check_batch_with_core(inputs, &self.core, self.jobs)
        }
    }

    /// Options fingerprint for one program name under the engine's
    /// policy; the base fingerprint when no pack is loaded or no rule
    /// matches.
    fn resolve_fp(&self, name: &str) -> u64 {
        match &self.policy {
            Some(pack) if pack.matching(name).is_some() => {
                options_fingerprint(&pack.resolve(name, self.core.options()))
            }
            _ => self.opts_fp,
        }
    }

    /// The long-lived core serving one options fingerprint, built on
    /// first use from the options the policy resolves for `name` (the
    /// fingerprint covers every option field, so any name in the
    /// partition resolves the same options).
    fn core_for(&mut self, fp: u64, name: &str) -> SharedSessionCore {
        if fp == self.opts_fp {
            return self.core.clone();
        }
        if let Some((_, core)) = self.extra_cores.iter().find(|(g, _)| *g == fp) {
            return core.clone();
        }
        let opts = self
            .policy
            .as_ref()
            .expect("a non-base fingerprint comes from a policy rule")
            .resolve(name, self.core.options());
        let core = SharedSessionCore::new(opts);
        self.extra_cores.push((fp, core.clone()));
        core
    }
}

// ---------------------------------------------------------------------
// Graceful drain.
// ---------------------------------------------------------------------

/// The process-wide drain request, set by the signal handler (or
/// [`request_drain`]) and polled by every ingest loop. A static because
/// a signal handler can do nothing else; an atomic store is one of the
/// few things that is async-signal-safe.
static DRAIN: AtomicBool = AtomicBool::new(false);

/// Installs `SIGTERM`/`SIGINT` handlers that request a graceful drain:
/// the running ingest loop stops accepting new work, cuts everything
/// pending as the final epoch(s), lets `--stats`/`--stats-json` flush,
/// and (for the socket form) unlinks the socket file — instead of the
/// default kill-mid-epoch.
///
/// The handler only stores a flag; every consequence happens on the
/// serving thread at its next poll. Installing twice is harmless.
#[cfg(unix)]
pub fn install_drain_handler() {
    // The one audited unsafe block in the workspace (`deny`, not
    // `forbid`, in lib.rs): registering a handler that does nothing but
    // store an atomic flag. `signal` rather than `sigaction` keeps the
    // FFI surface to a single libc symbol with no struct layout to get
    // wrong; its BSD restart semantics are fine because every loop polls.
    #[allow(unsafe_code)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        extern "C" fn on_signal(_signum: i32) {
            DRAIN.store(true, Ordering::SeqCst);
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            let _ = signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
            let _ = signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

/// No-op off Unix: the loops still poll [`drain_requested`], so an
/// embedder can drive a drain through [`request_drain`].
#[cfg(not(unix))]
pub fn install_drain_handler() {}

/// Requests a graceful drain, exactly as the signal handler would.
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Whether a graceful drain has been requested.
#[must_use]
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst)
}

/// Clears a pending drain request — for embedders (and tests) that run
/// several ingest loops in one process; the CLI exits after one.
pub fn clear_drain() {
    DRAIN.store(false, Ordering::SeqCst);
}

/// Sleeps for `total`, in small slices so a drain request (which only
/// sets a flag — nothing wakes the sleeper) is noticed within ~25 ms.
pub(crate) fn drainable_sleep(total: Duration) {
    let deadline = std::time::Instant::now() + total;
    while !drain_requested() {
        match deadline.checked_duration_since(std::time::Instant::now()) {
            Some(left) if !left.is_zero() => {
                std::thread::sleep(left.min(Duration::from_millis(25)));
            }
            _ => return,
        }
    }
}

// ---------------------------------------------------------------------
// Ingest loops.
// ---------------------------------------------------------------------

/// What one ingest loop did, for exit codes and the final stderr line.
#[derive(Debug, Default, Clone, Copy)]
pub struct ServeSummary {
    /// Epochs emitted (ticks/flushes with at least one program).
    pub epochs: u64,
    /// Programs checked across all epochs.
    pub requests: u64,
    /// Feed lines dropped (malformed request, unreadable `path`,
    /// over-long line).
    pub skipped: u64,
    /// Whether any epoch rejected any program (exit code 1).
    pub any_rejected: bool,
    /// Connection and `accept` errors absorbed by the socket front door.
    pub conn_errors: u64,
    /// Requests dropped by the shed backpressure policy.
    pub shed: u64,
}

/// Flushes `pending` as one epoch: runs it, writes the report to `out`
/// (flushing, so downstream consumers see epochs as they complete), and
/// frames the epoch on `log`.
fn flush_epoch(
    engine: &mut ServeEngine,
    pending: &mut Vec<BatchInput>,
    out: &mut dyn Write,
    log: &mut dyn Write,
    json: bool,
    summary: &mut ServeSummary,
) -> io::Result<()> {
    if pending.is_empty() {
        return Ok(());
    }
    // Colliding ids make report rows (and anything keyed by id
    // downstream) ambiguous; surface them without refusing the work.
    let mut seen = std::collections::BTreeSet::new();
    for input in pending.iter() {
        if !seen.insert(input.name.as_str()) {
            let _ = writeln!(log, "notice: duplicate id `{}` in epoch", input.name);
        }
    }
    let start = std::time::Instant::now();
    let epoch = engine.run_epoch(pending);
    if json {
        out.write_all(epoch.to_ndjson().as_bytes())?;
    } else {
        out.write_all(epoch.render_table().as_bytes())?;
    }
    out.flush()?;
    let _ = writeln!(
        log,
        "epoch {}: checked {} program(s) in {:.1} ms on {} worker(s)",
        epoch.epoch,
        epoch.report.programs.len(),
        start.elapsed().as_secs_f64() * 1e3,
        epoch.report.jobs,
    );
    summary.epochs += 1;
    summary.requests += pending.len() as u64;
    summary.any_rejected |= !epoch.report.all_accepted();
    pending.clear();
    Ok(())
}

/// Resolves one request into a batch input, reading `path` bodies from
/// disk as the request line is received — so read failures are logged
/// next to the offending line and the epoch snapshots content at
/// receipt.
fn load_request(req: ServeRequest) -> Result<BatchInput, String> {
    match req.body {
        RequestBody::Source(source) => Ok(BatchInput::new(req.id, source)),
        RequestBody::Path(path) => match std::fs::read_to_string(&path) {
            Ok(source) => Ok(BatchInput::new(req.id, source)),
            Err(e) => Err(format!("cannot read `{path}`: {e}")),
        },
    }
}

/// What to do with one framer event in an ingest loop: count and log the
/// skip cases uniformly, hand complete lines back to the caller.
fn skip_event(event: &FeedEvent, max_line: usize, log: &mut dyn Write, who: &str) {
    match event {
        FeedEvent::Line(_) => unreachable!("skip_event only handles skip cases"),
        FeedEvent::Oversized(len) => {
            let _ = writeln!(
                log,
                "{who}skipped request: {len}-byte line exceeds the {max_line}-byte cap"
            );
        }
        FeedEvent::BadUtf8 => {
            let _ = writeln!(log, "{who}skipped request: line is not valid UTF-8");
        }
    }
}

/// Drives the line-delimited request feed: requests accumulate until a
/// blank line or EOF flushes them as one epoch (or
/// [`IngestLimits::max_epoch`] cuts one early). Reports go to `out`
/// (tables, or NDJSON epoch documents with `json`); framing,
/// skipped-line notices, and timing go to `log`. Stops after
/// `max_epochs` epochs when set, else at EOF. Lines longer than
/// [`IngestLimits::max_line`] are dropped without buffering and counted
/// as skipped.
///
/// A graceful drain ([`install_drain_handler`]/[`request_drain`]) is
/// honored at the next chunk boundary: pending requests are flushed as
/// the final epoch (counted as `drained` in the stats) and the loop
/// returns normally.
///
/// # Errors
///
/// Propagates I/O errors from the reader and from `out`; malformed,
/// unreadable, or over-long requests are logged and counted, never
/// fatal.
pub fn run_feed(
    engine: &mut ServeEngine,
    reader: &mut dyn BufRead,
    out: &mut dyn Write,
    log: &mut dyn Write,
    json: bool,
    max_epochs: Option<u64>,
    limits: &IngestLimits,
) -> io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    let mut pending: Vec<BatchInput> = Vec::new();
    let mut framer = LineFramer::new(limits.max_line);
    let mut events: Vec<FeedEvent> = Vec::new();
    let done = |s: &ServeSummary| max_epochs.is_some_and(|m| s.epochs >= m);
    'feed: while !done(&summary) {
        if drain_requested() {
            engine.note_drained(pending.len() as u64);
            flush_epoch(engine, &mut pending, out, log, json, &mut summary)?;
            break;
        }
        let n = match reader.fill_buf() {
            Ok([]) => {
                framer.finish(&mut events);
                0
            }
            Ok(chunk) => {
                let n = chunk.len();
                framer.push(chunk, &mut events);
                n
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if n > 0 {
            reader.consume(n);
        }
        for event in events.drain(..) {
            if let FeedEvent::Line(line) = &event {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    flush_epoch(engine, &mut pending, out, log, json, &mut summary)?;
                } else {
                    match parse_request(trimmed).and_then(load_request) {
                        Ok(input) => {
                            pending.push(input);
                            if limits.max_epoch > 0 && pending.len() >= limits.max_epoch {
                                flush_epoch(engine, &mut pending, out, log, json, &mut summary)?;
                            }
                        }
                        Err(e) => {
                            summary.skipped += 1;
                            let _ = writeln!(log, "skipped request: {e}");
                        }
                    }
                }
            } else {
                summary.skipped += 1;
                skip_event(&event, limits.max_line, log, "");
            }
            if done(&summary) {
                break 'feed;
            }
        }
        if n == 0 {
            flush_epoch(engine, &mut pending, out, log, json, &mut summary)?;
            break;
        }
    }
    Ok(summary)
}

/// Drives the watched-directory loop: scans every `interval`, and every
/// tick whose [`ScanDelta`] contains changed files becomes one epoch
/// (removed files are logged, not checked). The first tick checks the
/// whole directory. Runs until `max_epochs` epochs were emitted; with
/// `None` it serves forever (the daemon form).
///
/// Once the first scan has succeeded, later scan failures (the watched
/// directory vanished, transient `EIO`) are absorbed: logged, then
/// retried on a bounded exponential backoff — the daemon neither dies
/// nor spins hot, and resumes the moment the directory returns. A
/// graceful drain ([`install_drain_handler`]/[`request_drain`]) ends the
/// loop at the next tick.
///
/// # Errors
///
/// Propagates a failure of the *first* directory listing (a directory
/// that never existed is a configuration error, not a transient fault)
/// and I/O errors on `out`.
pub fn run_watch(
    engine: &mut ServeEngine,
    scanner: &mut DirScanner,
    out: &mut dyn Write,
    log: &mut dyn Write,
    json: bool,
    max_epochs: Option<u64>,
    interval: Duration,
) -> io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    let done = |s: &ServeSummary| max_epochs.is_some_and(|m| s.epochs >= m);
    let mut ever_scanned = false;
    let mut scan_backoff: u32 = 0;
    while !done(&summary) && !drain_requested() {
        let delta = match scanner.scan() {
            Ok(delta) => {
                ever_scanned = true;
                scan_backoff = 0;
                delta
            }
            Err(e) if ever_scanned => {
                scan_backoff = scan_backoff.saturating_mul(2).clamp(1, MAX_READ_BACKOFF);
                let _ = writeln!(
                    log,
                    "cannot scan `{}`: {e} (next attempt in {scan_backoff} interval(s))",
                    scanner.dir().display(),
                );
                // Back off in whole intervals, with a floor so a
                // zero-interval caller still cannot spin hot.
                for _ in 0..scan_backoff {
                    if drain_requested() {
                        break;
                    }
                    drainable_sleep(interval.max(Duration::from_millis(25)));
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        for name in &delta.removed {
            let _ = writeln!(log, "removed: {name}");
        }
        for name in &delta.unreadable {
            let _ = writeln!(log, "cannot read: {name}");
        }
        for c in &delta.item_changes {
            match c.first_changed {
                Some(ix) => {
                    let _ = writeln!(
                        log,
                        "changed: {} (first change at item {}/{})",
                        c.name,
                        ix + 1,
                        c.items,
                    );
                }
                None => {
                    let _ = writeln!(log, "changed: {}", c.name);
                }
            }
        }
        let mut pending = delta.changed;
        flush_epoch(engine, &mut pending, out, log, json, &mut summary)?;
        if !done(&summary) {
            drainable_sleep(interval);
        }
    }
    Ok(summary)
}

// ---------------------------------------------------------------------
// The socket front door: acceptor, per-connection readers, sequencer.
// ---------------------------------------------------------------------

/// The state shared between the acceptor thread, the per-connection
/// reader threads, and the epoch sequencer on the serving thread.
#[cfg(unix)]
#[derive(Debug, Default)]
struct DoorState {
    /// Pending requests in sequencer order: `(connection id, arrival
    /// seq)`. The map iterates in key order, so an epoch's inputs are
    /// always sorted by that pair — the stable order that keeps epoch
    /// bytes identical for a given interleaving of arrivals, regardless
    /// of reader-thread scheduling inside it.
    pending: BTreeMap<(u64, u64), BatchInput>,
    /// Flush markers (blank lines, connection closes) not yet consumed
    /// by the sequencer.
    flushes: u64,
    /// Live connection readers.
    open: usize,
    /// Shutdown flag: set when `--max-epochs` is reached or the
    /// sequencer hit a fatal `out` error; everything drains out.
    done: bool,
    connections: u64,
    conn_errors: u64,
    shed: u64,
    skipped: u64,
    peak_pending: usize,
}

/// The front door: [`DoorState`] plus the two wakeups — `ready` for the
/// sequencer (new request, flush marker, connection close), `space` for
/// producers blocked on a full queue.
#[cfg(unix)]
#[derive(Debug, Default)]
struct Door {
    state: Mutex<DoorState>,
    ready: Condvar,
    space: Condvar,
}

#[cfg(unix)]
impl Door {
    fn lock(&self) -> std::sync::MutexGuard<'_, DoorState> {
        self.state.lock().expect("door lock")
    }

    fn is_done(&self) -> bool {
        self.lock().done
    }

    /// Begins shutdown: wakes the sequencer, every reader, and every
    /// blocked producer so the thread scope can join.
    fn set_done(&self) {
        self.lock().done = true;
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Queues one request from connection `conn`, applying the
    /// backpressure policy at a full queue: shed drops it (counted),
    /// block waits for the sequencer to cut an epoch — which a full
    /// queue forces, so a blocked producer never deadlocks. Returns
    /// `false` when the daemon is shutting down.
    fn submit(&self, conn: u64, seq: u64, input: BatchInput, limits: &IngestLimits) -> bool {
        let mut st = self.lock();
        if limits.max_pending > 0 && st.pending.len() >= limits.max_pending {
            if limits.shed {
                st.shed += 1;
                return !st.done;
            }
            while !st.done && st.pending.len() >= limits.max_pending {
                self.ready.notify_all();
                st = self.space.wait(st).expect("door lock");
            }
        }
        if st.done {
            return false;
        }
        st.pending.insert((conn, seq), input);
        st.peak_pending = st.peak_pending.max(st.pending.len());
        self.ready.notify_all();
        true
    }

    /// Records a flush marker (blank line or connection close).
    fn flush(&self) {
        self.lock().flushes += 1;
        self.ready.notify_all();
    }

    fn skip(&self) {
        self.lock().skipped += 1;
    }

    fn conn_error(&self) {
        self.lock().conn_errors += 1;
    }
}

/// One cut decision by the epoch sequencer.
#[cfg(unix)]
enum Cut {
    /// Check these inputs as the next epoch (never empty).
    Epoch(Vec<BatchInput>),
    /// The daemon is shutting down with nothing left to cut.
    Finished,
}

/// Blocks until an epoch can be cut and returns it, in `(connection id,
/// arrival seq)` order. Cut triggers: a pending flush marker with work
/// queued, the epoch-size bound, or a full queue (the force-cut that
/// makes blocking backpressure deadlock-free). An explicit flush drains
/// *everything* pending — in `max_epoch`-sized pieces when bounded.
#[cfg(unix)]
fn next_epoch(door: &Door, limits: &IngestLimits) -> Cut {
    let mut st = door.lock();
    loop {
        if st.done {
            return Cut::Finished;
        }
        let n = st.pending.len();
        // A graceful drain cuts everything pending as the final epoch(s)
        // and finishes once the queue is empty.
        if drain_requested() {
            if n == 0 {
                return Cut::Finished;
            }
            break;
        }
        let size_cut = limits.max_epoch > 0 && n >= limits.max_epoch;
        let full_cut = limits.max_pending > 0 && n >= limits.max_pending;
        if size_cut || full_cut || (st.flushes > 0 && n > 0) {
            break;
        }
        // Flush markers with nothing pending emit nothing. The timed
        // wait exists for the drain flag: a signal stores it but wakes
        // no condvar, so the sequencer re-polls on its own clock.
        st.flushes = 0;
        let (guard, _) = door.ready.wait_timeout(st, Duration::from_millis(25)).expect("door lock");
        st = guard;
    }
    let take = if limits.max_epoch > 0 {
        limits.max_epoch.min(st.pending.len())
    } else {
        st.pending.len()
    };
    let mut batch = Vec::with_capacity(take);
    for _ in 0..take {
        let (_, input) = st.pending.pop_first().expect("sized above");
        batch.push(input);
    }
    if st.pending.is_empty() {
        st.flushes = 0;
    }
    drop(st);
    door.space.notify_all();
    Cut::Epoch(batch)
}

/// One connection's reader: frames lines under the byte cap, parses and
/// loads requests, queues them through the [`Door`]. Every failure mode
/// — mid-line disconnect, reset, bad UTF-8, over-long line — is counted
/// and logged; none of them can reach the daemon.
/// Close bookkeeping shared by every way a connection ends: any close —
/// clean, errored, injected, or shutdown — flushes the connection's
/// pending work, mirroring the single-producer EOF rule.
#[cfg(unix)]
fn connection_closed(door: &Door) {
    let mut st = door.lock();
    st.open -= 1;
    st.flushes += 1;
    drop(st);
    door.ready.notify_all();
}

#[cfg(unix)]
fn serve_connection(
    conn: u64,
    stream: std::os::unix::net::UnixStream,
    door: &Door,
    log: &Mutex<&mut (dyn Write + Send)>,
    limits: &IngestLimits,
) {
    // Chaos hook: a `sock-eio` fault (keyed on the connection id) fails
    // this connection's first read, driving the same absorb-and-count
    // path a mid-stream reset would.
    if crate::faults::fires(crate::faults::Site::SocketRead, conn) {
        door.conn_error();
        {
            let mut log = log.lock().expect("log lock");
            let _ =
                writeln!(log, "connection {conn} error: {}", crate::faults::injected_eio("socket"));
        }
        connection_closed(door);
        return;
    }
    // The read timeout keeps the reader responsive to shutdown; a
    // WouldBlock/TimedOut tick is not an error.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut reader = io::BufReader::new(stream);
    let mut framer = LineFramer::new(limits.max_line);
    let mut events: Vec<FeedEvent> = Vec::new();
    let mut seq: u64 = 0;
    'serve: loop {
        let n = match reader.fill_buf() {
            Ok([]) => {
                framer.finish(&mut events);
                0
            }
            Ok(chunk) => {
                let n = chunk.len();
                framer.push(chunk, &mut events);
                n
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if door.is_done() {
                    break;
                }
                continue;
            }
            Err(e) => {
                // The fault-isolation contract: a connection that breaks
                // mid-stream is logged and counted, never fatal.
                door.conn_error();
                let mut log = log.lock().expect("log lock");
                let _ = writeln!(log, "connection {conn} error: {e}");
                break;
            }
        };
        if n > 0 {
            reader.consume(n);
        }
        for event in events.drain(..) {
            if let FeedEvent::Line(line) = &event {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    door.flush();
                } else {
                    match parse_request(trimmed).and_then(load_request) {
                        Ok(input) => {
                            if !door.submit(conn, seq, input, limits) {
                                break 'serve;
                            }
                            seq += 1;
                        }
                        Err(e) => {
                            door.skip();
                            let mut log = log.lock().expect("log lock");
                            let _ = writeln!(log, "connection {conn}: skipped request: {e}");
                        }
                    }
                }
            } else {
                door.skip();
                let mut log = log.lock().expect("log lock");
                skip_event(&event, limits.max_line, &mut **log, &format!("connection {conn}: "));
            }
        }
        if n == 0 || door.is_done() {
            break;
        }
    }
    connection_closed(door);
}

/// The acceptor: polls a nonblocking listener, spawns one reader thread
/// per connection, and absorbs transient `accept` failures (counted and
/// logged, with a pause so a persistently failing listener cannot spin).
#[cfg(unix)]
fn accept_loop<'scope, 'env: 'scope, 'log: 'env>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    listener: &'env std::os::unix::net::UnixListener,
    door: &'env Door,
    log: &'env Mutex<&'log mut (dyn Write + Send)>,
    limits: &'env IngestLimits,
) {
    let _ = listener.set_nonblocking(true);
    let mut next_conn: u64 = 0;
    // A drain stops accepting immediately; connections already open keep
    // feeding the sequencer until the final epochs are cut.
    while !door.is_done() && !drain_requested() {
        match listener.accept() {
            Ok((stream, _)) => {
                // The stream inherits the listener's nonblocking flag on
                // some platforms; the reader wants a plain read timeout.
                let _ = stream.set_nonblocking(false);
                let conn = next_conn;
                next_conn += 1;
                {
                    let mut st = door.lock();
                    st.open += 1;
                    st.connections += 1;
                }
                {
                    let mut log = log.lock().expect("log lock");
                    let _ = writeln!(log, "connection {conn}: accepted");
                }
                scope.spawn(move || serve_connection(conn, stream, door, log, limits));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                door.conn_error();
                let mut log = log.lock().expect("log lock");
                let _ = writeln!(log, "accept error: {e}");
                drop(log);
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Drives the feed protocol over a Unix domain socket as a concurrent
/// multi-producer front door: binds (replacing a stale *socket* at that
/// path — anything else there is an error, never deleted), then an
/// acceptor thread hands each connection to its own reader thread, and
/// the epoch sequencer on the calling thread cuts the shared pending
/// queue into epochs — on each blank line or connection close, at
/// [`IngestLimits::max_epoch`] pending requests, or when the queue hits
/// [`IngestLimits::max_pending`] (backpressure: block the producer, or
/// shed). Epoch inputs are always ordered by `(connection id, arrival
/// seq)`, so output is byte-identical for a given interleaving of
/// arrivals across runs and `--jobs` settings.
///
/// Per-connection read errors and transient `accept` failures are
/// logged (`connection N error: …`), counted in the summary, and never
/// fatal; the socket file is unlinked on **every** exit path.
///
/// A graceful drain ([`install_drain_handler`]/[`request_drain`]) stops
/// the acceptor, cuts everything pending as the final epoch(s) — counted
/// as `drained` in the stats — and returns normally, so the caller's
/// stats flush and the socket unlink both still run.
///
/// # Errors
///
/// Propagates bind failures, I/O errors on `out`, and a non-socket file
/// already existing at `socket` — the socket file is removed even then.
#[cfg(unix)]
pub fn run_socket(
    engine: &mut ServeEngine,
    socket: &Path,
    out: &mut dyn Write,
    log: &mut (dyn Write + Send),
    json: bool,
    max_epochs: Option<u64>,
    limits: &IngestLimits,
) -> io::Result<ServeSummary> {
    if let Ok(meta) = std::fs::symlink_metadata(socket) {
        use std::os::unix::fs::FileTypeExt as _;
        if !meta.file_type().is_socket() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "`{}` exists and is not a socket; refusing to replace it",
                    socket.display()
                ),
            ));
        }
        // A connectable socket means a live daemon owns the path; only a
        // refused/dead one is stale and safe to unlink.
        if std::os::unix::net::UnixStream::connect(socket).is_ok() {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("`{}` is already being served by a live daemon", socket.display()),
            ));
        }
        let _ = std::fs::remove_file(socket); // stale socket from a dead daemon
    }
    let listener = std::os::unix::net::UnixListener::bind(socket)?;
    let log = Mutex::new(log);
    {
        let mut log = log.lock().expect("log lock");
        let _ = writeln!(log, "listening on {}", socket.display());
    }
    let door = Door::default();
    let mut summary = ServeSummary::default();
    let (listener_ref, door_ref, log_ref) = (&listener, &door, &log);
    let result: io::Result<()> = std::thread::scope(|scope| {
        scope.spawn(move || accept_loop(scope, listener_ref, door_ref, log_ref, limits));
        let result = loop {
            match next_epoch(&door, limits) {
                Cut::Finished => break Ok(()),
                Cut::Epoch(mut batch) => {
                    if drain_requested() {
                        engine.note_drained(batch.len() as u64);
                    }
                    let flushed = {
                        let mut log = log.lock().expect("log lock");
                        flush_epoch(engine, &mut batch, out, &mut **log, json, &mut summary)
                    };
                    if let Err(e) = flushed {
                        break Err(e);
                    }
                    if max_epochs.is_some_and(|m| summary.epochs >= m) {
                        break Ok(());
                    }
                }
            }
        };
        door.set_done();
        result
    });
    // The fault-isolation contract: the socket file is unlinked on every
    // exit path, the error ones included.
    let _ = std::fs::remove_file(socket);
    let st = door.lock();
    summary.skipped += st.skipped;
    summary.conn_errors = st.conn_errors;
    summary.shed = st.shed;
    engine.door.connections += st.connections;
    engine.door.conn_errors += st.conn_errors;
    engine.door.shed += st.shed;
    engine.door.peak_pending = engine.door.peak_pending.max(st.peak_pending as u64);
    drop(st);
    result.map(|()| summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::check_batch;
    use std::io::Cursor;

    const OK: &str = "control C(inout bit<8> x) { apply { x = x + 8w1; } }";
    const LEAK: &str =
        "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }";

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("p4bid-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    // --- request parsing -------------------------------------------------

    #[test]
    fn parses_source_and_path_requests() {
        let r = parse_request(r#"{"id": "prog-1", "source": "control C() { apply { } }"}"#)
            .expect("parses");
        assert_eq!(r.id, "prog-1");
        assert_eq!(r.body, RequestBody::Source("control C() { apply { } }".to_string()));

        let r = parse_request(r#"{"id": "x", "path": "/tmp/x.p4"}"#).expect("parses");
        assert_eq!(r.body, RequestBody::Path("/tmp/x.p4".to_string()));

        // `id` defaults to the *full path* for path requests — never the
        // basename, which would alias /a/x.p4 and /b/x.p4 — numeric ids
        // keep their literal text, and unknown keys are ignored.
        let r = parse_request(r#"{"path": "/corp/fleet/edge.p4", "prio": 3}"#).expect("parses");
        assert_eq!(r.id, "/corp/fleet/edge.p4");
        let r = parse_request(r#"{"id": 17, "path": "x.p4"}"#).expect("parses");
        assert_eq!(r.id, "17");
    }

    #[test]
    fn path_requests_in_different_dirs_get_distinct_default_ids() {
        let a = parse_request(r#"{"path": "a/x.p4"}"#).expect("parses");
        let b = parse_request(r#"{"path": "b/x.p4"}"#).expect("parses");
        assert_ne!(a.id, b.id);
        assert_eq!(a.id, "a/x.p4");
    }

    #[test]
    fn decodes_string_escapes() {
        let r = parse_request(
            "{\"id\": \"e\", \"source\": \"a\\n\\t\\\"q\\\" \\\\ \\u00e9 \\ud83d\\ude00\"}",
        )
        .expect("parses");
        assert_eq!(r.body, RequestBody::Source("a\n\t\"q\" \\ é 😀".to_string()));
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, needle) in [
            ("", "expected `{`"),
            ("{", "end of line"),
            (r#"{"id": "a"}"#, "needs a `path` or a `source`"),
            (r#"{"source": "x"}"#, "need an `id`"),
            (r#"{"id": "a", "path": "p", "source": "s"}"#, "both"),
            (r#"{"id": "a", "source": ["x"]}"#, "nested"),
            (r#"{"id": "a", "path": 4}"#, "must be a JSON string"),
            (r#"{"id": "a", "id": "b", "source": "x"}"#, "duplicate"),
            (r#"{"id": "a", "source": "x"} trailing"#, "trailing"),
            (r#"{"id": "a", "source": "\q"}"#, "unsupported escape"),
            (r#"{"id": "a", "source": "\ud800"}"#, "expected `\\`"),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    // --- line framing ------------------------------------------------------

    fn frame_all(framer: &mut LineFramer, chunks: &[&[u8]]) -> Vec<FeedEvent> {
        let mut events = Vec::new();
        for chunk in chunks {
            framer.push(chunk, &mut events);
        }
        framer.finish(&mut events);
        events
    }

    #[test]
    fn framer_splits_lines_across_chunk_boundaries() {
        let mut f = LineFramer::new(64);
        let events = frame_all(&mut f, &[b"ab", b"c\nde", b"\n\nf"]);
        assert_eq!(
            events,
            vec![
                FeedEvent::Line("abc".into()),
                FeedEvent::Line("de".into()),
                FeedEvent::Line(String::new()),
                FeedEvent::Line("f".into()), // unterminated tail at EOF
            ]
        );
    }

    #[test]
    fn framer_drops_oversized_lines_without_buffering_and_resyncs() {
        let mut f = LineFramer::new(4);
        // 10 bytes streamed in pieces, then a newline, then a good line.
        let events = frame_all(&mut f, &[b"01234", b"56789", b"\nok\n"]);
        assert_eq!(events, vec![FeedEvent::Oversized(10), FeedEvent::Line("ok".into())]);
        assert!(f.buf.capacity() <= 4 + 1, "the over-long line was never buffered");

        // A line that crosses the cap within one chunk, newline included.
        let mut f = LineFramer::new(4);
        let events = frame_all(&mut f, &[b"abcdef\nxy\n"]);
        assert_eq!(events, vec![FeedEvent::Oversized(6), FeedEvent::Line("xy".into())]);

        // Oversized at EOF without a resynchronizing newline.
        let mut f = LineFramer::new(4);
        let events = frame_all(&mut f, &[b"abc", b"defgh"]);
        assert_eq!(events, vec![FeedEvent::Oversized(8)]);
    }

    #[test]
    fn framer_flags_invalid_utf8_lines() {
        let mut f = LineFramer::new(64);
        let events = frame_all(&mut f, &[b"ok\n\xff\xfe\nalso-ok\n"]);
        assert_eq!(
            events,
            vec![
                FeedEvent::Line("ok".into()),
                FeedEvent::BadUtf8,
                FeedEvent::Line("also-ok".into()),
            ]
        );
    }

    // --- directory scanning ----------------------------------------------

    #[test]
    fn scanner_detects_add_modify_delete_unchanged() {
        let dir = scratch_dir("scan");
        let mut scanner = DirScanner::new(&dir);

        // Empty directory: nothing.
        assert!(scanner.scan().expect("scan").is_empty());

        // Add two files (plus a non-.p4 file, which is invisible).
        std::fs::write(dir.join("a.p4"), OK).unwrap();
        std::fs::write(dir.join("b.p4"), LEAK).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let delta = scanner.scan().expect("scan");
        let names: Vec<&str> = delta.changed.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["a.p4", "b.p4"], "sorted by name");
        assert_eq!(delta.changed[1].source, LEAK, "content rides along");
        assert!(delta.removed.is_empty());
        assert_eq!(scanner.tracked(), 2);

        // No edits: an empty tick.
        assert!(scanner.scan().expect("scan").is_empty());

        // Modify one; the other stays quiet.
        std::fs::write(dir.join("b.p4"), OK).unwrap();
        let delta = scanner.scan().expect("scan");
        assert_eq!(delta.changed.len(), 1);
        assert_eq!(delta.changed[0].name, "b.p4");
        assert_eq!(delta.changed[0].source, OK);

        // Delete one.
        std::fs::remove_file(dir.join("a.p4")).unwrap();
        let delta = scanner.scan().expect("scan");
        assert!(delta.changed.is_empty());
        assert_eq!(delta.removed, ["a.p4"]);
        assert_eq!(scanner.tracked(), 1);

        // Touch without edit: the content hash acquits the file even
        // though the mtime fast path missed.
        let now = std::time::SystemTime::now();
        let f = std::fs::File::options().append(true).open(dir.join("b.p4")).unwrap();
        f.set_modified(now + Duration::from_secs(7)).unwrap();
        drop(f);
        assert!(scanner.scan().expect("scan").is_empty(), "touched but unchanged");

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn scanner_catches_same_size_rewrite_in_one_mtime_tick() {
        // The racily-clean case: a rewrite with identical length and a
        // pinned (identical) mtime. The (mtime, size) fast path cannot
        // see it; the recent-mtime re-hash must.
        let dir = scratch_dir("racy");
        let path = dir.join("r.p4");
        let pin = std::time::SystemTime::now();
        let v1 = "control C(inout <bit<8>, low> a) { apply { a = 8w1; } }";
        let v2 = "control C(inout <bit<8>, low> b) { apply { b = 8w2; } }";
        assert_eq!(v1.len(), v2.len());

        let mut scanner = DirScanner::new(&dir);
        std::fs::write(&path, v1).unwrap();
        std::fs::File::options().append(true).open(&path).unwrap().set_modified(pin).unwrap();
        assert_eq!(scanner.scan().expect("scan").changed.len(), 1);

        std::fs::write(&path, v2).unwrap();
        std::fs::File::options().append(true).open(&path).unwrap().set_modified(pin).unwrap();
        let delta = scanner.scan().expect("scan");
        assert_eq!(delta.changed.len(), 1, "same-size same-mtime rewrite must be seen");
        assert_eq!(delta.changed[0].source, v2);

        // Once the mtime settles past the racy window, the fast path
        // takes over: an aged, untouched file costs a stat, not a read.
        let aged = pin - Duration::from_secs(60);
        std::fs::File::options().append(true).open(&path).unwrap().set_modified(aged).unwrap();
        assert_eq!(scanner.scan().expect("scan").changed.len(), 0, "mtime moved, content same");
        assert!(scanner.scan().expect("scan").is_empty(), "settled: fast path, no change");

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn scanner_surfaces_unreadable_files_once_and_never_as_removed() {
        let dir = scratch_dir("unreadable");
        std::fs::write(dir.join("bad.p4"), [0xff, 0xfe, b'x']).unwrap(); // invalid UTF-8
        let mut scanner = DirScanner::new(&dir);
        let delta = scanner.scan().expect("scan");
        assert!(delta.changed.is_empty());
        assert_eq!(delta.unreadable, ["bad.p4"]);
        assert_eq!(scanner.tracked(), 1, "stays tracked while it exists");

        // Reported once per observed change, not every tick — and never
        // mis-reported as removed.
        let delta = scanner.scan().expect("scan");
        assert!(delta.is_empty(), "{delta:?}");

        // The moment it becomes readable it joins an epoch.
        std::fs::write(dir.join("bad.p4"), OK).unwrap();
        let delta = scanner.scan().expect("scan");
        assert_eq!(delta.changed.len(), 1);
        assert_eq!(delta.changed[0].source, OK);
        assert!(delta.unreadable.is_empty());

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn scanner_errors_when_directory_vanishes() {
        let dir = scratch_dir("gone");
        let mut scanner = DirScanner::new(&dir);
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(scanner.scan().is_err());
    }

    #[test]
    fn scanner_backs_off_persistently_unreadable_files() {
        // A file whose read keeps failing must not be re-read on every
        // tick: the retry schedule doubles (1, 2, 4, … capped), and the
        // cooldown ticks skip the read entirely.
        let dir = scratch_dir("backoff");
        std::fs::write(dir.join("bad.p4"), [0xff, 0xfe]).unwrap(); // invalid UTF-8
        let mut scanner = DirScanner::new(&dir);
        assert_eq!(scanner.scan().expect("scan").unreadable, ["bad.p4"]);
        assert_eq!(scanner.reads, 1);

        // Tick 2 is the first cooldown tick (backoff 1): no read. Tick 3
        // retries, fails, and doubles the backoff to 2 — so ticks 4 and
        // 5 skip, tick 6 retries.
        let mut reads_per_tick = Vec::new();
        for _ in 0..5 {
            let before = scanner.reads;
            assert!(scanner.scan().expect("scan").is_empty(), "reported once, not every tick");
            reads_per_tick.push(scanner.reads - before);
        }
        assert_eq!(reads_per_tick, [0, 1, 0, 0, 1], "doubling retry schedule");
        assert_eq!(scanner.tracked(), 1, "still tracked throughout");

        // The file healing is picked up at the next retry tick, and the
        // backoff resets so a later failure starts the schedule over.
        std::fs::write(dir.join("bad.p4"), OK).unwrap();
        let mut healed = false;
        for _ in 0..8 {
            let delta = scanner.scan().expect("scan");
            if !delta.changed.is_empty() {
                assert_eq!(delta.changed[0].source, OK);
                healed = true;
                break;
            }
        }
        assert!(healed, "a healed file joins an epoch within one backoff window");
        assert_eq!(scanner.seen["bad.p4"].backoff, 0, "success resets the schedule");

        let _ = std::fs::remove_dir_all(dir);
    }

    // --- the epoch engine -------------------------------------------------

    #[test]
    fn epoch_reports_match_batch_byte_for_byte() {
        let inputs = vec![
            BatchInput::new("ok", OK),
            BatchInput::new("leak", LEAK),
            BatchInput::new("broken", "control {"),
        ];
        let batch = check_batch(&inputs, &CheckOptions::ifc(), 1);
        for jobs in [1, 2, 8] {
            let mut engine = ServeEngine::new(CheckOptions::ifc(), jobs);
            let epoch = engine.run_epoch(&inputs);
            assert_eq!(epoch.render_table(), batch.render_table(), "jobs={jobs}");
            assert_eq!(epoch.report.to_json(), batch.to_json(), "jobs={jobs}");
        }
    }

    #[test]
    fn ndjson_epoch_documents_embed_batch_program_objects() {
        let inputs = vec![BatchInput::new("we\"ird", OK), BatchInput::new("leak", LEAK)];
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1);
        let first = engine.run_epoch(&inputs).to_ndjson();
        let second = engine.run_epoch(&inputs[..1]).to_ndjson();
        assert!(
            first.starts_with("{\"schema\": \"p4bid-serve-report/2\", \"epoch\": 0, "),
            "{first}"
        );
        assert!(second.contains("\"epoch\": 1"), "{second}");
        assert_eq!(first.lines().count(), 1, "one document per line");
        // The embedded program objects are the exact bytes of the batch
        // schema for the same inputs.
        let batch_json = check_batch(&inputs, &CheckOptions::ifc(), 1).to_json();
        for line in batch_json.lines().filter(|l| l.trim_start().starts_with("{\"index\"")) {
            assert!(
                first.contains(line.trim().trim_end_matches(',')),
                "{line} not embedded in {first}"
            );
        }
        assert!(first.contains("\"summary\": {\"total\": 2, \"accepted\": 1, \"rejected\": 1}"));
    }

    #[test]
    fn engine_refresh_preserves_verdicts_and_counts() {
        let inputs = vec![BatchInput::new("ok", OK), BatchInput::new("leak", LEAK)];
        let mut plain = ServeEngine::new(CheckOptions::ifc(), 2);
        let mut refreshing = ServeEngine::new(CheckOptions::ifc(), 2).with_refresh_every(Some(1));
        for _ in 0..3 {
            let a = plain.run_epoch(&inputs);
            let b = refreshing.run_epoch(&inputs);
            assert_eq!(a.render_table(), b.render_table());
            assert_eq!(a.to_ndjson(), b.to_ndjson());
        }
        assert_eq!(plain.refreshes(), 0);
        assert_eq!(refreshing.refreshes(), 2, "refreshed before epochs 1 and 2");
        assert_eq!(refreshing.epochs(), 3);
        assert!(refreshing.cumulative_stats().workers >= 3, "one per epoch at least");
    }

    // --- the verdict cache --------------------------------------------------

    #[test]
    fn cache_hits_render_byte_identically_to_fresh_checks() {
        let inputs = vec![
            BatchInput::new("ok", OK),
            BatchInput::new("leak", LEAK),
            BatchInput::new("broken", "control {"),
        ];
        let mut plain = ServeEngine::new(CheckOptions::ifc(), 2);
        let mut cached = ServeEngine::new(CheckOptions::ifc(), 2).with_cache(64);
        for round in 0..3 {
            let a = plain.run_epoch(&inputs);
            let b = cached.run_epoch(&inputs);
            assert_eq!(a.render_table(), b.render_table(), "round {round}");
            assert_eq!(a.to_ndjson(), b.to_ndjson(), "round {round}");
        }
        let ops = cached.ops();
        assert_eq!(ops.cache_misses, 3, "first epoch missed every body");
        assert_eq!(ops.cache_hits, 6, "two later epochs hit all three");
        assert_eq!(ops.cache_size, 3);
        assert_eq!(plain.ops().cache_misses, 0, "disabled cache counts nothing");
    }

    #[test]
    fn cache_reattaches_request_ids_and_indices_on_hits() {
        // The same body resubmitted under different ids and at different
        // positions must come back under the *new* id and index.
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1).with_cache(64);
        let _ = engine.run_epoch(&[BatchInput::new("first", LEAK)]);
        let epoch =
            engine.run_epoch(&[BatchInput::new("pad", OK), BatchInput::new("renamed", LEAK)]);
        assert_eq!(epoch.report.programs[1].name, "renamed");
        assert_eq!(epoch.report.programs[1].index, 1);
        assert!(!epoch.report.programs[1].accepted);
        assert_eq!(epoch.report.programs[1].diagnostics[0].code, "E-EXPLICIT-FLOW");
        assert_eq!(engine.ops().cache_hits, 1);
    }

    #[test]
    fn cache_checks_repeated_bodies_once_per_epoch() {
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1).with_cache(64);
        let inputs: Vec<BatchInput> =
            (0..5).map(|i| BatchInput::new(format!("copy-{i}"), OK)).collect();
        let epoch = engine.run_epoch(&inputs);
        assert_eq!(epoch.report.programs.len(), 5);
        for (i, p) in epoch.report.programs.iter().enumerate() {
            assert_eq!(p.index, i);
            assert_eq!(p.name, format!("copy-{i}"));
            assert!(p.accepted);
        }
        let ops = engine.ops();
        assert_eq!(ops.cache_misses, 5, "each occurrence counts a miss");
        assert_eq!(ops.cache_size, 1, "but only one body was checked and cached");
        // Only one worker session ran for the single deduplicated check.
        assert_eq!(engine.cumulative_stats().workers, 1);
    }

    #[test]
    fn cache_keeps_hot_entries_on_lru_eviction() {
        // A repeatedly-hit entry survives a stream of cold inserts past
        // the cap; insertion-order eviction would have thrown it out
        // first.
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1).with_cache(2);
        let _ = engine.run_epoch(&[BatchInput::new("hot", OK)]);
        let colds = [LEAK, "control {", "control D(inout bit<8> y) { apply { y = y; } }"];
        for (i, body) in colds.iter().enumerate() {
            let _ = engine.run_epoch(&[BatchInput::new("hot", OK)]); // touch
            let _ = engine.run_epoch(&[BatchInput::new(format!("cold-{i}"), *body)]);
        }
        assert_eq!(engine.ops().cache_size, 2, "cap holds");
        let misses = engine.ops().cache_misses;
        let _ = engine.run_epoch(&[BatchInput::new("hot", OK)]);
        assert_eq!(engine.ops().cache_misses, misses, "the hot body never left");
        assert_eq!(engine.ops().cache_hits, 4);
        // The latest cold body is the other survivor; earlier ones went.
        let _ = engine.run_epoch(&[BatchInput::new("warm", colds[2])]);
        assert_eq!(engine.ops().cache_hits, 5);
        let _ = engine.run_epoch(&[BatchInput::new("gone", colds[0])]);
        assert_eq!(engine.ops().cache_misses, misses + 1);
    }

    #[test]
    fn colliding_bodies_never_replay_each_others_verdicts() {
        // Two distinct bodies forced under one 64-bit key: the hash is a
        // locator, not an identity, so the stored source must disagree
        // and the second body must get a fresh check. (Organic fnv1a
        // collisions are impractical to construct, so this drives the
        // cache directly.)
        let mut cache = VerdictCache::new(8);
        let key = VerdictKey { content: 42, opts: 7 };
        let body_a = "control A(inout bit<8> x) { apply { x = x; } }";
        let body_b = "control B(inout bit<8> x) { apply { x = x; } }";
        cache.insert(
            key,
            CachedVerdict { source: body_a.to_string(), accepted: true, diagnostics: Vec::new() },
        );
        assert!(cache.lookup(key, body_a).is_some(), "same body hits");
        assert!(cache.lookup(key, body_b).is_none(), "colliding body misses");
        assert_eq!((cache.hits, cache.misses), (1, 1));
        // The colliding body's own verdict then overwrites the slot.
        cache.insert(
            key,
            CachedVerdict { source: body_b.to_string(), accepted: false, diagnostics: Vec::new() },
        );
        assert_eq!(cache.len(), 1, "one slot per key");
        assert!(cache.lookup(key, body_b).is_some_and(|v| !v.accepted));
        assert!(cache.lookup(key, body_a).is_none(), "the first body now misses");
    }

    #[test]
    fn cache_keys_include_the_options_fingerprint() {
        // The same source under different checker options must not share
        // a verdict: permissive accepts what IFC rejects.
        let mut ifc = ServeEngine::new(CheckOptions::ifc(), 1).with_cache(8);
        let mut permissive = ServeEngine::new(CheckOptions::permissive(), 1).with_cache(8);
        let inputs = [BatchInput::new("leak", LEAK)];
        assert!(!ifc.run_epoch(&inputs).report.programs[0].accepted);
        assert!(permissive.run_epoch(&inputs).report.programs[0].accepted);
        assert_ne!(ifc.opts_fp, permissive.opts_fp);
    }

    #[test]
    fn fingerprint_covers_the_resource_guards() {
        // The guards change verdicts (E-OVERSIZED depends on the cap), so
        // two daemons under different guard settings must never share a
        // cached verdict.
        let base = options_fingerprint(&CheckOptions::ifc());
        let capped = options_fingerprint(&CheckOptions::ifc().with_max_source_bytes(512));
        let timed = options_fingerprint(&CheckOptions::ifc().with_check_timeout_ms(100));
        assert_ne!(base, capped);
        assert_ne!(base, timed);
        assert_ne!(capped, timed);
    }

    #[test]
    fn oversized_verdicts_are_cacheable_but_transient_ones_are_not() {
        // E-OVERSIZED is determined by content + options (both in the
        // key), so it caches like any verdict; E-INTERNAL / E-TIMEOUT
        // depend on a fault or a wall clock and must never be replayed.
        let diag = |code: &str| BatchDiagnostic {
            code: code.to_string(),
            message: String::new(),
            line: 0,
            col: 0,
            lineage: Vec::new(),
        };
        assert!(!is_transient_verdict(&[diag("E-OVERSIZED")]));
        assert!(!is_transient_verdict(&[diag("E-EXPLICIT-FLOW")]));
        assert!(is_transient_verdict(&[diag("E-EXPLICIT-FLOW"), diag("E-INTERNAL")]));
        assert!(is_transient_verdict(&[diag("E-TIMEOUT")]));

        // End to end: an oversized reject is served from the cache on
        // the second epoch — no new check, byte-identical output.
        let opts = CheckOptions::ifc().with_max_source_bytes(8);
        let mut engine = ServeEngine::new(opts, 1).with_cache(8);
        let inputs = [BatchInput::new("big", OK)];
        let first = engine.run_epoch(&inputs);
        assert!(!first.report.programs[0].accepted);
        assert_eq!(first.report.programs[0].diagnostics[0].code, "E-OVERSIZED");
        let second = engine.run_epoch(&inputs);
        assert_eq!(first.to_ndjson().replace("\"epoch\": 0", "\"epoch\": 1"), second.to_ndjson());
        assert_eq!(engine.ops().cache_hits, 1, "the oversized verdict was cached");
        assert_eq!(engine.cumulative_stats().oversized, 1, "only the first epoch checked");
    }

    // --- per-program policies ----------------------------------------------

    const DECLASSIFYING: &str = "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) \
                                 { apply { l = declassify(h); } }";

    fn declass_pack() -> PolicyPack {
        PolicyPack::parse("[declass-*]\ndeclassify = true\n").unwrap()
    }

    fn declass_inputs() -> Vec<BatchInput> {
        vec![BatchInput::new("declass-a", DECLASSIFYING), BatchInput::new("plain-b", DECLASSIFYING)]
    }

    #[test]
    fn policies_resolve_per_program_options_in_epochs() {
        // One body, two names: the pack grants `declassify` to the first
        // name only, and the partitioned epoch stays deterministic
        // across worker counts.
        let mut reports = Vec::new();
        for jobs in [1, 2, 8] {
            let mut engine =
                ServeEngine::new(CheckOptions::ifc(), jobs).with_policy(Some(declass_pack()));
            let epoch = engine.run_epoch(&declass_inputs());
            assert!(epoch.report.programs[0].accepted, "{}", epoch.render_table());
            assert!(!epoch.report.programs[1].accepted);
            assert_eq!(epoch.report.programs[1].diagnostics[0].code, "E-DECLASSIFY-FORBIDDEN");
            reports.push(epoch.to_ndjson());
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
        // An empty pack is exactly the plain engine.
        let empty = PolicyPack::parse("").unwrap();
        let mut plain = ServeEngine::new(CheckOptions::ifc(), 1);
        let mut via_policy = ServeEngine::new(CheckOptions::ifc(), 1).with_policy(Some(empty));
        let inputs = [BatchInput::new("declass-a", DECLASSIFYING)];
        assert_eq!(plain.run_epoch(&inputs).to_ndjson(), via_policy.run_epoch(&inputs).to_ndjson());
    }

    #[test]
    fn cached_verdicts_stay_per_policy() {
        // The verdict cache keys on the *resolved* fingerprint, so one
        // body cached under the granting rule never answers for the name
        // the rule skips — including on the all-hit second epoch.
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1)
            .with_policy(Some(declass_pack()))
            .with_cache(8);
        let inputs = declass_inputs();
        let first = engine.run_epoch(&inputs);
        let second = engine.run_epoch(&inputs);
        assert!(second.report.programs[0].accepted);
        assert!(!second.report.programs[1].accepted);
        assert_eq!(first.to_ndjson().replace("\"epoch\": 0", "\"epoch\": 1"), second.to_ndjson());
        let ops = engine.ops();
        assert_eq!(ops.cache_misses, 2, "same body, two keys");
        assert_eq!(ops.cache_hits, 2);
        assert_eq!(ops.cache_size, 2);
    }

    #[test]
    fn refreshes_rebuild_policy_cores_too() {
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1)
            .with_policy(Some(declass_pack()))
            .with_refresh_every(Some(1));
        let inputs = declass_inputs();
        let first = engine.run_epoch(&inputs);
        let second = engine.run_epoch(&inputs);
        assert_eq!(engine.refreshes(), 1);
        assert_eq!(first.to_ndjson().replace("\"epoch\": 0", "\"epoch\": 1"), second.to_ndjson());
    }

    // --- ingest loops ------------------------------------------------------

    fn feed_line(id: &str, source: &str) -> String {
        format!(
            "{{\"id\": \"{id}\", \"source\": \"{}\"}}\n",
            source.replace('\\', "\\\\").replace('"', "\\\"")
        )
    }

    #[test]
    fn feed_epochs_are_byte_identical_to_batch_runs() {
        let feed = format!(
            "{}{}\n{}{}",
            feed_line("a", OK),
            feed_line("b", LEAK),
            feed_line("c", OK),
            feed_line("d", "control {"),
        );
        let epoch1 = vec![BatchInput::new("a", OK), BatchInput::new("b", LEAK)];
        let epoch2 = vec![BatchInput::new("c", OK), BatchInput::new("d", "control {")];
        for jobs in [1, 2, 8] {
            let mut engine = ServeEngine::new(CheckOptions::ifc(), jobs);
            let (mut out, mut log) = (Vec::new(), Vec::new());
            let summary = run_feed(
                &mut engine,
                &mut Cursor::new(feed.as_bytes()),
                &mut out,
                &mut log,
                false,
                None,
                &IngestLimits::default(),
            )
            .expect("feed runs");
            assert_eq!((summary.epochs, summary.requests, summary.skipped), (2, 4, 0));
            assert!(summary.any_rejected);
            let expected = format!(
                "{}{}",
                check_batch(&epoch1, &CheckOptions::ifc(), 1).render_table(),
                check_batch(&epoch2, &CheckOptions::ifc(), 1).render_table(),
            );
            assert_eq!(String::from_utf8(out).unwrap(), expected, "jobs={jobs}");
            let log = String::from_utf8(log).unwrap();
            assert!(log.contains("epoch 0: checked 2 program(s)"), "{log}");
            assert!(log.contains("epoch 1: checked 2 program(s)"), "{log}");
        }
    }

    #[test]
    fn feed_skips_bad_lines_and_reads_path_requests() {
        let dir = scratch_dir("feed-paths");
        std::fs::write(dir.join("ok.p4"), OK).unwrap();
        let feed = format!(
            "not json at all\n{{\"id\": \"ghost\", \"path\": \"{}\"}}\n{{\"path\": \"{}\"}}\n",
            dir.join("missing.p4").display(),
            dir.join("ok.p4").display(),
        );
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1);
        let (mut out, mut log) = (Vec::new(), Vec::new());
        let summary = run_feed(
            &mut engine,
            &mut Cursor::new(feed.as_bytes()),
            &mut out,
            &mut log,
            false,
            None,
            &IngestLimits::default(),
        )
        .expect("feed runs");
        assert_eq!((summary.epochs, summary.requests, summary.skipped), (1, 1, 2));
        assert!(!summary.any_rejected);
        let out = String::from_utf8(out).unwrap();
        assert!(
            out.contains(&dir.join("ok.p4").display().to_string()),
            "path request named by its full path: {out}"
        );
        let log = String::from_utf8(log).unwrap();
        assert!(log.contains("skipped request: expected `{`"), "{log}");
        assert!(log.contains("skipped request: cannot read"), "{log}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn feed_honors_max_epochs_and_empty_flushes() {
        // Blank lines with nothing pending emit nothing; max_epochs stops
        // the loop mid-feed.
        let feed = format!("\n\n{}\n\n{}", feed_line("a", OK), feed_line("b", OK));
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1);
        let (mut out, mut log) = (Vec::new(), Vec::new());
        let summary = run_feed(
            &mut engine,
            &mut Cursor::new(feed.as_bytes()),
            &mut out,
            &mut log,
            true,
            Some(1),
            &IngestLimits::default(),
        )
        .expect("feed runs");
        assert_eq!(summary.epochs, 1);
        assert_eq!(summary.requests, 1);
        let out = String::from_utf8(out).unwrap();
        assert_eq!(out.lines().count(), 1, "exactly one epoch document: {out}");
        assert!(out.contains("\"epoch\": 0"));
    }

    #[test]
    fn feed_skips_oversized_lines_and_resyncs_at_the_next_newline() {
        // A 64 KiB newline-free blob must not become a buffered line: it
        // is dropped under the cap, counted as skipped, and the next
        // (valid) line after the newline is served normally.
        let mut feed = Vec::new();
        feed.extend_from_slice(&vec![b'x'; 64 * 1024]);
        feed.push(b'\n');
        feed.extend_from_slice(feed_line("after", OK).as_bytes());
        let limits = IngestLimits { max_line: 1024, ..IngestLimits::default() };
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1);
        let (mut out, mut log) = (Vec::new(), Vec::new());
        let summary =
            run_feed(&mut engine, &mut Cursor::new(feed), &mut out, &mut log, true, None, &limits)
                .expect("feed survives");
        assert_eq!((summary.epochs, summary.requests, summary.skipped), (1, 1, 1));
        let log = String::from_utf8(log).unwrap();
        assert!(log.contains("65536-byte line exceeds the 1024-byte cap"), "{log}");
        assert!(String::from_utf8(out).unwrap().contains("\"name\": \"after\""));
    }

    #[test]
    fn feed_cuts_bounded_epochs_without_flush_markers() {
        // --max-epoch 2 over five requests and no blank lines: epochs of
        // 2, 2, and (at EOF) 1.
        let feed: String = (0..5).map(|i| feed_line(&format!("r{i}"), OK)).collect();
        let limits = IngestLimits { max_epoch: 2, ..IngestLimits::default() };
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1);
        let (mut out, mut log) = (Vec::new(), Vec::new());
        let summary = run_feed(
            &mut engine,
            &mut Cursor::new(feed.into_bytes()),
            &mut out,
            &mut log,
            true,
            None,
            &limits,
        )
        .expect("feed runs");
        assert_eq!((summary.epochs, summary.requests), (3, 5));
        let out = String::from_utf8(out).unwrap();
        let totals: Vec<&str> = out.lines().filter_map(|l| l.split("\"total\": ").nth(1)).collect();
        assert_eq!(totals.len(), 3, "{out}");
        assert!(totals[0].starts_with('2') && totals[1].starts_with('2'));
        assert!(totals[2].starts_with('1'));
    }

    #[test]
    fn duplicate_ids_in_one_epoch_are_noticed_not_refused() {
        let feed = format!("{}{}", feed_line("dup", OK), feed_line("dup", LEAK));
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1);
        let (mut out, mut log) = (Vec::new(), Vec::new());
        let summary = run_feed(
            &mut engine,
            &mut Cursor::new(feed.into_bytes()),
            &mut out,
            &mut log,
            false,
            None,
            &IngestLimits::default(),
        )
        .expect("feed runs");
        assert_eq!((summary.epochs, summary.requests, summary.skipped), (1, 2, 0));
        let log = String::from_utf8(log).unwrap();
        assert!(log.contains("notice: duplicate id `dup` in epoch"), "{log}");
        // Both rows are still checked and reported.
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("accept") && out.contains("REJECT"), "{out}");
    }

    #[test]
    fn watch_serves_epochs_as_files_change() {
        // Two deterministic single-epoch runs over one persistent
        // engine + scanner: the directory is mutated only while no
        // watcher is running, so there is no writer/tick race to time
        // out on — the loop, removal logging, and cross-run epoch
        // numbering are still exercised for real. (The e2e suite covers
        // the concurrent-mutation case against the spawned binary, with
        // a deadline.)
        let dir = scratch_dir("watch");
        std::fs::write(dir.join("start.p4"), OK).unwrap();
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 2);
        let mut scanner = DirScanner::new(&dir);
        let (mut out, mut log) = (Vec::new(), Vec::new());

        let first = run_watch(
            &mut engine,
            &mut scanner,
            &mut out,
            &mut log,
            false,
            Some(1),
            Duration::from_millis(1),
        )
        .expect("watch runs");
        assert_eq!((first.epochs, first.requests), (1, 1));
        assert!(!first.any_rejected);

        std::fs::remove_file(dir.join("start.p4")).unwrap();
        std::fs::write(dir.join("later.tmp"), LEAK).unwrap();
        std::fs::rename(dir.join("later.tmp"), dir.join("later.p4")).unwrap();

        let second = run_watch(
            &mut engine,
            &mut scanner,
            &mut out,
            &mut log,
            false,
            Some(1),
            Duration::from_millis(1),
        )
        .expect("watch runs");
        assert_eq!((second.epochs, second.requests), (1, 1));
        assert!(second.any_rejected, "the dropped-in leak was caught");
        assert_eq!(engine.epochs(), 2, "epoch numbering continues across runs");

        let expected = format!(
            "{}{}",
            check_batch(&[BatchInput::new("start.p4", OK)], &CheckOptions::ifc(), 1).render_table(),
            check_batch(&[BatchInput::new("later.p4", LEAK)], &CheckOptions::ifc(), 1)
                .render_table(),
        );
        assert_eq!(String::from_utf8(out).unwrap(), expected);
        assert!(String::from_utf8(log).unwrap().contains("removed: start.p4"));
        let _ = std::fs::remove_dir_all(dir);
    }

    /// A clonable `Write` target so a test client can watch the daemon's
    /// output while `run_socket` borrows another clone.
    #[cfg(unix)]
    #[derive(Clone, Default, Debug)]
    struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);

    #[cfg(unix)]
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[cfg(unix)]
    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }

        fn wait_for(&self, needle: &str) {
            let deadline = std::time::Instant::now() + Duration::from_secs(30);
            while !self.contents().contains(needle) {
                assert!(std::time::Instant::now() < deadline, "never saw {needle:?}");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }

    /// Connects to a daemon that is still binding; retries briefly.
    #[cfg(unix)]
    fn connect_retry(path: &Path) -> std::os::unix::net::UnixStream {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            match std::os::unix::net::UnixStream::connect(path) {
                Ok(s) => return s,
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => panic!("connect {}: {e}", path.display()),
            }
        }
    }

    #[cfg(unix)]
    #[test]
    fn socket_connections_flush_epochs() {
        let dir = scratch_dir("sock");
        let socket = dir.join("p4bid.sock");
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1);
        let out = SharedBuf::default();
        let mut log = Vec::new();
        let sock2 = socket.clone();
        let out2 = out.clone();
        let client = std::thread::spawn(move || {
            let mut stream = connect_retry(&sock2);
            stream.write_all(feed_line("a", OK).as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            // Wait for epoch 0 before sending the second part: epoch
            // *membership* under the concurrent front door depends on
            // arrival interleaving, and this test wants two epochs.
            out2.wait_for("\"epoch\": 0");
            stream.write_all(feed_line("b", LEAK).as_bytes()).unwrap();
            // Connection close flushes the second epoch.
        });
        let mut out_writer = out.clone();
        let summary = run_socket(
            &mut engine,
            &socket,
            &mut out_writer,
            &mut log,
            true,
            Some(2),
            &IngestLimits::default(),
        )
        .expect("serves");
        client.join().unwrap();
        assert_eq!((summary.epochs, summary.requests), (2, 2));
        assert!(summary.any_rejected);
        assert_eq!(summary.conn_errors, 0);
        let out = out.contents();
        assert_eq!(out.lines().count(), 2, "{out}");
        assert!(out.contains("\"epoch\": 0") && out.contains("\"epoch\": 1"), "{out}");
        assert!(!socket.exists(), "socket file removed on shutdown");
        assert_eq!(engine.ops().connections, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[cfg(unix)]
    #[test]
    fn socket_survives_a_midline_disconnect() {
        let dir = scratch_dir("sock-drop");
        let socket = dir.join("drop.sock");
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1);
        let out = SharedBuf::default();
        let log = SharedBuf::default();
        let sock2 = socket.clone();
        let client = std::thread::spawn(move || {
            // First client: half a request line, then vanish.
            let mut s = connect_retry(&sock2);
            s.write_all(b"{\"id\": \"torn\", \"sou").unwrap();
            drop(s);
            // Second client: a full epoch — the daemon must still serve.
            let mut s = std::os::unix::net::UnixStream::connect(&sock2).expect("daemon survived");
            s.write_all(feed_line("whole", OK).as_bytes()).unwrap();
        });
        let (mut out_w, mut log_w) = (out.clone(), log.clone());
        let summary = run_socket(
            &mut engine,
            &socket,
            &mut out_w,
            &mut log_w,
            true,
            Some(1),
            &IngestLimits::default(),
        )
        .expect("the daemon must not die with the torn client");
        client.join().unwrap();
        assert_eq!((summary.epochs, summary.requests), (1, 1));
        assert_eq!(summary.skipped, 1, "the torn line was skipped");
        assert!(out.contents().contains("\"name\": \"whole\""));
        assert!(log.contents().contains("skipped request"), "{}", log.contents());
        assert!(!socket.exists());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[cfg(unix)]
    #[test]
    fn socket_file_is_unlinked_even_when_out_fails() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "out pipe broke"))
            }

            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let dir = scratch_dir("sock-outfail");
        let socket = dir.join("fail.sock");
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1);
        let mut log = Vec::new();
        let sock2 = socket.clone();
        let client = std::thread::spawn(move || {
            let mut s = connect_retry(&sock2);
            s.write_all(feed_line("a", OK).as_bytes()).unwrap();
            // Close flushes; the sequencer's write to `out` then fails.
        });
        let err = run_socket(
            &mut engine,
            &socket,
            &mut FailingWriter,
            &mut log,
            false,
            None,
            &IngestLimits::default(),
        )
        .expect_err("a dead stdout is fatal");
        client.join().unwrap();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe, "{err}");
        assert!(!socket.exists(), "the socket file must not leak on the error path");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[cfg(unix)]
    #[test]
    fn door_sheds_at_a_full_queue_and_force_cuts_in_stable_order() {
        let door = Door::default();
        let limits = IngestLimits { max_pending: 2, shed: true, ..IngestLimits::default() };
        // Interleaved arrival across connections; submission order is
        // (0,0), (1,0), (0,1) but the cut order is by (conn, seq).
        assert!(door.submit(0, 0, BatchInput::new("a", OK), &limits));
        assert!(door.submit(1, 0, BatchInput::new("c", OK), &limits));
        assert!(door.submit(0, 1, BatchInput::new("b", OK), &limits), "shed, not refused");
        {
            let st = door.lock();
            assert_eq!((st.shed, st.pending.len(), st.peak_pending), (1, 2, 2));
        }
        // The full queue force-cuts an epoch with no flush marker at all.
        match next_epoch(&door, &limits) {
            Cut::Epoch(batch) => {
                let names: Vec<&str> = batch.iter().map(|i| i.name.as_str()).collect();
                assert_eq!(names, ["a", "c"], "(connection id, arrival seq) order");
            }
            Cut::Finished => panic!("expected an epoch"),
        }
        assert!(door.lock().pending.is_empty());
    }

    #[cfg(unix)]
    #[test]
    fn blocking_backpressure_force_cuts_and_never_deadlocks() {
        let dir = scratch_dir("sock-block");
        let socket = dir.join("block.sock");
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1);
        let out = SharedBuf::default();
        let mut log = Vec::new();
        // A one-deep queue with the default (blocking) policy: the
        // producer outruns the sequencer immediately, blocks, and the
        // full-queue force-cut must unblock it — three one-request
        // epochs, nothing shed.
        let limits = IngestLimits { max_pending: 1, ..IngestLimits::default() };
        let sock2 = socket.clone();
        let client = std::thread::spawn(move || {
            let mut s = connect_retry(&sock2);
            for i in 0..3 {
                s.write_all(feed_line(&format!("q{i}"), OK).as_bytes()).unwrap();
            }
        });
        let mut out_w = out.clone();
        let summary =
            run_socket(&mut engine, &socket, &mut out_w, &mut log, true, Some(3), &limits)
                .expect("serves");
        client.join().unwrap();
        assert_eq!((summary.epochs, summary.requests, summary.shed), (3, 3, 0));
        let ops = engine.ops();
        assert!(ops.peak_pending <= 1, "{ops:?}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[cfg(unix)]
    #[test]
    fn socket_refuses_to_replace_a_non_socket_file() {
        let dir = scratch_dir("sock-refuse");
        let path = dir.join("precious.txt");
        std::fs::write(&path, "do not delete").unwrap();
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1);
        let (mut out, mut log) = (Vec::new(), Vec::new());
        let err = run_socket(
            &mut engine,
            &path,
            &mut out,
            &mut log,
            false,
            Some(1),
            &IngestLimits::default(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists, "{err}");
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "do not delete",
            "the existing file must survive the typo"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[cfg(unix)]
    #[test]
    fn socket_refuses_to_steal_a_live_daemons_path() {
        let dir = scratch_dir("sock-live");
        let path = dir.join("live.sock");
        // A live listener owns the path (connect succeeds against its
        // backlog even before any accept).
        let listener = std::os::unix::net::UnixListener::bind(&path).expect("bind");
        let mut engine = ServeEngine::new(CheckOptions::ifc(), 1);
        let (mut out, mut log) = (Vec::new(), Vec::new());
        let err = run_socket(
            &mut engine,
            &path,
            &mut out,
            &mut log,
            false,
            Some(1),
            &IngestLimits::default(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse, "{err}");
        assert!(path.exists(), "the live daemon's socket file must survive");
        drop(listener);
        // Once the daemon is dead the socket is stale: the probe fails
        // and the path is reclaimed (exercised end to end by the stale
        // branch of run_socket in the e2e suite).
        assert!(std::os::unix::net::UnixStream::connect(&path).is_err(), "now stale");
        let _ = std::fs::remove_dir_all(dir);
    }
}
