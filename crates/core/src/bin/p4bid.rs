//! The `p4bid` command-line tool.
//!
//! ```text
//! p4bid check FILE [--base|--permissive] [--pc LABEL]   typecheck a program
//! p4bid batch DIR|--synthetic N [--jobs J] [--json] [--policy FILE] [--stats|--stats-json]
//!                                                       check a whole corpus in parallel
//! p4bid serve [--socket PATH] [--jobs J] [--json] [--policy FILE] [--max-epochs N]
//!             [--refresh-every N] [--max-epoch N] [--max-pending N] [--shed]
//!             [--max-line BYTES] [--cache-cap N] [--prefix-cache-cap N]
//!                                                       streaming ingest daemon (NDJSON feed)
//! p4bid watch DIR [--interval-ms MS] [--jobs J] [--json] [--policy FILE] [--max-epochs N]
//!                                                       watch a directory, re-check on change
//! p4bid topo MANIFEST [--jobs J] [--json] [--watch] [--interval-ms MS] [--max-epochs N]
//!                                                       fixpoint-check a switch topology
//!
//! `check`/`batch`/`serve`/`watch` all take the resource guards
//! `--max-source-bytes N` and `--check-timeout-ms MS`; `serve`/`watch`
//! drain gracefully on SIGTERM/SIGINT.
//! p4bid matrix                                          §5 case-study accept/reject matrix
//! p4bid table1 [ITERS]                                  regenerate Table 1 (default 20 iterations)
//! p4bid ni FILE --control NAME [--runs N] [--observe L] empirical non-interference check
//! p4bid corpus [NAME] [--insecure|--unannotated]        list or print corpus programs
//! p4bid fuzz [N] [--safe-bias F] [--jobs J] [--stats|--stats-json]
//!                                                       soundness fuzzing over N random programs
//! ```
//!
//! See `docs/CLI.md` for the full reference (exit codes, report schemas,
//! environment knobs).

use p4bid::batch::{check_batch_with_policy, synthetic_corpus, BatchInput, BatchStats};
use p4bid::fuzz::{run_fuzz, SeedOutcome};
use p4bid::ni::{check_non_interference, GenConfig, NiConfig, NiOutcome};
use p4bid::report::{
    case_study_matrix, measure_table1, render_matrix, render_table1, unannotated_source,
};
use p4bid::serve::{run_feed, run_watch, DirScanner, IngestLimits, ServeEngine, ServeSummary};
use p4bid::{check, render_diagnostics, CheckOptions, PolicyPack};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("topo") => cmd_topo(&args[1..]),
        Some("matrix") => {
            print!("{}", render_matrix(&case_study_matrix()));
            ExitCode::SUCCESS
        }
        Some("table1") => {
            let iters = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20u32);
            print!("{}", render_table1(&measure_table1(iters)));
            ExitCode::SUCCESS
        }
        Some("ni") => cmd_ni(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  p4bid check FILE [--base|--permissive] [--pc LABEL] [--max-source-bytes N] [--check-timeout-ms MS]\n  \
                 p4bid batch DIR|--synthetic N [--jobs J] [--json] [--policy FILE] [--stats|--stats-json] [--base|--permissive] [--pc LABEL] [--prefix-cache-cap N] [--max-source-bytes N] [--check-timeout-ms MS]\n  \
                 p4bid serve [--socket PATH] [--jobs J] [--json] [--policy FILE] [--stats|--stats-json] [--max-epochs N] [--refresh-every N] [--max-epoch N] [--max-pending N] [--shed] [--max-line BYTES] [--cache-cap N] [--prefix-cache-cap N] [--max-source-bytes N] [--check-timeout-ms MS]\n  \
                 p4bid watch DIR [--interval-ms MS] [--jobs J] [--json] [--policy FILE] [--stats|--stats-json] [--max-epochs N] [--refresh-every N] [--cache-cap N] [--prefix-cache-cap N] [--max-source-bytes N] [--check-timeout-ms MS]\n  \
                 p4bid topo MANIFEST [--jobs J] [--json] [--stats|--stats-json] [--watch] [--interval-ms MS] [--max-epochs N] [--base|--permissive] [--max-source-bytes N] [--check-timeout-ms MS]\n  \
                 p4bid matrix\n  p4bid table1 [ITERS]\n  \
                 p4bid ni FILE --control NAME [--runs N] [--observe LABEL]\n  \
                 p4bid corpus [NAME] [--insecure|--unannotated]\n  \
                 p4bid fuzz [N] [--safe-bias F] [--jobs J] [--stats|--stats-json]"
            );
            ExitCode::from(2)
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Every flag that consumes the following argument as its value, across
/// all subcommands. Needed to tell a positional argument apart from a
/// flag value (`p4bid batch --jobs 2 DIR` must find `DIR`, not `2`).
const VALUE_FLAGS: [&str; 19] = [
    "--pc",
    "--policy",
    "--jobs",
    "--synthetic",
    "--runs",
    "--observe",
    "--control",
    "--safe-bias",
    "--socket",
    "--max-epochs",
    "--refresh-every",
    "--interval-ms",
    "--max-epoch",
    "--max-pending",
    "--max-line",
    "--cache-cap",
    "--prefix-cache-cap",
    "--max-source-bytes",
    "--check-timeout-ms",
];

/// The first positional (non-flag, non-flag-value) argument.
fn positional(args: &[String]) -> Option<&str> {
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") {
            skip_next = VALUE_FLAGS.contains(&a.as_str());
            continue;
        }
        return Some(a);
    }
    None
}

fn read_source(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("error: cannot read `{path}`: {e}");
        ExitCode::from(2)
    })
}

fn cmd_check(args: &[String]) -> ExitCode {
    let Some(path) = positional(args) else {
        eprintln!("error: `p4bid check` needs a file");
        return ExitCode::from(2);
    };
    let source = match read_source(path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let Ok(opts) = check_options(args) else {
        return ExitCode::from(2);
    };
    match check(&source, &opts) {
        Ok(typed) => {
            println!(
                "ok: {} control block(s) typecheck under lattice {}",
                typed.controls.len(),
                typed.lattice
            );
            ExitCode::SUCCESS
        }
        Err(diags) => {
            eprint!("{}", render_diagnostics(&source, &diags));
            eprintln!("{} error(s)", diags.len());
            ExitCode::FAILURE
        }
    }
}

/// Mode/pc and resource-guard flags shared by `check`, `batch`,
/// `serve`, and `watch`: `--max-source-bytes N` rejects larger programs
/// before parsing (E-OVERSIZED), `--check-timeout-ms MS` bounds each
/// program's wall-clock check (E-TIMEOUT); `0` disables either guard
/// (the default).
fn check_options(args: &[String]) -> Result<CheckOptions, ()> {
    let mut opts = if args.iter().any(|a| a == "--base") {
        CheckOptions::base()
    } else if args.iter().any(|a| a == "--permissive") {
        CheckOptions::permissive()
    } else {
        CheckOptions::ifc()
    };
    if let Some(pc) = flag_value(args, "--pc") {
        opts = opts.with_pc(pc);
    }
    if let Some(n) = u64_flag(args, "--max-source-bytes")? {
        opts = opts.with_max_source_bytes(n);
    }
    if let Some(n) = u64_flag(args, "--check-timeout-ms")? {
        opts = opts.with_check_timeout_ms(n);
    }
    Ok(opts)
}

fn cmd_batch(args: &[String]) -> ExitCode {
    let inputs = if let Some(n) = flag_value(args, "--synthetic") {
        let Ok(n) = n.parse::<usize>() else {
            eprintln!("error: `--synthetic` needs a program count, got `{n}`");
            return ExitCode::from(2);
        };
        synthetic_corpus(n)
    } else {
        let Some(dir) = positional(args) else {
            eprintln!("error: `p4bid batch` needs a directory or `--synthetic N`");
            return ExitCode::from(2);
        };
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("error: cannot read directory `{dir}`: {e}");
                return ExitCode::from(2);
            }
        };
        let mut paths: Vec<std::path::PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "p4"))
            .collect();
        paths.sort();
        if paths.is_empty() {
            eprintln!("error: no .p4 files in `{dir}`");
            return ExitCode::from(2);
        }
        let mut inputs = Vec::with_capacity(paths.len());
        for path in paths {
            let name = path
                .file_name()
                .map_or_else(|| path.display().to_string(), |n| n.to_string_lossy().into_owned());
            match std::fs::read_to_string(&path) {
                Ok(source) => inputs.push(BatchInput::new(name, source)),
                Err(e) => {
                    eprintln!("error: cannot read `{}`: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        inputs
    };

    let (Ok(jobs), Ok(policy), Ok(opts), Ok(prefix_cap)) =
        (parse_jobs(args), policy_pack(args), check_options(args), prefix_cache_cap(args))
    else {
        return ExitCode::from(2);
    };

    let start = std::time::Instant::now();
    let report = match &policy {
        Some(pack) => check_batch_with_policy(&inputs, &opts, pack, jobs),
        None => {
            let core = p4bid::SharedSessionCore::with_prefix_cache_cap(opts, prefix_cap);
            p4bid::batch::check_batch_with_core(&inputs, &core, jobs)
        }
    };
    let elapsed = start.elapsed();
    if args.iter().any(|a| a == "--json") {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render_table());
    }
    // Stats go to stderr like the timing line: tier sizes / hit rates
    // depend on work-stealing order, and stdout must stay exactly the
    // report (the `--json` form especially must parse as one JSON
    // document).
    print_stats(args, &report.stats, "batch", None, None);
    // Timing goes to stderr so stdout stays byte-identical across runs.
    eprintln!(
        "checked {} program(s) in {:.1} ms on {} worker(s)",
        report.programs.len(),
        elapsed.as_secs_f64() * 1e3,
        report.jobs,
    );
    if report.all_accepted() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `--jobs J` shared by `batch`, `serve`, and `watch`: absent means one
/// worker per core, explicit values must be positive.
fn parse_jobs(args: &[String]) -> Result<usize, ()> {
    match flag_value(args, "--jobs") {
        None => Ok(0),
        Some(j) => match j.parse::<usize>() {
            Ok(j) if j >= 1 => Ok(j),
            _ => {
                eprintln!("error: `--jobs` needs a positive worker count, got `{j}`");
                Err(())
            }
        },
    }
}

/// An optional non-negative integer flag value.
fn u64_flag(args: &[String], flag: &str) -> Result<Option<u64>, ()> {
    match flag_value(args, flag) {
        None => Ok(None),
        Some(v) => match v.parse::<u64>() {
            Ok(n) => Ok(Some(n)),
            Err(_) => {
                eprintln!("error: `{flag}` needs a non-negative integer, got `{v}`");
                Err(())
            }
        },
    }
}

/// `--stats` / `--stats-json` on stderr, shared by `batch`, `serve`,
/// `watch`, and `fuzz`. `epochs` and `ops` (front-door/verdict-cache
/// counters) are set by the serve loops, whose counters are cumulative
/// across epochs.
fn print_stats(
    args: &[String],
    stats: &BatchStats,
    command: &str,
    epochs: Option<u64>,
    ops: Option<&p4bid::serve::ServeOps>,
) {
    if args.iter().any(|a| a == "--stats") {
        eprint!("{}", stats.render_text());
        if let Some(ops) = ops {
            eprint!("{}", ops.render_text());
        }
    }
    if args.iter().any(|a| a == "--stats-json") {
        eprint!("{}", stats.render_json(command, epochs, ops));
    }
}

/// Shared tail of `serve`/`watch`: stats, the final summary line, and the
/// exit code (0 all accepted, 1 any reject, 2 ingest error).
fn finish_serve(
    args: &[String],
    engine: &ServeEngine,
    result: std::io::Result<ServeSummary>,
    command: &str,
) -> ExitCode {
    // Stats first, even on an ingest error: a long-running daemon's
    // cumulative counters are exactly what the operator asked for with
    // `--stats`/`--stats-json`, and they survive the failure.
    print_stats(
        args,
        &engine.cumulative_stats(),
        command,
        Some(engine.epochs()),
        Some(&engine.ops()),
    );
    let summary = match result {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    // The extra segments appear only when nonzero, keeping the quiet
    // path's line stable for scripts that match on it.
    let mut line = format!(
        "served {} epoch(s): {} program(s) checked, {} request(s) skipped",
        summary.epochs, summary.requests, summary.skipped,
    );
    if summary.conn_errors > 0 {
        line.push_str(&format!(", {} connection error(s)", summary.conn_errors));
    }
    if summary.shed > 0 {
        line.push_str(&format!(", {} request(s) shed", summary.shed));
    }
    eprintln!("{line}");
    if summary.any_rejected {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The ingest-bound flags shared by the serve front door: `--max-epoch`
/// (epoch size), `--max-pending` + `--shed` (backpressure), `--max-line`
/// (request-line byte cap).
fn ingest_limits(args: &[String]) -> Result<IngestLimits, ()> {
    let mut limits = IngestLimits::default();
    if let Some(n) = u64_flag(args, "--max-epoch")? {
        limits.max_epoch = n as usize;
    }
    if let Some(n) = u64_flag(args, "--max-pending")? {
        limits.max_pending = n as usize;
    }
    if let Some(n) = u64_flag(args, "--max-line")? {
        if n == 0 {
            eprintln!("error: `--max-line` needs a positive byte count");
            return Err(());
        }
        limits.max_line = n as usize;
    }
    limits.shed = args.iter().any(|a| a == "--shed");
    Ok(limits)
}

/// `--cache-cap N`: verdict-cache capacity (default 1024, `0` disables).
fn cache_cap(args: &[String]) -> Result<usize, ()> {
    Ok(u64_flag(args, "--cache-cap")?.map_or(1024, |n| n as usize))
}

/// `--prefix-cache-cap N`: prefix-snapshot cache capacity shared by the
/// engine's worker sessions (default [`p4bid::DEFAULT_PREFIX_CACHE_CAP`],
/// `0` disables incremental prefix re-checking).
fn prefix_cache_cap(args: &[String]) -> Result<usize, ()> {
    Ok(u64_flag(args, "--prefix-cache-cap")?
        .map_or(p4bid::DEFAULT_PREFIX_CACHE_CAP, |n| n as usize))
}

/// `--policy FILE`: a per-program policy pack (see `docs/CLI.md`),
/// shared by `batch`, `serve`, and `watch`. A malformed or unreadable
/// pack is a usage error (exit 2).
fn policy_pack(args: &[String]) -> Result<Option<PolicyPack>, ()> {
    match flag_value(args, "--policy") {
        None => Ok(None),
        Some(path) => match PolicyPack::load(std::path::Path::new(path)) {
            Ok(pack) => Ok(Some(pack)),
            Err(e) => {
                eprintln!("error: cannot load policy `{path}`: {e}");
                Err(())
            }
        },
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let (Ok(jobs), Ok(max_epochs), Ok(refresh_every), Ok(limits), Ok(cache), Ok(policy), Ok(opts)) = (
        parse_jobs(args),
        u64_flag(args, "--max-epochs"),
        u64_flag(args, "--refresh-every"),
        ingest_limits(args),
        cache_cap(args),
        policy_pack(args),
        check_options(args),
    ) else {
        return ExitCode::from(2);
    };
    let Ok(prefix_cap) = prefix_cache_cap(args) else {
        return ExitCode::from(2);
    };
    let json = args.iter().any(|a| a == "--json");
    let core = p4bid::SharedSessionCore::with_prefix_cache_cap(opts, prefix_cap);
    let mut engine = ServeEngine::with_core(core, jobs)
        .with_refresh_every(refresh_every)
        .with_cache(cache)
        .with_policy(policy);
    // SIGTERM/SIGINT become a graceful drain: pending work is flushed as
    // the final epoch(s), stats and the summary line still print, and
    // the socket file is unlinked.
    p4bid::serve::install_drain_handler();
    let result = if let Some(socket) = flag_value(args, "--socket") {
        #[cfg(unix)]
        {
            // `Stderr` (not the lock) — the reader threads share it, and
            // `StderrLock` is not `Send`.
            p4bid::serve::run_socket(
                &mut engine,
                std::path::Path::new(socket),
                &mut std::io::stdout().lock(),
                &mut std::io::stderr(),
                json,
                max_epochs,
                &limits,
            )
        }
        #[cfg(not(unix))]
        {
            let _ = socket;
            eprintln!("error: `--socket` needs a Unix platform; use the stdin feed instead");
            return ExitCode::from(2);
        }
    } else {
        run_feed(
            &mut engine,
            &mut std::io::stdin().lock(),
            &mut std::io::stdout().lock(),
            &mut std::io::stderr().lock(),
            json,
            max_epochs,
            &limits,
        )
    };
    finish_serve(args, &engine, result, "serve")
}

fn cmd_watch(args: &[String]) -> ExitCode {
    let Some(dir) = positional(args) else {
        eprintln!("error: `p4bid watch` needs a directory");
        return ExitCode::from(2);
    };
    let (
        Ok(jobs),
        Ok(max_epochs),
        Ok(refresh_every),
        Ok(interval_ms),
        Ok(cache),
        Ok(policy),
        Ok(opts),
    ) = (
        parse_jobs(args),
        u64_flag(args, "--max-epochs"),
        u64_flag(args, "--refresh-every"),
        u64_flag(args, "--interval-ms"),
        cache_cap(args),
        policy_pack(args),
        check_options(args),
    )
    else {
        return ExitCode::from(2);
    };
    if !std::path::Path::new(dir).is_dir() {
        eprintln!("error: cannot watch `{dir}`: not a directory");
        return ExitCode::from(2);
    }
    let Ok(prefix_cap) = prefix_cache_cap(args) else {
        return ExitCode::from(2);
    };
    let json = args.iter().any(|a| a == "--json");
    let core = p4bid::SharedSessionCore::with_prefix_cache_cap(opts, prefix_cap);
    let mut engine = ServeEngine::with_core(core, jobs)
        .with_refresh_every(refresh_every)
        .with_cache(cache)
        .with_policy(policy);
    p4bid::serve::install_drain_handler();
    let mut scanner = DirScanner::new(dir);
    let result = run_watch(
        &mut engine,
        &mut scanner,
        &mut std::io::stdout().lock(),
        &mut std::io::stderr().lock(),
        json,
        max_epochs,
        std::time::Duration::from_millis(interval_ms.unwrap_or(500)),
    );
    finish_serve(args, &engine, result, "watch")
}

fn cmd_topo(args: &[String]) -> ExitCode {
    let Some(path) = positional(args) else {
        eprintln!("error: `p4bid topo` needs a manifest file");
        return ExitCode::from(2);
    };
    let (Ok(jobs), Ok(opts), Ok(max_epochs), Ok(interval_ms)) = (
        parse_jobs(args),
        check_options(args),
        u64_flag(args, "--max-epochs"),
        u64_flag(args, "--interval-ms"),
    ) else {
        return ExitCode::from(2);
    };
    let manifest_path = std::path::Path::new(path);
    let topo = match p4bid::topo::Topology::load(manifest_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let json = args.iter().any(|a| a == "--json");
    let mut engine = p4bid::topo::TopoEngine::new(topo, opts, jobs);
    if args.iter().any(|a| a == "--watch") {
        p4bid::serve::install_drain_handler();
        let result = p4bid::topo::run_topo_watch(
            &mut engine,
            manifest_path,
            &mut std::io::stdout().lock(),
            &mut std::io::stderr().lock(),
            json,
            max_epochs,
            std::time::Duration::from_millis(interval_ms.unwrap_or(500)),
        );
        print_stats(args, &engine.cumulative_stats(), "topo", Some(engine.epochs()), None);
        match result {
            Ok(summary) => {
                eprintln!("watched {} epoch(s)", summary.epochs);
                if summary.any_bad {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        }
    } else {
        let start = std::time::Instant::now();
        let report = engine.run_epoch();
        if json {
            print!("{}", report.to_json());
        } else {
            print!("{}", report.render_table());
        }
        print_stats(args, &report.stats, "topo", None, None);
        // Timing goes to stderr so stdout stays byte-identical across
        // runs and `--jobs` settings.
        eprintln!(
            "checked {} switch(es) in {:.1} ms on {} worker(s): {} round(s), {} recheck(s)",
            report.switches.len(),
            start.elapsed().as_secs_f64() * 1e3,
            report.jobs,
            report.rounds,
            report.switch_rechecks,
        );
        if report.all_ok() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    }
}

fn cmd_ni(args: &[String]) -> ExitCode {
    let Some(path) = positional(args) else {
        eprintln!("error: `p4bid ni` needs a file");
        return ExitCode::from(2);
    };
    let source = match read_source(path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    // Permissive so that leaky programs can be *run* and witnessed.
    let typed = match check(&source, &CheckOptions::permissive()) {
        Ok(t) => t,
        Err(diags) => {
            eprint!("{}", render_diagnostics(&source, &diags));
            return ExitCode::FAILURE;
        }
    };
    let control = match flag_value(args, "--control") {
        Some(c) => c.to_string(),
        None => match typed.controls.first() {
            Some(c) => c.name.clone(),
            None => {
                eprintln!("error: the program declares no control block");
                return ExitCode::FAILURE;
            }
        },
    };
    let mut config = NiConfig::default();
    if let Some(runs) = flag_value(args, "--runs").and_then(|s| s.parse().ok()) {
        config = config.with_runs(runs);
    }
    if let Some(observe) = flag_value(args, "--observe") {
        config = config.observing(observe);
    }
    let cp = p4bid::interp::ControlPlane::new();
    match check_non_interference(&typed, &cp, &control, &config) {
        NiOutcome::Holds { runs } => {
            println!("non-interference held on {runs} random low-equivalent input pairs");
            ExitCode::SUCCESS
        }
        NiOutcome::Leak(witness) => {
            print!("{witness}");
            ExitCode::FAILURE
        }
        NiOutcome::Error(e) => {
            eprintln!("evaluation error: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_corpus(args: &[String]) -> ExitCode {
    let name = positional(args);
    match name {
        None => {
            for cs in p4bid::corpus::case_studies() {
                println!("{:<10} {:<28} {}", cs.name, cs.section, cs.description);
            }
            ExitCode::SUCCESS
        }
        Some(name) => match p4bid::corpus::case_study(name) {
            Some(cs) => {
                if args.iter().any(|a| a == "--insecure") {
                    print!("{}", cs.insecure);
                } else if args.iter().any(|a| a == "--unannotated") {
                    print!("{}", unannotated_source(&cs));
                } else {
                    print!("{}", cs.secure);
                }
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("error: unknown case study `{name}`; try `p4bid corpus`");
                ExitCode::from(2)
            }
        },
    }
}

fn cmd_fuzz(args: &[String]) -> ExitCode {
    let n: u64 = positional(args).and_then(|s| s.parse().ok()).unwrap_or(200);
    let mut cfg = GenConfig::default();
    if let Some(bias) = flag_value(args, "--safe-bias").and_then(|s| s.parse().ok()) {
        cfg = cfg.with_safe_bias(bias);
    }
    let jobs = match flag_value(args, "--jobs") {
        None => 1, // serial remains the default; `--jobs 0` = one per core
        Some(j) => match j.parse::<usize>() {
            Ok(j) => j,
            Err(_) => {
                eprintln!("error: `--jobs` needs a worker count, got `{j}`");
                return ExitCode::from(2);
            }
        },
    };
    let ni_cfg = NiConfig::default().with_runs(30);
    let report = run_fuzz(n, &cfg, &ni_cfg, jobs);
    print_stats(args, &report.stats, "fuzz", None, None);
    if let Some((seed, SeedOutcome::Violation { source, witness })) = &report.violation {
        eprintln!("SOUNDNESS VIOLATION at seed {seed}:\n{source}\n{witness}");
        return ExitCode::FAILURE;
    }
    // The `panicked` segment appears only when nonzero (i.e. under
    // injected faults), keeping the quiet path's line stable for
    // scripts that match on it.
    let mut line = format!(
        "fuzzed {n} programs: {} accepted (all non-interfering), {} rejected",
        report.accepted, report.rejected
    );
    if report.panicked > 0 {
        line.push_str(&format!(", {} panicked", report.panicked));
    }
    println!("{line}");
    ExitCode::SUCCESS
}
