//! Mechanical removal of security annotations.
//!
//! Produces the *unannotated* form of a program — the input to the paper's
//! "p4c" baseline column in Table 1 — from the annotated form: every
//! `<T, label>` becomes `T`, `@pc(...)` attributes disappear, and
//! `lattice { … }` declarations are dropped.

use p4bid_ast::surface::*;

/// Strips all security annotations from a parsed program.
#[must_use]
pub fn strip_annotations(program: &Program) -> Program {
    let items = program
        .items
        .iter()
        .filter_map(|item| match item {
            Item::Lattice(_) => None,
            Item::Type(t) => Some(Item::Type(strip_type_decl(t))),
            Item::Function(f) => Some(Item::Function(strip_function(f))),
            Item::Action(a) => Some(Item::Action(strip_action(a))),
            Item::Control(c) => Some(Item::Control(strip_control(c))),
        })
        .collect();
    Program { items }
}

/// Strips annotations and renders the result back to source text.
#[must_use]
pub fn strip_annotations_source(program: &Program) -> String {
    p4bid_ast::pretty::program(&strip_annotations(program))
}

fn strip_ann_type(t: &AnnType) -> AnnType {
    let ty = match &t.ty {
        TypeExpr::Stack(elem, n) => TypeExpr::Stack(Box::new(strip_ann_type(elem)), *n),
        other => other.clone(),
    };
    AnnType { ty, label: None, span: t.span }
}

fn strip_type_decl(t: &TypeDecl) -> TypeDecl {
    match t {
        TypeDecl::Typedef { ty, name } => {
            TypeDecl::Typedef { ty: strip_ann_type(ty), name: name.clone() }
        }
        TypeDecl::Header { name, fields } => TypeDecl::Header {
            name: name.clone(),
            fields: fields.iter().map(|(n, t)| (n.clone(), strip_ann_type(t))).collect(),
        },
        TypeDecl::Struct { name, fields } => TypeDecl::Struct {
            name: name.clone(),
            fields: fields.iter().map(|(n, t)| (n.clone(), strip_ann_type(t))).collect(),
        },
        TypeDecl::MatchKind { kinds } => TypeDecl::MatchKind { kinds: kinds.clone() },
    }
}

fn strip_params(params: &[Param]) -> Vec<Param> {
    params
        .iter()
        .map(|p| Param { direction: p.direction, name: p.name.clone(), ty: strip_ann_type(&p.ty) })
        .collect()
}

fn strip_var(v: &VarDecl) -> VarDecl {
    VarDecl { ty: strip_ann_type(&v.ty), name: v.name.clone(), init: v.init.clone(), span: v.span }
}

fn strip_stmt(s: &Stmt) -> Stmt {
    let kind = match &s.kind {
        StmtKind::VarDecl(v) => StmtKind::VarDecl(strip_var(v)),
        StmtKind::Block(ss) => StmtKind::Block(ss.iter().map(strip_stmt).collect()),
        StmtKind::If(c, t, e) => StmtKind::If(
            c.clone(),
            Box::new(strip_stmt(t)),
            e.as_ref().map(|e| Box::new(strip_stmt(e))),
        ),
        other => other.clone(),
    };
    Stmt { kind, span: s.span }
}

fn strip_action(a: &ActionDecl) -> ActionDecl {
    ActionDecl {
        name: a.name.clone(),
        params: strip_params(&a.params),
        body: a.body.iter().map(strip_stmt).collect(),
        span: a.span,
    }
}

fn strip_function(f: &FunctionDecl) -> FunctionDecl {
    FunctionDecl {
        name: f.name.clone(),
        ret: strip_ann_type(&f.ret),
        params: strip_params(&f.params),
        body: f.body.iter().map(strip_stmt).collect(),
        span: f.span,
    }
}

fn strip_control(c: &ControlDecl) -> ControlDecl {
    ControlDecl {
        name: c.name.clone(),
        params: strip_params(&c.params),
        decls: c
            .decls
            .iter()
            .map(|d| match d {
                CtrlDecl::Var(v) => CtrlDecl::Var(strip_var(v)),
                CtrlDecl::Action(a) => CtrlDecl::Action(strip_action(a)),
                CtrlDecl::Function(f) => CtrlDecl::Function(strip_function(f)),
                CtrlDecl::Table(t) => CtrlDecl::Table(t.clone()),
            })
            .collect(),
        apply: c.apply.iter().map(strip_stmt).collect(),
        pc: None,
        span: c.span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4bid_typeck::{check_source, CheckOptions};

    const ANNOTATED: &str = r#"
        lattice { bot < A; bot < B; A < top; B < top; }
        header h_t { <bit<8>, A> s; bit<8> p; }
        @pc(A) control C(inout h_t h) {
            <bit<8>, A> local = h.s;
            action a(in <bit<8>, A> v) { h.s = v; }
            apply {
                if (h.p == 8w0) { <bit<8>, top>[2] arr; arr[0] = 8w1; }
                a(local);
            }
        }
    "#;

    #[test]
    fn stripped_program_has_no_annotations() {
        let p = p4bid_syntax::parse(ANNOTATED).unwrap();
        let stripped = strip_annotations(&p);
        let src = p4bid_ast::pretty::program(&stripped);
        assert!(!src.contains("lattice"), "{src}");
        assert!(!src.contains("@pc"), "{src}");
        assert!(!src.contains(", A>"), "{src}");
        assert!(!src.contains(", top>"), "{src}");
    }

    #[test]
    fn stripped_program_base_checks() {
        let p = p4bid_syntax::parse(ANNOTATED).unwrap();
        let src = strip_annotations_source(&p);
        check_source(&src, &CheckOptions::base())
            .unwrap_or_else(|e| panic!("stripped program fails: {e:?}\n{src}"));
    }

    #[test]
    fn stripping_is_idempotent() {
        let p = p4bid_syntax::parse(ANNOTATED).unwrap();
        let once = strip_annotations(&p);
        let twice = strip_annotations(&once);
        assert_eq!(once, twice);
    }
}
