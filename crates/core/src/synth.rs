//! Synthetic program generation for the scaling ablation (experiment
//! F-extra-1 in DESIGN.md): programs with `n` match-action table/action
//! pairs, in annotated and unannotated forms, all accepted by both
//! checkers. Used to measure how checking time grows with program size
//! and how the IFC overhead behaves.

use std::fmt::Write as _;

/// Generates a well-typed program with `n` tables (and `n` actions, plus a
/// pipeline applying them all). With `annotated = true` the fields carry a
/// low/high split and the actions exercise the flow rules; with `false`
/// the program is the plain baseline form.
#[must_use]
pub fn synth_program(n: usize, annotated: bool) -> String {
    let mut src = String::new();
    let (lo, hi) =
        if annotated { ("<bit<32>, low> ", "<bit<32>, high> ") } else { ("bit<32> ", "bit<32> ") };

    src.push_str("header state_t {\n");
    let _ = writeln!(src, "    {lo}pub0;");
    let _ = writeln!(src, "    {lo}pub1;");
    let _ = writeln!(src, "    {hi}sec0;");
    let _ = writeln!(src, "    {hi}sec1;");
    src.push_str("}\nstruct headers { state_t st; }\n");

    src.push_str("control Synth(inout headers hdr, inout standard_metadata_t meta) {\n");
    for i in 0..n {
        // Even actions shuffle public state; odd actions fold public data
        // into secret state (always legal: low ⊑ high).
        if i % 2 == 0 {
            let arg = if annotated { "<bit<32>, low> v" } else { "bit<32> v" };
            let _ = writeln!(
                src,
                "    action act{i}({arg}) {{\n        hdr.st.pub0 = hdr.st.pub1 + v;\n        hdr.st.pub1 = hdr.st.pub0 ^ 32w{i};\n    }}"
            );
        } else {
            let arg = if annotated { "<bit<32>, high> v" } else { "bit<32> v" };
            let _ = writeln!(
                src,
                "    action act{i}({arg}) {{\n        hdr.st.sec0 = hdr.st.sec1 + v;\n        hdr.st.sec1 = (hdr.st.sec0 ^ hdr.st.pub0) + 32w{i};\n    }}"
            );
        }
        let _ = writeln!(
            src,
            "    table tbl{i} {{\n        key = {{ hdr.st.pub0: exact; }}\n        actions = {{ act{i}; NoAction; }}\n        default_action = NoAction;\n    }}"
        );
    }
    src.push_str("    apply {\n");
    for i in 0..n {
        if i % 3 == 0 {
            let _ = writeln!(src, "        tbl{i}.apply();");
        } else {
            let _ = writeln!(src, "        if (hdr.st.pub1 == 32w{i}) {{ tbl{i}.apply(); }}");
        }
    }
    src.push_str("    }\n}\n");
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4bid_typeck::{check_source, CheckOptions};

    #[test]
    fn synthetic_programs_check_in_both_modes() {
        for n in [0, 1, 2, 7, 16] {
            let annotated = synth_program(n, true);
            check_source(&annotated, &CheckOptions::ifc())
                .unwrap_or_else(|e| panic!("ifc n={n}: {e:?}\n{annotated}"));
            let plain = synth_program(n, false);
            check_source(&plain, &CheckOptions::base())
                .unwrap_or_else(|e| panic!("base n={n}: {e:?}\n{plain}"));
        }
    }

    #[test]
    fn size_scales_with_n() {
        let small = synth_program(2, true);
        let large = synth_program(64, true);
        assert!(large.len() > 10 * small.len());
    }

    #[test]
    fn annotated_and_plain_differ_only_in_labels() {
        let a = synth_program(3, true);
        let p = synth_program(3, false);
        assert!(a.contains("high"));
        assert!(!p.contains("high"));
    }
}
