//! Topology-scale checking: fixpoint composition of per-switch verdicts.
//!
//! P4BID checks one program at a time, but the property a network operator
//! cares about is end-to-end: data labeled `high` at one switch must not
//! reach a port another switch exports as `low`. This module lifts the
//! program checker to a *network* checker. A flat manifest (`p4bid.topo`
//! by convention) declares switches (name → program path, plus optional
//! per-switch option overrides), directed links (`sw1:p2 -> sw2:p1`), and
//! per-link label *contracts* — the highest label the wire is allowed to
//! carry.
//!
//! The driver computes, for every switch `s`, an **ingress label**
//! `in(s)`: the join of its declared external seed with the egress labels
//! of every upstream switch feeding it. Each switch's program is then
//! checked with its ambient `pc` seeded to `in(s)` (and
//! [`CheckOptions::pc_floor`] on, so a control cannot understate its own
//! `@pc` below the real upstream influence). Because labels only ever
//! move *up* the (finite) lattice via joins, the propagation is monotone
//! and the fixpoint terminates in at most `|switches| · |lattice|`
//! rounds. Egress labels default to `in(s)` — a switch accepted at
//! ambient `pc = in(s)` cannot have written below that context, so the
//! taint view is sound — and a manifest may declare a lower egress only
//! when the switch is allowed to declassify; otherwise the downgrade is
//! refused (the conservative `in(s)` propagates) and reported.
//!
//! Determinism is the same contract the batch layer pins: rounds are
//! sequential barriers, within a round the dirty switches fan out over
//! the work-stealing pool (grouped by distinct resolved option sets, in
//! first-appearance order) and merge by switch index, and link
//! propagation walks the manifest's link order. Reports are
//! byte-identical across `--jobs` settings and repeated runs.
//!
//! # Examples
//!
//! ```
//! use p4bid::topo::{check_topology, TopoManifest};
//! use p4bid::CheckOptions;
//!
//! let manifest = TopoManifest::parse(
//!     r#"
//!     lattice = "low < high"
//!
//!     [switch edge]
//!     program = "edge.p4"
//!     ingress = "high"
//!
//!     [link edge:p1 -> core:p1]
//!     contract = "low"
//!
//!     [switch core]
//!     program = "core.p4"
//!     "#,
//! )
//! .unwrap();
//! let fwd = "control C(inout <bit<8>, high> x) { apply { x = x + 8w1; } }";
//! let topo = manifest
//!     .resolve_with(|path| Ok(format!("// {path}\n{fwd}")))
//!     .unwrap();
//! let report = check_topology(&topo, &CheckOptions::ifc(), 2);
//! // Both programs check, but the edge switch's `high` ingress crosses a
//! // `low`-contracted wire: the topology is rejected.
//! assert_eq!(report.accepted(), 2);
//! assert_eq!(report.violations.len(), 1);
//! assert!(!report.all_ok());
//! ```

use crate::batch::{
    check_batch_with_core, BatchDiagnostic, BatchInput, BatchReport, BatchStats, ProgramReport,
};
use crate::policy;
use crate::serve::options_fingerprint;
use p4bid_lattice::{Label, Lattice};
use p4bid_typeck::{CheckOptions, SharedSessionCore};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// A topology-manifest load error, pointing at the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoError {
    /// 1-based line in the manifest (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl TopoError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        TopoError { line, message: message.into() }
    }
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "topology error: {}", self.message)
        } else {
            write!(f, "topology error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for TopoError {}

/// One `[switch NAME]` section of a manifest, before program sources are
/// loaded.
#[derive(Debug, Clone)]
pub struct SwitchDecl {
    /// Switch name (unique within the topology).
    pub name: String,
    /// Program path, relative to the manifest file.
    pub program: String,
    /// External ingress seed label name (default: lattice bottom).
    pub ingress: Option<String>,
    /// Declared egress label name (default: the computed ingress label).
    pub egress: Option<String>,
    /// Extra ambient-`pc` floor joined into the seed.
    pub pc: Option<String>,
    /// Per-switch `declassify` override.
    pub declassify: Option<bool>,
    /// Per-switch program-check lattice override.
    pub lattice: Option<Lattice>,
    /// 1-based manifest line of the section header.
    pub line: usize,
}

/// One `[link sw:port -> sw:port]` section of a manifest.
#[derive(Debug, Clone)]
pub struct LinkDecl {
    /// Upstream endpoint (switch name, port name).
    pub from: (String, String),
    /// Downstream endpoint (switch name, port name).
    pub to: (String, String),
    /// Label-contract name for the wire (default: lattice top).
    pub contract: Option<String>,
    /// 1-based manifest line of the section header.
    pub line: usize,
}

/// A parsed (but not yet resolved) topology manifest.
///
/// The format is the crate's usual flat, line-based style: section
/// headers, `key = value` lines, `#` comments. Two section forms exist —
/// `[switch NAME]` (keys `program`, `ingress`, `egress`, `pc`,
/// `declassify`, `lattice`) and `[link sw:port -> sw:port]` (key
/// `contract`) — plus one topology-level key, `lattice`, accepted before
/// the first section: the *boundary* lattice that ingress/egress/contract
/// labels resolve against (`"two-point"`, `"diamond"`, or a `lo < hi; …`
/// order expression; default two-point). Loading is fail-fast with
/// 1-based line numbers, exactly like [`crate::policy::PolicyPack`].
#[derive(Debug, Clone, Default)]
pub struct TopoManifest {
    /// Boundary lattice, if the manifest sets one.
    pub lattice: Option<Lattice>,
    /// Switch sections, in file order.
    pub switches: Vec<SwitchDecl>,
    /// Link sections, in file order.
    pub links: Vec<LinkDecl>,
}

/// Which section the manifest parser is currently filling.
enum Section {
    Preamble,
    Switch(usize),
    Link(usize),
}

impl TopoManifest {
    /// Parses a manifest from its text form.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line (fail-fast: a topology manifest is
    /// a security boundary and never degrades to defaults silently).
    pub fn parse(text: &str) -> Result<Self, TopoError> {
        let mut m = TopoManifest::default();
        let mut section = Section::Preamble;
        for (ix, raw) in text.lines().enumerate() {
            let lineno = ix + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let Some(header) = header.strip_suffix(']') else {
                    return Err(TopoError::at(
                        lineno,
                        format!("unterminated section header `{line}`"),
                    ));
                };
                let header = header.trim();
                if let Some(name) = header.strip_prefix("switch ") {
                    let name = name.trim();
                    if name.is_empty() {
                        return Err(TopoError::at(lineno, "empty switch name"));
                    }
                    m.switches.push(SwitchDecl {
                        name: name.to_string(),
                        program: String::new(),
                        ingress: None,
                        egress: None,
                        pc: None,
                        declassify: None,
                        lattice: None,
                        line: lineno,
                    });
                    section = Section::Switch(m.switches.len() - 1);
                } else if let Some(spec) = header.strip_prefix("link ") {
                    let Some((from, to)) = spec.split_once("->") else {
                        return Err(TopoError::at(
                            lineno,
                            format!("expected `[link sw:port -> sw:port]`, found `[{header}]`"),
                        ));
                    };
                    m.links.push(LinkDecl {
                        from: parse_endpoint(from, lineno)?,
                        to: parse_endpoint(to, lineno)?,
                        contract: None,
                        line: lineno,
                    });
                    section = Section::Link(m.links.len() - 1);
                } else {
                    return Err(TopoError::at(
                        lineno,
                        format!("unknown section `[{header}]` (expected `switch` or `link`)"),
                    ));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(TopoError::at(
                    lineno,
                    format!("expected `key = value`, found `{line}`"),
                ));
            };
            let key = key.trim();
            let value = policy::unquote(value.trim());
            match &section {
                Section::Preamble => match key {
                    "lattice" => m.lattice = Some(parse_lattice(value, lineno)?),
                    other => {
                        return Err(TopoError::at(
                            lineno,
                            format!(
                                "unknown topology key `{other}` before the first section \
                                 (expected `lattice`)"
                            ),
                        ));
                    }
                },
                Section::Switch(i) => {
                    let sw = &mut m.switches[*i];
                    match key {
                        "program" => sw.program = value.to_string(),
                        "ingress" => sw.ingress = Some(value.to_string()),
                        "egress" => sw.egress = Some(value.to_string()),
                        "pc" => sw.pc = Some(value.to_string()),
                        "declassify" => sw.declassify = Some(parse_bool(value, lineno)?),
                        "lattice" => sw.lattice = Some(parse_lattice(value, lineno)?),
                        other => {
                            return Err(TopoError::at(
                                lineno,
                                format!(
                                    "unknown switch key `{other}` (expected `program`, \
                                     `ingress`, `egress`, `pc`, `declassify`, or `lattice`)"
                                ),
                            ));
                        }
                    }
                }
                Section::Link(i) => match key {
                    "contract" => m.links[*i].contract = Some(value.to_string()),
                    other => {
                        return Err(TopoError::at(
                            lineno,
                            format!("unknown link key `{other}` (expected `contract`)"),
                        ));
                    }
                },
            }
        }
        for sw in &m.switches {
            if sw.program.is_empty() {
                return Err(TopoError::at(
                    sw.line,
                    format!("switch `{}` declares no `program`", sw.name),
                ));
            }
        }
        Ok(m)
    }

    /// Loads and parses a manifest file.
    ///
    /// # Errors
    ///
    /// I/O failures and parse errors both surface as [`TopoError`].
    pub fn load(path: &Path) -> Result<Self, TopoError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| TopoError::at(0, format!("cannot read {}: {e}", path.display())))?;
        Self::parse(&text)
    }

    /// Resolves the manifest into a checkable [`Topology`], reading each
    /// switch's program from `base_dir` (normally the manifest's parent
    /// directory).
    ///
    /// # Errors
    ///
    /// Unreadable program files and every structural/label validation
    /// error of [`Topology::assemble`] surface as [`TopoError`].
    pub fn resolve(&self, base_dir: &Path) -> Result<Topology, TopoError> {
        self.resolve_with(|program| {
            std::fs::read_to_string(base_dir.join(program))
                .map_err(|e| format!("cannot read {}: {e}", base_dir.join(program).display()))
        })
    }

    /// [`TopoManifest::resolve`] with a caller-supplied program loader —
    /// the hook examples, tests, and property suites use to assemble
    /// in-memory topologies without touching the filesystem.
    ///
    /// # Errors
    ///
    /// Loader failures are reported at the declaring switch's line; the
    /// rest as for [`TopoManifest::resolve`].
    pub fn resolve_with(
        &self,
        mut load: impl FnMut(&str) -> Result<String, String>,
    ) -> Result<Topology, TopoError> {
        let mut sources = Vec::with_capacity(self.switches.len());
        for sw in &self.switches {
            sources.push(load(&sw.program).map_err(|e| TopoError::at(sw.line, e))?);
        }
        Topology::assemble(self, sources)
    }
}

/// Splits one `sw:port` endpoint.
fn parse_endpoint(s: &str, line: usize) -> Result<(String, String), TopoError> {
    let s = s.trim();
    let Some((sw, port)) = s.split_once(':') else {
        return Err(TopoError::at(line, format!("expected `switch:port`, found `{s}`")));
    };
    let (sw, port) = (sw.trim(), port.trim());
    if sw.is_empty() || port.is_empty() {
        return Err(TopoError::at(line, format!("expected `switch:port`, found `{s}`")));
    }
    Ok((sw.to_string(), port.to_string()))
}

fn parse_bool(s: &str, line: usize) -> Result<bool, TopoError> {
    policy::parse_bool(s, line).map_err(|e| TopoError::at(e.line, e.message))
}

fn parse_lattice(s: &str, line: usize) -> Result<Lattice, TopoError> {
    policy::parse_lattice(s, line).map_err(|e| TopoError::at(e.line, e.message))
}

/// One switch of a resolved [`Topology`]: the declaration plus its loaded
/// program source and its boundary labels resolved against the boundary
/// lattice.
#[derive(Debug, Clone)]
pub struct TopoSwitch {
    /// Switch name.
    pub name: String,
    /// Program display path (the manifest's `program` value).
    pub program: String,
    /// Loaded program source.
    pub source: String,
    /// External ingress seed (lattice bottom unless declared).
    pub ingress: Label,
    /// Declared egress label, if any.
    pub egress: Option<Label>,
    /// Declared extra `pc` floor, if any.
    pub pc: Option<Label>,
    /// Per-switch `declassify` override, if any.
    pub declassify: Option<bool>,
    /// Per-switch program-check lattice override, if any.
    pub lattice: Option<Lattice>,
}

/// One directed link of a resolved [`Topology`].
#[derive(Debug, Clone)]
pub struct TopoLink {
    /// Upstream switch index.
    pub from: usize,
    /// Upstream port name.
    pub from_port: String,
    /// Downstream switch index.
    pub to: usize,
    /// Downstream port name.
    pub to_port: String,
    /// Wire contract (lattice top unless declared).
    pub contract: Label,
}

/// A validated, checkable network: the boundary lattice, the switches
/// (with program sources loaded), and the directed links between them.
#[derive(Debug, Clone)]
pub struct Topology {
    lattice: Lattice,
    switches: Vec<TopoSwitch>,
    links: Vec<TopoLink>,
}

impl Topology {
    /// Loads, parses, and resolves a manifest file in one step, reading
    /// program paths relative to the manifest's parent directory.
    ///
    /// # Errors
    ///
    /// As for [`TopoManifest::load`] and [`TopoManifest::resolve`].
    pub fn load(path: &Path) -> Result<Self, TopoError> {
        let manifest = TopoManifest::load(path)?;
        manifest.resolve(path.parent().unwrap_or_else(|| Path::new(".")))
    }

    /// Validates a manifest against its loaded program sources (one per
    /// switch, in declaration order) and builds the checkable topology.
    ///
    /// # Errors
    ///
    /// Rejects, with the declaring line: an empty topology, duplicate
    /// switch names, links naming undeclared switches (dangling ports),
    /// endpoints wired twice, and ingress/egress/pc/contract labels that
    /// do not resolve in the boundary lattice.
    pub fn assemble(manifest: &TopoManifest, sources: Vec<String>) -> Result<Self, TopoError> {
        assert_eq!(manifest.switches.len(), sources.len(), "one source per switch");
        if manifest.switches.is_empty() {
            return Err(TopoError::at(0, "a topology needs at least one `[switch NAME]`"));
        }
        let lattice = manifest.lattice.clone().unwrap_or_else(Lattice::two_point);
        let resolve = |name: &str, what: &str, line: usize| {
            lattice.label(name).ok_or_else(|| {
                TopoError::at(line, format!("{what} label `{name}` is not in the boundary lattice"))
            })
        };
        let mut switches = Vec::with_capacity(manifest.switches.len());
        for (sw, source) in manifest.switches.iter().zip(sources) {
            if switches.iter().any(|s: &TopoSwitch| s.name == sw.name) {
                return Err(TopoError::at(sw.line, format!("duplicate switch `{}`", sw.name)));
            }
            switches.push(TopoSwitch {
                name: sw.name.clone(),
                program: sw.program.clone(),
                source,
                ingress: match &sw.ingress {
                    Some(n) => resolve(n, "ingress", sw.line)?,
                    None => lattice.bottom(),
                },
                egress: match &sw.egress {
                    Some(n) => Some(resolve(n, "egress", sw.line)?),
                    None => None,
                },
                pc: match &sw.pc {
                    Some(n) => Some(resolve(n, "pc", sw.line)?),
                    None => None,
                },
                declassify: sw.declassify,
                lattice: sw.lattice.clone(),
            });
        }
        let index_of = |name: &str, line: usize| {
            switches.iter().position(|s| s.name == name).ok_or_else(|| {
                TopoError::at(line, format!("link references unknown switch `{name}`"))
            })
        };
        let mut links: Vec<TopoLink> = Vec::with_capacity(manifest.links.len());
        for l in &manifest.links {
            let link = TopoLink {
                from: index_of(&l.from.0, l.line)?,
                from_port: l.from.1.clone(),
                to: index_of(&l.to.0, l.line)?,
                to_port: l.to.1.clone(),
                contract: match &l.contract {
                    Some(n) => resolve(n, "contract", l.line)?,
                    None => lattice.top(),
                },
            };
            for prior in &links {
                if prior.from == link.from && prior.from_port == link.from_port {
                    return Err(TopoError::at(
                        l.line,
                        format!("egress port `{}:{}` is already wired", l.from.0, l.from.1),
                    ));
                }
                if prior.to == link.to && prior.to_port == link.to_port {
                    return Err(TopoError::at(
                        l.line,
                        format!("ingress port `{}:{}` is already wired", l.to.0, l.to.1),
                    ));
                }
            }
            links.push(link);
        }
        Ok(Topology { lattice, switches, links })
    }

    /// The boundary lattice.
    #[must_use]
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// The switches, in manifest order.
    #[must_use]
    pub fn switches(&self) -> &[TopoSwitch] {
        &self.switches
    }

    /// The links, in manifest order.
    #[must_use]
    pub fn links(&self) -> &[TopoLink] {
        &self.links
    }

    /// The program paths the topology depends on (for watch-mode change
    /// polling), in switch order.
    #[must_use]
    pub fn program_paths(&self) -> Vec<String> {
        self.switches.iter().map(|s| s.program.clone()).collect()
    }
}

/// What a [`TopoViolation`] violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A link carrying a label above its declared contract.
    Contract,
    /// A switch declaring an egress below its computed ingress without a
    /// declassify grant.
    Downgrade,
}

impl ViolationKind {
    /// Stable ident for reports (`contract` / `downgrade`).
    #[must_use]
    pub fn ident(self) -> &'static str {
        match self {
            ViolationKind::Contract => "contract",
            ViolationKind::Downgrade => "downgrade",
        }
    }
}

/// One topology-level violation: a wire over its contract, or a refused
/// egress downgrade. Carries a cross-switch lineage chain tracing where
/// the offending label came from.
#[derive(Debug, Clone)]
pub struct TopoViolation {
    /// What was violated.
    pub kind: ViolationKind,
    /// Where: `sw:port -> sw:port` for contracts, the switch name for
    /// downgrades.
    pub at: String,
    /// The label actually carried.
    pub label: String,
    /// The bound it violated (the contract, or the declared egress).
    pub bound: String,
    /// The provenance chain, e.g. `` `edge` (high) --egress p1--> `core`
    /// (contract low) ``.
    pub chain: String,
}

/// The fixpoint verdict for one switch.
#[derive(Debug, Clone)]
pub struct SwitchReport {
    /// The program verdict, exactly as the batch layer reports it
    /// (`index` is the switch's manifest position, `name` the switch
    /// name) — byte-compatible with `p4bid-batch-report/2`.
    pub verdict: ProgramReport,
    /// Program display path.
    pub program: String,
    /// Final computed ingress label name.
    pub ingress: String,
    /// Final computed egress label name.
    pub egress: String,
}

/// A whole-topology fixpoint report.
#[derive(Debug, Clone)]
pub struct TopoReport {
    /// Per-switch verdicts, in manifest order.
    pub switches: Vec<SwitchReport>,
    /// Topology-level violations: contract breaches in link order, then
    /// refused downgrades in switch order.
    pub violations: Vec<TopoViolation>,
    /// Fixpoint rounds until stabilization.
    pub rounds: u64,
    /// Real (non-cache-hit) per-switch program checks across all rounds.
    pub switch_rechecks: u64,
    /// Worker count the fixpoint ran with (reporting only; excluded from
    /// the JSON form).
    pub jobs: usize,
    /// Aggregated session statistics (reporting only; varies with
    /// work-stealing order, so never part of the deterministic renderings).
    pub stats: BatchStats,
}

impl TopoReport {
    /// Number of switches whose program the checker accepted.
    #[must_use]
    pub fn accepted(&self) -> usize {
        self.switches.iter().filter(|s| s.verdict.accepted).count()
    }

    /// Number of switches whose program was rejected.
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.switches.len() - self.accepted()
    }

    /// Whether every switch was accepted **and** no topology-level
    /// violation was found.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.rejected() == 0 && self.violations.is_empty()
    }

    /// The per-switch verdicts repackaged as a [`BatchReport`] — for a
    /// single-switch topology with trivial contracts, its JSON and table
    /// renderings are byte-identical to `p4bid batch` on the same
    /// program (the differential suite pins this).
    #[must_use]
    pub fn as_batch_report(&self) -> BatchReport {
        BatchReport {
            programs: self.switches.iter().map(|s| s.verdict.clone()).collect(),
            jobs: self.jobs,
            stats: self.stats,
        }
    }

    /// Machine-readable JSON form (schema `p4bid-topo-report/1`).
    ///
    /// Deliberately timing-free: byte-identical across `--jobs` settings
    /// and repeated runs. Each switch's `verdict` object is rendered by
    /// the exact code path the batch schema uses, so the two can never
    /// drift apart per program.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"p4bid-topo-report/1\",\n");
        let _ = writeln!(out, "  \"rounds\": {},", self.rounds);
        let _ = writeln!(out, "  \"switch_rechecks\": {},", self.switch_rechecks);
        out.push_str("  \"switches\": [\n");
        for (i, s) in self.switches.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"switch\": {}, \"program\": {}, \"ingress\": {}, \"egress\": {}, \
                 \"verdict\": {}}}",
                crate::batch::json_string(&s.verdict.name),
                crate::batch::json_string(&s.program),
                crate::batch::json_string(&s.ingress),
                crate::batch::json_string(&s.egress),
                crate::batch::program_json(&s.verdict),
            );
            out.push_str(if i + 1 == self.switches.len() { "\n" } else { ",\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"kind\": {}, \"at\": {}, \"label\": {}, \"bound\": {}, \"chain\": {}}}",
                crate::batch::json_string(v.kind.ident()),
                crate::batch::json_string(&v.at),
                crate::batch::json_string(&v.label),
                crate::batch::json_string(&v.bound),
                crate::batch::json_string(&v.chain),
            );
            out.push_str(if i + 1 == self.violations.len() { "\n" } else { ",\n" });
        }
        out.push_str("  ],\n");
        let _ = writeln!(
            out,
            "  \"summary\": {{\"switches\": {}, \"accepted\": {}, \"rejected\": {}, \
             \"violations\": {}}}",
            self.switches.len(),
            self.accepted(),
            self.rejected(),
            self.violations.len(),
        );
        out.push_str("}\n");
        out
    }

    /// Human-readable table: one row per switch, the violation list, and
    /// a summary line. Deterministic, like [`TopoReport::to_json`].
    #[must_use]
    pub fn render_table(&self) -> String {
        let name_w =
            self.switches.iter().map(|s| s.verdict.name.len()).max().unwrap_or(6).clamp(6, 40);
        let lab_w = self
            .switches
            .iter()
            .map(|s| s.ingress.len() + s.egress.len() + 4)
            .max()
            .unwrap_or(6)
            .clamp(6, 40);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5}  {:<name_w$}  {:<8}  {:<lab_w$}  diagnostics",
            "#", "switch", "status", "labels"
        );
        for s in &self.switches {
            let diag = match s.verdict.diagnostics.first() {
                None => String::new(),
                Some(d) => {
                    let more = s.verdict.diagnostics.len() - 1;
                    let suffix = if more > 0 { format!(" (+{more} more)") } else { String::new() };
                    format!("{} @ {}:{}{suffix}", d.code, d.line, d.col)
                }
            };
            let status = if s.verdict.accepted { "accept" } else { "REJECT" };
            let labels = format!("{} -> {}", s.ingress, s.egress);
            let _ = writeln!(
                out,
                "{:>5}  {:<name_w$}  {:<8}  {:<lab_w$}  {diag}",
                s.verdict.index, s.verdict.name, status, labels
            );
        }
        for v in &self.violations {
            let _ = writeln!(
                out,
                "{}: {} carries `{}` over `{}`",
                v.kind.ident(),
                v.at,
                v.label,
                v.bound
            );
            let _ = writeln!(out, "  flow: {}", v.chain);
        }
        let _ = writeln!(
            out,
            "{} switch(es): {} accepted, {} rejected; {} violation(s); \
             fixpoint: {} round(s), {} recheck(s)",
            self.switches.len(),
            self.accepted(),
            self.rejected(),
            self.violations.len(),
            self.rounds,
            self.switch_rechecks,
        );
        out
    }
}

/// A cached per-switch verdict, keyed by `(source hash, options
/// fingerprint)`. The full body is kept so a hash collision degrades to a
/// recheck, never a replayed wrong verdict, and transient verdicts
/// (`E-INTERNAL`, `E-TIMEOUT`) are never inserted — the same soundness
/// rules the serve front door follows.
#[derive(Debug, Clone)]
struct CachedVerdict {
    body: String,
    accepted: bool,
    diagnostics: Vec<BatchDiagnostic>,
}

/// The reusable fixpoint driver: a topology plus the session state worth
/// keeping across epochs — one [`SharedSessionCore`] per distinct resolved
/// option set (so re-checks keep their frozen prelude *and* the
/// incremental prefix cache), and the verdict cache that lets an epoch
/// skip every `(source, ingress)` pair it has already decided. Watch mode
/// holds one engine across edits: after a single-switch edit, only that
/// switch and its downstream cone miss the cache.
#[derive(Debug)]
pub struct TopoEngine {
    topo: Topology,
    base: CheckOptions,
    jobs: usize,
    cores: Vec<(u64, SharedSessionCore)>,
    cache: HashMap<(u64, u64), CachedVerdict>,
    epochs: u64,
    cumulative: BatchStats,
}

impl TopoEngine {
    /// Builds an engine over a topology. `jobs == 0` means "one worker
    /// per available core" (resolved here, so reports display the real
    /// worker count).
    #[must_use]
    pub fn new(topo: Topology, base: CheckOptions, jobs: usize) -> Self {
        let jobs = match jobs {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        };
        TopoEngine {
            topo,
            base,
            jobs,
            cores: Vec::new(),
            cache: HashMap::new(),
            epochs: 0,
            cumulative: BatchStats::default(),
        }
    }

    /// The current topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Swaps in a re-resolved topology (a watch-mode reload), keeping the
    /// session cores and the verdict cache — unchanged switches stay
    /// cache hits.
    pub fn set_topology(&mut self, topo: Topology) {
        self.topo = topo;
    }

    /// Epochs run so far.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Counters accumulated across every epoch (the shape `--stats`
    /// reporting wants for a long-lived watch).
    #[must_use]
    pub fn cumulative_stats(&self) -> BatchStats {
        self.cumulative
    }

    /// The effective check options for switch `i` at ingress label
    /// `in_label`: the engine's base options with the ambient `pc` seeded
    /// to `join(in_label, declared pc)` (left untouched at lattice bottom,
    /// so a seed-free check is bit-for-bit a batch check), `pc_floor` on,
    /// and the per-switch `declassify`/`lattice` overrides applied.
    fn effective_options(&self, i: usize, in_label: Label) -> CheckOptions {
        let sw = &self.topo.switches[i];
        let lat = &self.topo.lattice;
        let mut opts = self.base.clone();
        opts.pc_floor = true;
        if let Some(l) = &sw.lattice {
            opts.lattice = Some(l.clone());
        }
        if let Some(d) = sw.declassify {
            opts.allow_declassify = d;
        }
        let seed = match sw.pc {
            Some(floor) => lat.join(in_label, floor),
            None => in_label,
        };
        if !lat.is_bottom(seed) {
            opts.pc = Some(lat.name(seed).to_string());
        }
        opts
    }

    /// Whether switch `i` may declassify (its override, else the base).
    fn declassify_allowed(&self, i: usize) -> bool {
        self.topo.switches[i].declassify.unwrap_or(self.base.allow_declassify)
    }

    /// The shared core for an option fingerprint, built on first use and
    /// kept for the engine's lifetime (first-appearance order, so the
    /// core list is deterministic).
    fn core_for(&mut self, fp: u64, opts: &CheckOptions) -> SharedSessionCore {
        if let Some((_, core)) = self.cores.iter().find(|(g, _)| *g == fp) {
            return core.clone();
        }
        let core = SharedSessionCore::new(opts.clone());
        self.cores.push((fp, core.clone()));
        core
    }

    /// Runs the fixpoint to stabilization and reports.
    ///
    /// Every switch starts dirty at its declared seed; each round checks
    /// the dirty set (grouped by distinct resolved options over the
    /// work-stealing pool, merged by switch index), recomputes egress
    /// labels, and propagates joins along the links in manifest order.
    /// Labels only rise, so the loop ends — in at most
    /// `|switches| · |lattice|` rounds — with every label stable.
    pub fn run_epoch(&mut self) -> TopoReport {
        let n = self.topo.switches.len();
        let lat = self.topo.lattice.clone();
        let mut inl: Vec<Label> = self.topo.switches.iter().map(|s| s.ingress).collect();
        let mut outl: Vec<Label> = inl.clone();
        // For each switch, the link whose propagation last *raised* its
        // ingress label — the provenance edge violation chains walk.
        let mut pred: Vec<Option<usize>> = vec![None; n];
        let mut verdicts: Vec<Option<ProgramReport>> = vec![None; n];
        let mut dirty: Vec<bool> = vec![true; n];
        let mut rounds: u64 = 0;
        let mut rechecks: u64 = 0;
        let mut stats = BatchStats::default();
        // Monotone joins over a finite lattice cannot climb forever; the
        // cap is unreachable and exists purely as a correctness backstop.
        let round_cap = (n as u64) * (lat.len() as u64) + 2;
        while dirty.iter().any(|&d| d) && rounds < round_cap {
            rounds += 1;
            let work: Vec<usize> = (0..n).filter(|&i| dirty[i]).collect();
            for &i in &work {
                dirty[i] = false;
            }
            // Resolve options; split the dirty set into cache hits and
            // misses, the misses grouped by options fingerprint in
            // first-appearance order (the policy-pack grouping contract).
            let mut groups: Vec<(u64, CheckOptions, Vec<usize>)> = Vec::new();
            for &i in &work {
                let opts = self.effective_options(i, inl[i]);
                let fp = options_fingerprint(&opts);
                let src = &self.topo.switches[i].source;
                let key = (p4bid_ast::fnv::hash(src.as_bytes()), fp);
                if let Some(hit) = self.cache.get(&key).filter(|c| c.body == *src) {
                    verdicts[i] = Some(ProgramReport {
                        index: i,
                        name: self.topo.switches[i].name.clone(),
                        accepted: hit.accepted,
                        diagnostics: hit.diagnostics.clone(),
                    });
                    continue;
                }
                match groups.iter_mut().find(|(g, _, _)| *g == fp) {
                    Some((_, _, ixs)) => ixs.push(i),
                    None => groups.push((fp, opts, vec![i])),
                }
            }
            for (fp, opts, ixs) in &groups {
                let core = self.core_for(*fp, opts);
                let inputs: Vec<BatchInput> = ixs
                    .iter()
                    .map(|&i| {
                        let sw = &self.topo.switches[i];
                        BatchInput::new(sw.name.clone(), sw.source.clone())
                    })
                    .collect();
                rechecks += inputs.len() as u64;
                let sub = check_batch_with_core(&inputs, &core, self.jobs);
                stats.merge(&sub.stats);
                for (slot, mut p) in ixs.iter().zip(sub.programs) {
                    p.index = *slot;
                    let transient = p
                        .diagnostics
                        .iter()
                        .any(|d| d.code == "E-INTERNAL" || d.code == "E-TIMEOUT");
                    if !transient {
                        let src = &self.topo.switches[*slot].source;
                        self.cache.insert(
                            (p4bid_ast::fnv::hash(src.as_bytes()), *fp),
                            CachedVerdict {
                                body: src.clone(),
                                accepted: p.accepted,
                                diagnostics: p.diagnostics.clone(),
                            },
                        );
                    }
                    verdicts[*slot] = Some(p);
                }
            }
            // Egress labels: the conservative taint `in(s)` unless the
            // manifest declares one — raises are free, lowering needs the
            // declassify grant (a refusal is reported post-fixpoint).
            for &i in &work {
                outl[i] = match self.topo.switches[i].egress {
                    Some(eg) if lat.leq(inl[i], eg) || self.declassify_allowed(i) => eg,
                    _ => inl[i],
                };
            }
            // Propagate joins downstream, in manifest link order.
            for (li, link) in self.topo.links.iter().enumerate() {
                let joined = lat.join(inl[link.to], outl[link.from]);
                if joined != inl[link.to] {
                    inl[link.to] = joined;
                    pred[link.to] = Some(li);
                    dirty[link.to] = true;
                }
            }
        }
        // Topology-level violations, from the *final* labels only (round
        // structure never leaks into the report): contract breaches in
        // link order, refused downgrades in switch order.
        let mut violations = Vec::new();
        for (li, link) in self.topo.links.iter().enumerate() {
            if !lat.leq(outl[link.from], link.contract) {
                violations.push(TopoViolation {
                    kind: ViolationKind::Contract,
                    at: format!(
                        "{}:{} -> {}:{}",
                        self.topo.switches[link.from].name,
                        link.from_port,
                        self.topo.switches[link.to].name,
                        link.to_port,
                    ),
                    label: lat.name(outl[link.from]).to_string(),
                    bound: lat.name(link.contract).to_string(),
                    chain: self.render_chain(&pred, &outl, li),
                });
            }
        }
        for (i, sw) in self.topo.switches.iter().enumerate() {
            if let Some(eg) = sw.egress {
                if !lat.leq(inl[i], eg) && !self.declassify_allowed(i) {
                    violations.push(TopoViolation {
                        kind: ViolationKind::Downgrade,
                        at: sw.name.clone(),
                        label: lat.name(inl[i]).to_string(),
                        bound: lat.name(eg).to_string(),
                        chain: self.render_downgrade_chain(&pred, &outl, i),
                    });
                }
            }
        }
        let switches = verdicts
            .into_iter()
            .enumerate()
            .map(|(i, v)| SwitchReport {
                verdict: v.expect("every switch is checked in round 1"),
                program: self.topo.switches[i].program.clone(),
                ingress: lat.name(inl[i]).to_string(),
                egress: lat.name(outl[i]).to_string(),
            })
            .collect();
        self.epochs += 1;
        stats.topo_rounds = rounds;
        stats.switch_rechecks = rechecks;
        self.cumulative.merge(&stats);
        TopoReport {
            switches,
            violations,
            rounds,
            switch_rechecks: rechecks,
            jobs: self.jobs,
            stats,
        }
    }

    /// The provenance hops into `start_switch`: the links (oldest first)
    /// that successively raised its ingress label, capped at 8 hops.
    fn provenance(&self, pred: &[Option<usize>], start_switch: usize) -> Vec<usize> {
        let mut hops = Vec::new();
        let mut cur = start_switch;
        while let Some(li) = pred[cur] {
            if hops.len() >= 8 {
                break;
            }
            hops.push(li);
            cur = self.topo.links[li].from;
        }
        hops.reverse();
        hops
    }

    /// Renders a cross-switch lineage chain ending at link `last`: e.g.
    /// `` `edge` (high) --egress p1--> `core` (contract low) ``, with the
    /// provenance hops that raised the upstream label prepended.
    fn render_chain(&self, pred: &[Option<usize>], outl: &[Label], last: usize) -> String {
        let lat = &self.topo.lattice;
        let mut hops = self.provenance(pred, self.topo.links[last].from);
        hops.push(last);
        let mut out = String::new();
        for (k, &li) in hops.iter().enumerate() {
            let link = &self.topo.links[li];
            if k == 0 {
                let _ = write!(
                    out,
                    "`{}` ({})",
                    self.topo.switches[link.from].name,
                    lat.name(outl[link.from]),
                );
            }
            let _ = write!(out, " --egress {}--> ", link.from_port);
            if li == last {
                let _ = write!(
                    out,
                    "`{}` (contract {})",
                    self.topo.switches[link.to].name,
                    lat.name(link.contract),
                );
            } else {
                let _ = write!(
                    out,
                    "`{}` ({})",
                    self.topo.switches[link.to].name,
                    lat.name(outl[link.to]),
                );
            }
        }
        out
    }

    /// Renders the chain for a refused downgrade at switch `i`: the
    /// provenance that raised its ingress, ending in the refused egress
    /// declaration.
    fn render_downgrade_chain(&self, pred: &[Option<usize>], outl: &[Label], i: usize) -> String {
        let lat = &self.topo.lattice;
        let sw = &self.topo.switches[i];
        let mut out = String::new();
        for (k, &li) in self.provenance(pred, i).iter().enumerate() {
            let link = &self.topo.links[li];
            if k == 0 {
                let _ = write!(
                    out,
                    "`{}` ({})",
                    self.topo.switches[link.from].name,
                    lat.name(outl[link.from]),
                );
            }
            let _ = write!(
                out,
                " --egress {}--> `{}` ({})",
                link.from_port,
                self.topo.switches[link.to].name,
                lat.name(outl[link.to]),
            );
        }
        if out.is_empty() {
            let _ = write!(out, "`{}` ({})", sw.name, lat.name(outl[i]));
        }
        let _ = write!(
            out,
            " --declared egress--> `{}` (needs declassify)",
            lat.name(sw.egress.expect("downgrade violations only at declared egresses")),
        );
        out
    }
}

/// One-shot fixpoint check: builds a throwaway [`TopoEngine`] and runs a
/// single epoch. `jobs == 0` means "one worker per available core".
#[must_use]
pub fn check_topology(topo: &Topology, base: &CheckOptions, jobs: usize) -> TopoReport {
    TopoEngine::new(topo.clone(), base.clone(), jobs).run_epoch()
}

/// What a [`run_topo_watch`] loop did before it stopped.
#[derive(Debug, Clone, Copy, Default)]
pub struct TopoWatchSummary {
    /// Fixpoint epochs actually run (the first on startup, then one per
    /// observed change).
    pub epochs: u64,
    /// Whether any epoch had a rejected switch or a topology violation.
    pub any_bad: bool,
}

/// A content fingerprint over the manifest and every program it names —
/// mtimes lie across editors and filesystems, so watch mode re-reads and
/// hashes, exactly like the serve-layer [`crate::serve::DirScanner`].
/// Unreadable files hash as absent, so deletion (and reappearance) is a
/// change.
fn watch_fingerprint(manifest_path: &Path, base_dir: &Path, programs: &[String]) -> u64 {
    let mut acc: u64 = 0;
    let mut mix = |path: &Path| {
        let h = std::fs::read(path).map_or(0, |b| p4bid_ast::fnv::hash(&b));
        acc = acc
            .rotate_left(7)
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(h ^ p4bid_ast::fnv::hash(path.to_string_lossy().as_bytes()));
    };
    mix(manifest_path);
    for p in programs {
        mix(&base_dir.join(p));
    }
    acc
}

/// The `p4bid topo --watch` loop: run one epoch now, then poll the
/// manifest and its program files every `interval` and re-run the
/// fixpoint whenever any content changes. The engine persists across
/// epochs, so after a single-switch edit only that switch and its
/// downstream cone miss the verdict cache — `switch_rechecks` in each
/// epoch's report counts exactly the re-checked cone.
///
/// A reload that fails (manifest syntax error, unreadable program) is
/// logged and the previous topology stays live; SIGTERM/SIGINT (via
/// [`crate::serve::install_drain_handler`]) and `--max-epochs` end the
/// loop.
///
/// # Errors
///
/// Only `out` write failures abort the loop; everything else degrades to
/// log lines.
pub fn run_topo_watch(
    engine: &mut TopoEngine,
    manifest_path: &Path,
    out: &mut dyn std::io::Write,
    log: &mut dyn std::io::Write,
    json: bool,
    max_epochs: Option<u64>,
    interval: std::time::Duration,
) -> std::io::Result<TopoWatchSummary> {
    let mut summary = TopoWatchSummary::default();
    let base_dir = manifest_path.parent().unwrap_or_else(|| Path::new(".")).to_path_buf();
    let mut fp = watch_fingerprint(manifest_path, &base_dir, &engine.topology().program_paths());
    let mut pending = true; // the startup epoch
    loop {
        if pending {
            pending = false;
            let start = std::time::Instant::now();
            let report = engine.run_epoch();
            if json {
                out.write_all(report.to_json().as_bytes())?;
            } else {
                out.write_all(report.render_table().as_bytes())?;
            }
            out.flush()?;
            let _ = writeln!(
                log,
                "epoch {}: {} switch(es), {} round(s), {} recheck(s) in {:.1} ms on {} worker(s)",
                engine.epochs(),
                report.switches.len(),
                report.rounds,
                report.switch_rechecks,
                start.elapsed().as_secs_f64() * 1e3,
                report.jobs,
            );
            summary.epochs += 1;
            summary.any_bad |= !report.all_ok();
        }
        if max_epochs.is_some_and(|m| summary.epochs >= m) || crate::serve::drain_requested() {
            break;
        }
        crate::serve::drainable_sleep(interval);
        if crate::serve::drain_requested() {
            break;
        }
        let now = watch_fingerprint(manifest_path, &base_dir, &engine.topology().program_paths());
        if now != fp {
            fp = now;
            match Topology::load(manifest_path) {
                Ok(topo) => {
                    engine.set_topology(topo);
                    pending = true;
                }
                Err(e) => {
                    // The security stance a live checker must take: a
                    // broken edit never silently disables checking — the
                    // last good topology stays live and the error is
                    // surfaced every time the content changes.
                    let _ = writeln!(log, "cannot reload {}: {e}", manifest_path.display());
                }
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4bid_typeck::CheckOptions;

    /// A pass-through program writing only its `high` field: accepted at
    /// any two-point ambient pc.
    const FWD: &str = "control F(inout <bit<8>, high> x) { apply { x = x + 8w1; } }";
    /// A program writing a `low` field: accepted at ambient bottom,
    /// rejected (implicit flow) once the seed climbs to `high`.
    const LOW_WRITER: &str = "control L(inout <bit<8>, low> y) { apply { y = y + 8w1; } }";

    fn topo_from(manifest: &str, progs: &[(&str, &str)]) -> Topology {
        TopoManifest::parse(manifest)
            .unwrap()
            .resolve_with(|path| {
                progs
                    .iter()
                    .find(|(p, _)| *p == path)
                    .map(|(_, src)| (*src).to_string())
                    .ok_or_else(|| format!("no such program {path}"))
            })
            .unwrap()
    }

    #[test]
    fn manifest_parses_switches_links_and_labels() {
        let m = TopoManifest::parse(
            r#"
            lattice = "low < high"

            [switch a]
            program = "a.p4"
            ingress = "high"
            declassify = true

            [link a:p1 -> b:p1]
            contract = "low"

            [switch b]
            program = "b.p4"
            pc = "low"
            "#,
        )
        .unwrap();
        assert_eq!(m.switches.len(), 2);
        assert_eq!(m.links.len(), 1);
        assert_eq!(m.switches[0].ingress.as_deref(), Some("high"));
        assert_eq!(m.switches[0].declassify, Some(true));
        assert_eq!(m.links[0].from, ("a".to_string(), "p1".to_string()));
        assert_eq!(m.links[0].contract.as_deref(), Some("low"));
    }

    #[test]
    fn manifest_errors_carry_line_numbers() {
        let e = TopoManifest::parse("[switch a\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unterminated"), "{e}");
        let e = TopoManifest::parse("[frob a]\n").unwrap_err();
        assert!(e.message.contains("unknown section"), "{e}");
        let e = TopoManifest::parse("[link a -> b]\n").unwrap_err();
        assert!(e.message.contains("switch:port"), "{e}");
        let e = TopoManifest::parse("[switch a]\nprogram = \"a.p4\"\nfrob = 1\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unknown switch key"), "{e}");
        let e = TopoManifest::parse("pc = \"high\"\n").unwrap_err();
        assert!(e.message.contains("before the first section"), "{e}");
        let e = TopoManifest::parse("[switch a]\n").unwrap_err();
        assert!(e.message.contains("no `program`"), "{e}");
        let e =
            TopoManifest::parse("[switch a]\nprogram = \"a.p4\"\ndeclassify = yes\n").unwrap_err();
        assert!(e.message.contains("true"), "{e}");
    }

    #[test]
    fn assembly_rejects_structural_mistakes() {
        // Dangling port: the link names an undeclared switch.
        let m = TopoManifest::parse("[switch a]\nprogram = \"a.p4\"\n[link a:p1 -> ghost:p1]\n")
            .unwrap();
        let e = m.resolve_with(|_| Ok(FWD.to_string())).unwrap_err();
        assert!(e.message.contains("unknown switch `ghost`"), "{e}");
        // Duplicate switch.
        let m =
            TopoManifest::parse("[switch a]\nprogram = \"a.p4\"\n[switch a]\nprogram = \"b.p4\"\n")
                .unwrap();
        let e = m.resolve_with(|_| Ok(FWD.to_string())).unwrap_err();
        assert!(e.message.contains("duplicate switch"), "{e}");
        // Unknown boundary label.
        let m = TopoManifest::parse("[switch a]\nprogram = \"a.p4\"\ningress = \"mid\"\n").unwrap();
        let e = m.resolve_with(|_| Ok(FWD.to_string())).unwrap_err();
        assert!(e.message.contains("not in the boundary lattice"), "{e}");
        // Double-wired ingress port.
        let m = TopoManifest::parse(
            "[switch a]\nprogram = \"a.p4\"\n[switch b]\nprogram = \"b.p4\"\n\
             [link a:p1 -> b:p1]\n[link a:p2 -> b:p1]\n",
        )
        .unwrap();
        let e = m.resolve_with(|_| Ok(FWD.to_string())).unwrap_err();
        assert!(e.message.contains("already wired"), "{e}");
    }

    #[test]
    fn labels_propagate_downstream_and_reject_low_writers() {
        // a (ingress high) -> b: b's low write becomes an implicit flow
        // under the seeded pc.
        let topo = topo_from(
            "[switch a]\nprogram = \"a.p4\"\ningress = \"high\"\n\
             [switch b]\nprogram = \"b.p4\"\n[link a:p1 -> b:p1]\n",
            &[("a.p4", FWD), ("b.p4", LOW_WRITER)],
        );
        let report = check_topology(&topo, &CheckOptions::ifc(), 2);
        assert!(report.switches[0].verdict.accepted);
        assert!(!report.switches[1].verdict.accepted, "{}", report.render_table());
        assert_eq!(report.switches[1].verdict.diagnostics[0].code, "E-IMPLICIT-FLOW");
        assert_eq!(report.switches[1].ingress, "high");
        assert_eq!(report.rounds, 2);
        // Without the seed, the same program is fine.
        let calm = topo_from(
            "[switch a]\nprogram = \"a.p4\"\n\
             [switch b]\nprogram = \"b.p4\"\n[link a:p1 -> b:p1]\n",
            &[("a.p4", FWD), ("b.p4", LOW_WRITER)],
        );
        assert!(check_topology(&calm, &CheckOptions::ifc(), 2).all_ok());
    }

    #[test]
    fn contract_breaches_carry_cross_switch_chains() {
        let topo = topo_from(
            "[switch a]\nprogram = \"a.p4\"\ningress = \"high\"\n\
             [switch b]\nprogram = \"b.p4\"\n\
             [switch c]\nprogram = \"c.p4\"\n\
             [link a:p1 -> b:p1]\n[link b:p2 -> c:p1]\ncontract = \"low\"\n",
            &[("a.p4", FWD), ("b.p4", FWD), ("c.p4", FWD)],
        );
        let report = check_topology(&topo, &CheckOptions::ifc(), 1);
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!(v.kind, ViolationKind::Contract);
        assert_eq!(v.at, "b:p2 -> c:p1");
        assert_eq!(v.label, "high");
        assert_eq!(v.bound, "low");
        assert_eq!(
            v.chain,
            "`a` (high) --egress p1--> `b` (high) --egress p2--> `c` (contract low)"
        );
        assert!(!report.all_ok());
    }

    #[test]
    fn egress_downgrades_need_the_declassify_grant() {
        let manifest = |declassify: &str| {
            format!(
                "[switch a]\nprogram = \"a.p4\"\ningress = \"high\"\negress = \"low\"\n{declassify}\
                 [switch b]\nprogram = \"b.p4\"\n[link a:p1 -> b:p1]\ncontract = \"low\"\n"
            )
        };
        // Without the grant: refused downgrade, conservative label
        // propagates, and both the downgrade and the contract report.
        let topo = topo_from(&manifest(""), &[("a.p4", FWD), ("b.p4", LOW_WRITER)]);
        let report = check_topology(&topo, &CheckOptions::ifc(), 2);
        assert_eq!(report.switches[0].egress, "high");
        let kinds: Vec<_> = report.violations.iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&ViolationKind::Contract), "{kinds:?}");
        assert!(kinds.contains(&ViolationKind::Downgrade), "{kinds:?}");
        let down = report.violations.iter().find(|v| v.kind == ViolationKind::Downgrade).unwrap();
        assert_eq!(down.chain, "`a` (high) --declared egress--> `low` (needs declassify)");
        // With the grant: the declared egress holds and the wire is clean.
        let topo =
            topo_from(&manifest("declassify = true\n"), &[("a.p4", FWD), ("b.p4", LOW_WRITER)]);
        let report = check_topology(&topo, &CheckOptions::ifc(), 2);
        assert_eq!(report.switches[0].egress, "low");
        assert!(report.all_ok(), "{}", report.render_table());
    }

    #[test]
    fn cycles_stabilize_within_the_round_bound() {
        let topo = topo_from(
            "[switch a]\nprogram = \"a.p4\"\ningress = \"high\"\n\
             [switch b]\nprogram = \"b.p4\"\n\
             [link a:p1 -> b:p1]\n[link b:p2 -> a:p1]\n",
            &[("a.p4", FWD), ("b.p4", FWD)],
        );
        let report = check_topology(&topo, &CheckOptions::ifc(), 2);
        assert!(report.rounds <= 2 * topo.lattice().len() as u64 + 2);
        assert_eq!(report.switches[0].ingress, "high");
        assert_eq!(report.switches[1].ingress, "high");
        assert!(report.all_ok());
    }

    #[test]
    fn pc_floor_rejects_understated_annotations() {
        let annotated = "@pc(low) control L(inout <bit<8>, low> y) { apply { y = y + 8w1; } }";
        let topo = topo_from(
            "[switch a]\nprogram = \"a.p4\"\ningress = \"high\"\n\
             [switch b]\nprogram = \"b.p4\"\n[link a:p1 -> b:p1]\n",
            &[("a.p4", FWD), ("b.p4", annotated)],
        );
        let report = check_topology(&topo, &CheckOptions::ifc(), 1);
        assert!(!report.switches[1].verdict.accepted);
        assert_eq!(report.switches[1].verdict.diagnostics[0].code, "E-PC-FLOOR");
    }

    #[test]
    fn reports_are_byte_identical_across_jobs_and_runs() {
        let topo = topo_from(
            "[switch a]\nprogram = \"a.p4\"\ningress = \"high\"\negress = \"low\"\n\
             [switch b]\nprogram = \"b.p4\"\n\
             [switch c]\nprogram = \"c.p4\"\n\
             [link a:p1 -> b:p1]\ncontract = \"low\"\n[link b:p2 -> c:p1]\n",
            &[("a.p4", FWD), ("b.p4", LOW_WRITER), ("c.p4", LOW_WRITER)],
        );
        let baseline = check_topology(&topo, &CheckOptions::ifc(), 1);
        for jobs in [1, 2, 8] {
            let r = check_topology(&topo, &CheckOptions::ifc(), jobs);
            assert_eq!(r.to_json(), baseline.to_json(), "jobs={jobs}");
            assert_eq!(r.render_table(), baseline.render_table(), "jobs={jobs}");
        }
    }

    #[test]
    fn second_epoch_is_all_cache_hits() {
        let topo = topo_from(
            "[switch a]\nprogram = \"a.p4\"\ningress = \"high\"\n\
             [switch b]\nprogram = \"b.p4\"\n[link a:p1 -> b:p1]\n",
            &[("a.p4", FWD), ("b.p4", FWD)],
        );
        let mut engine = TopoEngine::new(topo, CheckOptions::ifc(), 2);
        let first = engine.run_epoch();
        assert!(first.switch_rechecks > 0);
        let second = engine.run_epoch();
        assert_eq!(second.switch_rechecks, 0, "unchanged topology re-checks nothing");
        assert_eq!(second.rounds, first.rounds);
        // Verdicts and labels replay bit-for-bit; only the recheck
        // counter records that the cache did the work.
        assert_eq!(second.as_batch_report().to_json(), first.as_batch_report().to_json());
        assert_eq!(engine.epochs(), 2);
    }

    #[test]
    fn edited_switch_rechecks_only_its_downstream_cone() {
        let manifest = "[switch a]\nprogram = \"a.p4\"\n\
                        [switch b]\nprogram = \"b.p4\"\ningress = \"high\"\n\
                        [switch c]\nprogram = \"c.p4\"\n\
                        [link b:p1 -> c:p1]\n";
        let progs = [("a.p4", FWD), ("b.p4", FWD), ("c.p4", FWD)];
        let mut engine = TopoEngine::new(topo_from(manifest, &progs), CheckOptions::ifc(), 2);
        engine.run_epoch();
        // Edit only `a` (no downstream links): exactly one recheck.
        let edited = [
            ("a.p4", "control F(inout <bit<8>, high> x) { apply { x = x + 8w2; } }"),
            ("b.p4", FWD),
            ("c.p4", FWD),
        ];
        engine.set_topology(topo_from(manifest, &edited));
        let report = engine.run_epoch();
        assert_eq!(report.switch_rechecks, 1, "only the edited switch re-checks");
    }

    #[test]
    fn single_switch_report_matches_batch_bytes() {
        let topo = topo_from(
            "[switch leak.p4]\nprogram = \"leak.p4\"\n",
            &[(
                "leak.p4",
                "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }",
            )],
        );
        let report = check_topology(&topo, &CheckOptions::ifc(), 2);
        let inputs = vec![BatchInput::new("leak.p4", topo.switches()[0].source.clone())];
        let batch = crate::batch::check_batch(&inputs, &CheckOptions::ifc(), 2);
        assert_eq!(report.as_batch_report().to_json(), batch.to_json());
        assert_eq!(report.as_batch_report().render_table(), batch.render_table());
    }

    #[test]
    fn doc_shapes_render() {
        let topo = topo_from("[switch a]\nprogram = \"a.p4\"\n", &[("a.p4", FWD)]);
        let report = check_topology(&topo, &CheckOptions::ifc(), 1);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"p4bid-topo-report/1\""), "{json}");
        assert!(json.contains("\"rounds\": 1"), "{json}");
        assert!(json.contains("\"violations\""), "{json}");
        let table = report.render_table();
        assert!(table.contains("1 switch(es): 1 accepted, 0 rejected"), "{table}");
        assert!(table.contains("fixpoint: 1 round(s), 1 recheck(s)"), "{table}");
    }
}
