//! Parallel soundness fuzzing: generate random programs, check them, and
//! run the accepted ones through the non-interference harness — across
//! cores, with reports byte-identical to the serial run.
//!
//! Seeds are partitioned over the same work-stealing pool `p4bid batch`
//! uses ([`StealQueue`]): each worker owns a
//! deque of seeds, generates its programs locally (generation is a pure
//! function of the seed), and records one [`SeedOutcome`] per seed.
//! Checker state comes from one frozen [`SharedSessionCore`] — the prelude
//! is lexed/parsed/checked once per run, not once per worker — and each
//! worker checks through a private overlay session cloned off it
//! ([`run_fuzz_cold`] keeps the per-worker cold-session path alive for the
//! determinism comparison). Results are merged **by seed**, never by
//! completion order, so the final [`FuzzReport`] — including which
//! violation is reported when several seeds fail — is identical for every
//! worker count and for both session paths. The determinism regression
//! suite pins this down end to end.

use crate::batch::{BatchStats, StealQueue};
use p4bid_ni::{check_non_interference, random_program, GenConfig, NiConfig, NiOutcome};
use p4bid_typeck::{CheckOptions, CheckerSession, SharedSessionCore};

/// What happened on one seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedOutcome {
    /// The checker accepted the program and the harness found no leak.
    Accepted,
    /// The checker rejected the program (expected for unsafe generations).
    Rejected,
    /// The checker accepted the program but the harness found a leak — a
    /// soundness violation. Carries the generated source and the rendered
    /// witness.
    Violation {
        /// The generated program text.
        source: String,
        /// The rendered [`LeakWitness`](p4bid_ni::LeakWitness).
        witness: String,
    },
    /// Checking this seed panicked inside an isolated worker (a checker
    /// bug or an injected `P4BID_FAULTS` fault). Not a soundness
    /// violation: the run continues, and the seed is counted separately.
    Panicked,
}

/// The merged outcome of a fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Seeds fuzzed (`0..total`). When a violation is found the run may
    /// have stopped early; `accepted + rejected` then covers only the
    /// seeds below the violating one.
    pub total: u64,
    /// Programs the IFC checker accepted (all non-interfering unless
    /// `violation` is set).
    pub accepted: u64,
    /// Programs the IFC checker rejected.
    pub rejected: u64,
    /// Seeds whose check panicked inside an isolated worker (0 outside
    /// chaos runs; also surfaced as the `panics` stats counter).
    pub panicked: u64,
    /// The lowest-seed soundness violation, if any.
    pub violation: Option<(u64, SeedOutcome)>,
    /// Aggregated interner/pool tier statistics across the workers
    /// (reporting only — excluded from the deterministic report contract;
    /// `p4bid fuzz --stats-json` prints them on stderr).
    pub stats: BatchStats,
}

impl FuzzReport {
    /// Whether the soundness theorem survived the run.
    #[must_use]
    pub fn sound(&self) -> bool {
        self.violation.is_none()
    }
}

/// Fuzzes one seed: generate, check against the (reused, per-worker)
/// session, and on accept run the NI harness. Session verdicts are
/// identical to one-shot `check_source` (the session test suite asserts
/// this), so reports stay comparable across entry points.
#[must_use]
pub fn fuzz_seed(
    session: &mut CheckerSession,
    seed: u64,
    cfg: &GenConfig,
    ni_cfg: &NiConfig,
) -> SeedOutcome {
    let gp = random_program(seed, cfg);
    // Generation is pure in the seed, so keying injected faults on the
    // generated source keeps chaos runs worker-count independent, exactly
    // like `batch`.
    let deadline = session.options().deadline_from_now();
    session.set_deadline(deadline);
    crate::faults::check_faults(p4bid_ast::fnv::hash(gp.source.as_bytes()));
    match session.check(&gp.source) {
        Ok(typed) => {
            let out = check_non_interference(&typed, &gp.control_plane, "Fuzz", ni_cfg);
            if let NiOutcome::Leak(w) = &out {
                SeedOutcome::Violation { source: gp.source, witness: w.to_string() }
            } else {
                SeedOutcome::Accepted
            }
        }
        Err(_) => SeedOutcome::Rejected,
    }
}

/// Fuzzes seeds `0..n` on `jobs` workers (`0` = one per core, `1` =
/// serial with early exit on the first violation), all sharing one frozen
/// session core.
///
/// The report is deterministic in `(n, cfg, ni_cfg)` and independent of
/// `jobs`: accepted/rejected totals count only seeds *below* the first
/// violating seed, exactly as a serial early-exiting loop would see them.
#[must_use]
pub fn run_fuzz(n: u64, cfg: &GenConfig, ni_cfg: &NiConfig, jobs: usize) -> FuzzReport {
    let core = SharedSessionCore::new(CheckOptions::ifc());
    run_fuzz_with(n, cfg, ni_cfg, jobs, || core.session())
}

/// [`run_fuzz`] on the pre-shared-core path: every worker builds its own
/// cold session. Kept so the determinism suite can assert the shared-core
/// reports are byte-identical to the historical per-worker-session output.
#[must_use]
pub fn run_fuzz_cold(n: u64, cfg: &GenConfig, ni_cfg: &NiConfig, jobs: usize) -> FuzzReport {
    run_fuzz_with(n, cfg, ni_cfg, jobs, || CheckerSession::new(CheckOptions::ifc()))
}

/// [`fuzz_seed`] inside the crash containment boundary: a panicking seed
/// becomes [`SeedOutcome::Panicked`] and the worker continues on a fresh
/// session (mirroring `batch`'s per-program isolation).
fn fuzz_seed_isolated(
    session: &mut CheckerSession,
    make_session: impl Fn() -> CheckerSession,
    seed: u64,
    cfg: &GenConfig,
    ni_cfg: &NiConfig,
) -> SeedOutcome {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        fuzz_seed(session, seed, cfg, ni_cfg)
    })) {
        Ok(outcome) => outcome,
        Err(_) => {
            *session = make_session();
            SeedOutcome::Panicked
        }
    }
}

/// The shared driver: fans seeds over `jobs` workers, each owning one
/// session produced by `make_session`.
fn run_fuzz_with(
    n: u64,
    cfg: &GenConfig,
    ni_cfg: &NiConfig,
    jobs: usize,
    make_session: impl Fn() -> CheckerSession + Sync,
) -> FuzzReport {
    let jobs = match jobs {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        j => j,
    };
    let jobs = jobs.min(usize::try_from(n).unwrap_or(usize::MAX)).max(1);

    let mut stats = BatchStats::default();
    let outcomes: Vec<(u64, SeedOutcome)> = if jobs == 1 {
        let mut session = make_session();
        let mut out = Vec::with_capacity(usize::try_from(n).unwrap_or(0));
        for seed in 0..n {
            let o = fuzz_seed_isolated(&mut session, &make_session, seed, cfg, ni_cfg);
            let stop = matches!(o, SeedOutcome::Violation { .. });
            out.push((seed, o));
            if stop {
                break;
            }
        }
        stats.absorb(&session.stats());
        out
    } else {
        let queue = StealQueue::new(usize::try_from(n).unwrap_or(usize::MAX), jobs);
        // Early-exit signal: the lowest violating seed found so far.
        // Workers skip seeds above it — the merge only ever reports
        // outcomes below the minimum violation, so skipping is invisible
        // to the deterministic report while sparing the (expensive) NI
        // runs for seeds a serial run would never have reached.
        let min_violation = std::sync::atomic::AtomicU64::new(u64::MAX);
        let mut collected = Vec::with_capacity(usize::try_from(n).unwrap_or(0));
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs)
                .map(|w| {
                    let queue = &queue;
                    let min_violation = &min_violation;
                    let make_session = &make_session;
                    scope.spawn(move || {
                        use std::sync::atomic::Ordering::Relaxed;
                        // `Rc`-backed overlay tables are thread-local by
                        // design: one session per worker, like `batch`;
                        // only the frozen segment inside is shared.
                        let mut session = make_session();
                        let mut out = Vec::new();
                        while let Some(ix) = queue.next_task(w) {
                            let seed = ix as u64;
                            if seed > min_violation.load(Relaxed) {
                                continue;
                            }
                            let outcome =
                                fuzz_seed_isolated(&mut session, make_session, seed, cfg, ni_cfg);
                            if matches!(outcome, SeedOutcome::Violation { .. }) {
                                min_violation.fetch_min(seed, Relaxed);
                            }
                            out.push((seed, outcome));
                        }
                        (out, session.stats())
                    })
                })
                .collect();
            for h in handles {
                let (out, session_stats) = h.join().expect("fuzz worker panicked");
                collected.extend(out);
                stats.absorb(&session_stats);
            }
        });
        collected
    };

    let mut report = merge_by_seed(n, outcomes);
    report.stats = stats;
    report.stats.panics = report.panicked;
    report
}

/// Merges per-seed outcomes into the canonical report: the lowest-seed
/// violation wins, and accept/reject totals cover exactly the seeds below
/// it (matching a serial early-exiting run).
fn merge_by_seed(total: u64, mut outcomes: Vec<(u64, SeedOutcome)>) -> FuzzReport {
    outcomes.sort_by_key(|&(seed, _)| seed);
    let mut report = FuzzReport {
        total,
        accepted: 0,
        rejected: 0,
        panicked: 0,
        violation: None,
        stats: BatchStats::default(),
    };
    for (seed, outcome) in outcomes {
        match outcome {
            SeedOutcome::Accepted => report.accepted += 1,
            SeedOutcome::Rejected => report.rejected += 1,
            SeedOutcome::Panicked => report.panicked += 1,
            v @ SeedOutcome::Violation { .. } => {
                report.violation = Some((seed, v));
                break;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_ni() -> NiConfig {
        NiConfig::default().with_runs(5)
    }

    #[test]
    fn serial_and_parallel_reports_agree() {
        let cfg = GenConfig::default();
        let ni = quick_ni();
        let serial = run_fuzz(20, &cfg, &ni, 1);
        for jobs in [2, 4] {
            let par = run_fuzz(20, &cfg, &ni, jobs);
            assert_eq!(serial.accepted, par.accepted, "jobs={jobs}");
            assert_eq!(serial.rejected, par.rejected, "jobs={jobs}");
            assert_eq!(serial.violation.is_some(), par.violation.is_some(), "jobs={jobs}");
        }
    }

    #[test]
    fn fuzzing_is_deterministic_per_seed() {
        let cfg = GenConfig::default();
        let ni = quick_ni();
        let mut s1 = CheckerSession::new(CheckOptions::ifc());
        let mut s2 = CheckerSession::new(CheckOptions::ifc());
        for seed in 0..10 {
            assert_eq!(fuzz_seed(&mut s1, seed, &cfg, &ni), fuzz_seed(&mut s2, seed, &cfg, &ni));
        }
    }

    #[test]
    fn shared_core_and_cold_fuzz_reports_agree() {
        let cfg = GenConfig::default();
        let ni = quick_ni();
        for jobs in [1, 2] {
            let cold = run_fuzz_cold(15, &cfg, &ni, jobs);
            let shared = run_fuzz(15, &cfg, &ni, jobs);
            assert_eq!(cold.accepted, shared.accepted, "jobs={jobs}");
            assert_eq!(cold.rejected, shared.rejected, "jobs={jobs}");
            assert_eq!(cold.violation, shared.violation, "jobs={jobs}");
        }
    }

    #[test]
    fn shared_core_sessions_fuzz_identically_to_cold_ones() {
        let cfg = GenConfig::default();
        let ni = quick_ni();
        let core = SharedSessionCore::new(CheckOptions::ifc());
        let mut shared = core.session();
        let mut cold = CheckerSession::new(CheckOptions::ifc());
        for seed in 0..10 {
            assert_eq!(
                fuzz_seed(&mut shared, seed, &cfg, &ni),
                fuzz_seed(&mut cold, seed, &cfg, &ni),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn lowest_violating_seed_wins_the_merge() {
        let boom = |s: &str| SeedOutcome::Violation { source: s.into(), witness: String::new() };
        let report = merge_by_seed(
            5,
            vec![
                (3, boom("late")),
                (0, SeedOutcome::Accepted),
                (1, boom("early")),
                (2, SeedOutcome::Rejected),
                (4, SeedOutcome::Accepted),
            ],
        );
        let (seed, SeedOutcome::Violation { source, .. }) = report.violation.clone().unwrap()
        else {
            panic!()
        };
        assert_eq!(seed, 1);
        assert_eq!(source, "early");
        // Counts cover only seeds below the violation, like a serial run.
        assert_eq!((report.accepted, report.rejected), (1, 0));
        assert!(!report.sound());
    }

    #[test]
    fn clean_merge_counts_everything() {
        let report = merge_by_seed(
            3,
            vec![
                (2, SeedOutcome::Rejected),
                (0, SeedOutcome::Accepted),
                (1, SeedOutcome::Accepted),
            ],
        );
        assert!(report.sound());
        assert_eq!((report.accepted, report.rejected), (2, 1));
    }

    #[test]
    fn panicked_seeds_are_counted_but_do_not_stop_the_run() {
        let report = merge_by_seed(
            4,
            vec![
                (0, SeedOutcome::Accepted),
                (1, SeedOutcome::Panicked),
                (2, SeedOutcome::Rejected),
                (3, SeedOutcome::Accepted),
            ],
        );
        assert!(report.sound(), "a panic is an isolation event, not a soundness violation");
        assert_eq!((report.accepted, report.rejected, report.panicked), (2, 1, 1));
    }
}
