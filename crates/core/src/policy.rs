//! Policy packs: declarative per-program-group check options.
//!
//! A fleet rarely checks every program under one policy — telemetry
//! pipelines run a diamond lattice, externally-sourced programs must not
//! declassify, a staging directory is checked at a raised ambient `pc`.
//! A policy pack (`p4bid.policy` by convention) maps name globs to option
//! overrides so `batch`/`serve`/`watch` resolve per-program
//! [`CheckOptions`] instead of one global set:
//!
//! ```text
//! # Telemetry programs run on the diamond lattice and may declassify.
//! [telemetry/*]
//! lattice = "diamond"
//! declassify = true
//!
//! # Quarantined submissions are checked in a raised context.
//! [quarantine-?.p4]
//! lattice = "low < high"
//! pc = "high"
//!
//! [*]
//! # Everything else: the run's base options, explicitly.
//! ```
//!
//! The format is the crate's usual flat, line-based style: `[glob]`
//! section headers, `key = value` lines, `#` comments. Recognized keys:
//!
//! * `lattice` — `"two-point"`, `"diamond"`, or an order expression of
//!   `lo < hi` pairs separated by `;` (element names appear in first-use
//!   order), e.g. `"bot < alice; bot < bob; alice < top; bob < top"`;
//! * `pc` — ambient context label name (resolved against the rule's
//!   active lattice at check time);
//! * `declassify` — `true`/`false`, whether `declassify(e)` is permitted;
//! * `lineage` — `true`/`false`, whether flow-lineage recording is on.
//!
//! Rules are tried **in file order; the first matching glob wins** (no
//! cross-section merging), so specific globs belong above catch-alls.
//! Globs match the program's report name — the file name for `batch` and
//! `watch`, the request id for `serve` — with `*` (any run, including
//! empty) and `?` (exactly one character).
//!
//! Loading is fail-fast: any unknown key, bad value, or malformed lattice
//! is a [`PolicyError`] carrying the 1-based line number, and the CLI
//! refuses to start. A policy that silently fell back to defaults would
//! *weaken* checking, the one thing a policy file must never do.

use p4bid_lattice::Lattice;
use p4bid_typeck::CheckOptions;
use std::fmt;

/// One glob → option-overrides rule of a policy pack.
#[derive(Debug, Clone)]
pub struct PolicyRule {
    /// The name glob (`*` any run, `?` one character).
    pub glob: String,
    /// Lattice override, if the rule sets one.
    pub lattice: Option<Lattice>,
    /// Ambient `pc` label override, if the rule sets one.
    pub pc: Option<String>,
    /// `declassify` permission override, if the rule sets one.
    pub declassify: Option<bool>,
    /// Lineage-recording override, if the rule sets one.
    pub lineage: Option<bool>,
}

impl PolicyRule {
    fn new(glob: impl Into<String>) -> Self {
        PolicyRule { glob: glob.into(), lattice: None, pc: None, declassify: None, lineage: None }
    }

    /// Applies this rule's overrides on top of `base`.
    fn apply(&self, base: &CheckOptions) -> CheckOptions {
        let mut opts = base.clone();
        if let Some(l) = &self.lattice {
            opts.lattice = Some(l.clone());
        }
        if let Some(pc) = &self.pc {
            opts.pc = Some(pc.clone());
        }
        if let Some(d) = self.declassify {
            opts.allow_declassify = d;
        }
        if let Some(r) = self.lineage {
            opts.record_lineage = r;
        }
        opts
    }
}

/// A parsed policy pack: the ordered rule list.
#[derive(Debug, Clone, Default)]
pub struct PolicyPack {
    rules: Vec<PolicyRule>,
}

/// A policy-file load error, pointing at the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyError {
    /// 1-based line in the policy file (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl PolicyError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        PolicyError { line, message: message.into() }
    }
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "policy error: {}", self.message)
        } else {
            write!(f, "policy error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for PolicyError {}

impl PolicyPack {
    /// Parses a policy pack from its text form.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line (fail-fast: a policy file is a
    /// security boundary and never degrades to defaults silently).
    pub fn parse(text: &str) -> Result<Self, PolicyError> {
        let mut rules: Vec<PolicyRule> = Vec::new();
        for (ix, raw) in text.lines().enumerate() {
            let lineno = ix + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let Some(glob) = header.strip_suffix(']') else {
                    return Err(PolicyError::at(
                        lineno,
                        format!("unterminated section header `{line}`"),
                    ));
                };
                let glob = glob.trim();
                if glob.is_empty() {
                    return Err(PolicyError::at(lineno, "empty glob in section header"));
                }
                rules.push(PolicyRule::new(glob));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(PolicyError::at(
                    lineno,
                    format!("expected `key = value`, found `{line}`"),
                ));
            };
            let Some(rule) = rules.last_mut() else {
                return Err(PolicyError::at(lineno, "`key = value` before any `[glob]` section"));
            };
            let key = key.trim();
            let value = unquote(value.trim());
            match key {
                "lattice" => rule.lattice = Some(parse_lattice(value, lineno)?),
                "pc" => rule.pc = Some(value.to_string()),
                "declassify" => rule.declassify = Some(parse_bool(value, lineno)?),
                "lineage" => rule.lineage = Some(parse_bool(value, lineno)?),
                other => {
                    return Err(PolicyError::at(
                        lineno,
                        format!(
                            "unknown key `{other}` (expected `lattice`, `pc`, `declassify`, \
                             or `lineage`)"
                        ),
                    ));
                }
            }
        }
        Ok(PolicyPack { rules })
    }

    /// Loads and parses a policy file.
    ///
    /// # Errors
    ///
    /// I/O failures and parse errors both surface as [`PolicyError`].
    pub fn load(path: &std::path::Path) -> Result<Self, PolicyError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| PolicyError::at(0, format!("cannot read {}: {e}", path.display())))?;
        Self::parse(&text)
    }

    /// The ordered rule list.
    #[must_use]
    pub fn rules(&self) -> &[PolicyRule] {
        &self.rules
    }

    /// Whether the pack has no rules (every name resolves to `base`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The first rule whose glob matches `name`, if any.
    #[must_use]
    pub fn matching(&self, name: &str) -> Option<&PolicyRule> {
        self.rules.iter().find(|r| glob_match(&r.glob, name))
    }

    /// Resolves the effective [`CheckOptions`] for a program name: the
    /// first matching rule's overrides applied on top of `base`, or `base`
    /// unchanged when no rule matches.
    #[must_use]
    pub fn resolve(&self, name: &str, base: &CheckOptions) -> CheckOptions {
        match self.matching(name) {
            Some(rule) => rule.apply(base),
            None => base.clone(),
        }
    }
}

pub(crate) fn unquote(s: &str) -> &str {
    s.strip_prefix('"').and_then(|s| s.strip_suffix('"')).unwrap_or(s)
}

pub(crate) fn parse_bool(s: &str, line: usize) -> Result<bool, PolicyError> {
    match s {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(PolicyError::at(line, format!("expected `true` or `false`, found `{other}`"))),
    }
}

/// Parses a lattice value: a named shorthand or a `lo < hi; …` order
/// expression (element names in first-appearance order). Shared with the
/// topology manifest parser, which speaks the same flat format.
pub(crate) fn parse_lattice(s: &str, line: usize) -> Result<Lattice, PolicyError> {
    match s {
        "two-point" => return Ok(Lattice::two_point()),
        "diamond" => return Ok(Lattice::diamond()),
        _ => {}
    }
    let mut names: Vec<String> = Vec::new();
    let mut order: Vec<(String, String)> = Vec::new();
    for pair in s.split(';') {
        let Some((lo, hi)) = pair.split_once('<') else {
            return Err(PolicyError::at(
                line,
                format!("expected a `lo < hi` pair, found `{}`", pair.trim()),
            ));
        };
        let (lo, hi) = (lo.trim().to_string(), hi.trim().to_string());
        if lo.is_empty() || hi.is_empty() {
            return Err(PolicyError::at(line, "empty label name in lattice order"));
        }
        for n in [&lo, &hi] {
            if !names.contains(n) {
                names.push(n.clone());
            }
        }
        order.push((lo, hi));
    }
    Lattice::from_order(&names, &order)
        .map_err(|e| PolicyError::at(line, format!("invalid lattice: {e}")))
}

/// Matches `name` against a glob pattern: `*` any run of characters
/// (including empty), `?` exactly one, everything else literal. Classic
/// backtracking over the last `*` — patterns are short, so worst-case
/// behavior is irrelevant here.
#[must_use]
pub fn glob_match(pattern: &str, name: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let n: Vec<char> = name.chars().collect();
    let (mut pi, mut ni) = (0, 0);
    let mut star: Option<(usize, usize)> = None;
    while ni < n.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some((pi, ni));
            pi += 1;
        } else if let Some((sp, sn)) = star {
            // Backtrack: let the last `*` swallow one more character.
            pi = sp + 1;
            ni = sn + 1;
            star = Some((sp, sn + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4bid_typeck::Mode;

    const PACK: &str = r#"
# telemetry gets the diamond and may declassify
[telemetry/*]
lattice = "diamond"
declassify = true

[quarantine-?.p4]
lattice = "low < high"
pc = "high"

[noexplain/*]
lineage = false

[*]
"#;

    #[test]
    fn globs_match_like_shell_patterns() {
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "anything.p4"));
        assert!(glob_match("telemetry/*", "telemetry/a.p4"));
        assert!(!glob_match("telemetry/*", "other/a.p4"));
        assert!(glob_match("quarantine-?.p4", "quarantine-7.p4"));
        assert!(!glob_match("quarantine-?.p4", "quarantine-77.p4"));
        assert!(glob_match("a*b*c", "a-XX-b-YY-c"));
        assert!(!glob_match("a*b*c", "a-XX-c"));
        assert!(!glob_match("abc", "abcd"));
    }

    #[test]
    fn first_matching_rule_wins_in_file_order() {
        let pack = PolicyPack::parse(PACK).unwrap();
        let base = CheckOptions::ifc();
        let tele = pack.resolve("telemetry/x.p4", &base);
        assert!(tele.allow_declassify);
        assert_eq!(tele.lattice.as_ref().unwrap().len(), 4);
        let quar = pack.resolve("quarantine-3.p4", &base);
        assert_eq!(quar.pc.as_deref(), Some("high"));
        assert!(!quar.allow_declassify);
        let noex = pack.resolve("noexplain/y.p4", &base);
        assert!(!noex.record_lineage);
        // The `[*]` catch-all sets nothing: base options unchanged.
        let plain = pack.resolve("plain.p4", &base);
        assert_eq!(plain.mode, Mode::Ifc);
        assert!(plain.lattice.is_none());
        assert!(plain.record_lineage);
    }

    #[test]
    fn custom_order_lattices_resolve() {
        let pack = PolicyPack::parse(
            "[d/*]\nlattice = \"bot < alice; bot < bob; alice < top; bob < top\"\n",
        )
        .unwrap();
        let opts = pack.resolve("d/p.p4", &CheckOptions::ifc());
        let lat = opts.lattice.unwrap();
        assert_eq!(lat.len(), 4);
        let alice = lat.label("alice").unwrap();
        let bob = lat.label("bob").unwrap();
        assert!(!lat.leq(alice, bob) && !lat.leq(bob, alice));
    }

    #[test]
    fn malformed_packs_fail_fast_with_line_numbers() {
        let e = PolicyPack::parse("[a\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = PolicyPack::parse("pc = \"high\"\n").unwrap_err();
        assert!(e.message.contains("before any"), "{e}");
        let e = PolicyPack::parse("[a]\nfrobnicate = true\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown key"), "{e}");
        let e = PolicyPack::parse("[a]\ndeclassify = yes\n").unwrap_err();
        assert!(e.message.contains("true"), "{e}");
        let e = PolicyPack::parse("[a]\nlattice = \"low > high\"\n").unwrap_err();
        assert!(e.message.contains("lo < hi"), "{e}");
        let e = PolicyPack::parse("[a]\nlattice = \"low < high; high < low\"\n").unwrap_err();
        assert!(e.message.contains("invalid lattice"), "{e}");
    }

    #[test]
    fn empty_pack_resolves_to_base_everywhere() {
        let pack = PolicyPack::parse("# only comments\n").unwrap();
        assert!(pack.is_empty());
        let base = CheckOptions::ifc().with_pc("high");
        let opts = pack.resolve("anything.p4", &base);
        assert_eq!(opts.pc.as_deref(), Some("high"));
    }
}
