//! Parallel batch checking: fan a corpus of programs out across cores,
//! collect per-program diagnostics deterministically, and render reports.
//!
//! The driver builds one [`SharedSessionCore`] — the prelude lexed, parsed,
//! checked, and its interner/pool frozen exactly once — and hands every
//! worker of a small dependency-free work-stealing thread pool a cheap
//! overlay [`CheckerSession`] cloned off it: every worker owns a deque of
//! program indices, pops from its own front, and steals from the back of
//! its neighbours when it runs dry. Results are collected per worker and
//! merged **by input index**, never by completion order, so the rendered
//! reports are byte-identical run over run, across `--jobs` settings, and
//! across the shared-core vs cold-session paths — the contract the
//! determinism regression suite pins down ([`check_batch_cold`] keeps the
//! per-worker cold-session path alive exactly for that comparison).
//!
//! # Examples
//!
//! ```
//! use p4bid::batch::{check_batch, BatchInput};
//! use p4bid::CheckOptions;
//!
//! let inputs = vec![
//!     BatchInput::new("ok", "control C(inout bit<8> x) { apply { x = x + 8w1; } }"),
//!     BatchInput::new(
//!         "leak",
//!         "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }",
//!     ),
//! ];
//! let report = check_batch(&inputs, &CheckOptions::ifc(), 2);
//! assert_eq!(report.accepted(), 1);
//! assert_eq!(report.rejected(), 1);
//! assert_eq!(report.programs[1].diagnostics[0].code, "E-EXPLICIT-FLOW");
//! ```

use crate::policy::PolicyPack;
use crate::synth::synth_program;
use p4bid_ast::span::span_line_col;
use p4bid_typeck::{
    CheckOptions, CheckerSession, Diagnostic, FlowNode, SessionStats, SharedSessionCore,
};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

/// One program in a batch: a display name plus its source text.
#[derive(Debug, Clone)]
pub struct BatchInput {
    /// Display name (file name, or `synth-NNNN` for generated corpora).
    pub name: String,
    /// P4 source text.
    pub source: String,
}

impl BatchInput {
    /// Builds an input.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        BatchInput { name: name.into(), source: source.into() }
    }
}

/// One endpoint of a reported lineage step: rendered expression, label
/// name, and its 1-based position in the program source (`0:0` for spans
/// outside it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageNode {
    /// Rendered expression or l-value.
    pub expr: String,
    /// Label name against the active lattice.
    pub label: String,
    /// 1-based line, or 0 for spans outside the source.
    pub line: u32,
    /// 1-based column, or 0 for spans outside the source.
    pub col: u32,
}

impl LineageNode {
    fn from_flow(n: &FlowNode, source: &str) -> Self {
        let (line, col) = span_line_col(source, n.span).map_or((0, 0), |lc| (lc.line, lc.col));
        LineageNode { expr: n.what.clone(), label: n.label.clone(), line, col }
    }
}

/// One step of a diagnostic's flow-lineage path, flattened for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageStep {
    /// Flow-operation ident (`assign`, `guard-pc`, `table`, …).
    pub op: String,
    /// Where the data came from.
    pub source: LineageNode,
    /// Where the data went.
    pub sink: LineageNode,
}

/// A diagnostic flattened for reporting: stable code, 1-based position in
/// the program's own source (`0:0` when the span does not fall inside it),
/// the human message, and the flow-lineage path explaining the violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchDiagnostic {
    /// Stable diagnostic ident, e.g. `E-EXPLICIT-FLOW`.
    pub code: String,
    /// 1-based line, or 0 for spans outside the source (prelude/dummy).
    pub line: u32,
    /// 1-based column, or 0 for spans outside the source.
    pub col: u32,
    /// Human-readable message.
    pub message: String,
    /// The source → sink flow path, oldest step first with the violating
    /// step last; empty for diagnostics with no flow to explain or when
    /// lineage recording is off.
    pub lineage: Vec<LineageStep>,
}

impl BatchDiagnostic {
    fn from_diagnostic(d: &Diagnostic, source: &str) -> Self {
        let (line, col) = span_line_col(source, d.span).map_or((0, 0), |lc| (lc.line, lc.col));
        let lineage = d
            .lineage
            .iter()
            .map(|e| LineageStep {
                op: e.op.ident().to_string(),
                source: LineageNode::from_flow(&e.source, source),
                sink: LineageNode::from_flow(&e.sink, source),
            })
            .collect();
        BatchDiagnostic {
            code: d.code.ident().to_string(),
            line,
            col,
            message: d.message.clone(),
            lineage,
        }
    }
}

/// The verdict for one program of the batch.
#[derive(Debug, Clone)]
pub struct ProgramReport {
    /// Position in the input list (reports are always sorted by this).
    pub index: usize,
    /// Input name.
    pub name: String,
    /// Whether the checker accepted the program.
    pub accepted: bool,
    /// Diagnostics for rejected programs (empty on accept).
    pub diagnostics: Vec<BatchDiagnostic>,
}

/// A whole-batch report, ordered by input index.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-program verdicts, sorted by input index.
    pub programs: Vec<ProgramReport>,
    /// Worker count the batch ran with (reporting only; excluded from the
    /// JSON form so reports are identical across `--jobs` settings).
    pub jobs: usize,
    /// Aggregated interner/pool tier statistics across the workers
    /// (reporting only — overlay sizes depend on work-stealing order, so
    /// these are excluded from the JSON form and from `render_table`;
    /// `p4bid batch --stats` prints them via
    /// [`render_stats`](BatchReport::render_stats)).
    pub stats: BatchStats,
}

/// Aggregated type-universe statistics for one batch run: the shared
/// frozen-segment sizes, the summed per-worker overlay sizes, the
/// frozen-segment hit counters, and the failure-domain counters (the
/// `p4bid-stats/3` additions).
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchStats {
    /// Per-worker session counters, merged (frozen sizes are shared and
    /// taken once; overlay sizes and hit counters are summed).
    pub sessions: SessionStats,
    /// Number of worker sessions the counters were merged from.
    pub workers: usize,
    /// Programs whose check panicked inside an isolated worker
    /// (`E-INTERNAL` verdicts).
    pub panics: u64,
    /// Programs whose check hit the `--check-timeout-ms` wall-clock
    /// budget (`E-TIMEOUT` verdicts).
    pub timeouts: u64,
    /// Programs rejected by the `--max-source-bytes` cap (`E-OVERSIZED`
    /// verdicts).
    pub oversized: u64,
    /// Requests checked in a final drain epoch after SIGTERM/SIGINT
    /// (serve/watch only; always 0 for plain batches).
    pub drained: u64,
    /// Topology fixpoint rounds until label stabilization (`p4bid topo`
    /// only; always 0 for plain batches — the `p4bid-stats/5` additions).
    pub topo_rounds: u64,
    /// Real (non-cache-hit) per-switch program checks across the
    /// topology fixpoint (`p4bid topo` only; always 0 for plain batches).
    pub switch_rechecks: u64,
}

impl BatchStats {
    pub(crate) fn absorb(&mut self, s: &SessionStats) {
        self.sessions.absorb(s);
        self.workers += 1;
    }

    /// Accumulates a whole batch's counters into this one — the shape a
    /// long-lived serve loop wants, tracking cumulative tier/hit-rate
    /// statistics across epochs.
    pub fn merge(&mut self, other: &BatchStats) {
        self.sessions.absorb(&other.sessions);
        self.workers += other.workers;
        self.panics += other.panics;
        self.timeouts += other.timeouts;
        self.oversized += other.oversized;
        self.drained += other.drained;
        self.topo_rounds += other.topo_rounds;
        self.switch_rechecks += other.switch_rechecks;
    }

    /// Derives the failure-domain counters from a finished report by
    /// scanning its diagnostic codes — counting the *merged* report (not
    /// per-worker tallies) keeps the counters independent of
    /// work-stealing order.
    pub(crate) fn count_failure_domains(&mut self, programs: &[ProgramReport]) {
        for p in programs {
            for d in &p.diagnostics {
                match d.code.as_str() {
                    "E-INTERNAL" => self.panics += 1,
                    "E-TIMEOUT" => self.timeouts += 1,
                    "E-OVERSIZED" => self.oversized += 1,
                    _ => {}
                }
            }
        }
    }

    /// Human-readable tier/hit-rate statistics block (`--stats`). Overlay
    /// sizes and hit counts depend on which worker checked which program,
    /// so this block is intentionally not part of the deterministic
    /// table/JSON report renderings.
    #[must_use]
    pub fn render_text(&self) -> String {
        let s = &self.sessions;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "type universe: frozen {} symbols / {} types; overlay +{} symbols / +{} types \
             across {} worker session(s)",
            s.frozen_syms, s.frozen_types, s.overlay_syms, s.overlay_types, self.workers,
        );
        let _ = writeln!(
            out,
            "frozen-segment hit rate: symbols {:.1}% ({}/{}), types {:.1}% ({}/{}), \
             push-cache hits {}",
            s.sym_hit_rate() * 100.0,
            s.sym_frozen_hits,
            s.sym_intern_calls,
            s.ty_hit_rate() * 100.0,
            s.ty_frozen_hits,
            s.ty_intern_calls,
            s.push_cache_hits,
        );
        let _ = writeln!(
            out,
            "incremental: prefix hits {} / misses {} (items saved {}), snapshots inserted {}, \
             lattice-state hits {} / published {}",
            s.prefix_hits,
            s.prefix_misses,
            s.prefix_items_saved,
            s.prefix_inserts,
            s.lattice_state_hits,
            s.lattice_states_published,
        );
        let _ = writeln!(
            out,
            "failure domains: panics {}, timeouts {}, oversized {}, drained {}",
            self.panics, self.timeouts, self.oversized, self.drained,
        );
        let _ = writeln!(
            out,
            "topology: fixpoint rounds {}, switch rechecks {}",
            self.topo_rounds, self.switch_rechecks,
        );
        out
    }

    /// Machine-readable statistics (`--stats-json`): one JSON document per
    /// line, schema `p4bid-stats/5`, emitted on **stderr** so the
    /// deterministic report schemas on stdout are never polluted —
    /// everything in here (overlay sizes, hit counters) legitimately
    /// varies with work-stealing order. `epochs` is present only for
    /// `serve`/`watch`, where the counters are cumulative across epochs;
    /// `ops` (the serve front-door and verdict-cache counters — the `/2`
    /// additions) likewise. The `/3` revision added the failure-domain
    /// counters (`panics`, `timeouts`, `oversized`, `drained`); `/4` added
    /// the incremental-checking counters (`prefix_hits`, `prefix_misses`,
    /// `prefix_inserts`, `prefix_items_saved`, `lattice_state_hits`,
    /// `lattice_states_published`, and `refreezes` in the `ops` block);
    /// `/5` added the topology fixpoint counters (`topo_rounds`,
    /// `switch_rechecks`).
    #[must_use]
    pub fn render_json(
        &self,
        command: &str,
        epochs: Option<u64>,
        ops: Option<&crate::serve::ServeOps>,
    ) -> String {
        let s = &self.sessions;
        let mut out = String::from("{");
        let _ = write!(out, "\"schema\": \"p4bid-stats/5\"");
        let _ = write!(out, ", \"command\": {}", json_string(command));
        if let Some(epochs) = epochs {
            let _ = write!(out, ", \"epochs\": {epochs}");
        }
        let _ = write!(out, ", \"workers\": {}", self.workers);
        let _ = write!(out, ", \"frozen_syms\": {}", s.frozen_syms);
        let _ = write!(out, ", \"overlay_syms\": {}", s.overlay_syms);
        let _ = write!(out, ", \"frozen_types\": {}", s.frozen_types);
        let _ = write!(out, ", \"overlay_types\": {}", s.overlay_types);
        let _ = write!(out, ", \"sym_frozen_hits\": {}", s.sym_frozen_hits);
        let _ = write!(out, ", \"sym_intern_calls\": {}", s.sym_intern_calls);
        let _ = write!(out, ", \"sym_hit_rate\": {:.4}", s.sym_hit_rate());
        let _ = write!(out, ", \"ty_frozen_hits\": {}", s.ty_frozen_hits);
        let _ = write!(out, ", \"ty_intern_calls\": {}", s.ty_intern_calls);
        let _ = write!(out, ", \"ty_hit_rate\": {:.4}", s.ty_hit_rate());
        let _ = write!(out, ", \"push_cache_hits\": {}", s.push_cache_hits);
        let _ = write!(out, ", \"prefix_hits\": {}", s.prefix_hits);
        let _ = write!(out, ", \"prefix_misses\": {}", s.prefix_misses);
        let _ = write!(out, ", \"prefix_inserts\": {}", s.prefix_inserts);
        let _ = write!(out, ", \"prefix_items_saved\": {}", s.prefix_items_saved);
        let _ = write!(out, ", \"lattice_state_hits\": {}", s.lattice_state_hits);
        let _ = write!(out, ", \"lattice_states_published\": {}", s.lattice_states_published);
        let _ = write!(out, ", \"panics\": {}", self.panics);
        let _ = write!(out, ", \"timeouts\": {}", self.timeouts);
        let _ = write!(out, ", \"oversized\": {}", self.oversized);
        let _ = write!(out, ", \"drained\": {}", self.drained);
        let _ = write!(out, ", \"topo_rounds\": {}", self.topo_rounds);
        let _ = write!(out, ", \"switch_rechecks\": {}", self.switch_rechecks);
        if let Some(o) = ops {
            let _ = write!(out, ", \"connections\": {}", o.connections);
            let _ = write!(out, ", \"conn_errors\": {}", o.conn_errors);
            let _ = write!(out, ", \"shed\": {}", o.shed);
            let _ = write!(out, ", \"peak_pending\": {}", o.peak_pending);
            let _ = write!(out, ", \"cache_hits\": {}", o.cache_hits);
            let _ = write!(out, ", \"cache_misses\": {}", o.cache_misses);
            let _ = write!(out, ", \"cache_size\": {}", o.cache_size);
            let _ = write!(out, ", \"refreezes\": {}", o.refreezes);
        }
        out.push_str("}\n");
        out
    }
}

impl BatchReport {
    /// Number of accepted programs.
    #[must_use]
    pub fn accepted(&self) -> usize {
        self.programs.iter().filter(|p| p.accepted).count()
    }

    /// Number of rejected programs.
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.programs.len() - self.accepted()
    }

    /// Whether every program was accepted.
    #[must_use]
    pub fn all_accepted(&self) -> bool {
        self.rejected() == 0
    }

    /// Machine-readable JSON form (schema `p4bid-batch-report/2`; the `/2`
    /// revision added the per-diagnostic `lineage` array).
    ///
    /// Deliberately timing-free: two runs over the same inputs produce
    /// byte-identical JSON regardless of scheduling or worker count.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"p4bid-batch-report/2\",\n");
        out.push_str("  \"programs\": [\n");
        for (i, p) in self.programs.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&program_json(p));
            out.push_str(if i + 1 == self.programs.len() { "\n" } else { ",\n" });
        }
        out.push_str("  ],\n");
        let _ = writeln!(out, "  \"summary\": {}", self.summary_json());
        out.push_str("}\n");
        out
    }

    /// The `{"total": …, "accepted": …, "rejected": …}` summary object
    /// shared by the batch and serve report schemas.
    pub(crate) fn summary_json(&self) -> String {
        format!(
            "{{\"total\": {}, \"accepted\": {}, \"rejected\": {}}}",
            self.programs.len(),
            self.accepted(),
            self.rejected(),
        )
    }

    /// Human-readable table, one row per program plus a summary line.
    #[must_use]
    pub fn render_table(&self) -> String {
        let name_w = self.programs.iter().map(|p| p.name.len()).max().unwrap_or(4).clamp(4, 40);
        let mut out = String::new();
        let _ = writeln!(out, "{:>5}  {:<name_w$}  {:<8}  diagnostics", "#", "name", "status");
        for p in &self.programs {
            let diag = match p.diagnostics.first() {
                None => String::new(),
                Some(d) => {
                    let more = p.diagnostics.len() - 1;
                    let suffix = if more > 0 { format!(" (+{more} more)") } else { String::new() };
                    format!("{} @ {}:{}{suffix}", d.code, d.line, d.col)
                }
            };
            let status = if p.accepted { "accept" } else { "REJECT" };
            let _ = writeln!(out, "{:>5}  {:<name_w$}  {:<8}  {diag}", p.index, p.name, status);
        }
        let _ = writeln!(
            out,
            "{} program(s): {} accepted, {} rejected",
            self.programs.len(),
            self.accepted(),
            self.rejected(),
        );
        out
    }

    /// Human-readable tier/hit-rate statistics block (`p4bid batch
    /// --stats`); see [`BatchStats::render_text`].
    #[must_use]
    pub fn render_stats(&self) -> String {
        self.stats.render_text()
    }
}

/// Renders one program's verdict as a JSON object — the exact bytes the
/// `p4bid-batch-report/2` schema embeds, reused verbatim by the
/// `p4bid-serve-report/2` epoch documents so the two schemas can never
/// drift apart per program.
pub(crate) fn program_json(p: &ProgramReport) -> String {
    let mut out = String::new();
    let status = if p.accepted { "accept" } else { "reject" };
    let _ = write!(
        out,
        "{{\"index\": {}, \"name\": {}, \"status\": \"{status}\", \"diagnostics\": [",
        p.index,
        json_string(&p.name),
    );
    for (j, d) in p.diagnostics.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"code\": {}, \"line\": {}, \"col\": {}, \"message\": {}, \"lineage\": [",
            if j == 0 { "" } else { ", " },
            json_string(&d.code),
            d.line,
            d.col,
            json_string(&d.message),
        );
        for (k, step) in d.lineage.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"op\": {}, \"source\": {}, \"sink\": {}}}",
                if k == 0 { "" } else { ", " },
                json_string(&step.op),
                lineage_node_json(&step.source),
                lineage_node_json(&step.sink),
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Renders one lineage endpoint for the report schemas.
fn lineage_node_json(n: &LineageNode) -> String {
    format!(
        "{{\"expr\": {}, \"label\": {}, \"line\": {}, \"col\": {}}}",
        json_string(&n.expr),
        json_string(&n.label),
        n.line,
        n.col,
    )
}

/// Escapes `s` as a JSON string literal (shared by the batch, serve, and
/// stats renderers — every schema in this crate is hand-rendered so the
/// byte-identical-report contract never depends on a serializer's
/// formatting choices).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A work-stealing queue of task indices: one deque per worker, owners pop
/// from the front, thieves steal from the back.
///
/// Tasks never spawn tasks here, so termination is simple: a worker exits
/// once every deque (its own and all victims') is empty.
#[derive(Debug)]
pub struct StealQueue {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl StealQueue {
    /// Distributes `tasks` task indices round-robin over `workers` deques.
    #[must_use]
    pub fn new(tasks: usize, workers: usize) -> Self {
        let workers = workers.max(1);
        let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for t in 0..tasks {
            deques[t % workers].push_back(t);
        }
        StealQueue { deques: deques.into_iter().map(Mutex::new).collect() }
    }

    /// Number of worker deques.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// The next task for `worker`: its own front, else a steal from the
    /// back of the first non-empty victim. `None` means global exhaustion.
    #[must_use]
    pub fn next_task(&self, worker: usize) -> Option<usize> {
        if let Some(t) = self.deques[worker].lock().expect("queue lock").pop_front() {
            return Some(t);
        }
        let n = self.deques.len();
        for off in 1..n {
            let victim = (worker + off) % n;
            if let Some(t) = self.deques[victim].lock().expect("queue lock").pop_back() {
                return Some(t);
            }
        }
        None
    }
}

/// Checks every input against one freshly frozen [`SharedSessionCore`]
/// and returns the ordered report.
///
/// `jobs == 0` means "one worker per available core". The prelude is
/// lexed, parsed, and checked exactly once (when the core is frozen); each
/// worker owns a private overlay [`CheckerSession`] cloned off the core.
/// Verdicts are merged by input index so the report (and its JSON/table
/// renderings) is deterministic.
#[must_use]
pub fn check_batch(inputs: &[BatchInput], opts: &CheckOptions, jobs: usize) -> BatchReport {
    let core = SharedSessionCore::new(opts.clone());
    check_batch_with_core(inputs, &core, jobs)
}

/// [`check_batch`] against an existing shared core — the entry point for
/// long-lived services that keep one core across many batches.
#[must_use]
pub fn check_batch_with_core(
    inputs: &[BatchInput],
    core: &SharedSessionCore,
    jobs: usize,
) -> BatchReport {
    run_batch(inputs, jobs, || core.session())
}

/// [`check_batch_with_core`] that also harvests every worker session's
/// overlay tables and newly built per-lattice prelude states, for callers
/// that periodically [`SharedSessionCore::refreeze`] the core (serve's
/// `--refresh-every` hook). Harvests are returned in worker order; the
/// report is byte-identical to [`check_batch_with_core`]'s.
#[must_use]
pub fn check_batch_harvesting(
    inputs: &[BatchInput],
    core: &SharedSessionCore,
    jobs: usize,
) -> (BatchReport, Vec<p4bid_typeck::SessionHarvest>) {
    run_batch_inner(inputs, jobs, &|| core.session(), true)
}

/// [`check_batch`] on the pre-shared-core path: every worker builds its
/// own cold session (prelude re-checked per worker). Kept so the
/// determinism suite can assert the shared-core reports are byte-identical
/// to the historical per-worker-session output.
#[must_use]
pub fn check_batch_cold(inputs: &[BatchInput], opts: &CheckOptions, jobs: usize) -> BatchReport {
    run_batch(inputs, jobs, || CheckerSession::new(opts.clone()))
}

/// Checks a batch under a policy pack: each input's effective options are
/// resolved from its *name*, inputs are grouped by distinct resolved
/// option sets (in first-appearance order, so grouping is deterministic),
/// and each group runs over its own shared core. Verdicts are re-merged by
/// global input index, keeping the byte-identical-report contract intact —
/// a pack that resolves every name to the base options produces exactly
/// [`check_batch`]'s output.
#[must_use]
pub fn check_batch_with_policy(
    inputs: &[BatchInput],
    base: &CheckOptions,
    pack: &PolicyPack,
    jobs: usize,
) -> BatchReport {
    if pack.is_empty() {
        return check_batch(inputs, base, jobs);
    }
    let mut groups: Vec<(u64, CheckOptions, Vec<usize>)> = Vec::new();
    for (i, inp) in inputs.iter().enumerate() {
        let opts = pack.resolve(&inp.name, base);
        let fp = crate::serve::options_fingerprint(&opts);
        match groups.iter_mut().find(|(g, _, _)| *g == fp) {
            Some((_, _, ixs)) => ixs.push(i),
            None => groups.push((fp, opts, vec![i])),
        }
    }
    let mut programs: Vec<ProgramReport> = Vec::with_capacity(inputs.len());
    let mut stats = BatchStats::default();
    let mut report_jobs = 1;
    for (_, opts, ixs) in &groups {
        let subset: Vec<BatchInput> = ixs.iter().map(|&i| inputs[i].clone()).collect();
        let sub = check_batch(&subset, opts, jobs);
        report_jobs = report_jobs.max(sub.jobs);
        stats.merge(&sub.stats);
        for mut p in sub.programs {
            p.index = ixs[p.index];
            programs.push(p);
        }
    }
    programs.sort_by_key(|p| p.index);
    BatchReport { programs, jobs: report_jobs, stats }
}

/// The shared driver: fans `inputs` over `jobs` workers, each owning one
/// session produced by `make_session`.
fn run_batch(
    inputs: &[BatchInput],
    jobs: usize,
    make_session: impl Fn() -> CheckerSession + Sync,
) -> BatchReport {
    run_batch_inner(inputs, jobs, &make_session, false).0
}

/// [`run_batch`] with optional end-of-batch session harvesting: when
/// `harvest` is set, every worker consumes its session into a
/// [`p4bid_typeck::SessionHarvest`] after draining its queue (sessions a
/// panic tore down mid-batch were already replaced, so their fresh
/// substitute is harvested instead — an empty but valid overlay).
fn run_batch_inner(
    inputs: &[BatchInput],
    jobs: usize,
    make_session: &(impl Fn() -> CheckerSession + Sync),
    harvest: bool,
) -> (BatchReport, Vec<p4bid_typeck::SessionHarvest>) {
    let jobs = match jobs {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    };
    let jobs = jobs.min(inputs.len()).max(1);

    let mut stats = BatchStats::default();
    let mut harvests: Vec<p4bid_typeck::SessionHarvest> = Vec::new();
    let mut programs = if jobs == 1 {
        let mut session = make_session();
        let out: Vec<ProgramReport> = inputs
            .iter()
            .enumerate()
            .map(|(i, inp)| check_one_isolated(&mut session, make_session, i, inp))
            .collect();
        stats.absorb(&session.stats());
        if harvest {
            harvests.extend(session.into_harvest());
        }
        out
    } else {
        let queue = StealQueue::new(inputs.len(), jobs);
        let mut collected: Vec<ProgramReport> = Vec::with_capacity(inputs.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs)
                .map(|w| {
                    let queue = &queue;
                    scope.spawn(move || {
                        // Sessions hold `Rc`-backed overlay tables, so each
                        // worker owns one; only the frozen segment inside
                        // is shared across threads.
                        let mut session = make_session();
                        let mut out = Vec::new();
                        while let Some(i) = queue.next_task(w) {
                            out.push(check_one_isolated(&mut session, make_session, i, &inputs[i]));
                        }
                        let session_stats = session.stats();
                        let harvested = if harvest { session.into_harvest() } else { None };
                        (out, session_stats, harvested)
                    })
                })
                .collect();
            for h in handles {
                let (out, session_stats, harvested) = h.join().expect("batch worker panicked");
                collected.extend(out);
                stats.absorb(&session_stats);
                harvests.extend(harvested);
            }
        });
        collected
    };
    // Deterministic contract: order by input index, not completion.
    programs.sort_by_key(|p| p.index);
    stats.count_failure_domains(&programs);
    (BatchReport { programs, jobs, stats }, harvests)
}

/// [`check_one`] inside a crash containment boundary: a panicking check —
/// a checker bug, a pathological program, or an injected `P4BID_FAULTS`
/// fault — becomes a deterministic `E-INTERNAL` verdict for that program
/// alone, and the worker keeps draining its queue on a freshly rebuilt
/// session (the panic may have torn the old one mid-mutation).
pub(crate) fn check_one_isolated(
    session: &mut CheckerSession,
    make_session: impl Fn() -> CheckerSession,
    index: usize,
    input: &BatchInput,
) -> ProgramReport {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        check_one(session, index, input)
    })) {
        Ok(report) => report,
        Err(_) => {
            *session = make_session();
            internal_error_report(index, input)
        }
    }
}

/// The deterministic verdict a caught worker panic turns into. The
/// message deliberately carries no panic payload or location — payloads
/// can differ across runs, and the byte-identical-report contract covers
/// faulting programs too.
pub(crate) fn internal_error_report(index: usize, input: &BatchInput) -> ProgramReport {
    ProgramReport {
        index,
        name: input.name.clone(),
        accepted: false,
        diagnostics: vec![BatchDiagnostic {
            code: "E-INTERNAL".to_string(),
            line: 0,
            col: 0,
            message: "internal error: the checker panicked on this program".to_string(),
            lineage: Vec::new(),
        }],
    }
}

fn check_one(session: &mut CheckerSession, index: usize, input: &BatchInput) -> ProgramReport {
    // Arm the wall-clock deadline before the fault hook so injected
    // slowness (`P4BID_FAULTS=…:slow=…`) deterministically exercises the
    // `--check-timeout-ms` path; key injected faults on the program's
    // content hash so the same program faults identically regardless of
    // which worker picks it up.
    let deadline = session.options().deadline_from_now();
    session.set_deadline(deadline);
    // The content hash exists only to key injected faults; skip it (it
    // is O(source)) on the vastly common no-faults path.
    if crate::faults::plan().is_some() {
        crate::faults::check_faults(p4bid_ast::fnv::hash(input.source.as_bytes()));
    }
    match session.check(&input.source) {
        Ok(_) => ProgramReport {
            index,
            name: input.name.clone(),
            accepted: true,
            diagnostics: Vec::new(),
        },
        Err(diags) => ProgramReport {
            index,
            name: input.name.clone(),
            accepted: false,
            diagnostics: diags
                .iter()
                .map(|d| BatchDiagnostic::from_diagnostic(d, &input.source))
                .collect(),
        },
    }
}

/// A deterministic synthetic corpus of `n` well-typed annotated programs
/// (sizes cycling over 1–8 table/action pairs), for scale testing and the
/// `batch` bench. Every program is accepted by the IFC checker.
#[must_use]
pub fn synthetic_corpus(n: usize) -> Vec<BatchInput> {
    (0..n)
        .map(|i| BatchInput::new(format!("synth-{i:04}"), synth_program(i % 8 + 1, true)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_inputs() -> Vec<BatchInput> {
        let mut inputs = synthetic_corpus(6);
        inputs.insert(
            2,
            BatchInput::new(
                "leak",
                "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }",
            ),
        );
        inputs.insert(5, BatchInput::new("syntax-error", "control {"));
        inputs
    }

    #[test]
    fn verdicts_are_input_ordered_and_correct() {
        let report = check_batch(&mixed_inputs(), &CheckOptions::ifc(), 4);
        assert_eq!(report.programs.len(), 8);
        for (i, p) in report.programs.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        assert_eq!(report.rejected(), 2);
        assert!(!report.programs[2].accepted);
        assert_eq!(report.programs[2].diagnostics[0].code, "E-EXPLICIT-FLOW");
        assert!(!report.programs[5].accepted);
        assert_eq!(report.programs[5].diagnostics[0].code, "E-MALFORMED");
    }

    #[test]
    fn reports_identical_across_job_counts() {
        let inputs = mixed_inputs();
        let opts = CheckOptions::ifc();
        let one = check_batch(&inputs, &opts, 1);
        for jobs in [2, 3, 8] {
            let par = check_batch(&inputs, &opts, jobs);
            assert_eq!(one.to_json(), par.to_json(), "jobs={jobs}");
            assert_eq!(one.render_table(), par.render_table(), "jobs={jobs}");
        }
    }

    #[test]
    fn json_is_schema_tagged_and_escaped() {
        let inputs = vec![BatchInput::new("we\"ird\nname", "control {")];
        let report = check_batch(&inputs, &CheckOptions::ifc(), 1);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"p4bid-batch-report/2\""), "{json}");
        assert!(json.contains("we\\\"ird\\nname"), "{json}");
        assert!(json.contains("\"summary\": {\"total\": 1, \"accepted\": 0, \"rejected\": 1}"));
    }

    #[test]
    fn diagnostics_carry_positions_in_their_own_source() {
        let src =
            "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) {\n    apply { l = h; }\n}\n";
        let report = check_batch(&[BatchInput::new("leak", src)], &CheckOptions::ifc(), 1);
        let d = &report.programs[0].diagnostics[0];
        assert_eq!((d.line, d.col), (2, 13), "{d:?}");
    }

    #[test]
    fn empty_batch_is_all_accepted() {
        let report = check_batch(&[], &CheckOptions::ifc(), 0);
        assert!(report.all_accepted());
        assert_eq!(report.programs.len(), 0);
        assert!(report.to_json().contains("\"total\": 0"));
    }

    #[test]
    fn steal_queue_drains_exactly_once() {
        let q = StealQueue::new(100, 3);
        let mut seen = [false; 100];
        // Worker 1 never pops its own; everything still drains via steals.
        while let Some(t) = q.next_task(1) {
            assert!(!seen[t], "task {t} handed out twice");
            seen[t] = true;
        }
        assert!(seen.iter().all(|&s| s), "all tasks drained");
        for w in 0..q.workers() {
            assert_eq!(q.next_task(w), None);
        }
    }

    #[test]
    fn synthetic_corpus_is_accepted_at_scale() {
        let inputs = synthetic_corpus(64);
        let report = check_batch(&inputs, &CheckOptions::ifc(), 0);
        assert!(report.all_accepted(), "{}", report.render_table());
    }

    #[test]
    fn shared_core_and_cold_paths_render_identically() {
        let inputs = mixed_inputs();
        let opts = CheckOptions::ifc();
        let cold = check_batch_cold(&inputs, &opts, 1);
        for jobs in [1, 2, 8] {
            let shared = check_batch(&inputs, &opts, jobs);
            assert_eq!(cold.to_json(), shared.to_json(), "jobs={jobs}");
            assert_eq!(cold.render_table(), shared.render_table(), "jobs={jobs}");
        }
    }

    #[test]
    fn one_core_serves_many_batches() {
        let core = SharedSessionCore::new(CheckOptions::ifc());
        let inputs = mixed_inputs();
        let first = check_batch_with_core(&inputs, &core, 2);
        let second = check_batch_with_core(&inputs, &core, 4);
        assert_eq!(first.to_json(), second.to_json());
    }

    #[test]
    fn lineage_rides_the_json_report() {
        let inputs = vec![BatchInput::new(
            "leak",
            "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) { apply { l = h; } }",
        )];
        let report = check_batch(&inputs, &CheckOptions::ifc(), 1);
        let d = &report.programs[0].diagnostics[0];
        assert_eq!(d.lineage.len(), 1, "{d:?}");
        assert_eq!(d.lineage[0].op, "assign");
        assert_eq!(d.lineage[0].source.expr, "h");
        assert_eq!(d.lineage[0].source.label, "high");
        assert_eq!(d.lineage[0].sink.expr, "l");
        assert_eq!(d.lineage[0].sink.label, "low");
        let json = report.to_json();
        assert!(json.contains("\"lineage\": [{\"op\": \"assign\""), "{json}");
        // Lineage off: the array is present but empty.
        let off = check_batch(&inputs, &CheckOptions::ifc().with_lineage(false), 1);
        assert!(off.to_json().contains("\"lineage\": []"), "{}", off.to_json());
    }

    #[test]
    fn policy_batches_resolve_per_program_options() {
        let pack = PolicyPack::parse(
            "[declass-*]\ndeclassify = true\n\n[strict-*]\nlattice = \"lo < mid; mid < hi\"\n",
        )
        .unwrap();
        let declassifying = "control C(inout <bit<8>, low> l, inout <bit<8>, high> h) \
             { apply { l = declassify(h); } }";
        let inputs = vec![
            BatchInput::new("declass-a.p4", declassifying),
            BatchInput::new("plain-b.p4", declassifying),
            BatchInput::new(
                "strict-c.p4",
                "control C(inout <bit<8>, lo> l, inout <bit<8>, hi> h) { apply { l = h; } }",
            ),
        ];
        let report = check_batch_with_policy(&inputs, &CheckOptions::ifc(), &pack, 2);
        // Same source, different verdicts: the policy granted declassify
        // only to the first name.
        assert!(report.programs[0].accepted, "{}", report.render_table());
        assert!(!report.programs[1].accepted);
        assert_eq!(report.programs[1].diagnostics[0].code, "E-DECLASSIFY-FORBIDDEN");
        // The third program only typechecks under the rule's lattice.
        assert!(!report.programs[2].accepted);
        assert_eq!(report.programs[2].diagnostics[0].code, "E-EXPLICIT-FLOW");
        assert!(report.programs[2].diagnostics[0].message.contains("`hi`"));
        // Deterministic across job counts, like plain batches.
        let one = check_batch_with_policy(&inputs, &CheckOptions::ifc(), &pack, 1);
        let eight = check_batch_with_policy(&inputs, &CheckOptions::ifc(), &pack, 8);
        assert_eq!(one.to_json(), report.to_json());
        assert_eq!(one.to_json(), eight.to_json());
        // An empty pack is exactly the plain path.
        let empty = PolicyPack::parse("").unwrap();
        let plain = check_batch(&inputs, &CheckOptions::ifc(), 1);
        let via_policy = check_batch_with_policy(&inputs, &CheckOptions::ifc(), &empty, 1);
        assert_eq!(plain.to_json(), via_policy.to_json());
    }

    #[test]
    fn oversized_inputs_become_verdicts_and_counters() {
        let mut inputs = synthetic_corpus(3);
        inputs.push(BatchInput::new("big", "control C(inout bit<8> x) { apply { } }"));
        let opts = CheckOptions::ifc().with_max_source_bytes(30);
        let report = check_batch(&inputs, &opts, 2);
        // The synthetic programs are well over 30 bytes too — every input
        // is rejected as oversized, none is parsed.
        assert_eq!(report.rejected(), 4, "{}", report.render_table());
        for p in &report.programs {
            assert_eq!(p.diagnostics[0].code, "E-OVERSIZED", "{p:?}");
        }
        assert_eq!(report.stats.oversized, 4);
        assert_eq!(report.stats.panics, 0);
        let json = report.stats.render_json("batch", None, None);
        assert!(json.contains("\"oversized\": 4"), "{json}");
        assert!(json.contains("\"schema\": \"p4bid-stats/5\""), "{json}");
        assert!(json.contains("\"prefix_hits\": "), "{json}");
        let text = report.stats.render_text();
        assert!(text.contains("failure domains: panics 0, timeouts 0, oversized 4"), "{text}");
    }

    #[test]
    fn internal_error_verdicts_are_deterministic_and_counted() {
        // The verdict a caught worker panic turns into (real injection is
        // exercised end-to-end by the chaos suite via P4BID_FAULTS).
        let input = BatchInput::new("boom", "control C(inout bit<8> x) { apply { } }");
        let report = internal_error_report(7, &input);
        assert_eq!(report.index, 7);
        assert!(!report.accepted);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, "E-INTERNAL");
        assert_eq!(
            report.diagnostics[0].message,
            "internal error: the checker panicked on this program",
        );
        assert_eq!((report.diagnostics[0].line, report.diagnostics[0].col), (0, 0));
        let mut stats = BatchStats::default();
        stats.count_failure_domains(&[report]);
        assert_eq!((stats.panics, stats.timeouts, stats.oversized), (1, 0, 0));
    }

    #[test]
    fn stats_report_frozen_segment_reuse() {
        let report = check_batch(&synthetic_corpus(8), &CheckOptions::ifc(), 2);
        let s = report.stats.sessions;
        assert!(s.frozen_syms > 0 && s.frozen_types > 0, "{s:?}");
        assert!(s.sym_frozen_hits > 0, "prelude names must be served frozen: {s:?}");
        let rendered = report.render_stats();
        assert!(rendered.contains("frozen-segment hit rate"), "{rendered}");
        assert!(rendered.contains("type universe"), "{rendered}");
        // The cold path reports empty frozen segments.
        let cold = check_batch_cold(&synthetic_corpus(2), &CheckOptions::ifc(), 1);
        assert_eq!(cold.stats.sessions.frozen_syms, 0);
        assert_eq!(cold.stats.sessions.sym_frozen_hits, 0);
    }
}
