//! The case-study corpus: the five programs of Table 1 plus the NetChain
//! variant of §5.1, each in a *secure* (accepted) and an *insecure*
//! (rejected) annotated form.
//!
//! | Name       | Paper section        | Property          | Seeded bug |
//! |------------|----------------------|-------------------|------------|
//! | `Topology` | §2, Listings 1–2     | confidentiality   | local TTL stored in the public `ipv4.ttl` |
//! | `D2R`      | §5.1, Listing 3      | confidentiality   | packet priority derived from the secret failure count |
//! | `NetChain` | §5.1 (end)           | confidentiality   | chain role (secret topology) selects reply behaviour |
//! | `Cache`    | §5.2, Listing 4      | timing/conf.      | public `hit` flag keyed on the secret query |
//! | `App`      | §5.3, Listing 5      | integrity         | untrusted `appID` sets the trusted priority |
//! | `Lattice`  | §5.4, Listings 6–7   | isolation         | Alice writes Bob's field and keys on telemetry |
//!
//! The unannotated baseline form used for the "p4c" column of Table 1 is
//! derived mechanically by [`crate::strip::strip_annotations`].

use p4bid_interp::{ControlPlane, KeyPattern, TableEntry, Value};
use p4bid_typeck::DiagCode;

/// One corpus entry.
#[derive(Debug, Clone, Copy)]
pub struct CaseStudy {
    /// Short name (the Table 1 row label).
    pub name: &'static str,
    /// Where in the paper the case study comes from.
    pub section: &'static str,
    /// One-line description of the property and the seeded bug.
    pub description: &'static str,
    /// Security-annotated source that the IFC checker accepts.
    pub secure: &'static str,
    /// Security-annotated source with the paper's seeded bug; rejected.
    pub insecure: &'static str,
    /// The control block to execute for demos/NI runs.
    pub control: &'static str,
    /// Diagnostic classes the insecure variant must trigger.
    pub expected_codes: &'static [DiagCode],
    /// Whether the seeded leak is input-dependent, i.e. whether the
    /// paired-execution harness can exhibit a concrete witness. (The
    /// Topology leak flows from control-plane data, which is identical
    /// across the two runs of Definition 4.2, so it is caught by the type
    /// system but not observable by input scrambling.)
    pub leak_observable: bool,
}

/// All case studies, in Table 1 order (plus NetChain).
#[must_use]
pub fn case_studies() -> Vec<CaseStudy> {
    vec![D2R, APP, LATTICE, TOPOLOGY, CACHE, NETCHAIN]
}

/// Looks up a case study by (case-insensitive) name.
#[must_use]
pub fn case_study(name: &str) -> Option<CaseStudy> {
    case_studies().into_iter().find(|c| c.name.eq_ignore_ascii_case(name))
}

// =====================================================================
// Topology — §2, Listings 1 and 2
// =====================================================================

/// Virtual-to-physical address translation at the edge of a private
/// network. Local topology data (`local_hdr`) is `high`; the public
/// `ipv4`/`eth` headers are `low`. The buggy version stores the *local*
/// TTL into the public header, leaking topology information even after
/// `local_hdr` is stripped at the network edge.
pub const TOPOLOGY: CaseStudy = CaseStudy {
    name: "Topology",
    section: "§2, Listings 1–2",
    description: "virtual→physical translation; local ttl leaks into the public ipv4 header",
    secure: TOPOLOGY_SECURE,
    insecure: TOPOLOGY_INSECURE,
    control: "Obfuscate_Ingress",
    expected_codes: &[DiagCode::ExplicitFlow],
    leak_observable: false,
};

const TOPOLOGY_SECURE: &str = r#"
// Translating virtual to physical addresses (Listing 1, fixed as in
// Listing 2): all data specific to the local network is high.
header local_hdr_t {
    <bit<32>, high> phys_dstAddr;
    <bit<8>,  high> phys_ttl;
    <bit<48>, high> next_hop_MAC_addr;
}

header ipv4_t {
    <bit<8>,  low> ttl;
    <bit<8>,  low> protocol;
    <bit<32>, low> srcAddr;
    <bit<32>, low> dstAddr;
}

header eth_t {
    <bit<48>, low> srcAddr;
    <bit<48>, low> dstAddr;
}

struct headers {
    ipv4_t ipv4;
    eth_t eth;
    local_hdr_t local_hdr;
}

control Obfuscate_Ingress(inout headers hdr,
                          inout standard_metadata_t std_metadata) {
    action update_to_phys(<bit<32>, high> phys_dstAddr,
                          <bit<8>,  high> phys_ttl) {
        hdr.local_hdr.phys_dstAddr = phys_dstAddr;
        // *FIX*: high <- high (Listing 2, line 26)
        hdr.local_hdr.phys_ttl = phys_ttl;
    }
    table virtual2phys_topology {
        key = { hdr.ipv4.dstAddr: exact; }
        actions = { update_to_phys; NoAction; }
        default_action = NoAction;
    }
    action ipv4_forward(<bit<48>, low> dstAddr, <bit<9>, low> port) {
        hdr.eth.dstAddr = dstAddr;
        std_metadata.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
    }
    action drop() { mark_to_drop(std_metadata); }
    table ipv4_lpm_forward {
        key = { hdr.ipv4.dstAddr: lpm; }
        actions = { ipv4_forward; drop; }
        default_action = drop;
    }
    apply {
        virtual2phys_topology.apply();
        ipv4_lpm_forward.apply();
    }
}
"#;

const TOPOLOGY_INSECURE: &str = r#"
// Translating virtual to physical addresses (Listing 1): the local ttl is
// incorrectly stored in the public ipv4 header.
header local_hdr_t {
    <bit<32>, high> phys_dstAddr;
    <bit<8>,  high> phys_ttl;
    <bit<48>, high> next_hop_MAC_addr;
}

header ipv4_t {
    <bit<8>,  low> ttl;
    <bit<8>,  low> protocol;
    <bit<32>, low> srcAddr;
    <bit<32>, low> dstAddr;
}

header eth_t {
    <bit<48>, low> srcAddr;
    <bit<48>, low> dstAddr;
}

struct headers {
    ipv4_t ipv4;
    eth_t eth;
    local_hdr_t local_hdr;
}

control Obfuscate_Ingress(inout headers hdr,
                          inout standard_metadata_t std_metadata) {
    action update_to_phys(<bit<32>, high> phys_dstAddr,
                          <bit<8>,  high> phys_ttl) {
        hdr.local_hdr.phys_dstAddr = phys_dstAddr;
        // !BUG!: low <- high (Listing 1, line 34)
        hdr.ipv4.ttl = phys_ttl;
    }
    table virtual2phys_topology {
        key = { hdr.ipv4.dstAddr: exact; }
        actions = { update_to_phys; NoAction; }
        default_action = NoAction;
    }
    action ipv4_forward(<bit<48>, low> dstAddr, <bit<9>, low> port) {
        hdr.eth.dstAddr = dstAddr;
        std_metadata.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
    }
    action drop() { mark_to_drop(std_metadata); }
    table ipv4_lpm_forward {
        key = { hdr.ipv4.dstAddr: lpm; }
        actions = { ipv4_forward; drop; }
        default_action = drop;
    }
    apply {
        virtual2phys_topology.apply();
        ipv4_lpm_forward.apply();
    }
}
"#;

// =====================================================================
// D2R — §5.1, Listing 3
// =====================================================================

/// Dataplane routing with priorities. The BFS bookkeeping carried in the
/// packet includes a secret hop count (`num_hops`); deriving the public
/// packet priority from the failure count (an arithmetic function of the
/// secret) is an indirect leak. The fix derives priority from the public
/// tried-links bitmap only.
pub const D2R: CaseStudy = CaseStudy {
    name: "D2R",
    section: "§5.1, Listing 3",
    description: "dataplane BFS rerouting; failure count leaks into packet priority",
    secure: D2R_SECURE,
    insecure: D2R_INSECURE,
    control: "D2R_Ingress",
    expected_codes: &[DiagCode::ImplicitFlow],
    leak_observable: true,
};

const D2R_SECURE: &str = r#"
// D2R: policy-compliant fast reroute in the data plane (Subramanian et
// al.), with link-failure-aware priorities computed from public data only.
header bfs_t {
    <bit<32>, low>  curr;
    <bit<32>, low>  next_node;
    <bit<32>, low>  tried_links;
    <bit<32>, high> num_hops;
}

header ipv4_t {
    <bit<3>,  low> priority;
    <bit<8>,  low> ttl;
    <bit<32>, low> srcAddr;
    <bit<32>, low> dstAddr;
}

struct headers {
    bfs_t bfs;
    ipv4_t ipv4;
}

control D2R_Ingress(inout headers hdr,
                    inout standard_metadata_t std_metadata) {
    // The number of links this packet tried is public; the hop count is
    // not (it reveals link reliability in the transit network).
    <bit<32>, low> attempts = num_bits_set(hdr.bfs.tried_links);

    action bfs_advance(bit<32> next, bit<32> link_id) {
        hdr.bfs.curr = next;
        hdr.bfs.tried_links = hdr.bfs.tried_links | link_id;
        hdr.bfs.num_hops = hdr.bfs.num_hops + 32w1;
    }
    table bfs_step {
        key = { hdr.bfs.curr: exact; }
        actions = { bfs_advance; NoAction; }
        default_action = NoAction;
    }
    action forwarding(in <bit<32>, low> tried, bit<9> port) {
        // *FIX*: priority from the public tried-links proxy only.
        if (tried >= 32w4) {
            hdr.ipv4.priority = 3w7;
        } else {
            hdr.ipv4.priority = 3w1;
        }
        std_metadata.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
    }
    action drop() { mark_to_drop(std_metadata); }
    table forward {
        key = { hdr.bfs.next_node: exact; }
        actions = { forwarding(attempts); drop; }
        default_action = drop;
    }
    apply {
        // P4 has no loops: the BFS is unrolled (Listing 3, line 41).
        if (hdr.bfs.curr != hdr.ipv4.dstAddr) { bfs_step.apply(); }
        if (hdr.bfs.curr != hdr.ipv4.dstAddr) { bfs_step.apply(); }
        if (hdr.bfs.curr != hdr.ipv4.dstAddr) { bfs_step.apply(); }
        if (hdr.bfs.curr == hdr.ipv4.dstAddr) { forward.apply(); }
    }
}
"#;

const D2R_INSECURE: &str = r#"
// D2R with failure-count priorities (Listing 3): the failure count is
// derived from the secret hop count, and forwarding branches on it to set
// the public priority — an indirect leak.
header bfs_t {
    <bit<32>, low>  curr;
    <bit<32>, low>  next_node;
    <bit<32>, low>  tried_links;
    <bit<32>, high> num_hops;
}

header ipv4_t {
    <bit<3>,  low> priority;
    <bit<8>,  low> ttl;
    <bit<32>, low> srcAddr;
    <bit<32>, low> dstAddr;
}

struct headers {
    bfs_t bfs;
    ipv4_t ipv4;
}

control D2R_Ingress(inout headers hdr,
                    inout standard_metadata_t std_metadata) {
    // Listing 3, line 19: failures = popcount(tried_links) - num_hops.
    <bit<32>, high> failures
        = num_bits_set(hdr.bfs.tried_links) - hdr.bfs.num_hops;

    action bfs_advance(bit<32> next, bit<32> link_id) {
        hdr.bfs.curr = next;
        hdr.bfs.tried_links = hdr.bfs.tried_links | link_id;
        hdr.bfs.num_hops = hdr.bfs.num_hops + 32w1;
    }
    table bfs_step {
        key = { hdr.bfs.curr: exact; }
        actions = { bfs_advance; NoAction; }
        default_action = NoAction;
    }
    action forwarding(in <bit<32>, high> failures_in, bit<9> port) {
        if (failures_in >= 32w4) {
            hdr.ipv4.priority = 3w7;   // Leak (Listing 3, line 28)
        } else {
            hdr.ipv4.priority = 3w1;   // Leak (Listing 3, line 31)
        }
        std_metadata.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
    }
    action drop() { mark_to_drop(std_metadata); }
    table forward {
        key = { hdr.bfs.next_node: exact; }
        actions = { forwarding(failures); drop; }
        default_action = drop;
    }
    apply {
        if (hdr.bfs.curr != hdr.ipv4.dstAddr) { bfs_step.apply(); }
        if (hdr.bfs.curr != hdr.ipv4.dstAddr) { bfs_step.apply(); }
        if (hdr.bfs.curr != hdr.ipv4.dstAddr) { bfs_step.apply(); }
        if (hdr.bfs.curr == hdr.ipv4.dstAddr) { forward.apply(); }
    }
}
"#;

// =====================================================================
// NetChain — §5.1 (final paragraph)
// =====================================================================

/// In-network chain replication (Jin et al.). Each switch's role in the
/// chain (head / internal / tail) determines whether it emits a reply.
/// Treating the role as secret topology information, keying the reply
/// behaviour on it is the same indirect leak pattern as D2R.
pub const NETCHAIN: CaseStudy = CaseStudy {
    name: "NetChain",
    section: "§5.1 (NetChain)",
    description: "chain replication; the secret chain role determines the visible reply",
    secure: NETCHAIN_SECURE,
    insecure: NETCHAIN_INSECURE,
    control: "NetChain_Ingress",
    expected_codes: &[DiagCode::TableKeyFlow],
    leak_observable: true,
};

const NETCHAIN_SECURE: &str = r#"
// NetChain-style in-network chain replication over a switch-local
// key-value store (Jin et al., NSDI'18). The chain role is public here:
// the operator accepts that per-switch roles are visible.
header netchain_t {
    <bit<8>,  low> role;        // 0 = head, 1 = internal, 2 = tail
    <bit<32>, low> seq;
    <bit<1>,  low> op;          // 0 = read, 1 = write
    <bit<32>, low> key_field;
    <bit<32>, low> value_field;
    <bit<8>,  low> reply;
}

header udp_t {
    <bit<16>, low> srcPort;
    <bit<16>, low> dstPort;
}

struct headers {
    netchain_t nc;
    udp_t udp;
}

control NetChain_Ingress(inout headers hdr,
                         inout standard_metadata_t std_metadata) {
    // The switch-local store: an 8-slot register file modeled as a stack.
    bit<32>[8] kv_store;

    action head_process(bit<9> next_hop) {
        // Heads sequence writes and start the chain.
        hdr.nc.seq = hdr.nc.seq + 32w1;
        kv_store[hdr.nc.key_field & 32w7] = hdr.nc.value_field;
        hdr.nc.reply = 8w0;
        std_metadata.egress_spec = next_hop;
    }
    action internal_process(bit<9> next_hop) {
        kv_store[hdr.nc.key_field & 32w7] = hdr.nc.value_field;
        hdr.nc.reply = 8w0;
        std_metadata.egress_spec = next_hop;
    }
    action tail_process(bit<9> client_port) {
        // Tails commit, answer the client, and close the chain.
        kv_store[hdr.nc.key_field & 32w7] = hdr.nc.value_field;
        hdr.nc.reply = 8w1;
        std_metadata.egress_spec = client_port;
    }
    action read_process(bit<9> client_port) {
        // Reads are served by the tail alone.
        hdr.nc.value_field = kv_store[hdr.nc.key_field & 32w7];
        hdr.nc.reply = 8w1;
        std_metadata.egress_spec = client_port;
    }
    action drop() { mark_to_drop(std_metadata); }
    table chain_role {
        key = { hdr.nc.role: exact; hdr.nc.op: exact; }
        actions = { head_process; internal_process; tail_process;
                    read_process; drop; }
        default_action = drop;
    }
    apply {
        if (hdr.nc.seq != 32w0) {
            chain_role.apply();
        } else {
            mark_to_drop(std_metadata);
        }
    }
}
"#;

const NETCHAIN_INSECURE: &str = r#"
// NetChain with the chain role marked secret: matching on it to decide
// whether and how to reply gives away private topological information.
header netchain_t {
    <bit<8>,  high> role;       // secret: reveals chain topology
    <bit<32>, low>  seq;
    <bit<1>,  low>  op;
    <bit<32>, low>  key_field;
    <bit<32>, low>  value_field;
    <bit<8>,  low>  reply;
}

header udp_t {
    <bit<16>, low> srcPort;
    <bit<16>, low> dstPort;
}

struct headers {
    netchain_t nc;
    udp_t udp;
}

control NetChain_Ingress(inout headers hdr,
                         inout standard_metadata_t std_metadata) {
    bit<32>[8] kv_store;

    action head_process(bit<9> next_hop) {
        hdr.nc.seq = hdr.nc.seq + 32w1;
        kv_store[hdr.nc.key_field & 32w7] = hdr.nc.value_field;
        hdr.nc.reply = 8w0;
        std_metadata.egress_spec = next_hop;
    }
    action internal_process(bit<9> next_hop) {
        kv_store[hdr.nc.key_field & 32w7] = hdr.nc.value_field;
        hdr.nc.reply = 8w0;
        std_metadata.egress_spec = next_hop;
    }
    action tail_process(bit<9> client_port) {
        kv_store[hdr.nc.key_field & 32w7] = hdr.nc.value_field;
        hdr.nc.reply = 8w1;
        std_metadata.egress_spec = client_port;
    }
    action read_process(bit<9> client_port) {
        hdr.nc.value_field = kv_store[hdr.nc.key_field & 32w7];
        hdr.nc.reply = 8w1;
        std_metadata.egress_spec = client_port;
    }
    action drop() { mark_to_drop(std_metadata); }
    table chain_role {
        // Leak: the secret role selects actions that write public data.
        key = { hdr.nc.role: exact; hdr.nc.op: exact; }
        actions = { head_process; internal_process; tail_process;
                    read_process; drop; }
        default_action = drop;
    }
    apply {
        if (hdr.nc.seq != 32w0) {
            chain_role.apply();
        } else {
            mark_to_drop(std_metadata);
        }
    }
}
"#;

// =====================================================================
// Cache — §5.2, Listing 4
// =====================================================================

/// An in-network key-value cache. Whether a request hits the switch cache
/// or has to go to the controller is visible to a timing adversary; the
/// paper models it with an explicit low `hit` flag. Keying the cache on a
/// secret query makes the actions' writes to `hit` an indirect leak.
pub const CACHE: CaseStudy = CaseStudy {
    name: "Cache",
    section: "§5.2, Listing 4",
    description: "in-network cache; the public hit flag leaks the secret query (timing model)",
    secure: CACHE_SECURE,
    insecure: CACHE_INSECURE,
    control: "Cache_Ingress",
    expected_codes: &[DiagCode::TableKeyFlow],
    leak_observable: true,
};

const CACHE_SECURE: &str = r#"
// In-network cache with a secret query: the observable response fields
// must then be secret too, closing the timing channel the hit flag models.
header request_t {
    <bit<8>, high> query;
}

header response_t {
    <bool,   high> hit;
    <bit<32>, high> value_field;
}

header eth_t {
    <bit<48>, low> srcAddr;
    <bit<48>, low> dstAddr;
}

struct headers {
    request_t req;
    response_t resp;
    eth_t eth;
}

control Cache_Ingress(inout headers hdr,
                      inout standard_metadata_t std_metadata) {
    action cache_hit(<bit<32>, high> value_arg) {
        hdr.resp.value_field = value_arg;
        hdr.resp.hit = true;
    }
    action cache_miss() {
        hdr.resp.hit = false;
        // ... escalate to the controller ...
    }
    table fetch_from_cache {
        key = { hdr.req.query: exact; }
        actions = { cache_hit; cache_miss; }
        default_action = cache_miss;
    }
    apply {
        fetch_from_cache.apply();
    }
}
"#;

const CACHE_INSECURE: &str = r#"
// In-network cache (Listing 4): the query is secret but the hit flag is
// public — a timing side channel an adversary can observe.
header request_t {
    <bit<8>, high> query;
}

header response_t {
    <bool,   low> hit;
    <bit<32>, low> value_field;
}

header eth_t {
    <bit<48>, low> srcAddr;
    <bit<48>, low> dstAddr;
}

struct headers {
    request_t req;
    response_t resp;
    eth_t eth;
}

control Cache_Ingress(inout headers hdr,
                      inout standard_metadata_t std_metadata) {
    action cache_hit(<bit<32>, low> value_arg) {
        hdr.resp.value_field = value_arg;
        hdr.resp.hit = true;            // Leak (Listing 4, line 8)
    }
    action cache_miss() {
        hdr.resp.hit = false;           // Leak (Listing 4, line 10)
    }
    table fetch_from_cache {
        key = { hdr.req.query: exact; } // secret key selects the actions
        actions = { cache_hit; cache_miss; }
        default_action = cache_miss;
    }
    apply {
        fetch_from_cache.apply();
    }
}
"#;

// =====================================================================
// App — §5.3, Listing 5
// =====================================================================

/// Gateway resource allocation. Read the labels with the integrity
/// interpretation: `high` = untrusted, `low` = trusted. Deriving the
/// trusted packet priority from the client-controlled `appID` lets a
/// malicious client inflate its own priority; deriving it from the
/// destination address (which clients cannot lie about without losing
/// their traffic) is accepted.
pub const APP: CaseStudy = CaseStudy {
    name: "App",
    section: "§5.3, Listing 5",
    description: "gateway resource allocation; untrusted appID must not set the trusted priority",
    secure: APP_SECURE,
    insecure: APP_INSECURE,
    control: "App_Ingress",
    expected_codes: &[DiagCode::TableKeyFlow],
    leak_observable: true,
};

const APP_SECURE: &str = r#"
// Resource allocation keyed on trusted data (the fix of §5.3): priority
// comes from the destination subnetwork, not the client-claimed app id.
header app_t {
    <bit<8>, high> appID;       // untrusted, client-controlled
}

header ipv4_t {
    <bit<32>, low> srcAddr;
    <bit<32>, low> dstAddr;     // trusted: lying reroutes your own traffic
    <bit<3>,  low> priority;    // trusted output
    <bit<8>,  low> ttl;
}

struct headers {
    app_t app;
    ipv4_t ipv4;
}

control App_Ingress(inout headers hdr,
                    inout standard_metadata_t std_metadata) {
    action set_priority(<bit<3>, low> prio) {
        hdr.ipv4.priority = prio;
    }
    table app_resources {
        key = { hdr.ipv4.dstAddr: lpm; }   // *FIX*: trusted key
        actions = { set_priority; NoAction; }
        default_action = NoAction;
    }
    action ipv4_forward(<bit<9>, low> port) {
        std_metadata.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
    }
    action drop() { mark_to_drop(std_metadata); }
    table forward {
        key = { hdr.ipv4.dstAddr: lpm; }
        actions = { ipv4_forward; drop; }
        default_action = drop;
    }
    apply {
        app_resources.apply();
        forward.apply();
    }
}
"#;

const APP_INSECURE: &str = r#"
// Resource allocation keyed on the client-claimed app id (Listing 5): a
// malicious client reports a latency-sensitive appID to inflate its
// priority — an integrity violation (untrusted -> trusted).
header app_t {
    <bit<8>, high> appID;       // untrusted, client-controlled
}

header ipv4_t {
    <bit<32>, low> srcAddr;
    <bit<32>, low> dstAddr;
    <bit<3>,  low> priority;    // trusted output
    <bit<8>,  low> ttl;
}

struct headers {
    app_t app;
    ipv4_t ipv4;
}

control App_Ingress(inout headers hdr,
                    inout standard_metadata_t std_metadata) {
    action set_priority(<bit<3>, low> prio) {
        hdr.ipv4.priority = prio;       // trusted write...
    }
    table app_resources {
        key = { hdr.app.appID: exact; } // ...selected by untrusted data
        actions = { set_priority; NoAction; }
        default_action = NoAction;
    }
    action ipv4_forward(<bit<9>, low> port) {
        std_metadata.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
    }
    action drop() { mark_to_drop(std_metadata); }
    table forward {
        key = { hdr.ipv4.dstAddr: lpm; }
        actions = { ipv4_forward; drop; }
        default_action = drop;
    }
    apply {
        app_resources.apply();
        forward.apply();
    }
}
"#;

// =====================================================================
// Lattice — §5.4, Listings 6 and 7, Figure 8
// =====================================================================

/// Network isolation over the diamond lattice of Figure 8b: Alice's and
/// Bob's switches share packet headers; telemetry (`top`) may be written
/// by anyone but read by no tenant; routing data (`bot`) is readable by
/// everyone and writable by no tenant. Alice's control is checked at
/// `pc = A` and Bob's at `pc = B`.
pub const LATTICE: CaseStudy = CaseStudy {
    name: "Lattice",
    section: "§5.4, Listings 6–7, Fig. 8",
    description: "two-tenant isolation on the diamond lattice; Alice touches Bob's data",
    secure: LATTICE_SECURE,
    insecure: LATTICE_INSECURE,
    control: "Alice_Ingress",
    expected_codes: &[DiagCode::ExplicitFlow, DiagCode::TableKeyFlow],
    leak_observable: true,
};

const LATTICE_SECURE: &str = r#"
// Isolation-respecting tenant switches (Listing 7) on the Figure 8b
// diamond lattice.
lattice { bot < A; bot < B; A < top; B < top; }

header alice_t {
    <bit<32>, A> data;
    <bit<32>, A> counter;
}

header bob_t {
    <bit<32>, B> data;
    <bit<32>, B> counter;
}

header telem_t {
    <bit<32>, top> hops;
    <bit<32>, top> queue_depth;
}

header eth_t {
    <bit<48>, bot> srcAddr;
    <bit<48>, bot> dstAddr;
}

struct headers {
    alice_t alice_data;
    bob_t bob_data;
    telem_t telem;
    eth_t eth;
}

@pc(A) control Alice_Ingress(inout headers hdr,
                             inout standard_metadata_t std_metadata) {
    action set_by_alice(<bit<32>, A> value) {
        hdr.alice_data.data = value;
        hdr.alice_data.counter = hdr.alice_data.counter + 32w1;
    }
    action note_in_telemetry() {
        // Allowed: anyone may accumulate into top-labeled telemetry.
        hdr.telem.hops = hdr.telem.hops + 32w1;
    }
    table update_by_alice {
        key = { hdr.alice_data.data: exact; }
        actions = { set_by_alice; note_in_telemetry; NoAction; }
        default_action = NoAction;
    }
    apply { update_by_alice.apply(); }
}

@pc(B) control Bob_Ingress(inout headers hdr,
                           inout standard_metadata_t std_metadata) {
    action set_by_bob() {
        // Allowed: modify telemetry using telemetry information.
        hdr.telem.hops = hdr.telem.hops + 32w1;
    }
    table update_by_bob {
        key = { hdr.eth.dstAddr: exact; }
        actions = { set_by_bob; NoAction; }
        default_action = NoAction;
    }
    apply { update_by_bob.apply(); }
}
"#;

const LATTICE_INSECURE: &str = r#"
// Isolation-violating Alice switch (Listing 6): writes Bob's field and
// keys a table on the telemetry it must not read.
lattice { bot < A; bot < B; A < top; B < top; }

header alice_t {
    <bit<32>, A> data;
    <bit<32>, A> counter;
}

header bob_t {
    <bit<32>, B> data;
    <bit<32>, B> counter;
}

header telem_t {
    <bit<32>, top> hops;
    <bit<32>, top> queue_depth;
}

header eth_t {
    <bit<48>, bot> srcAddr;
    <bit<48>, bot> dstAddr;
}

struct headers {
    alice_t alice_data;
    bob_t bob_data;
    telem_t telem;
    eth_t eth;
}

@pc(A) control Alice_Ingress(inout headers hdr,
                             inout standard_metadata_t std_metadata) {
    action set_by_alice(<bit<32>, A> value) {
        // Error: should not have written to Bob's field (Listing 6, l.12)
        hdr.bob_data.data = hdr.alice_data.data + value;
    }
    table update_by_alice {
        // Error: should not have used the telemetry field (Listing 6, l.16)
        key = { hdr.telem.hops: exact; }
        actions = { set_by_alice; NoAction; }
        default_action = NoAction;
    }
    apply { update_by_alice.apply(); }
}

@pc(B) control Bob_Ingress(inout headers hdr,
                           inout standard_metadata_t std_metadata) {
    action set_by_bob() {
        hdr.telem.hops = hdr.telem.hops + 32w1;
    }
    table update_by_bob {
        key = { hdr.eth.dstAddr: exact; }
        actions = { set_by_bob; NoAction; }
        default_action = NoAction;
    }
    apply { update_by_bob.apply(); }
}
"#;

// =====================================================================
// Demo control planes
// =====================================================================

/// A small, sensible control-plane configuration for each case study's
/// tables, used by the examples and the NI demonstrations.
#[must_use]
pub fn demo_control_plane(name: &str) -> ControlPlane {
    let mut cp = ControlPlane::new();
    let b = Value::bit;
    match name {
        "Topology" => {
            for i in 0..4u128 {
                cp.add_entry(
                    "virtual2phys_topology",
                    TableEntry::new(
                        vec![KeyPattern::Exact(b(32, 0x0A00_0000 + i))],
                        "update_to_phys",
                        vec![b(32, 0xC0A8_0000 + i), b(8, 16 + i)],
                    ),
                );
                cp.add_entry(
                    "ipv4_lpm_forward",
                    TableEntry::new(
                        vec![KeyPattern::Lpm { value: b(32, 0x0A00_0000 + i), prefix_len: 32 }],
                        "ipv4_forward",
                        vec![b(48, 0xAABB_0000 + i), b(9, 1 + i)],
                    ),
                );
            }
        }
        "D2R" => {
            // A small topology: nodes 1→2→3, destination 3.
            for (node, next, link) in [(1u128, 2u128, 1u128), (2, 3, 2), (4, 3, 4)] {
                cp.add_entry(
                    "bfs_step",
                    TableEntry::new(
                        vec![KeyPattern::Exact(b(32, node))],
                        "bfs_advance",
                        vec![b(32, next), b(32, link)],
                    ),
                );
            }
            for node in 1..=4u128 {
                cp.add_entry(
                    "forward",
                    TableEntry::new(
                        vec![KeyPattern::Exact(b(32, node))],
                        "forwarding",
                        vec![b(9, node)],
                    ),
                );
            }
        }
        "NetChain" => {
            // Writes walk the chain head -> internal -> tail; reads go to
            // the tail only.
            for (role, action, port) in
                [(0u128, "head_process", 2u128), (1, "internal_process", 3), (2, "tail_process", 9)]
            {
                cp.add_entry(
                    "chain_role",
                    TableEntry::new(
                        vec![KeyPattern::Exact(b(8, role)), KeyPattern::Exact(b(1, 1))],
                        action,
                        vec![b(9, port)],
                    ),
                );
            }
            cp.add_entry(
                "chain_role",
                TableEntry::new(
                    vec![KeyPattern::Exact(b(8, 2)), KeyPattern::Exact(b(1, 0))],
                    "read_process",
                    vec![b(9, 9)],
                ),
            );
        }
        "Cache" => {
            // Half the key space is cached.
            for q in 0..128u128 {
                cp.add_entry(
                    "fetch_from_cache",
                    TableEntry::new(
                        vec![KeyPattern::Exact(b(8, q))],
                        "cache_hit",
                        vec![b(32, 0xCAFE_0000 + q)],
                    ),
                );
            }
        }
        "App" => {
            for (ix, prio) in [(0u128, 7u128), (1, 4), (2, 1)] {
                cp.add_entry(
                    "app_resources",
                    TableEntry::new(
                        vec![KeyPattern::Exact(b(8, ix))],
                        "set_priority",
                        vec![b(3, prio)],
                    ),
                );
                // The secure variant keys app_resources on dstAddr/lpm:
                // give it matching lpm entries too.
                cp.add_entry(
                    "app_resources",
                    TableEntry::new(
                        vec![KeyPattern::Lpm { value: b(32, (10 + ix) << 24), prefix_len: 8 }],
                        "set_priority",
                        vec![b(3, prio)],
                    ),
                );
                cp.add_entry(
                    "forward",
                    TableEntry::new(
                        vec![KeyPattern::Lpm { value: b(32, (10 + ix) << 24), prefix_len: 8 }],
                        "ipv4_forward",
                        vec![b(9, ix + 1)],
                    ),
                );
            }
        }
        "Lattice" => {
            cp.add_entry(
                "update_by_alice",
                TableEntry::new(vec![KeyPattern::Any], "set_by_alice", vec![b(32, 0xA11C_E000)]),
            );
            cp.add_entry(
                "update_by_bob",
                TableEntry::new(vec![KeyPattern::Any], "set_by_bob", vec![]),
            );
        }
        _ => {}
    }
    cp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_complete() {
        let all = case_studies();
        assert_eq!(all.len(), 6);
        let names: Vec<&str> = all.iter().map(|c| c.name).collect();
        assert_eq!(names, ["D2R", "App", "Lattice", "Topology", "Cache", "NetChain"]);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(case_study("cache").is_some());
        assert!(case_study("CACHE").is_some());
        assert!(case_study("nothere").is_none());
    }

    #[test]
    fn every_study_has_a_demo_control_plane() {
        for cs in case_studies() {
            let cp = demo_control_plane(cs.name);
            assert_ne!(cp, ControlPlane::new(), "{} has no demo entries", cs.name);
        }
    }
}
