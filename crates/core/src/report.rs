//! Evaluation reports: Table 1 (typechecking times) and the case-study
//! accept/reject matrix of §5.
//!
//! These functions are what the `table1` Criterion bench and the
//! `examples/table1.rs` binary drive; they are also unit-tested so the
//! reported numbers always come from programs that actually parse, check,
//! and (for the secure variants) run.

use crate::corpus::{case_studies, CaseStudy};
use crate::strip::strip_annotations_source;
use p4bid_typeck::{check_source, CheckOptions, DiagCode};
use std::time::Instant;

/// One row of Table 1: typechecking time for the unannotated program under
/// the baseline checker vs the annotated program under P4BID.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Program name.
    pub program: String,
    /// Baseline ("unannotated, p4c") time in milliseconds.
    pub base_ms: f64,
    /// P4BID ("annotated") time in milliseconds.
    pub ifc_ms: f64,
    /// Baseline checker on the *annotated* source, in milliseconds.
    /// Comparing this against `ifc_ms` isolates the cost of the IFC
    /// analysis from source-length effects (the paper's two columns, like
    /// ours, parse different texts).
    pub base_on_annotated_ms: f64,
}

impl Table1Row {
    /// Relative overhead of the IFC checker over the baseline, in percent
    /// (the paper's comparison: different sources, different checkers).
    #[must_use]
    pub fn overhead_percent(&self) -> f64 {
        if self.base_ms == 0.0 {
            0.0
        } else {
            (self.ifc_ms - self.base_ms) / self.base_ms * 100.0
        }
    }

    /// Relative cost of the IFC analysis on identical input, in percent
    /// (same annotated source, baseline vs IFC mode).
    #[must_use]
    pub fn isolated_overhead_percent(&self) -> f64 {
        if self.base_on_annotated_ms == 0.0 {
            0.0
        } else {
            (self.ifc_ms - self.base_on_annotated_ms) / self.base_on_annotated_ms * 100.0
        }
    }
}

/// The unannotated baseline source of a case study (derived mechanically
/// from the secure annotated form).
///
/// # Panics
///
/// Panics if the corpus source does not parse (corpus bug, covered by
/// tests).
#[must_use]
pub fn unannotated_source(cs: &CaseStudy) -> String {
    let program = p4bid_syntax::parse(cs.secure).expect("corpus programs parse");
    strip_annotations_source(&program)
}

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    samples[samples.len() / 2]
}

fn time_check(source: &str, opts: &CheckOptions, iters: u32) -> f64 {
    let samples: Vec<f64> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            let result = check_source(source, opts);
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            assert!(result.is_ok(), "timed program must typecheck");
            elapsed
        })
        .collect();
    median_ms(samples)
}

/// Measures Table 1: for each of the five paper programs, the median
/// parse+check time of the unannotated source under the baseline checker
/// and of the annotated (secure) source under the IFC checker.
#[must_use]
pub fn measure_table1(iters: u32) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for cs in case_studies().iter().filter(|c| c.name != "NetChain") {
        let plain = unannotated_source(cs);
        let base_ms = time_check(&plain, &CheckOptions::base(), iters);
        let ifc_ms = time_check(cs.secure, &CheckOptions::ifc(), iters);
        let base_on_annotated_ms = time_check(cs.secure, &CheckOptions::base(), iters);
        rows.push(Table1Row {
            program: cs.name.to_string(),
            base_ms,
            ifc_ms,
            base_on_annotated_ms,
        });
    }
    let n = rows.len() as f64;
    rows.push(Table1Row {
        program: "Average".to_string(),
        base_ms: rows.iter().map(|r| r.base_ms).sum::<f64>() / n,
        ifc_ms: rows.iter().map(|r| r.ifc_ms).sum::<f64>() / n,
        base_on_annotated_ms: rows.iter().map(|r| r.base_on_annotated_ms).sum::<f64>() / n,
    });
    rows
}

/// Renders Table 1 in the paper's layout.
#[must_use]
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 1. Typechecking time in milliseconds.\n");
    out.push_str(&format!(
        "{:<10} {:>18} {:>18} {:>10} {:>12}\n",
        "Program", "Unannotated, base", "Annotated, P4BID", "Overhead", "IFC-only"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>18.3} {:>18.3} {:>9.1}% {:>11.1}%\n",
            r.program,
            r.base_ms,
            r.ifc_ms,
            r.overhead_percent(),
            r.isolated_overhead_percent(),
        ));
    }
    out
}

/// One row of the case-study accept/reject matrix (the qualitative results
/// of §5: every secure variant typechecks, every insecure variant is
/// rejected with the expected diagnostic class).
#[derive(Debug, Clone)]
pub struct MatrixRow {
    /// Case-study name.
    pub name: String,
    /// Paper section.
    pub section: String,
    /// Whether the secure variant was accepted.
    pub secure_accepted: bool,
    /// Whether the insecure variant was rejected.
    pub insecure_rejected: bool,
    /// Diagnostic classes the insecure variant produced.
    pub codes: Vec<DiagCode>,
    /// Whether every expected class appeared.
    pub codes_match: bool,
}

impl MatrixRow {
    /// Whether this row reproduces the paper's result.
    #[must_use]
    pub fn reproduced(&self) -> bool {
        self.secure_accepted && self.insecure_rejected && self.codes_match
    }
}

/// Checks every corpus program in both variants and reports the matrix.
#[must_use]
pub fn case_study_matrix() -> Vec<MatrixRow> {
    case_studies()
        .iter()
        .map(|cs| {
            let secure_accepted = check_source(cs.secure, &CheckOptions::ifc()).is_ok();
            let codes: Vec<DiagCode> = match check_source(cs.insecure, &CheckOptions::ifc()) {
                Ok(_) => Vec::new(),
                Err(diags) => {
                    let mut cs: Vec<DiagCode> = diags.iter().map(|d| d.code).collect();
                    cs.dedup();
                    cs
                }
            };
            let insecure_rejected = !codes.is_empty();
            let codes_match = cs.expected_codes.iter().all(|c| codes.contains(c));
            MatrixRow {
                name: cs.name.to_string(),
                section: cs.section.to_string(),
                secure_accepted,
                insecure_rejected,
                codes,
                codes_match,
            }
        })
        .collect()
}

/// Renders the case-study matrix.
#[must_use]
pub fn render_matrix(rows: &[MatrixRow]) -> String {
    let mut out = String::new();
    out.push_str("Case studies (§5): secure accepted / insecure rejected.\n");
    out.push_str(&format!(
        "{:<10} {:<28} {:>8} {:>9}  {}\n",
        "Program", "Section", "Secure", "Insecure", "Diagnostics"
    ));
    for r in rows {
        let codes = r.codes.iter().map(|c| c.ident().to_string()).collect::<Vec<_>>().join(", ");
        out.push_str(&format!(
            "{:<10} {:<28} {:>8} {:>9}  {}\n",
            r.name,
            r.section,
            if r.secure_accepted { "ok" } else { "FAIL" },
            if r.insecure_rejected { "rejected" } else { "MISSED" },
            codes,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_reproduces_every_case_study() {
        for row in case_study_matrix() {
            assert!(
                row.reproduced(),
                "{} not reproduced: secure_accepted={}, insecure_rejected={}, codes={:?}",
                row.name,
                row.secure_accepted,
                row.insecure_rejected,
                row.codes
            );
        }
    }

    #[test]
    fn table1_has_the_papers_rows() {
        let rows = measure_table1(3);
        let names: Vec<&str> = rows.iter().map(|r| r.program.as_str()).collect();
        assert_eq!(names, ["D2R", "App", "Lattice", "Topology", "Cache", "Average"]);
        for r in &rows {
            assert!(r.base_ms > 0.0 && r.ifc_ms > 0.0, "{r:?}");
        }
        let rendered = render_table1(&rows);
        assert!(rendered.contains("Average"));
        assert!(rendered.contains("P4BID"));
    }

    #[test]
    fn unannotated_sources_base_check() {
        for cs in case_studies() {
            let plain = unannotated_source(&cs);
            assert!(!plain.contains("high"), "{}: {plain}", cs.name);
            check_source(&plain, &CheckOptions::base())
                .unwrap_or_else(|e| panic!("{}: {e:?}\n{plain}", cs.name));
        }
    }

    #[test]
    fn overhead_percent_math() {
        let r = Table1Row {
            program: "x".into(),
            base_ms: 100.0,
            ifc_ms: 105.0,
            base_on_annotated_ms: 101.0,
        };
        assert!((r.overhead_percent() - 5.0).abs() < 1e-9);
        assert!((r.isolated_overhead_percent() - 400.0 / 101.0).abs() < 1e-9);
        let z = Table1Row {
            program: "x".into(),
            base_ms: 0.0,
            ifc_ms: 105.0,
            base_on_annotated_ms: 0.0,
        };
        assert_eq!(z.overhead_percent(), 0.0);
        assert_eq!(z.isolated_overhead_percent(), 0.0);
    }
}
